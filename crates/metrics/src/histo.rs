//! Percentile readout over log-bucketed histograms.
//!
//! A thin wrapper around [`mercurial_trace::LogHistogram`] so the trace
//! layer's fixed bucket layout is the single source of truth for quantile
//! estimation — detection-latency percentiles in reports and the p50/p95/
//! p99 columns of exported telemetry agree by construction.

use mercurial_trace::LogHistogram;

/// The p50/p95/p99 readout of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

/// Builds a [`LogHistogram`] from raw samples.
pub fn log_histogram(samples: &[f64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &s in samples {
        h.observe(s);
    }
    h
}

/// The p50/p95/p99 of `samples`, estimated through the shared log-bucketed
/// histogram. `None` when `samples` is empty; exact for a single sample
/// (estimates are clamped to the observed `[min, max]`).
pub fn percentiles(samples: &[f64]) -> Option<Percentiles> {
    percentiles_of(&log_histogram(samples))
}

/// The p50/p95/p99 readout of an already-built histogram — what alert
/// rules evaluate against a live `Recorder`'s metric set without
/// re-observing samples. `None` when the histogram is empty (or holds
/// only non-finite junk).
pub fn percentiles_of(h: &LogHistogram) -> Option<Percentiles> {
    Some(Percentiles {
        p50: h.p50()?,
        p95: h.p95()?,
        p99: h.p99()?,
    })
}

/// Exact nearest-rank quantile `q` (in `(0, 1]`) of a raw sample set:
/// sorts a copy and returns the ceil(q·n)-th order statistic. Unlike the
/// bucketed estimators above this is exact, so it serves the places that
/// report a quantile of a small sample set verbatim (serve fidelity p95,
/// audit time-to-root-cause percentiles). `None` when `samples` is empty.
pub fn nearest_rank(q: f64, samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_samples_yield_none() {
        assert_eq!(percentiles(&[]), None);
    }

    #[test]
    fn single_sample_is_exact() {
        let p = percentiles(&[42.0]).unwrap();
        assert_eq!(p.p50, 42.0);
        assert_eq!(p.p95, 42.0);
        assert_eq!(p.p99, 42.0);
    }

    #[test]
    fn percentiles_are_ordered_and_in_range() {
        let samples: Vec<f64> = (1..=500).map(|i| i as f64).collect();
        let p = percentiles(&samples).unwrap();
        assert!(p.p50 <= p.p95 && p.p95 <= p.p99);
        assert!(p.p50 >= 1.0 && p.p99 <= 500.0);
        // Within one log10/8 bucket of the exact answers.
        assert!(
            (p.p50 / 250.0) > 0.7 && (p.p50 / 250.0) < 1.4,
            "p50={}",
            p.p50
        );
        assert!(
            (p.p99 / 495.0) > 0.7 && (p.p99 / 495.0) < 1.4,
            "p99={}",
            p.p99
        );
    }

    #[test]
    fn zeros_are_representable() {
        let p = percentiles(&[0.0, 0.0, 0.0, 10.0]).unwrap();
        assert_eq!(p.p50, 0.0);
        assert!(p.p99 > 0.0 && p.p99 <= 10.0);
    }

    #[test]
    fn all_zero_samples_report_exactly_zero() {
        // The "no corruptions this epoch" histogram: every percentile of
        // an all-zero sample set is exactly 0, not a bucket estimate.
        let p = percentiles(&[0.0; 12]).unwrap();
        assert_eq!(p.p50, 0.0);
        assert_eq!(p.p95, 0.0);
        assert_eq!(p.p99, 0.0);
    }

    #[test]
    fn single_populated_bucket_reports_the_bucket_not_empty_decades() {
        // Zeros plus one populated bucket at 100: high percentiles must
        // land in that bucket (clamped to the exact max), never in the
        // empty decades between 0 and 100.
        let mut samples = vec![0.0; 9];
        samples.extend([100.0; 5]);
        let p = percentiles(&samples).unwrap();
        assert_eq!(p.p50, 0.0);
        assert_eq!(p.p95, 100.0);
        assert_eq!(p.p99, 100.0);
    }

    #[test]
    fn nearest_rank_is_exact_order_statistic() {
        assert_eq!(nearest_rank(0.95, &[]), None);
        assert_eq!(nearest_rank(0.95, &[5.0]), Some(5.0));
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(nearest_rank(0.95, &v), Some(95.0));
        assert_eq!(nearest_rank(0.5, &v), Some(50.0));
        assert_eq!(nearest_rank(1.0, &v), Some(100.0));
        // Unsorted input and tiny q both behave.
        assert_eq!(nearest_rank(0.5, &[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(nearest_rank(0.001, &[3.0, 1.0, 2.0]), Some(1.0));
    }

    #[test]
    fn percentiles_of_matches_sample_path() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 1.7).collect();
        let h = log_histogram(&samples);
        assert_eq!(percentiles_of(&h), percentiles(&samples));
        assert_eq!(percentiles_of(&LogHistogram::new()), None);
    }
}
