//! Corruption-rate distributions.
//!
//! §2: "Corruption rates vary by many orders of magnitude (given a
//! particular workload or test) across defective cores". The natural
//! summary of such a distribution is a histogram over log-decades, plus
//! order-of-magnitude spread statistics.

use serde::{Deserialize, Serialize};

/// A histogram over powers of ten.
///
/// Bucket `i` covers rates in `[10^(min_decade + i), 10^(min_decade + i + 1))`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogDecadeHistogram {
    min_decade: i32,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    zeros: u64,
    samples: Vec<f64>,
}

impl LogDecadeHistogram {
    /// Creates a histogram spanning `[10^min_decade, 10^max_decade)`.
    ///
    /// # Panics
    ///
    /// Panics unless `min_decade < max_decade`.
    pub fn new(min_decade: i32, max_decade: i32) -> LogDecadeHistogram {
        assert!(min_decade < max_decade, "empty decade range");
        LogDecadeHistogram {
            min_decade,
            counts: vec![0; (max_decade - min_decade) as usize],
            underflow: 0,
            overflow: 0,
            zeros: 0,
            samples: Vec::new(),
        }
    }

    /// Records one rate.
    ///
    /// Zero and negative rates land in the `zeros` bucket (a core that
    /// never corrupted under this workload).
    pub fn record(&mut self, rate: f64) {
        if rate <= 0.0 || rate.is_nan() {
            self.zeros += 1;
            return;
        }
        self.samples.push(rate);
        let decade = rate.log10().floor() as i32;
        if decade < self.min_decade {
            self.underflow += 1;
        } else if (decade - self.min_decade) as usize >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[(decade - self.min_decade) as usize] += 1;
        }
    }

    /// Bucket counts, lowest decade first.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The decade label of bucket `i` (its lower-edge exponent).
    pub fn decade_of(&self, i: usize) -> i32 {
        self.min_decade + i as i32
    }

    /// Total non-zero rates recorded.
    pub fn count_nonzero(&self) -> u64 {
        self.samples.len() as u64
    }

    /// Count of zero rates recorded.
    pub fn count_zero(&self) -> u64 {
        self.zeros
    }

    /// The spread between the largest and smallest recorded non-zero rate,
    /// in decades (the paper's "orders of magnitude").
    pub fn spread_decades(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for &s in &self.samples {
            min = min.min(s);
            max = max.max(s);
        }
        (max / min).log10()
    }

    /// The `q`-quantile (0..=1) of non-zero rates, or `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        Some(sorted[idx])
    }

    /// Renders an ASCII row per decade, for experiment reports.
    pub fn render(&self) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let bar = "#".repeat((c * 40 / max) as usize);
            out.push_str(&format!("1e{:<4} | {:>6} {}\n", self.decade_of(i), c, bar));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_decade() {
        let mut h = LogDecadeHistogram::new(-9, -2);
        h.record(1e-9);
        h.record(5e-9);
        h.record(1e-5);
        h.record(9.9e-3);
        assert_eq!(h.counts(), &[2, 0, 0, 0, 1, 0, 1]);
        assert_eq!(h.decade_of(0), -9);
    }

    #[test]
    fn zeros_and_out_of_range() {
        let mut h = LogDecadeHistogram::new(-6, -3);
        h.record(0.0);
        h.record(-1.0);
        h.record(1e-9); // underflow
        h.record(0.5); // overflow
        assert_eq!(h.count_zero(), 2);
        assert_eq!(h.counts().iter().sum::<u64>(), 0);
        assert_eq!(h.count_nonzero(), 2);
    }

    #[test]
    fn spread_in_decades() {
        let mut h = LogDecadeHistogram::new(-9, 0);
        h.record(1e-8);
        h.record(1e-3);
        assert!((h.spread_decades() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles() {
        let mut h = LogDecadeHistogram::new(-9, 0);
        for e in 1..=9 {
            h.record(10f64.powi(-e));
        }
        assert_eq!(h.quantile(0.0), Some(1e-9));
        assert_eq!(h.quantile(1.0), Some(1e-1));
        let med = h.quantile(0.5).unwrap();
        assert!((med - 1e-5).abs() < 1e-12);
        assert_eq!(LogDecadeHistogram::new(-2, 0).quantile(0.5), None);
    }

    #[test]
    fn render_has_one_row_per_decade() {
        let mut h = LogDecadeHistogram::new(-4, -1);
        h.record(1e-2);
        let s = h.render();
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("1e-2"));
    }

    #[test]
    #[should_panic(expected = "empty decade range")]
    fn bad_range_panics() {
        LogDecadeHistogram::new(0, 0);
    }
}
