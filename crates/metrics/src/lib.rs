//! # mercurial-metrics
//!
//! "The right metrics" (§4 of *Cores that don't count*). The paper
//! struggles to define useful CEE metrics and names three candidates, each
//! with a challenge; this crate implements estimators for all of them plus
//! the measurement-cost machinery the section asks for:
//!
//! * **"The fraction of cores (or machines) that exhibit CEEs"** —
//!   [`incidence`]: proportion estimators with Wilson and Clopper–Pearson
//!   intervals, and coverage-adjusted variants (the paper's challenge:
//!   the raw fraction "depends on test coverage").
//! * **"Age until onset"** — [`onset`]: a Kaplan–Meier survival estimator
//!   over right-censored observations (the challenge: "this metric depends
//!   on how long you can wait").
//! * **"Rate and nature of application-visible corruptions"** — [`rates`]:
//!   log-decade histograms summarizing corruption-rate distributions that
//!   "vary by many orders of magnitude", and symptom-class tallies.
//! * **Measurement cost** — [`cost`]: detection probability as a function
//!   of test cycles, the test budget needed for a target confidence, and a
//!   sequential stopping rule ("quantifying their values in practice is
//!   also difficult and expensive"); [`sprt`] adds Wald's sequential
//!   probability ratio test, the optimal accept/indict rule for a
//!   per-operation defect.
//! * [`series`] — normalized time series, the form Figure 1 reports
//!   ("normalized to an arbitrary baseline");
//! * [`epoch`] — per-epoch capacity / residual-corruption / active-core
//!   telemetry for the closed-loop pipeline driver.
#![warn(missing_docs)]

pub mod cost;
pub mod epoch;
pub mod histo;
pub mod incidence;
pub mod onset;
pub mod rates;
pub mod series;
pub mod sprt;

pub use epoch::{ClassPoint, EpochPoint, EpochSeries};
pub use histo::{log_histogram, nearest_rank, percentiles, percentiles_of, Percentiles};
pub use incidence::{clopper_pearson, wilson_interval, IncidenceEstimate};
pub use onset::{KaplanMeier, Observation};
pub use rates::LogDecadeHistogram;
pub use series::{MonthlySeries, SeriesPoint};
pub use sprt::{Sprt, SprtDecision};
