//! Normalized time series — the shape of the paper's Figure 1.
//!
//! Figure 1 plots "reported CEE rates (normalized)" per machine over time,
//! one series for user reports and one for the automatic detector, with
//! rates "normalized to an arbitrary baseline" (the absolute rates are
//! confidential). [`MonthlySeries`] accumulates events into monthly buckets
//! and normalizes the same way.

use serde::{Deserialize, Serialize};

/// One point of a rendered series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Month index from the start of the observation window.
    pub month: u32,
    /// Normalized rate (events per machine, scaled to the baseline).
    pub value: f64,
}

/// Events accumulated into monthly buckets over a machine population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonthlySeries {
    name: String,
    months: u32,
    counts: Vec<u64>,
    machines: u64,
}

impl MonthlySeries {
    /// Creates an empty series over `months` buckets and a population of
    /// `machines`.
    ///
    /// # Panics
    ///
    /// Panics if `months == 0` or `machines == 0`.
    pub fn new(name: impl Into<String>, months: u32, machines: u64) -> MonthlySeries {
        assert!(months > 0, "need at least one month");
        assert!(machines > 0, "need at least one machine");
        MonthlySeries {
            name: name.into(),
            months,
            counts: vec![0; months as usize],
            machines,
        }
    }

    /// The series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of months.
    pub fn months(&self) -> u32 {
        self.months
    }

    /// Records `n` events in the month containing `hour` (hour 0 = start
    /// of the window; months are 730-hour buckets). Events past the window
    /// are dropped.
    pub fn record_at_hour(&mut self, hour: f64, n: u64) {
        if hour < 0.0 {
            return;
        }
        let month = (hour / 730.0) as u32;
        if month < self.months {
            self.counts[month as usize] += n;
        }
    }

    /// Records `n` events directly into a month bucket.
    pub fn record_in_month(&mut self, month: u32, n: u64) {
        if month < self.months {
            self.counts[month as usize] += n;
        }
    }

    /// Raw monthly counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Events per machine per month (unnormalized rate).
    pub fn rate_per_machine(&self) -> Vec<f64> {
        self.counts
            .iter()
            .map(|&c| c as f64 / self.machines as f64)
            .collect()
    }

    /// The series normalized so that `baseline` maps to 1.0 — the paper's
    /// "normalized to an arbitrary baseline". Pass e.g. the first non-zero
    /// monthly rate of the reference series.
    ///
    /// # Panics
    ///
    /// Panics unless `baseline` is positive and finite.
    pub fn normalized(&self, baseline: f64) -> Vec<SeriesPoint> {
        assert!(
            baseline > 0.0 && baseline.is_finite(),
            "baseline must be positive and finite"
        );
        self.rate_per_machine()
            .iter()
            .enumerate()
            .map(|(m, &r)| SeriesPoint {
                month: m as u32,
                value: r / baseline,
            })
            .collect()
    }

    /// The first non-zero per-machine monthly rate, the conventional
    /// normalization baseline.
    pub fn first_nonzero_rate(&self) -> Option<f64> {
        self.rate_per_machine().into_iter().find(|&r| r > 0.0)
    }

    /// Least-squares slope of the normalized series (per month). Positive
    /// means the reported rate is rising — Fig. 1's "gradually increasing".
    pub fn trend_slope(&self, baseline: f64) -> f64 {
        let pts = self.normalized(baseline);
        let n = pts.len() as f64;
        if pts.len() < 2 {
            return 0.0;
        }
        let mean_x = pts.iter().map(|p| p.month as f64).sum::<f64>() / n;
        let mean_y = pts.iter().map(|p| p.value).sum::<f64>() / n;
        let mut num = 0.0;
        let mut den = 0.0;
        for p in &pts {
            let dx = p.month as f64 - mean_x;
            num += dx * (p.value - mean_y);
            den += dx * dx;
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Renders an ASCII chart of the normalized series.
    pub fn render(&self, baseline: f64, width: usize) -> String {
        let pts = self.normalized(baseline);
        let max = pts
            .iter()
            .map(|p| p.value)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let mut out = format!("{} (normalized, peak = {:.2})\n", self.name, max);
        for p in &pts {
            let bar = "█".repeat(((p.value / max) * width as f64).round() as usize);
            out.push_str(&format!("m{:>3} {:>7.3} |{}\n", p.month, p.value, bar));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hours_land_in_months() {
        let mut s = MonthlySeries::new("auto", 12, 100);
        s.record_at_hour(0.0, 1);
        s.record_at_hour(729.9, 1);
        s.record_at_hour(730.0, 1);
        s.record_at_hour(730.0 * 11.5, 2);
        s.record_at_hour(730.0 * 12.5, 9); // beyond window: dropped
        assert_eq!(s.counts()[0], 2);
        assert_eq!(s.counts()[1], 1);
        assert_eq!(s.counts()[11], 2);
        assert_eq!(s.counts().iter().sum::<u64>(), 5);
    }

    #[test]
    fn normalization_maps_baseline_to_one() {
        let mut s = MonthlySeries::new("user", 3, 1000);
        s.record_in_month(0, 10);
        s.record_in_month(1, 20);
        s.record_in_month(2, 30);
        let base = s.first_nonzero_rate().unwrap();
        let pts = s.normalized(base);
        assert!((pts[0].value - 1.0).abs() < 1e-12);
        assert!((pts[1].value - 2.0).abs() < 1e-12);
        assert!((pts[2].value - 3.0).abs() < 1e-12);
    }

    #[test]
    fn trend_slope_detects_increase() {
        let mut rising = MonthlySeries::new("auto", 10, 100);
        for m in 0..10 {
            rising.record_in_month(m, 5 + 2 * m as u64);
        }
        let base = rising.first_nonzero_rate().unwrap();
        assert!(rising.trend_slope(base) > 0.0);

        let mut flat = MonthlySeries::new("user", 10, 100);
        for m in 0..10 {
            flat.record_in_month(m, 7);
        }
        let base = flat.first_nonzero_rate().unwrap();
        assert!(flat.trend_slope(base).abs() < 1e-9);
    }

    #[test]
    fn render_row_per_month() {
        let mut s = MonthlySeries::new("auto", 4, 10);
        s.record_in_month(2, 5);
        let chart = s.render(0.1, 20);
        assert_eq!(chart.lines().count(), 5); // header + 4 months
    }

    #[test]
    fn negative_hours_ignored() {
        let mut s = MonthlySeries::new("x", 2, 1);
        s.record_at_hour(-5.0, 3);
        assert_eq!(s.counts().iter().sum::<u64>(), 0);
    }

    #[test]
    #[should_panic(expected = "baseline")]
    fn zero_baseline_panics() {
        MonthlySeries::new("x", 2, 1).normalized(0.0);
    }
}
