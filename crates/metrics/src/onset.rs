//! Age-until-onset: Kaplan–Meier survival analysis over censored cores.
//!
//! §4: "Age until onset. Challenge: if many CEEs stay latent until chips
//! have been in use for several years, this metric depends on how long you
//! can wait, and requires continual screening over a machine's lifetime."
//! Kaplan–Meier is the standard answer: cores whose defects have not (yet)
//! manifested are *right-censored* at their current age rather than
//! discarded.

use serde::{Deserialize, Serialize};

/// One core's contribution to the onset study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Age in hours at which the event (CEE onset) occurred, or at which
    /// observation stopped.
    pub age_hours: f64,
    /// `true` if onset was observed at `age_hours`; `false` if the core
    /// was still defect-free when observation ended (censored).
    pub event: bool,
}

impl Observation {
    /// An observed onset.
    pub fn onset(age_hours: f64) -> Observation {
        Observation {
            age_hours,
            event: true,
        }
    }

    /// A censored (still healthy / still latent) observation.
    pub fn censored(age_hours: f64) -> Observation {
        Observation {
            age_hours,
            event: false,
        }
    }
}

/// A step in the estimated survival curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurvivalStep {
    /// Event age (hours).
    pub age_hours: f64,
    /// S(t): probability of remaining onset-free past this age.
    pub survival: f64,
    /// Cores still under observation just before this age.
    pub at_risk: u64,
    /// Onsets at this age.
    pub events: u64,
}

/// The Kaplan–Meier product-limit estimator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KaplanMeier {
    steps: Vec<SurvivalStep>,
    n: usize,
}

impl KaplanMeier {
    /// Fits the estimator to a set of observations.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty or contains a negative or
    /// non-finite age.
    pub fn fit(observations: &[Observation]) -> KaplanMeier {
        assert!(!observations.is_empty(), "need at least one observation");
        for o in observations {
            assert!(
                o.age_hours.is_finite() && o.age_hours >= 0.0,
                "ages must be finite and non-negative"
            );
        }
        let mut obs = observations.to_vec();
        obs.sort_by(|a, b| a.age_hours.partial_cmp(&b.age_hours).expect("finite ages"));
        let mut steps = Vec::new();
        let mut survival = 1.0;
        let mut i = 0;
        let n = obs.len();
        let mut at_risk = n as u64;
        while i < n {
            let t = obs[i].age_hours;
            let mut events = 0u64;
            let mut leaving = 0u64;
            while i < n && obs[i].age_hours == t {
                if obs[i].event {
                    events += 1;
                }
                leaving += 1;
                i += 1;
            }
            if events > 0 {
                survival *= 1.0 - events as f64 / at_risk as f64;
                steps.push(SurvivalStep {
                    age_hours: t,
                    survival,
                    at_risk,
                    events,
                });
            }
            at_risk -= leaving;
        }
        KaplanMeier { steps, n }
    }

    /// The survival-curve steps (only ages where onsets occurred).
    pub fn steps(&self) -> &[SurvivalStep] {
        &self.steps
    }

    /// Number of observations the curve was fit to.
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// S(t): estimated probability of remaining onset-free past age `t`.
    pub fn survival_at(&self, age_hours: f64) -> f64 {
        let mut s = 1.0;
        for step in &self.steps {
            if step.age_hours <= age_hours {
                s = step.survival;
            } else {
                break;
            }
        }
        s
    }

    /// Median onset age, if the curve drops to 0.5 within the observed
    /// window; `None` means more than half the population outlived the
    /// study (the paper's "depends on how long you can wait").
    pub fn median_onset_hours(&self) -> Option<f64> {
        self.steps
            .iter()
            .find(|s| s.survival <= 0.5)
            .map(|s| s.age_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_censoring_matches_empirical_distribution() {
        // Onsets at 10, 20, 30, 40: survival steps 0.75, 0.5, 0.25, 0.
        let obs: Vec<Observation> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&t| Observation::onset(t))
            .collect();
        let km = KaplanMeier::fit(&obs);
        assert!((km.survival_at(15.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(25.0) - 0.5).abs() < 1e-12);
        assert!((km.survival_at(100.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median_onset_hours(), Some(20.0));
    }

    #[test]
    fn censoring_keeps_survival_higher() {
        // Same onsets, but two extra cores still healthy at age 50: the
        // estimated survival at 25h rises because the risk set is larger.
        let mut obs: Vec<Observation> = [10.0, 20.0, 30.0, 40.0]
            .iter()
            .map(|&t| Observation::onset(t))
            .collect();
        obs.push(Observation::censored(50.0));
        obs.push(Observation::censored(50.0));
        let km = KaplanMeier::fit(&obs);
        assert!(km.survival_at(25.0) > 0.5);
    }

    #[test]
    fn censored_before_event_shrinks_risk_set() {
        // A core censored at 15 leaves the risk set before the onset at 20.
        let obs = vec![
            Observation::onset(10.0),
            Observation::censored(15.0),
            Observation::onset(20.0),
        ];
        let km = KaplanMeier::fit(&obs);
        // After t=10: S = 2/3. After t=20 (risk set is 1): S = 0.
        assert!((km.survival_at(12.0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((km.survival_at(21.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn all_censored_is_flat_one() {
        let obs = vec![Observation::censored(100.0); 10];
        let km = KaplanMeier::fit(&obs);
        assert_eq!(km.steps().len(), 0);
        assert_eq!(km.survival_at(1e9), 1.0);
        assert_eq!(km.median_onset_hours(), None);
    }

    #[test]
    fn survival_is_monotone_nonincreasing() {
        let obs: Vec<Observation> = (0..50)
            .map(|i| {
                if i % 3 == 0 {
                    Observation::censored(i as f64 * 7.0 + 1.0)
                } else {
                    Observation::onset(i as f64 * 5.0 + 2.0)
                }
            })
            .collect();
        let km = KaplanMeier::fit(&obs);
        let mut prev = 1.0;
        for step in km.steps() {
            assert!(step.survival <= prev + 1e-12);
            prev = step.survival;
        }
    }

    #[test]
    fn tied_event_times_handled() {
        let obs = vec![
            Observation::onset(5.0),
            Observation::onset(5.0),
            Observation::onset(10.0),
            Observation::censored(12.0),
        ];
        let km = KaplanMeier::fit(&obs);
        assert!((km.survival_at(5.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one observation")]
    fn empty_input_panics() {
        KaplanMeier::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_age_panics() {
        KaplanMeier::fit(&[Observation::onset(f64::NAN)]);
    }
}
