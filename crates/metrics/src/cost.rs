//! Measurement cost models.
//!
//! §4: "Assuming metrics can be defined, quantifying their values in
//! practice is also difficult and expensive, because it requires running
//! tests on many machines, potentially for a long time, before one can get
//! high-confidence results — we don't even know yet how many or how long."
//! These functions make that tradeoff explicit for the simple (but already
//! instructive) model of a defect firing i.i.d. per operation.

/// Probability that a defect with per-operation firing rate `rate` is
/// caught at least once in `ops` test operations.
pub fn detection_probability(rate: f64, ops: u64) -> f64 {
    if rate <= 0.0 {
        return 0.0;
    }
    if rate >= 1.0 {
        return if ops == 0 { 0.0 } else { 1.0 };
    }
    1.0 - (1.0 - rate).powf(ops as f64)
}

/// Test operations needed to catch a defect of rate `rate` with
/// probability `confidence`.
///
/// # Panics
///
/// Panics unless `0 < rate <= 1` and `0 < confidence < 1`.
pub fn ops_for_confidence(rate: f64, confidence: f64) -> u64 {
    assert!(rate > 0.0 && rate <= 1.0, "rate must be in (0, 1]");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if rate >= 1.0 {
        return 1;
    }
    ((1.0 - confidence).ln() / (1.0 - rate).ln()).ceil() as u64
}

/// The smallest per-operation rate detectable with `confidence` inside a
/// budget of `ops` operations — the *sensitivity floor* of a screening
/// policy. Defects rarer than this are the residual risk the fleet keeps
/// carrying.
pub fn sensitivity_floor(ops: u64, confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0, 1)"
    );
    if ops == 0 {
        return 1.0;
    }
    1.0 - (1.0 - confidence).powf(1.0 / ops as f64)
}

/// A sequential screening stopping rule: keep testing until either a
/// failure is seen (core indicted) or `clean_ops_target` clean operations
/// accumulate (core exonerated *at this sensitivity*).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialScreen {
    /// Clean operations required to stop and exonerate.
    pub clean_ops_target: u64,
    clean_so_far: u64,
    failed: bool,
}

/// Decision state of a [`SequentialScreen`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScreenDecision {
    /// Keep testing.
    Continue,
    /// Defect observed: the core is indicted.
    Indict,
    /// Enough clean evidence at the configured sensitivity: stop.
    Exonerate,
}

impl SequentialScreen {
    /// Builds a rule that exonerates after enough clean operations to rule
    /// out (at `confidence`) any defect with rate >= `min_rate`.
    pub fn for_sensitivity(min_rate: f64, confidence: f64) -> SequentialScreen {
        SequentialScreen {
            clean_ops_target: ops_for_confidence(min_rate, confidence),
            clean_so_far: 0,
            failed: false,
        }
    }

    /// Feeds a batch of `ops` operations, of which `failures` miscomputed.
    pub fn observe(&mut self, ops: u64, failures: u64) -> ScreenDecision {
        if failures > 0 {
            self.failed = true;
        }
        if self.failed {
            return ScreenDecision::Indict;
        }
        self.clean_so_far += ops;
        if self.clean_so_far >= self.clean_ops_target {
            ScreenDecision::Exonerate
        } else {
            ScreenDecision::Continue
        }
    }

    /// Clean operations accumulated so far.
    pub fn clean_ops(&self) -> u64 {
        self.clean_so_far
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_probability_shapes() {
        assert_eq!(detection_probability(0.0, 1_000_000), 0.0);
        assert_eq!(detection_probability(1.0, 0), 0.0);
        assert_eq!(detection_probability(1.0, 1), 1.0);
        let p = detection_probability(1e-6, 1_000_000);
        assert!((p - 0.632).abs() < 0.01, "p = {p}");
    }

    #[test]
    fn ops_for_confidence_inverts_detection() {
        for rate in [1e-3, 1e-5, 1e-7] {
            let ops = ops_for_confidence(rate, 0.99);
            let p = detection_probability(rate, ops);
            assert!(p >= 0.99, "rate {rate}: p = {p}");
            let p_short = detection_probability(rate, ops / 2);
            assert!(p_short < 0.99);
        }
    }

    #[test]
    fn rare_defects_are_brutally_expensive() {
        // The §4 lament, quantified: each decade of rarity costs a decade
        // of test operations.
        let a = ops_for_confidence(1e-4, 0.95);
        let b = ops_for_confidence(1e-7, 0.95);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 1000.0).abs() / 1000.0 < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn sensitivity_floor_roundtrips() {
        let ops = 1_000_000;
        let floor = sensitivity_floor(ops, 0.95);
        let p = detection_probability(floor, ops);
        assert!((p - 0.95).abs() < 1e-9);
        assert_eq!(sensitivity_floor(0, 0.95), 1.0);
    }

    #[test]
    fn sequential_screen_exonerates_after_target() {
        let mut s = SequentialScreen::for_sensitivity(1e-3, 0.99);
        let target = s.clean_ops_target;
        assert_eq!(s.observe(target / 2, 0), ScreenDecision::Continue);
        assert_eq!(s.observe(target, 0), ScreenDecision::Exonerate);
    }

    #[test]
    fn sequential_screen_indicts_immediately_and_stays_indicted() {
        let mut s = SequentialScreen::for_sensitivity(1e-3, 0.99);
        assert_eq!(s.observe(10, 1), ScreenDecision::Indict);
        assert_eq!(s.observe(1_000_000_000, 0), ScreenDecision::Indict);
    }

    #[test]
    #[should_panic(expected = "rate")]
    fn bad_rate_panics() {
        ops_for_confidence(0.0, 0.9);
    }
}
