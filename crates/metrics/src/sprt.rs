//! Wald's sequential probability ratio test for screening decisions.
//!
//! §4 asks for "a model for reasoning about acceptable rates of CEEs for
//! different classes of software, and a model for trading off the
//! inaccuracies in our measurements of these rates against the costs of
//! measurement". The SPRT is the optimal such model for a per-operation
//! Bernoulli defect: it distinguishes
//!
//! * H₀ — the core's corruption rate is at most `acceptable_rate` (keep
//!   it in service), from
//! * H₁ — the rate is at least `defective_rate` (quarantine it),
//!
//! with caller-chosen error probabilities, using on average *fewer test
//! operations than any fixed-size test* with the same error bounds.

use serde::{Deserialize, Serialize};

/// The test's running decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SprtDecision {
    /// Evidence is still inconclusive: keep testing.
    Continue,
    /// Accept H₀: the core behaves within the acceptable rate.
    AcceptHealthy,
    /// Accept H₁: the core is defective at or beyond the defective rate.
    AcceptDefective,
}

/// A running sequential probability ratio test over per-operation
/// pass/fail observations.
///
/// # Examples
///
/// ```
/// use mercurial_metrics::sprt::{Sprt, SprtDecision};
///
/// // Tolerate 1e-7 per op; call 1e-4 defective; 1% error both ways.
/// let mut test = Sprt::new(1e-7, 1e-4, 0.01, 0.01);
/// // A thousand clean operations are not yet conclusive…
/// assert_eq!(test.observe(1_000, 0), SprtDecision::Continue);
/// // …but two corrupt results almost immediately are.
/// assert_eq!(test.observe(1_000, 2), SprtDecision::AcceptDefective);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sprt {
    acceptable_rate: f64,
    defective_rate: f64,
    /// log LR increment per clean operation (negative).
    step_clean: f64,
    /// log LR increment per corrupt operation (positive).
    step_corrupt: f64,
    /// Lower stopping bound: log(β / (1 − α)).
    lower: f64,
    /// Upper stopping bound: log((1 − β) / α).
    upper: f64,
    /// Running log likelihood ratio.
    llr: f64,
    /// Operations consumed so far.
    ops: u64,
}

impl Sprt {
    /// Builds a test separating `acceptable_rate` from `defective_rate`
    /// with false-quarantine probability `alpha` and missed-defect
    /// probability `beta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < acceptable_rate < defective_rate < 1` and the
    /// error probabilities are in (0, 1).
    pub fn new(acceptable_rate: f64, defective_rate: f64, alpha: f64, beta: f64) -> Sprt {
        assert!(
            0.0 < acceptable_rate && acceptable_rate < defective_rate && defective_rate < 1.0,
            "need 0 < acceptable < defective < 1"
        );
        assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0, 1)");
        assert!(beta > 0.0 && beta < 1.0, "beta in (0, 1)");
        let (p0, p1) = (acceptable_rate, defective_rate);
        Sprt {
            acceptable_rate: p0,
            defective_rate: p1,
            step_clean: ((1.0 - p1) / (1.0 - p0)).ln(),
            step_corrupt: (p1 / p0).ln(),
            lower: (beta / (1.0 - alpha)).ln(),
            upper: ((1.0 - beta) / alpha).ln(),
            llr: 0.0,
            ops: 0,
        }
    }

    /// Feeds a batch of `ops` operations of which `failures` miscomputed,
    /// returning the updated decision.
    ///
    /// # Panics
    ///
    /// Panics if `failures > ops`.
    pub fn observe(&mut self, ops: u64, failures: u64) -> SprtDecision {
        assert!(failures <= ops, "more failures than operations");
        self.ops += ops;
        self.llr += (ops - failures) as f64 * self.step_clean + failures as f64 * self.step_corrupt;
        self.decision()
    }

    /// The current decision without new evidence.
    pub fn decision(&self) -> SprtDecision {
        if self.llr <= self.lower {
            SprtDecision::AcceptHealthy
        } else if self.llr >= self.upper {
            SprtDecision::AcceptDefective
        } else {
            SprtDecision::Continue
        }
    }

    /// Operations consumed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// The expected number of clean operations needed to exonerate a truly
    /// healthy core (Wald's approximation for a zero-failure stream).
    pub fn expected_ops_to_exonerate(&self) -> u64 {
        (self.lower / self.step_clean).ceil() as u64
    }

    /// The hypotheses being separated: `(acceptable, defective)`.
    pub fn rates(&self) -> (f64, f64) {
        (self.acceptable_rate, self.defective_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn standard() -> Sprt {
        Sprt::new(1e-7, 1e-4, 0.01, 0.01)
    }

    #[test]
    fn clean_stream_eventually_exonerates() {
        let mut t = standard();
        let budget = t.expected_ops_to_exonerate();
        assert_eq!(t.observe(budget + 1, 0), SprtDecision::AcceptHealthy);
    }

    #[test]
    fn corrupt_results_indict_quickly() {
        let mut t = standard();
        // Two failures carry log(1e-4/1e-7) ≈ 6.9 each; the upper bound is
        // log(0.99/0.01) ≈ 4.6 — one failure nearly decides, two do.
        assert_eq!(t.observe(100, 2), SprtDecision::AcceptDefective);
    }

    #[test]
    fn sequential_test_is_cheaper_than_fixed_size() {
        // A fixed-size 95%-confidence test against 1e-4 needs ~30k ops
        // (see `cost::ops_for_confidence`); the SPRT exonerates a clean
        // core in far fewer when the acceptable rate is close.
        let t = Sprt::new(1e-5, 1e-4, 0.05, 0.05);
        let fixed = crate::cost::ops_for_confidence(1e-4, 0.95);
        assert!(
            t.expected_ops_to_exonerate() < fixed * 2,
            "sequential {} vs fixed {}",
            t.expected_ops_to_exonerate(),
            fixed
        );
    }

    #[test]
    fn empirical_error_rates_respect_bounds() {
        use mercurial_fault_free_rng::uniform;
        // Simulate many truly-healthy and truly-defective cores; measured
        // error rates must be near the configured 5%.
        let alpha = 0.05;
        let beta = 0.05;
        let mut false_indict = 0;
        let mut missed = 0;
        let trials = 400;
        for trial in 0..trials {
            // Healthy core at exactly the acceptable rate.
            let mut t = Sprt::new(1e-4, 1e-3, alpha, beta);
            let mut step = 0u64;
            loop {
                let fail = uniform(1, trial, step) < 1e-4;
                match t.observe(1, fail as u64) {
                    SprtDecision::Continue => step += 1,
                    SprtDecision::AcceptHealthy => break,
                    SprtDecision::AcceptDefective => {
                        false_indict += 1;
                        break;
                    }
                }
            }
            // Defective core at exactly the defective rate.
            let mut t = Sprt::new(1e-4, 1e-3, alpha, beta);
            let mut step = 0u64;
            loop {
                let fail = uniform(2, trial, step) < 1e-3;
                match t.observe(1, fail as u64) {
                    SprtDecision::Continue => step += 1,
                    SprtDecision::AcceptDefective => break,
                    SprtDecision::AcceptHealthy => {
                        missed += 1;
                        break;
                    }
                }
            }
        }
        let fi = false_indict as f64 / trials as f64;
        let ms = missed as f64 / trials as f64;
        assert!(fi < 2.5 * alpha, "false indictment rate {fi}");
        assert!(ms < 2.5 * beta, "missed defect rate {ms}");
    }

    #[test]
    #[should_panic(expected = "acceptable < defective")]
    fn inverted_rates_panic() {
        let _ = Sprt::new(1e-3, 1e-5, 0.05, 0.05);
    }

    #[test]
    #[should_panic(expected = "more failures than operations")]
    fn impossible_batch_panics() {
        standard().observe(1, 2);
    }

    /// A tiny deterministic uniform source so this std-only crate needs no
    /// RNG dependency in tests.
    mod mercurial_fault_free_rng {
        pub fn uniform(stream: u64, trial: u64, step: u64) -> f64 {
            let mut z = stream
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(trial.wrapping_mul(0xbf58_476d_1ce4_e5b9))
                .wrapping_add(step.wrapping_mul(0x94d0_49bb_1331_11eb));
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}
