//! Incidence estimation: "the fraction of cores (or machines) that exhibit
//! CEEs" (§4).
//!
//! The paper's headline number is "on the order of a few mercurial cores
//! per several thousand machines". Estimating such a small proportion
//! honestly needs interval estimates (Wilson, Clopper–Pearson) and a
//! correction for imperfect test coverage — the §4 challenge that the raw
//! fraction "depends on test coverage … and how many cycles [are] devoted
//! to testing".

use serde::{Deserialize, Serialize};

/// A point estimate with a confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncidenceEstimate {
    /// Observed positives.
    pub positives: u64,
    /// Trials (cores or machines screened).
    pub trials: u64,
    /// Point estimate (positives / trials).
    pub rate: f64,
    /// Interval lower bound.
    pub lo: f64,
    /// Interval upper bound.
    pub hi: f64,
}

impl IncidenceEstimate {
    /// Incidence per thousand units, the paper's natural reporting scale.
    pub fn per_thousand(&self) -> f64 {
        self.rate * 1000.0
    }
}

/// The Wilson score interval for a binomial proportion.
///
/// `z` is the standard-normal quantile (1.96 for 95%). Well-behaved even
/// when `positives` is 0 or tiny — exactly the mercurial-core regime.
///
/// # Panics
///
/// Panics if `trials == 0` or `positives > trials`.
pub fn wilson_interval(positives: u64, trials: u64, z: f64) -> IncidenceEstimate {
    assert!(trials > 0, "need at least one trial");
    assert!(positives <= trials, "more positives than trials");
    let n = trials as f64;
    let p = positives as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    // At the boundaries the exact bounds are 0 and 1; floating-point
    // cancellation in `center - half` would otherwise leave an epsilon
    // above zero, violating `lo <= rate` for zero positives.
    let lo = if positives == 0 {
        0.0
    } else {
        (center - half).max(0.0)
    };
    let hi = if positives == trials {
        1.0
    } else {
        (center + half).min(1.0)
    };
    IncidenceEstimate {
        positives,
        trials,
        rate: p,
        lo,
        hi,
    }
}

/// The Clopper–Pearson ("exact") interval at confidence `1 - alpha`,
/// computed by bisection on the binomial CDF (no special functions
/// needed at fleet-sized n).
///
/// # Panics
///
/// Panics if `trials == 0`, `positives > trials`, or `alpha` is not in
/// (0, 1).
pub fn clopper_pearson(positives: u64, trials: u64, alpha: f64) -> IncidenceEstimate {
    assert!(trials > 0, "need at least one trial");
    assert!(positives <= trials, "more positives than trials");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    let k = positives;
    let n = trials;
    let p_hat = k as f64 / n as f64;

    // P[X >= k] under Binomial(n, p), via the complement CDF with each
    // PMF term evaluated independently in log space (terms that underflow
    // are individually negligible, so the sum stays accurate).
    fn tail_ge(k: u64, n: u64, p: f64) -> f64 {
        if k == 0 {
            return 1.0;
        }
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        let ln_p = p.ln();
        let ln_q = (1.0 - p).ln();
        let mut ln_c = 0.0; // ln C(n, i), built incrementally
        let mut cdf = 0.0; // P[X <= k-1]
        for i in 0..k {
            if i > 0 {
                ln_c += ((n - i + 1) as f64).ln() - (i as f64).ln();
            }
            cdf += (ln_c + i as f64 * ln_p + (n - i) as f64 * ln_q).exp();
        }
        (1.0 - cdf).clamp(0.0, 1.0)
    }

    let bisect = |mut lo: f64, mut hi: f64, f: &dyn Fn(f64) -> f64, target: f64| -> f64 {
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if f(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    };

    // Lower bound: largest p with P[X >= k | p] <= alpha/2 (0 when k = 0).
    let lo = if k == 0 {
        0.0
    } else {
        bisect(0.0, p_hat.max(1e-12), &|p| tail_ge(k, n, p), alpha / 2.0)
    };
    // Upper bound: smallest p with P[X <= k | p] <= alpha/2, i.e.
    // P[X >= k+1 | p] >= 1 - alpha/2 (1 when k = n).
    let hi = if k == n {
        1.0
    } else {
        bisect(p_hat, 1.0, &|p| tail_ge(k + 1, n, p), 1.0 - alpha / 2.0)
    };
    IncidenceEstimate {
        positives,
        trials,
        rate: p_hat,
        lo,
        hi,
    }
}

/// Corrects a detected-incidence estimate for imperfect screening
/// sensitivity: if screening catches a mercurial core with probability
/// `sensitivity`, the true incidence is roughly `detected / sensitivity`.
///
/// This is the §4 point that the raw fraction "depends on test coverage
/// (especially in the face of 'zero-day' CEEs)".
///
/// # Panics
///
/// Panics unless `0 < sensitivity <= 1`.
pub fn coverage_adjusted(estimate: IncidenceEstimate, sensitivity: f64) -> IncidenceEstimate {
    assert!(
        sensitivity > 0.0 && sensitivity <= 1.0,
        "sensitivity must be in (0, 1]"
    );
    IncidenceEstimate {
        rate: (estimate.rate / sensitivity).min(1.0),
        lo: (estimate.lo / sensitivity).min(1.0),
        hi: (estimate.hi / sensitivity).min(1.0),
        ..estimate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_basic_properties() {
        let e = wilson_interval(5, 1000, 1.96);
        assert!((e.rate - 0.005).abs() < 1e-12);
        assert!(e.lo < e.rate && e.rate < e.hi);
        assert!(e.lo > 0.0);
        assert!(e.hi < 0.02);
    }

    #[test]
    fn wilson_zero_positives_has_zero_free_lower_bound() {
        let e = wilson_interval(0, 500, 1.96);
        assert_eq!(e.rate, 0.0);
        assert_eq!(e.lo, 0.0);
        assert!(
            e.hi > 0.0,
            "upper bound must acknowledge undetected defects"
        );
    }

    #[test]
    fn wilson_narrows_with_more_trials() {
        let small = wilson_interval(5, 1000, 1.96);
        let large = wilson_interval(50, 10_000, 1.96);
        assert!(large.hi - large.lo < small.hi - small.lo);
    }

    #[test]
    fn clopper_pearson_contains_point_estimate() {
        let e = clopper_pearson(3, 2000, 0.05);
        assert!(e.lo < e.rate && e.rate < e.hi);
        // Known approximate values: 3/2000 with 95% CP is about
        // [0.00031, 0.0044].
        assert!((e.lo - 0.00031).abs() < 5e-5, "lo = {}", e.lo);
        assert!((e.hi - 0.00438).abs() < 5e-4, "hi = {}", e.hi);
    }

    #[test]
    fn clopper_pearson_zero_and_full() {
        let zero = clopper_pearson(0, 100, 0.05);
        assert_eq!(zero.lo, 0.0);
        // Rule of three: upper ≈ 3/n.
        assert!((zero.hi - 0.036).abs() < 0.01, "hi = {}", zero.hi);
        let full = clopper_pearson(100, 100, 0.05);
        assert_eq!(full.hi, 1.0);
        assert!(full.lo > 0.9);
    }

    #[test]
    fn cp_is_wider_than_wilson() {
        let cp = clopper_pearson(4, 5000, 0.05);
        let w = wilson_interval(4, 5000, 1.96);
        assert!(cp.hi - cp.lo >= w.hi - w.lo);
    }

    #[test]
    fn per_thousand_scale() {
        let e = wilson_interval(4, 2000, 1.96);
        assert!((e.per_thousand() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn coverage_adjustment_inflates() {
        let e = wilson_interval(5, 10_000, 1.96);
        let adj = coverage_adjusted(e, 0.5);
        assert!((adj.rate - 2.0 * e.rate).abs() < 1e-12);
        assert!(adj.hi > e.hi);
    }

    #[test]
    #[should_panic(expected = "sensitivity")]
    fn bad_sensitivity_panics() {
        coverage_adjusted(wilson_interval(1, 10, 1.96), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        wilson_interval(0, 0, 1.96);
    }
}
