//! Per-epoch time series for the closed-loop pipeline.
//!
//! The open-loop pipeline only reports end-of-window aggregates; the
//! closed-loop driver (§6.1 operationally: detect → quarantine →
//! reschedule, every epoch) needs to show *when* capacity was surrendered
//! and *when* corruption stopped. [`EpochSeries`] records one point per
//! simulation epoch: schedulable capacity (with and without safe-task
//! recovery), the corruption drawn during the epoch, and how many
//! ground-truth mercurial cores were still in service.

use serde::{Deserialize, Serialize};

/// One epoch's worth of closed-loop telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochPoint {
    /// Epoch index from the start of the window.
    pub epoch: u32,
    /// Fleet hour at the start of the epoch.
    pub hour: f64,
    /// Schedulable fraction of nominal capacity (quarantined and
    /// confirmed cores removed).
    pub capacity: f64,
    /// Capacity counting the partial recovery from unit-aware safe-task
    /// placement on confirmed cores (§6.1). Always ≥ `capacity`.
    pub capacity_with_safetask: f64,
    /// Corruption events drawn during this epoch (residual corrupt-ops).
    pub corrupt_ops: u64,
    /// Ground-truth mercurial cores still deployed and in service at the
    /// start of the epoch.
    pub active_mercurial: u64,
}

/// One workload class's share of one epoch's telemetry. All counts are
/// integers so per-class sums are exact and order-independent — the same
/// totals at any shard fan-out.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassPoint {
    /// Corruption events attributed to this class during the epoch.
    pub corrupt_ops: u64,
    /// Corruptions caught (application checks plus the class's mitigation
    /// policy) during the epoch.
    pub caught: u64,
    /// User-visible reports escalated from this class during the epoch.
    pub user_reports: u64,
    /// Extra operations the class's mitigation policy executed this epoch
    /// (redundant executions plus compare/checksum steps).
    pub overhead_ops: u64,
}

/// A closed-loop run's per-epoch telemetry, in epoch order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochSeries {
    epoch_hours: f64,
    points: Vec<EpochPoint>,
    /// Workload class names, set once when per-class attribution is on.
    /// Empty for legacy runs: every rendered surface is then byte-for-byte
    /// what it was before classes existed.
    #[serde(default)]
    class_names: Vec<String>,
    /// One row per epoch, one [`ClassPoint`] per class (same order as
    /// `class_names`). Parallel to `points` when class attribution is on.
    #[serde(default)]
    class_points: Vec<Vec<ClassPoint>>,
}

impl EpochSeries {
    /// Creates an empty series with the given epoch length.
    ///
    /// # Panics
    ///
    /// Panics unless `epoch_hours` is positive and finite.
    pub fn new(epoch_hours: f64) -> EpochSeries {
        assert!(
            epoch_hours > 0.0 && epoch_hours.is_finite(),
            "epoch length must be positive and finite"
        );
        EpochSeries {
            epoch_hours,
            points: Vec::new(),
            class_names: Vec::new(),
            class_points: Vec::new(),
        }
    }

    /// Turn on per-class attribution: every subsequent epoch must push a
    /// matching [`push_classes`](EpochSeries::push_classes) row. Call
    /// before the first epoch.
    pub fn set_class_names(&mut self, names: Vec<String>) {
        self.class_names = names;
    }

    /// Workload class names (empty for legacy runs).
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Per-epoch per-class points: `class_points()[epoch][class]`.
    pub fn class_points(&self) -> &[Vec<ClassPoint>] {
        &self.class_points
    }

    /// Appends the per-class breakdown for the epoch just pushed.
    ///
    /// # Panics
    ///
    /// Panics if the row's width disagrees with the registered class
    /// names.
    pub fn push_classes(&mut self, row: Vec<ClassPoint>) {
        assert_eq!(
            row.len(),
            self.class_names.len(),
            "class row width must match registered class names"
        );
        self.class_points.push(row);
    }

    /// Total corruption attributed to one class over the window.
    pub fn class_total_corrupt_ops(&self, class: usize) -> u64 {
        self.class_points
            .iter()
            .filter_map(|row| row.get(class))
            .map(|c| c.corrupt_ops)
            .sum()
    }

    /// Total mitigation overhead operations one class paid over the
    /// window.
    pub fn class_total_overhead_ops(&self, class: usize) -> u64 {
        self.class_points
            .iter()
            .filter_map(|row| row.get(class))
            .map(|c| c.overhead_ops)
            .sum()
    }

    /// Appends the next epoch's point (epoch index and hour are derived
    /// from the current length).
    pub fn push(
        &mut self,
        capacity: f64,
        capacity_with_safetask: f64,
        corrupt_ops: u64,
        active_mercurial: u64,
    ) {
        let epoch = self.points.len() as u32;
        self.points.push(EpochPoint {
            epoch,
            hour: epoch as f64 * self.epoch_hours,
            capacity,
            capacity_with_safetask,
            corrupt_ops,
            active_mercurial,
        });
    }

    /// The epoch length in hours.
    pub fn epoch_hours(&self) -> f64 {
        self.epoch_hours
    }

    /// All points, in epoch order.
    pub fn points(&self) -> &[EpochPoint] {
        &self.points
    }

    /// Number of recorded epochs.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no epoch has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The lowest schedulable capacity over the window (the trough the
    /// capacity planner must provision for).
    pub fn min_capacity(&self) -> f64 {
        self.points.iter().map(|p| p.capacity).fold(1.0, f64::min)
    }

    /// Total corruption drawn over the window (the residual the closed
    /// loop is trying to shrink).
    pub fn total_corrupt_ops(&self) -> u64 {
        self.points.iter().map(|p| p.corrupt_ops).sum()
    }

    /// Corruption drawn at or after `hour` — the tail the loop failed to
    /// prevent once detection had a chance to act.
    pub fn corrupt_ops_from(&self, hour: f64) -> u64 {
        self.points
            .iter()
            .filter(|p| p.hour >= hour)
            .map(|p| p.corrupt_ops)
            .sum()
    }

    /// Emits `epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial` CSV.
    ///
    /// When per-class attribution is on, each class appends four more
    /// columns (`<class>.corrupt_ops,<class>.caught,<class>.user_reports,<class>.overhead_ops`);
    /// with no classes registered the output is byte-for-byte the legacy
    /// format.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial");
        for name in &self.class_names {
            out.push_str(&format!(
                ",{name}.corrupt_ops,{name}.caught,{name}.user_reports,{name}.overhead_ops"
            ));
        }
        out.push('\n');
        for (i, p) in self.points.iter().enumerate() {
            out.push_str(&format!(
                "{},{:.1},{:.8},{:.8},{},{}",
                p.epoch,
                p.hour,
                p.capacity,
                p.capacity_with_safetask,
                p.corrupt_ops,
                p.active_mercurial
            ));
            if !self.class_names.is_empty() {
                let empty = Vec::new();
                let row = self.class_points.get(i).unwrap_or(&empty);
                for c in 0..self.class_names.len() {
                    let cp = row.get(c).copied().unwrap_or_default();
                    out.push_str(&format!(
                        ",{},{},{},{}",
                        cp.corrupt_ops, cp.caught, cp.user_reports, cp.overhead_ops
                    ));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a fixed-width per-class summary table (whole-window totals
    /// per class), or an empty string when no classes are registered.
    pub fn render_class_table(&self) -> String {
        if self.class_names.is_empty() {
            return String::new();
        }
        let width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max("class".len());
        let mut out = format!(
            "{:<width$}  {:>12}  {:>12}  {:>12}  {:>14}\n",
            "class", "corrupt_ops", "caught", "user_reports", "overhead_ops"
        );
        for (c, name) in self.class_names.iter().enumerate() {
            let (mut caught, mut reports) = (0u64, 0u64);
            for row in &self.class_points {
                if let Some(cp) = row.get(c) {
                    caught += cp.caught;
                    reports += cp.user_reports;
                }
            }
            out.push_str(&format!(
                "{:<width$}  {:>12}  {:>12}  {:>12}  {:>14}\n",
                name,
                self.class_total_corrupt_ops(c),
                caught,
                reports,
                self.class_total_overhead_ops(c)
            ));
        }
        out
    }

    /// Renders an ASCII strip chart of capacity loss (1 − capacity, so a
    /// flat baseline means nothing was quarantined) and residual
    /// corruption, bucketed into at most `rows` rows.
    pub fn render(&self, rows: usize) -> String {
        if self.points.is_empty() {
            // Keep the summary header shape even with nothing recorded so
            // consumers that read the first line see the same format.
            return format!(
                "closed-loop epochs (capacity trough {:.4}%, residual corrupt-ops {})\n\
                 (no epochs recorded)\n",
                100.0 * self.min_capacity(),
                self.total_corrupt_ops()
            );
        }
        let rows = rows.max(1).min(self.points.len());
        let per_row = self.points.len().div_ceil(rows);
        let max_loss = self
            .points
            .iter()
            .map(|p| 1.0 - p.capacity)
            .fold(1e-12, f64::max);
        let mut out = format!(
            "closed-loop epochs (capacity trough {:.4}%, residual corrupt-ops {})\n",
            100.0 * self.min_capacity(),
            self.total_corrupt_ops()
        );
        for chunk in self.points.chunks(per_row) {
            let loss = chunk.iter().map(|p| 1.0 - p.capacity).fold(0.0, f64::max);
            let ops: u64 = chunk.iter().map(|p| p.corrupt_ops).sum();
            let active = chunk.last().expect("non-empty chunk").active_mercurial;
            let bar = "█".repeat(((loss / max_loss) * 30.0).round() as usize);
            out.push_str(&format!(
                "h{:>7.0} loss {:>8.5}% |{:<30}| ops {:>9}  active {}\n",
                chunk[0].hour,
                100.0 * loss,
                bar,
                ops,
                active
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> EpochSeries {
        let mut s = EpochSeries::new(73.0);
        s.push(1.0, 1.0, 50, 4);
        s.push(0.999, 0.9995, 30, 3);
        s.push(0.998, 0.999, 0, 0);
        s
    }

    #[test]
    fn push_derives_epoch_and_hour() {
        let s = series();
        assert_eq!(s.len(), 3);
        assert_eq!(s.points()[2].epoch, 2);
        assert!((s.points()[2].hour - 146.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates() {
        let s = series();
        assert!((s.min_capacity() - 0.998).abs() < 1e-12);
        assert_eq!(s.total_corrupt_ops(), 80);
        assert_eq!(s.corrupt_ops_from(73.0), 30);
        assert_eq!(s.corrupt_ops_from(1e9), 0);
    }

    #[test]
    fn csv_has_one_row_per_epoch() {
        let s = series();
        assert_eq!(s.to_csv().lines().count(), 4);
        assert!(s.to_csv().starts_with("epoch,hour,"));
    }

    #[test]
    fn render_buckets_to_requested_rows() {
        let mut s = EpochSeries::new(73.0);
        for i in 0..100 {
            s.push(1.0 - i as f64 * 1e-5, 1.0, i, 1);
        }
        let chart = s.render(10);
        assert_eq!(chart.lines().count(), 11); // header + 10 buckets
    }

    #[test]
    fn empty_series_renders_header_and_placeholder() {
        let s = EpochSeries::new(73.0);
        let chart = s.render(5);
        assert_eq!(
            chart,
            "closed-loop epochs (capacity trough 100.0000%, residual corrupt-ops 0)\n\
             (no epochs recorded)\n"
        );
        // The summary header line has the same shape as a populated render.
        assert!(chart.starts_with("closed-loop epochs (capacity trough"));
    }

    #[test]
    fn empty_series_aggregates_and_csv() {
        let s = EpochSeries::new(73.0);
        assert!(s.is_empty());
        assert_eq!(s.min_capacity(), 1.0, "trough of nothing is full capacity");
        assert_eq!(s.total_corrupt_ops(), 0);
        assert_eq!(
            s.to_csv(),
            "epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial\n"
        );
    }

    #[test]
    fn single_epoch_renders_one_bucket() {
        let mut s = EpochSeries::new(73.0);
        s.push(0.999, 1.0, 7, 2);
        // Any requested row count clamps to the single available epoch.
        for rows in [0, 1, 5] {
            let chart = s.render(rows);
            assert_eq!(chart.lines().count(), 2, "header + 1 bucket (rows={rows})");
            assert!(chart.contains("ops         7"));
        }
        assert_eq!(s.to_csv().lines().count(), 2);
        assert_eq!(
            s.to_csv().lines().nth(1).unwrap(),
            "0,0.0,0.99900000,1.00000000,7,2"
        );
    }

    #[test]
    fn render_zero_rows_clamps_to_one() {
        let s = series();
        let chart = s.render(0);
        assert_eq!(chart.lines().count(), 2, "all epochs collapse into 1 row");
        assert!(
            chart.contains("ops        80"),
            "bucket sums all corrupt-ops"
        );
    }

    #[test]
    fn safetask_capacity_at_least_base() {
        for p in series().points() {
            assert!(p.capacity_with_safetask >= p.capacity);
        }
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_hours_panics() {
        EpochSeries::new(0.0);
    }

    fn cp(corrupt_ops: u64, caught: u64, user_reports: u64, overhead_ops: u64) -> ClassPoint {
        ClassPoint {
            corrupt_ops,
            caught,
            user_reports,
            overhead_ops,
        }
    }

    #[test]
    fn class_csv_is_pinned_for_empty_series() {
        // Classes registered but no epochs: header carries the class
        // columns, nothing else.
        let mut s = EpochSeries::new(73.0);
        s.set_class_names(vec!["db".into(), "web".into()]);
        assert_eq!(
            s.to_csv(),
            "epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial,\
             db.corrupt_ops,db.caught,db.user_reports,db.overhead_ops,\
             web.corrupt_ops,web.caught,web.user_reports,web.overhead_ops\n"
        );
        // And with no classes at all the legacy header is untouched.
        assert_eq!(
            EpochSeries::new(73.0).to_csv(),
            "epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial\n"
        );
    }

    #[test]
    fn class_csv_is_pinned_for_single_epoch() {
        let mut s = EpochSeries::new(73.0);
        s.set_class_names(vec!["db".into()]);
        s.push(0.999, 1.0, 7, 2);
        s.push_classes(vec![cp(7, 3, 1, 4000)]);
        assert_eq!(
            s.to_csv().lines().nth(1).unwrap(),
            "0,0.0,0.99900000,1.00000000,7,2,7,3,1,4000"
        );
    }

    #[test]
    fn class_csv_is_pinned_for_many_classes() {
        let mut s = EpochSeries::new(73.0);
        s.set_class_names(vec!["a".into(), "b".into(), "c".into()]);
        s.push(1.0, 1.0, 6, 4);
        s.push_classes(vec![cp(1, 0, 0, 10), cp(2, 1, 0, 20), cp(3, 2, 1, 30)]);
        s.push(0.999, 1.0, 9, 4);
        s.push_classes(vec![cp(2, 1, 1, 10), cp(3, 2, 0, 20), cp(4, 3, 2, 30)]);
        let csv = s.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(
            lines[0],
            "epoch,hour,capacity,capacity_with_safetask,corrupt_ops,active_mercurial,\
             a.corrupt_ops,a.caught,a.user_reports,a.overhead_ops,\
             b.corrupt_ops,b.caught,b.user_reports,b.overhead_ops,\
             c.corrupt_ops,c.caught,c.user_reports,c.overhead_ops"
        );
        assert_eq!(
            lines[1],
            "0,0.0,1.00000000,1.00000000,6,4,1,0,0,10,2,1,0,20,3,2,1,30"
        );
        assert_eq!(
            lines[2],
            "1,73.0,0.99900000,1.00000000,9,4,2,1,1,10,3,2,0,20,4,3,2,30"
        );
        // Per-class totals are the column sums.
        assert_eq!(s.class_total_corrupt_ops(0), 3);
        assert_eq!(s.class_total_corrupt_ops(2), 7);
        assert_eq!(s.class_total_overhead_ops(1), 40);
        let table = s.render_class_table();
        assert!(table.starts_with("class"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn class_row_width_must_match_names() {
        let mut s = EpochSeries::new(73.0);
        s.set_class_names(vec!["a".into(), "b".into()]);
        s.push(1.0, 1.0, 0, 0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            s.push_classes(vec![cp(0, 0, 0, 0)])
        }));
        assert!(r.is_err(), "short class row must panic");
    }

    #[test]
    fn legacy_series_json_without_class_fields_still_parses() {
        let s = series();
        let mut v = s.to_value();
        if let serde::Value::Object(entries) = &mut v {
            entries.retain(|(k, _)| k != "class_names" && k != "class_points");
        }
        let back = EpochSeries::from_value(&v).expect("legacy series parses");
        assert_eq!(back, s);
        assert!(back.class_names().is_empty());
    }
}
