//! Property-based tests on the estimators' statistical invariants.

use mercurial_metrics::cost::{detection_probability, ops_for_confidence, sensitivity_floor};
use mercurial_metrics::incidence::{clopper_pearson, wilson_interval};
use mercurial_metrics::onset::{KaplanMeier, Observation};
use mercurial_metrics::rates::LogDecadeHistogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Wilson intervals always bracket the point estimate within [0, 1].
    #[test]
    fn wilson_brackets_estimate(k in 0u64..500, extra in 1u64..10_000) {
        let n = k + extra;
        let e = wilson_interval(k, n, 1.96);
        prop_assert!(0.0 <= e.lo && e.lo <= e.rate);
        prop_assert!(e.rate <= e.hi && e.hi <= 1.0);
    }

    /// Clopper–Pearson contains Wilson's point estimate and, away from the
    /// k = 0 boundary (where the exact one-sided bound can be *narrower*
    /// than Wilson's normal approximation), is at least as wide.
    #[test]
    fn cp_contains_and_dominates_wilson(k in 1u64..50, extra in 1u64..5_000) {
        let n = k + extra;
        let cp = clopper_pearson(k, n, 0.05);
        let w = wilson_interval(k, n, 1.96);
        prop_assert!(cp.lo <= w.rate && w.rate <= cp.hi);
        prop_assert!(cp.hi - cp.lo >= (w.hi - w.lo) * 0.99);
    }

    /// Kaplan–Meier survival curves are monotone non-increasing in [0, 1].
    #[test]
    fn km_is_monotone(
        events in proptest::collection::vec((0.0f64..1e5, any::<bool>()), 1..100),
    ) {
        let obs: Vec<Observation> = events
            .iter()
            .map(|&(t, e)| Observation { age_hours: t, event: e })
            .collect();
        let km = KaplanMeier::fit(&obs);
        let mut prev = 1.0;
        for step in km.steps() {
            prop_assert!(step.survival <= prev + 1e-12);
            prop_assert!((0.0..=1.0).contains(&step.survival));
            prev = step.survival;
        }
    }

    /// Detection probability is monotone in both rate and budget.
    #[test]
    fn detection_probability_monotone(
        rate_exp in -9.0f64..-1.0,
        ops in 1u64..1_000_000_000,
    ) {
        let rate = 10f64.powf(rate_exp);
        let p = detection_probability(rate, ops);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!(detection_probability(rate * 2.0, ops) >= p - 1e-12);
        prop_assert!(detection_probability(rate, ops * 2) >= p - 1e-12);
    }

    /// ops_for_confidence really achieves the confidence, minimally-ish.
    #[test]
    fn ops_for_confidence_is_sufficient(
        rate_exp in -8.0f64..-2.0,
        conf in 0.5f64..0.999,
    ) {
        let rate = 10f64.powf(rate_exp);
        let ops = ops_for_confidence(rate, conf);
        prop_assert!(detection_probability(rate, ops) >= conf - 1e-9);
    }

    /// The sensitivity floor inverts detection probability.
    #[test]
    fn sensitivity_floor_roundtrips(ops_exp in 2u32..9, conf in 0.5f64..0.99) {
        let ops = 10u64.pow(ops_exp);
        let floor = sensitivity_floor(ops, conf);
        let p = detection_probability(floor, ops);
        prop_assert!((p - conf).abs() < 1e-6, "p = {p}, conf = {conf}");
    }

    /// The log-decade histogram conserves its inputs.
    #[test]
    fn histogram_conserves_counts(
        rates in proptest::collection::vec(prop_oneof![
            Just(0.0f64),
            (-9.0f64..0.0).prop_map(|e| 10f64.powf(e)),
        ], 0..200),
    ) {
        let mut h = LogDecadeHistogram::new(-9, 0);
        for &r in &rates {
            h.record(r);
        }
        let nonzero = rates.iter().filter(|&&r| r > 0.0).count() as u64;
        let zero = rates.len() as u64 - nonzero;
        prop_assert_eq!(h.count_zero(), zero);
        prop_assert_eq!(h.count_nonzero(), nonzero);
        // Everything non-zero in [1e-9, 1) lands in a bucket.
        prop_assert_eq!(h.counts().iter().sum::<u64>(), nonzero);
    }
}
