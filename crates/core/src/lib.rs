//! # mercurial
//!
//! The public API of the *Cores that don't count* laboratory: a fleet
//! simulator with ground-truth mercurial cores, the detection/isolation/
//! mitigation stack the paper calls for, and the experiment pipelines that
//! regenerate its figure and quantitative claims.
//!
//! ## Quick start
//!
//! ```
//! use mercurial::prelude::*;
//!
//! // A small fleet with defective cores seeded at the paper's incidence.
//! let scenario = Scenario::small(42);
//! let experiment = FleetExperiment::build(&scenario);
//! let (log, summary) = experiment.run_signals();
//! println!(
//!     "{} mercurial cores produced {} corruptions, {} observable signals",
//!     experiment.population().count(),
//!     summary.corruptions,
//!     log.len(),
//! );
//! ```
//!
//! ## Layout
//!
//! * [`scenario`] — serde-serializable experiment configuration;
//! * [`experiment`] — [`experiment::FleetExperiment`]: topology +
//!   population + signal simulation in one handle;
//! * [`pipeline`] — the full §6 loop (burn-in → screening → suspects →
//!   quarantine → triage → capacity accounting);
//! * [`closedloop`] — the epoch-interleaved driver: detect → quarantine →
//!   reschedule with in-loop feedback and per-epoch telemetry;
//! * [`shardloop`] — the closed loop split into service halves: fleet-shard
//!   workers and a central aggregator (the `mercurial-serve` substrate);
//! * [`fig1`] — the Figure 1 reproduction;
//! * [`report`] — text/CSV rendering of experiment outputs.
//!
//! The sub-crates are re-exported under their own names for direct use:
//! [`fault`], [`simcpu`], [`corpus`], [`fleet`], [`screening`],
//! [`fuzz`], [`isolation`], [`mitigation`], [`metrics`], [`trace`],
//! [`watch`], [`audit`].
#![warn(missing_docs)]

pub mod closedloop;
pub mod experiment;
pub mod fig1;
pub mod pipeline;
pub mod report;
pub mod scenario;
pub mod shardloop;

pub use closedloop::{ClosedLoopDriver, ClosedLoopOutcome, RunOptions};
pub use experiment::FleetExperiment;
pub use fig1::{fig1_from_outcome, run_fig1, run_fig1_closed_loop, Fig1Result};
pub use pipeline::{PipelineOutcome, PipelineRun};
pub use scenario::{FuzzCorpusConfig, Scenario};
pub use shardloop::{
    shard_ranges, EpochCommands, FinishedLoop, FleetAggregator, FleetShard, ShardEpochReport,
};

pub use mercurial_audit as audit;
pub use mercurial_corpus as corpus;
pub use mercurial_fault as fault;
pub use mercurial_fleet as fleet;
pub use mercurial_fuzz as fuzz;
pub use mercurial_isolation as isolation;
pub use mercurial_metrics as metrics;
pub use mercurial_mitigation as mitigation;
pub use mercurial_screening as screening;
pub use mercurial_simcpu as simcpu;
pub use mercurial_trace as trace;
pub use mercurial_watch as watch;

/// The most commonly used types, in one import.
pub mod prelude {
    pub use crate::closedloop::{ClosedLoopDriver, ClosedLoopOutcome, RunOptions};
    pub use crate::experiment::FleetExperiment;
    pub use crate::fig1::{run_fig1, Fig1Result};
    pub use crate::pipeline::{PipelineOutcome, PipelineRun};
    pub use crate::scenario::Scenario;
    pub use mercurial_fault::{
        Activation, CoreFaultProfile, CoreUid, FunctionalUnit, Lesion, OperatingPoint, SymptomClass,
    };
    pub use mercurial_fleet::{FleetConfig, FleetSim, Population, SignalKind, SignalLog};
    pub use mercurial_isolation::{CoreState, QuarantineRegistry};
    pub use mercurial_metrics::{KaplanMeier, MonthlySeries};
    pub use mercurial_screening::{EraSchedule, HumanTriage, OfflineScreener, OnlineScreener};
}
