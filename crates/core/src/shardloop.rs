//! The closed loop split into service halves: fleet-shard **workers**
//! and a central **aggregator**.
//!
//! [`ClosedLoopDriver`](crate::ClosedLoopDriver) runs detect → quarantine
//! → reschedule as one in-process loop. The paper's §6 stack is not one
//! process: thousands of machines report suspect-core evidence into a
//! central screening/quarantine service. This module factors the loop
//! into the two halves that service needs, such that
//!
//! * one [`FleetShard`] over the whole machine range driven by one
//!   [`FleetAggregator`] reproduces the in-process loop **bit for bit**,
//!   and
//! * any partition of the machine range into disjoint shards produces the
//!   same aggregate state (scoreboard counts, watch report, sim summary)
//!   as the single shard, because every layer below (sim, screeners)
//!   honors the shard-union determinism contract.
//!
//! The split follows the loop's phase structure. Per epoch:
//!
//! | phase | half | work |
//! |-------|------|------|
//! | 1 | aggregator | restorations due at the boundary (registry/ledger); cores broadcast to workers in [`EpochCommands::restores`] |
//! | 2 | aggregator | deep-check verdicts under the per-epoch budget |
//! | 3 | worker | due burn-in / offline / online screens on owned machines |
//! | 4 | worker | one epoch of workload simulation, masked cores silent |
//! | 5 | aggregator | screened-core effects, suspicion ingest from surviving evidence |
//! | 6 | aggregator | new threshold crossings quarantined; broadcast next epoch in [`EpochCommands::quarantines`] |
//! | 7 | aggregator | capacity/corruption telemetry point + live alert rules |
//!
//! Quarantine and restore decisions are central; workers only apply the
//! resulting mask changes ([`FleetShard::apply_commands`]) before
//! stepping. Broadcasting a command for a core a worker does not own is
//! a no-op by construction (the core is absent from the worker's sim
//! mask and screening queues), so the protocol needs no per-worker
//! routing.

use crate::experiment::FleetExperiment;
use crate::pipeline::PipelineOutcome;
use crate::scenario::{Scenario, WorkloadsConfig};
use mercurial_fault::{CoreUid, FastSet, FunctionalUnit};
use mercurial_fleet::sim::{ClassTally, SimState, SimSummary};
use mercurial_fleet::{EventKind, EventQueue, FleetSim, FleetTopology, Population, SignalLog};
use mercurial_isolation::{CapacityLedger, QuarantineRegistry, SafeTaskPolicy, TaskUnitProfile};
use mercurial_metrics::{ClassPoint, EpochSeries};
use mercurial_mitigation::MitigationPolicy;
use mercurial_prof::Prof;
use mercurial_screening::{
    BurnIn, BurnInCampaign, DetectionMethod, DetectionRecord, HumanTriage, OfflineCampaign,
    OfflineScreener, OnlineCampaign, OnlineScreener, Scoreboard, TriageOutcome, TriageStats,
};
use mercurial_trace::{MetricSet, Recorder};
use mercurial_watch::{Alert, Baseline, EpochRow, RuleSet, WatchEngine, WatchReport};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Splits `machines` into `workers` contiguous, disjoint, exhaustive
/// ranges `[lo, hi)` — the canonical shard partition used by the serve
/// layer and the parity tests. Ranges differ in size by at most one
/// machine.
pub fn shard_ranges(machines: u32, workers: u32) -> Vec<(u32, u32)> {
    assert!(workers > 0, "need at least one worker");
    let (m, w) = (machines as u64, workers as u64);
    (0..w)
        .map(|i| (((m * i) / w) as u32, ((m * (i + 1)) / w) as u32))
        .collect()
}

/// A centrally decided per-class mitigation-policy switch, broadcast to
/// every worker and applied before the epoch steps (policies only change
/// at epoch boundaries, like the quarantine mask).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyChange {
    /// Workload-class index, in workload-list (tally/policy) order.
    pub class: u32,
    /// The policy the class runs from this epoch on.
    pub policy: MitigationPolicy,
}

/// Mask changes a worker must apply before stepping an epoch: centrally
/// decided restorations and quarantines. Commands are broadcast to every
/// worker; applying one for a non-owned core is a no-op.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochCommands {
    /// The epoch these commands precede.
    pub epoch: u32,
    /// Exonerated cores whose repair latency elapsed — back in service.
    pub restores: Vec<CoreUid>,
    /// Threshold crossings from the previous epoch — out of service.
    pub quarantines: Vec<CoreUid>,
    /// Per-class mitigation escalations decided at the previous boundary
    /// (empty unless the scenario's `workloads` block adapts).
    #[serde(default)]
    pub policy_changes: Vec<PolicyChange>,
}

/// Everything one worker produced in one epoch, shipped to the
/// aggregator at the epoch boundary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardEpochReport {
    /// The epoch this report covers.
    pub epoch: u32,
    /// Cores the due screens caught this epoch (already masked locally).
    pub screened: Vec<DetectionRecord>,
    /// Screener-failure signals from this epoch's screens.
    pub screen_log: SignalLog,
    /// Workload signals surviving the out-of-service withdrawal — the
    /// suspicion evidence stream.
    pub evidence: SignalLog,
    /// Corruption events this epoch (shard-local).
    pub corruptions_delta: u64,
    /// Signals the sim emitted this epoch *before* the out-of-service
    /// withdrawal (the in-process loop's `sim.epoch_signals` histogram
    /// observes pre-withdrawal counts).
    pub raw_signals_delta: u64,
    /// Mercurial cores in service and deployed at the epoch start, per
    /// the worker's mask *before* this epoch's crossings are applied.
    pub active_deployed_mercurial: u64,
    /// Running shard-local summary (post-withdrawal counts).
    pub summary: SimSummary,
    /// Running campaign accounting: burn-in, offline, online.
    pub stats: [mercurial_screening::ScreeningStats; 3],
    /// Per-workload-class deltas for this epoch, in workload-list order.
    /// Plain integer sums, so the aggregator's element-wise merge over
    /// any shard partition reproduces the single-shard totals exactly.
    #[serde(default)]
    pub class_deltas: Vec<ClassTally>,
}

/// The worker half: one machine-range shard of the fleet, stepping its
/// own sim and screening campaigns under centrally broadcast mask
/// changes.
pub struct FleetShard<'a> {
    sim: FleetSim,
    topo: &'a FleetTopology,
    pop: &'a Population,
    epoch_hours: f64,
    state: SimState,
    summary: SimSummary,
    /// Shard-local view of out-of-service cores: broadcast quarantines ∪
    /// own screens ∖ broadcast restores. Used to skip screens and
    /// withdraw attributed signals, exactly like the in-process loop.
    out_of_service: FastSet<CoreUid>,
    burnin: BurnInCampaign,
    offline: OfflineCampaign,
    online: OnlineCampaign,
    /// Campaign wake timers; payload 0 = burn-in, 1 = offline, 2 = online.
    screen_q: EventQueue<u8>,
    /// Whether the scenario's `workloads` block is on: per-class trace
    /// counters are emitted only then, so legacy runs stay bit-for-bit.
    classes_on: bool,
    /// Interned per-class counter names (worker-side cumulative totals —
    /// these ride the serve layer's `Bye` frame unchanged).
    class_counters: Vec<ClassMetricNames>,
    /// Whether the scenario's `audit` block is on: the worker contributes
    /// its cumulative `audit.screen_detections` counter only then, so
    /// legacy runs stay bit-for-bit.
    audit_on: bool,
}

/// Interned metric names for one workload class, built once per shard.
pub(crate) struct ClassMetricNames {
    pub(crate) corrupt_ops: &'static str,
    pub(crate) caught: &'static str,
    pub(crate) user_reports: &'static str,
    pub(crate) overhead_ops: &'static str,
}

impl ClassMetricNames {
    /// Worker-side cumulative counter names for class `name`.
    fn counters(name: &str) -> ClassMetricNames {
        ClassMetricNames {
            corrupt_ops: intern(format!("class.{name}.corrupt_ops_total")),
            caught: intern(format!("class.{name}.caught_total")),
            user_reports: intern(format!("class.{name}.user_reports_total")),
            overhead_ops: intern(format!("class.{name}.overhead_ops_total")),
        }
    }

    /// Aggregator-side per-epoch gauge names for class `name`. These are
    /// the names the watch replay path snapshots per-class epoch rows
    /// from, so they must precede the `epoch.corrupt_ops` boundary gauge.
    pub(crate) fn gauges(name: &str) -> ClassMetricNames {
        ClassMetricNames {
            corrupt_ops: intern(format!("class.{name}.corrupt_ops")),
            caught: intern(format!("class.{name}.caught")),
            user_reports: intern(format!("class.{name}.user_reports")),
            overhead_ops: intern(format!("class.{name}.overhead_ops")),
        }
    }
}

/// Leak-once interner: metric names must be `&'static str` for the
/// recorder, and class names are dynamic. Deduplicates so repeated runs
/// in one process never grow the leak past one entry per distinct name.
fn intern(name: String) -> &'static str {
    use std::sync::Mutex;
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("name pool poisoned");
    if let Some(hit) = pool.iter().find(|&&p| p == name) {
        return hit;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    pool.push(leaked);
    leaked
}

impl<'a> FleetShard<'a> {
    /// Builds the worker for machines `[lo, hi)` of the experiment's
    /// fleet. The full range `(0, machines)` yields the entire fleet.
    pub fn new(scenario: &Scenario, experiment: &'a FleetExperiment, lo: u32, hi: u32) -> Self {
        let sim = experiment.sim();
        let topo = experiment.topology();
        let tuning = &scenario.tuning;
        let parallelism = scenario.sim.parallelism;
        let schedule = experiment.screening_schedule();
        let shard = Some((lo, hi));
        let burnin = BurnIn {
            schedule: schedule.clone(),
            ops_multiplier: tuning.burnin_ops_multiplier,
            parallelism,
        }
        .campaign_shard(topo, shard);
        let offline = OfflineScreener {
            schedule: schedule.clone(),
            interval_hours: scenario.offline_interval_hours,
            fraction_per_sweep: scenario.offline_fraction,
            drain_hours_per_machine: tuning.offline_drain_hours_per_machine,
            parallelism,
        }
        .campaign_shard(scenario.sim.months, shard);
        let online = OnlineScreener {
            schedule,
            interval_hours: scenario.online_interval_hours,
            ops_fraction: tuning.online_ops_fraction,
            parallelism,
        }
        .campaign_shard(scenario.sim.months, shard);
        let mut screen_q = EventQueue::new();
        if let Some(h) = burnin.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 0);
        }
        if let Some(h) = offline.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 1);
        }
        if let Some(h) = online.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 2);
        }
        let mut state = sim.begin_shard(lo, hi);
        let classes_on = scenario.workloads.enabled;
        let mut class_counters = Vec::new();
        if classes_on {
            let names = sim.class_names();
            for (ix, p) in scenario
                .workloads
                .initial_policies(&names)
                .into_iter()
                .enumerate()
            {
                state.set_policy(ix, p);
            }
            class_counters = names
                .iter()
                .map(|n| ClassMetricNames::counters(n))
                .collect();
        }
        FleetShard {
            sim,
            topo,
            pop: experiment.population(),
            epoch_hours: scenario.sim.epoch_hours,
            state,
            summary: SimSummary::default(),
            out_of_service: FastSet::default(),
            burnin,
            offline,
            online,
            screen_q,
            classes_on,
            class_counters,
            audit_on: scenario.audit.enabled,
        }
    }

    /// The machine range this shard owns.
    pub fn machine_range(&self) -> (u32, u32) {
        self.state.shard_range().expect("shard state has a range")
    }

    /// Whether the observation window has been fully simulated.
    pub fn is_done(&self) -> bool {
        self.state.is_done()
    }

    /// The epoch the next [`FleetShard::step_epoch`] will simulate.
    pub fn next_epoch(&self) -> u32 {
        self.state.next_epoch()
    }

    /// Applies centrally broadcast mask changes (loop phases 1 and 6).
    /// Commands for non-owned cores fall through harmlessly: the sim
    /// mask ignores unknown cores and the screening queues never visit
    /// non-owned machines.
    pub fn apply_commands(&mut self, cmds: &EpochCommands) {
        assert_eq!(cmds.epoch, self.state.next_epoch(), "command/epoch skew");
        for &core in &cmds.restores {
            self.out_of_service.remove(&core);
            self.state.set_active(core, true);
        }
        for &core in &cmds.quarantines {
            self.out_of_service.insert(core);
            self.state.set_active(core, false);
        }
        for pc in &cmds.policy_changes {
            self.state.set_policy(pc.class as usize, pc.policy);
        }
    }

    /// Runs loop phases 3 and 4 for one epoch: due screens on owned
    /// machines, then one epoch of workload simulation with masked cores
    /// silent and their attributed signals withdrawn.
    ///
    /// `prof` is wall-clock self-observability only — readings never
    /// touch sim-visible state, so results are identical for any handle.
    pub fn step_epoch(&mut self, rec: &mut Recorder, prof: &Prof) -> ShardEpochReport {
        let _epoch_span = prof.span("shard.epoch");
        let epoch = self.state.next_epoch();
        let h0 = self.state.hour();
        let h1 = h0 + self.epoch_hours;

        // Phase 3: screens due this epoch, fixed burn-in → offline →
        // online phase order regardless of timer hours.
        let mut campaign_due = [false; 3];
        while self.screen_q.peek_time().is_some_and(|t| t < h1) {
            let (_, which) = self.screen_q.pop().expect("peeked a due timer");
            campaign_due[which as usize] = true;
        }
        let mut screen_log = SignalLog::new();
        let mut screened = Vec::new();
        if campaign_due[0] {
            let _p = prof.span("screen.burnin");
            screened.extend(self.burnin.step_until_traced(
                self.topo,
                self.pop,
                h1,
                &mut self.out_of_service,
                &mut screen_log,
                rec,
            ));
            if let Some(h) = self.burnin.next_hour() {
                self.screen_q
                    .schedule_ranked(h, EventKind::ScreeningDue.rank(), 0);
            }
        }
        if campaign_due[1] {
            let _p = prof.span("screen.offline");
            screened.extend(self.offline.step_until_traced(
                self.topo,
                self.pop,
                h1,
                &mut self.out_of_service,
                &mut screen_log,
                rec,
            ));
            if let Some(h) = self.offline.next_hour() {
                self.screen_q
                    .schedule_ranked(h, EventKind::ScreeningDue.rank(), 1);
            }
        }
        if campaign_due[2] {
            let _p = prof.span("screen.online");
            screened.extend(self.online.step_until_traced(
                self.topo,
                self.pop,
                h1,
                &mut self.out_of_service,
                &mut screen_log,
                rec,
            ));
            if let Some(h) = self.online.next_hour() {
                self.screen_q
                    .schedule_ranked(h, EventKind::ScreeningDue.rank(), 2);
            }
        }
        // A screener failure is proof; the core leaves service before the
        // epoch's workload runs (registry effects are the aggregator's).
        for d in &screened {
            self.state.set_active(d.core, false);
        }
        if self.audit_on && !screened.is_empty() {
            rec.counter_add("audit.screen_detections", screened.len() as u64);
        }

        // Phase 4: one epoch of workload simulation. The worker's mask
        // snapshot *before* this epoch's crossings is what the telemetry
        // point needs, so the active count is taken here.
        let active = self.state.active_deployed_mercurial(self.topo, h0);
        let before_corruptions = self.summary.corruptions;
        let before_signals = self.summary.signals_emitted + self.summary.noise_signals;
        let class_before = self.state.class_tallies().to_vec();
        let mut evidence = SignalLog::new();
        {
            let _p = prof.span("fleet.step");
            self.sim
                .step_epoch_traced(&mut self.state, &mut evidence, &mut self.summary, rec);
        }
        let class_deltas: Vec<ClassTally> = self
            .state
            .class_tallies()
            .iter()
            .zip(&class_before)
            .map(|(now, then)| now.delta_since(then))
            .collect();
        if self.classes_on {
            for (names, d) in self.class_counters.iter().zip(&class_deltas) {
                rec.counter_add(names.corrupt_ops, d.corrupt_ops);
                rec.counter_add(names.caught, d.app_caught + d.mitigation_caught);
                rec.counter_add(names.user_reports, d.user_reports);
                rec.counter_add(names.overhead_ops, d.overhead_ops());
            }
        }
        let raw_signals_delta =
            self.summary.signals_emitted + self.summary.noise_signals - before_signals;
        // Withdraw signals attributed to out-of-service cores. Masked
        // cores emit nothing themselves, so every withdrawn signal is
        // background noise — both counters shrink by the same amount,
        // exactly as in the in-process loop.
        let dropped = evidence.retain(|s| !self.out_of_service.contains(&s.core));
        self.summary.signals_emitted -= dropped as u64;
        self.summary.noise_signals -= dropped as u64;

        ShardEpochReport {
            epoch,
            screened,
            screen_log,
            evidence,
            corruptions_delta: self.summary.corruptions - before_corruptions,
            raw_signals_delta,
            active_deployed_mercurial: active,
            summary: self.summary,
            stats: [
                self.burnin.stats(),
                self.offline.stats(),
                self.online.stats(),
            ],
            class_deltas,
        }
    }
}

/// What [`FleetAggregator::finish`] hands back: the same aggregates the
/// in-process closed loop produces.
pub struct FinishedLoop {
    /// End-of-window aggregates, same shape as the open-loop pipeline's.
    pub pipeline: PipelineOutcome,
    /// Per-epoch capacity / residual-corruption / active-core telemetry.
    pub series: EpochSeries,
    /// Alert readout, when an engine was attached.
    pub watch: Option<WatchReport>,
}

/// The server half: quarantine registry, capacity ledger, triage queue,
/// suspicion scoreboard, telemetry series, and live alert rules —
/// everything central. Drives epochs via
/// [`begin_epoch`](FleetAggregator::begin_epoch) /
/// [`ingest_reports`](FleetAggregator::ingest_reports).
pub struct FleetAggregator<'a> {
    topo: &'a FleetTopology,
    pop: &'a Population,
    deep_checks_per_epoch: u32,
    triage_latency_hours: f64,
    restore_latency_hours: f64,
    epoch: u32,
    epochs: u32,
    epoch_hours: f64,
    registry: QuarantineRegistry,
    ledger: CapacityLedger,
    safe_policy: SafeTaskPolicy,
    task_mix: Vec<(TaskUnitProfile, f64)>,
    recovered_cores: f64,
    triage: HumanTriage,
    triage_stats: TriageStats,
    case_id: u64,
    scoreboard: Scoreboard,
    log: SignalLog,
    series: EpochSeries,
    detections: Vec<DetectionRecord>,
    out_of_service: FastSet<CoreUid>,
    handled: FastSet<CoreUid>,
    deep_q: EventQueue<CoreUid>,
    restore_q: EventQueue<CoreUid>,
    pending_quarantines: Vec<CoreUid>,
    exonerated_innocents: usize,
    engine: Option<WatchEngine>,
    /// Latest per-worker running summaries / campaign stats, replaced on
    /// every ingest (reports carry running totals, not deltas).
    worker_summaries: Vec<SimSummary>,
    worker_stats: Vec<[mercurial_screening::ScreeningStats; 3]>,
    /// The scenario's `workloads` block (per-class surfacing and the
    /// adaptive escalation loop are active only when it is enabled).
    workloads: WorkloadsConfig,
    /// Workload class names in tally/policy order (empty when disabled).
    class_names: Vec<String>,
    /// Interned per-class epoch-gauge names, parallel to `class_names`.
    class_gauges: Vec<ClassMetricNames>,
    /// The aggregator's view of each class's current policy.
    policies: Vec<MitigationPolicy>,
    /// Escalations decided this boundary, broadcast with the next epoch's
    /// commands (workers switch policies one epoch after the decision,
    /// exactly like quarantine crossings).
    pending_policy_changes: Vec<PolicyChange>,
    /// Whether the scenario's `audit` block is on: decision provenance
    /// instants (`score.signal`) and cumulative `audit.*` counters are
    /// emitted only then, so legacy runs stay bit-for-bit.
    audit_on: bool,
}

impl<'a> FleetAggregator<'a> {
    /// Builds the central half for a scenario. `engine` is the in-loop
    /// alert engine, if any (see [`watch_engine`]).
    pub fn new(
        scenario: &Scenario,
        experiment: &'a FleetExperiment,
        engine: Option<WatchEngine>,
    ) -> Self {
        let topo = experiment.topology();
        let mut ledger = CapacityLedger::new();
        for m in topo.machines() {
            ledger.register_machine(m.machine, topo.cores_on(m.machine));
        }
        let mut scoreboard = Scoreboard::new();
        scoreboard.arm(scenario.suspicion_threshold);
        let sim = experiment.sim();
        let workloads = scenario.workloads.clone();
        let (class_names, class_gauges, policies) = if workloads.enabled {
            let names = sim.class_names();
            let gauges = names.iter().map(|n| ClassMetricNames::gauges(n)).collect();
            let policies = workloads.initial_policies(&names);
            (names, gauges, policies)
        } else {
            (Vec::new(), Vec::new(), Vec::new())
        };
        let mut series = EpochSeries::new(scenario.sim.epoch_hours);
        if workloads.enabled {
            series.set_class_names(class_names.clone());
        }
        FleetAggregator {
            topo,
            pop: experiment.population(),
            deep_checks_per_epoch: scenario.closed_loop.deep_checks_per_epoch,
            triage_latency_hours: scenario.closed_loop.triage_latency_hours,
            restore_latency_hours: scenario.closed_loop.restore_latency_hours,
            epoch: 0,
            epochs: sim.epochs(),
            epoch_hours: scenario.sim.epoch_hours,
            registry: QuarantineRegistry::new(),
            ledger,
            safe_policy: SafeTaskPolicy,
            task_mix: balanced_task_mix(),
            recovered_cores: 0.0,
            triage: HumanTriage::default(),
            triage_stats: TriageStats::default(),
            case_id: 0,
            scoreboard,
            log: SignalLog::new(),
            series,
            detections: Vec::new(),
            out_of_service: FastSet::default(),
            handled: FastSet::default(),
            deep_q: EventQueue::new(),
            restore_q: EventQueue::new(),
            pending_quarantines: Vec::new(),
            exonerated_innocents: 0,
            engine,
            worker_summaries: Vec::new(),
            worker_stats: Vec::new(),
            workloads,
            class_names,
            class_gauges,
            policies,
            pending_policy_changes: Vec::new(),
            audit_on: scenario.audit.enabled,
        }
    }

    /// The aggregator's current per-class policy vector (empty when the
    /// scenario's `workloads` block is disabled).
    pub fn current_policies(&self) -> &[MitigationPolicy] {
        &self.policies
    }

    /// Total epochs in the observation window.
    pub fn total_epochs(&self) -> u32 {
        self.epochs
    }

    /// Epoch length in hours.
    pub fn epoch_hours(&self) -> f64 {
        self.epoch_hours
    }

    /// Whether every epoch has been ingested.
    pub fn is_done(&self) -> bool {
        self.epoch >= self.epochs
    }

    /// Runs loop phases 1 and 2 at an epoch boundary and returns the
    /// mask changes to broadcast: restorations due now plus the previous
    /// epoch's threshold crossings.
    pub fn begin_epoch(&mut self, rec: &mut Recorder, prof: &Prof) -> EpochCommands {
        let _p = prof.span("loop.begin");
        assert!(!self.is_done(), "window already fully ingested");
        let h0 = self.epoch as f64 * self.epoch_hours;
        let h1 = h0 + self.epoch_hours;
        rec.begin(h0, "loop.epoch");

        // Phase 1: restorations whose repair latency has elapsed re-enter
        // service at the epoch boundary, in restore-hour order.
        let mut restores = Vec::new();
        while let Some((restore_hour, core)) = self.restore_q.pop_due(h0) {
            self.registry
                .restore_traced(core, restore_hour, "repair latency elapsed", rec)
                .expect("exonerated core can restore");
            self.ledger.restore_core_traced(core, restore_hour, rec);
            self.out_of_service.remove(&core);
            if self.audit_on {
                rec.counter_add("audit.restores", 1);
            }
            restores.push(core);
        }

        // Phase 2: deep-check verdicts, due-hour order under the
        // per-epoch budget (the triage team is finite; excess suspects
        // stay queued and their verdicts slip to the next boundary).
        let mut budget = self.deep_checks_per_epoch;
        while budget > 0 && self.deep_q.peek_time().is_some_and(|t| t < h1) {
            let (due_hour, core) = self.deep_q.pop().expect("peeked a due case");
            let verdict_hour = due_hour.max(h0);
            budget -= 1;
            self.triage_stats.investigated += 1;
            match self
                .triage
                .investigate(self.topo, self.pop, core, verdict_hour, self.case_id)
            {
                TriageOutcome::Confirmed => {
                    self.triage_stats.confirmed += 1;
                    if self.pop.is_mercurial(core) {
                        self.triage_stats.confirmed_true += 1;
                    }
                    self.registry
                        .confirm_traced(core, verdict_hour, "deep check confession", rec)
                        .expect("quarantined core can confirm");
                    rec.instant(verdict_hour, "detect.triage", Some(core.as_u64()), 0.0);
                    if self.audit_on {
                        rec.counter_add("audit.confirms", 1);
                    }
                    self.recovered_cores +=
                        safe_task_share(&self.safe_policy, &self.task_mix, self.pop, core);
                    self.detections.push(DetectionRecord {
                        core,
                        hour: verdict_hour,
                        method: DetectionMethod::Triage,
                    });
                }
                TriageOutcome::NotReproduced => {
                    self.triage_stats.not_reproduced += 1;
                    if self.pop.is_mercurial(core) {
                        self.triage_stats.missed_true += 1;
                    }
                    self.registry
                        .exonerate_traced(core, verdict_hour, "nothing reproduced", rec)
                        .expect("quarantined core can exonerate");
                    if self.audit_on {
                        rec.counter_add("audit.exonerations", 1);
                    }
                    if !self.pop.is_mercurial(core) {
                        self.exonerated_innocents += 1;
                    }
                    self.restore_q.schedule_ranked(
                        verdict_hour + self.restore_latency_hours,
                        EventKind::Restore.rank(),
                        core,
                    );
                }
            }
            self.case_id += 1;
        }

        EpochCommands {
            epoch: self.epoch,
            restores,
            quarantines: std::mem::take(&mut self.pending_quarantines),
            policy_changes: std::mem::take(&mut self.pending_policy_changes),
        }
    }

    /// Runs loop phases 5–7 on the epoch's worker reports (one per
    /// shard, in worker order): screened-core registry effects,
    /// suspicion ingest from surviving evidence, new threshold
    /// crossings, and the epoch's telemetry point.
    pub fn ingest_reports(
        &mut self,
        reports: Vec<ShardEpochReport>,
        rec: &mut Recorder,
        prof: &Prof,
    ) {
        let _ingest_span = prof.span("loop.ingest");
        assert!(!reports.is_empty(), "need at least one shard report");
        let h0 = self.epoch as f64 * self.epoch_hours;
        let h1 = h0 + self.epoch_hours;

        // Phase 5a: screened-core effects in canonical (hour, core)
        // order — a unique key per epoch, since campaigns share the
        // detected set — so any shard partition applies them in the
        // same order.
        let mut screened: Vec<DetectionRecord> = Vec::new();
        for r in &reports {
            assert_eq!(r.epoch, self.epoch, "report/epoch skew");
            screened.extend(r.screened.iter().copied());
        }
        screened.sort_by(|a, b| a.hour.total_cmp(&b.hour).then_with(|| a.core.cmp(&b.core)));
        for d in screened {
            self.registry
                .mark_suspect_traced(d.core, d.hour, "screener failure", rec)
                .and_then(|()| {
                    self.registry
                        .quarantine_traced(d.core, d.hour, "controlled test failed", rec)
                })
                .and_then(|()| {
                    self.registry
                        .confirm_traced(d.core, d.hour, "screen reproduced defect", rec)
                })
                .expect("in-service core walks the legal path");
            self.ledger.remove_core_traced(d.core, d.hour, rec);
            if self.audit_on {
                rec.counter_add("audit.quarantines", 1);
                rec.counter_add("audit.confirms", 1);
            }
            self.recovered_cores +=
                safe_task_share(&self.safe_policy, &self.task_mix, self.pop, d.core);
            self.out_of_service.insert(d.core);
            self.detections.push(d);
        }

        // The in-process loop observes these inside the sim step; worker
        // sims suppress them (shard states do not observe fleet-wide
        // histograms) and the aggregator observes the fleet-wide sums.
        let corrupt_ops: u64 = reports.iter().map(|r| r.corruptions_delta).sum();
        let raw_signals: u64 = reports.iter().map(|r| r.raw_signals_delta).sum();
        rec.observe("sim.epoch_corruptions", corrupt_ops as f64);
        rec.observe("sim.epoch_signals", raw_signals as f64);

        // Per-class epoch deltas: an element-wise integer merge across
        // shards, so every partition sums to the single-shard totals.
        let mut epoch_classes = vec![ClassTally::default(); self.class_names.len()];
        for r in &reports {
            for (mine, theirs) in epoch_classes.iter_mut().zip(&r.class_deltas) {
                mine.merge(theirs);
            }
        }

        // Phase 5b: suspicion accumulates from the surviving evidence;
        // the fleet-wide log grows screen signals first, then evidence,
        // each in worker order.
        let mut active: u64 = 0;
        self.worker_summaries.clear();
        self.worker_stats.clear();
        for r in &reports {
            active += r.active_deployed_mercurial;
            self.worker_summaries.push(r.summary);
            self.worker_stats.push(r.stats);
        }
        for r in &reports {
            self.log.append(r.screen_log.clone());
        }
        let score_span = prof.span("score.ingest");
        for r in reports {
            if self.audit_on {
                // Decision provenance: one `score.signal` instant per
                // ingested signal (value = kind index) feeds the audit
                // ledger's per-kind precision/recall.
                self.scoreboard
                    .ingest_all_provenance(r.evidence.all().iter(), rec);
            } else {
                self.scoreboard
                    .ingest_all_traced(r.evidence.all().iter(), rec);
            }
            self.log.append(r.evidence);
        }
        drop(score_span);

        // Phase 6: new threshold crossings are quarantined and queued
        // for a deep check; workers learn of them in the next epoch's
        // commands.
        let crossings: Vec<(CoreUid, f64)> = self
            .scoreboard
            .armed_suspects_excluding(|core| {
                self.handled.contains(&core) || self.out_of_service.contains(&core)
            })
            .into_iter()
            .map(|s| (s.core, s.last_hour))
            .collect();
        for (core, hour) in crossings {
            self.registry
                .mark_suspect_traced(core, hour, "signal concentration", rec)
                .and_then(|()| {
                    self.registry
                        .quarantine_traced(core, hour, "suspicion threshold", rec)
                })
                .expect("in-service core walks the legal path");
            self.ledger.remove_core_traced(core, hour, rec);
            if self.audit_on {
                rec.counter_add("audit.quarantines", 1);
            }
            self.out_of_service.insert(core);
            self.handled.insert(core);
            self.deep_q.schedule_ranked(
                hour + self.triage_latency_hours,
                EventKind::DeepCheck.rank(),
                core,
            );
            // Workers still count a crossing core as active (they mask
            // it next epoch); the in-process loop masks it before taking
            // the telemetry point, so mirror that here.
            if self.pop.is_mercurial(core) && self.topo.is_deployed(core.machine, h0) {
                active -= 1;
            }
            self.pending_quarantines.push(core);
        }

        // Phase 6½: adaptive mitigation. A class whose epoch corrupt-ops
        // exceed the threshold escalates one rung; workers apply the
        // switch with the next epoch's commands, mirroring quarantines.
        if self.workloads.enabled && self.workloads.adapt {
            for (ix, t) in epoch_classes.iter().enumerate() {
                if t.corrupt_ops > self.workloads.escalate_threshold {
                    let next = self.policies[ix].escalate();
                    if next != self.policies[ix] {
                        self.policies[ix] = next;
                        self.pending_policy_changes.push(PolicyChange {
                            class: ix as u32,
                            policy: next,
                        });
                        rec.instant(h1, "mitigation.escalated", None, ix as f64);
                        if self.audit_on {
                            rec.counter_add("audit.escalations", 1);
                        }
                    }
                }
            }
        }

        // Phase 7: the epoch's telemetry point.
        let pool = self.ledger.pool();
        let base = pool.availability();
        let with_safetask = if pool.nominal_cores == 0 {
            1.0
        } else {
            (pool.effective_cores as f64 + self.recovered_cores) / pool.nominal_cores as f64
        };
        rec.gauge(h1, "capacity.availability", base);
        rec.gauge(h1, "capacity.with_safetask", with_safetask);
        rec.gauge(h1, "fleet.active_mercurial", active as f64);
        // Per-class epoch gauges come before the boundary marker so the
        // replay path snapshots them into the same epoch row.
        if self.workloads.enabled {
            for (names, t) in self.class_gauges.iter().zip(&epoch_classes) {
                rec.gauge(h1, names.corrupt_ops, t.corrupt_ops as f64);
                rec.gauge(
                    h1,
                    names.caught,
                    (t.app_caught + t.mitigation_caught) as f64,
                );
                rec.gauge(h1, names.user_reports, t.user_reports as f64);
                rec.gauge(h1, names.overhead_ops, t.overhead_ops() as f64);
            }
        }
        // Last gauge of every epoch boundary: the replay path
        // (`WatchInput::from_jsonl`) closes the epoch row on it.
        rec.gauge(h1, "epoch.corrupt_ops", corrupt_ops as f64);
        self.series.push(base, with_safetask, corrupt_ops, active);
        if self.workloads.enabled {
            self.series.push_classes(
                epoch_classes
                    .iter()
                    .map(|t| ClassPoint {
                        corrupt_ops: t.corrupt_ops,
                        caught: t.app_caught + t.mitigation_caught,
                        user_reports: t.user_reports,
                        overhead_ops: t.overhead_ops(),
                    })
                    .collect(),
            );
        }
        if let Some(eng) = self.engine.as_mut() {
            let _watch_span = prof.span("watch.eval");
            let row = EpochRow {
                hour: h1,
                capacity: base,
                capacity_with_safetask: with_safetask,
                corrupt_ops: corrupt_ops as f64,
                active_mercurial: active as f64,
            };
            let fired = if self.workloads.enabled {
                let classes: Vec<(String, f64)> = self
                    .class_names
                    .iter()
                    .cloned()
                    .zip(epoch_classes.iter().map(|t| t.corrupt_ops as f64))
                    .collect();
                eng.push_epoch_classed(row, &classes)
            } else {
                eng.push_epoch(row)
            };
            record_alerts(rec, &fired, self.audit_on);
        }
        rec.end(h1, "loop.epoch");
        self.epoch += 1;
    }

    /// Final assembly: fleet-wide summary and campaign stats from the
    /// last worker reports, post-confirmation signal withdrawal, the
    /// detection-latency histogram, and the end-of-run watch rules
    /// evaluated over the central metrics merged with `worker_metrics`
    /// (worker order; empty for an in-process run sharing one recorder).
    pub fn finish(
        self,
        rec: &mut Recorder,
        worker_metrics: &[MetricSet],
        baseline: Option<&Baseline>,
        prof: &Prof,
    ) -> FinishedLoop {
        let _finish_span = prof.span("loop.finish");
        let FleetAggregator {
            topo,
            pop,
            registry,
            ledger,
            triage_stats,
            mut log,
            series,
            mut detections,
            exonerated_innocents,
            engine,
            worker_summaries,
            worker_stats,
            audit_on,
            ..
        } = self;

        let mut summary = SimSummary::default();
        for s in &worker_summaries {
            summary.merge(s);
        }
        let mut stats = [mercurial_screening::ScreeningStats::default(); 3];
        for ws in &worker_stats {
            for (slot, s) in stats.iter_mut().zip(ws.iter()) {
                slot.core_screens += s.core_screens;
                slot.test_ops += s.test_ops;
                slot.drained_machine_hours += s.drained_machine_hours;
                slot.detections += s.detections;
            }
        }

        // User-report escalations drawn while a core was still in
        // service can carry dates past its later confirmation hour;
        // withdraw them so no signal is attributed to a core after it
        // was confirmed defective.
        let confirm_hour: HashMap<CoreUid, f64> = registry
            .in_state(mercurial_isolation::CoreState::Confirmed)
            .into_iter()
            .map(|core| {
                let hour = registry
                    .history(core)
                    .iter()
                    .find(|t| t.to == mercurial_isolation::CoreState::Confirmed)
                    .expect("confirmed core has a confirm transition")
                    .hour;
                (core, hour)
            })
            .collect();
        let mut dropped_noise = 0u64;
        let dropped = log.retain(|s| {
            let keep = confirm_hour.get(&s.core).is_none_or(|&c| s.hour <= c);
            if !keep && !s.caused_by_cee {
                dropped_noise += 1;
            }
            keep
        });
        summary.signals_emitted -= dropped as u64;
        summary.noise_signals -= dropped_noise;
        log.sort_by_time();

        detections.sort_by(|a, b| a.hour.partial_cmp(&b.hour).expect("hours are finite"));
        let detected_cores: HashSet<CoreUid> = detections.iter().map(|d| d.core).collect();
        let detected_true = detected_cores
            .iter()
            .filter(|c| pop.is_mercurial(**c))
            .count();
        let mut detection_latency_hours = Vec::new();
        for d in &detections {
            if let Some(profile) = pop.profile_of(d.core) {
                let deploy = topo.machines()[d.core.machine as usize].deploy_hour;
                let active_from = deploy + profile.earliest_onset_hours().max(0.0);
                let latency = (d.hour - active_from).max(0.0);
                rec.observe("detect.latency_hours", latency);
                detection_latency_hours.push(latency);
            }
        }

        let pipeline = PipelineOutcome {
            detections,
            burnin_stats: stats[0],
            offline_stats: stats[1],
            online_stats: stats[2],
            triage_stats,
            capacity: ledger.pool(),
            registry,
            signals: log,
            sim_summary: summary,
            ground_truth: pop.count(),
            detected_true,
            exonerated_innocents,
            detection_latency_hours,
        };
        let watch = match engine {
            Some(eng) => {
                let _watch_span = prof.span("watch.eval");
                let mut merged = rec.metrics().cloned().unwrap_or_default();
                for m in worker_metrics {
                    merged.merge(m);
                }
                let (report, end_alerts) = eng.finish(&merged, baseline);
                record_alerts(rec, &end_alerts, audit_on);
                Some(report)
            }
            None => None,
        };
        FinishedLoop {
            pipeline,
            series,
            watch,
        }
    }
}

/// The in-loop alert engine a run asked for, if any: explicit rules win,
/// else the scenario's `watch` block when enabled.
pub fn watch_engine(scenario: &Scenario, rules: &Option<RuleSet>) -> Option<WatchEngine> {
    match rules {
        Some(rs) => Some(WatchEngine::new(rs.clone())),
        None if scenario.watch.enabled => Some(WatchEngine::new(scenario.watch.rule_set())),
        None => None,
    }
}

/// Stamp freshly fired alerts into the trace as `alert.fired` instants
/// (value = rule index, hour = the violation's hour). With `audit` on,
/// also bump the cumulative `audit.alerts` counter and a per-rule
/// `audit.rule.<name>.fires` counter (rule names are operator-supplied;
/// the serve status page label-escapes them on render).
pub fn record_alerts(rec: &mut Recorder, alerts: &[(usize, Alert)], audit: bool) {
    for (idx, a) in alerts {
        rec.instant(a.hour, "alert.fired", None, *idx as f64);
        if audit {
            rec.counter_add("audit.alerts", 1);
            rec.counter_add(intern(format!("audit.rule.{}.fires", a.rule)), 1);
        }
    }
}

/// Emits one `gt.onset` instant per mercurial core at the hour its defect
/// can first manifest (deploy + earliest onset), in population (sorted
/// `CoreUid`) order — the ground-truth anchor of the incident timeline.
pub fn record_ground_truth_onsets(experiment: &FleetExperiment, rec: &mut Recorder) {
    if !rec.enabled() {
        return;
    }
    let topo = experiment.topology();
    for core in experiment.population().mercurial_cores() {
        let deploy = topo.machines()[core.uid.machine as usize].deploy_hour;
        let onset = deploy + core.profile.earliest_onset_hours().max(0.0);
        rec.instant(onset, "gt.onset", Some(core.uid.as_u64()), 0.0);
    }
    rec.counter_add("gt.mercurial_cores", experiment.population().count() as u64);
}

/// The §6.1 task mix used to price safe-task recovery on confirmed cores
/// (the "balanced" mix of the E10 experiment).
fn balanced_task_mix() -> Vec<(TaskUnitProfile, f64)> {
    use FunctionalUnit as U;
    vec![
        (
            TaskUnitProfile::new(
                "scalar-batch",
                vec![U::ScalarAlu, U::LoadStore, U::BranchUnit, U::AddressGen],
                false,
            ),
            0.35,
        ),
        (
            TaskUnitProfile::new(
                "gemm",
                vec![U::Fma, U::VectorPipe, U::LoadStore, U::AddressGen],
                false,
            ),
            0.25,
        ),
        (
            TaskUnitProfile::new(
                "tls",
                vec![U::CryptoUnit, U::ScalarAlu, U::LoadStore, U::AddressGen],
                false,
            ),
            0.15,
        ),
        (
            TaskUnitProfile::new(
                "db",
                vec![
                    U::ScalarAlu,
                    U::Atomics,
                    U::LoadStore,
                    U::BranchUnit,
                    U::AddressGen,
                ],
                false,
            ),
            0.15,
        ),
        (
            TaskUnitProfile::new(
                "log-shipper",
                vec![U::ScalarAlu, U::LoadStore, U::AddressGen],
                true,
            ),
            0.10,
        ),
    ]
}

/// The share of the task mix placeable on one confirmed core, given its
/// ground-truth defective units (known post-confession).
fn safe_task_share(
    policy: &SafeTaskPolicy,
    task_mix: &[(TaskUnitProfile, f64)],
    pop: &Population,
    core: CoreUid,
) -> f64 {
    match pop.profile_of(core) {
        Some(profile) => policy.capacity_recovered(task_mix, &[profile.afflicted_units()]),
        // Only genuinely defective cores can be confirmed (screens are
        // exact), so this arm is unreachable in practice.
        None => 0.0,
    }
}
