//! The full §6 pipeline: signals → screening → suspects → quarantine →
//! triage → capacity.
//!
//! This is the loop the paper describes operationally: automated screeners
//! and production signals both feed suspicion; suspicious cores are
//! quarantined and deeply checked; confessions confirm and retire cores;
//! non-reproducing suspects are exonerated and restored; and the
//! scheduler's capacity ledger tracks what the fleet lost along the way.

use crate::experiment::FleetExperiment;
use crate::scenario::Scenario;
use mercurial_fault::{CoreUid, FastSet};
use mercurial_fleet::sim::SimSummary;
use mercurial_fleet::SignalLog;
use mercurial_isolation::{CapacityLedger, PoolCapacity, QuarantineRegistry};
use mercurial_screening::{
    BurnIn, DetectionRecord, HumanTriage, OfflineScreener, OnlineScreener, Scoreboard,
    ScreeningStats, TriageStats,
};
use mercurial_trace::Recorder;
use std::collections::HashSet;

/// Everything the pipeline produced.
pub struct PipelineOutcome {
    /// All confirmed detections, any method, sorted by hour.
    pub detections: Vec<DetectionRecord>,
    /// Burn-in cost/coverage.
    pub burnin_stats: ScreeningStats,
    /// Offline campaign cost/coverage.
    pub offline_stats: ScreeningStats,
    /// Online campaign cost/coverage.
    pub online_stats: ScreeningStats,
    /// Human-triage statistics (the ≈50% confirmation claim lives here).
    pub triage_stats: TriageStats,
    /// Final quarantine state of every touched core.
    pub registry: QuarantineRegistry,
    /// Final pool capacity.
    pub capacity: PoolCapacity,
    /// The complete signal log (workload signals + screener failures).
    pub signals: SignalLog,
    /// Workload-simulation summary.
    pub sim_summary: SimSummary,
    /// Ground truth: mercurial cores in the fleet.
    pub ground_truth: usize,
    /// Detected cores that are genuinely mercurial.
    pub detected_true: usize,
    /// Innocent cores that were quarantined (and later exonerated).
    pub exonerated_innocents: usize,
    /// Detection latency per true detection: hours from the defect being
    /// *active in service* (deploy or onset, whichever is later) to
    /// detection.
    pub detection_latency_hours: Vec<f64>,
}

impl PipelineOutcome {
    /// Recall: fraction of ground-truth mercurial cores detected.
    pub fn recall(&self) -> f64 {
        if self.ground_truth == 0 {
            return 1.0;
        }
        self.detected_true as f64 / self.ground_truth as f64
    }

    /// Median detection latency in hours, if any detections. Even-length
    /// samples average the two middle values.
    pub fn median_latency_hours(&self) -> Option<f64> {
        median(&self.detection_latency_hours)
    }
}

/// The sample median: middle element for odd lengths, mean of the two
/// middle elements for even lengths, `None` when empty.
pub fn median(samples: &[f64]) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        Some(v[mid])
    } else {
        Some((v[mid - 1] + v[mid]) / 2.0)
    }
}

/// The pipeline driver.
pub struct PipelineRun;

impl PipelineRun {
    /// Executes the whole pipeline for a scenario.
    pub fn execute(scenario: &Scenario) -> PipelineOutcome {
        let experiment = FleetExperiment::build(scenario);
        PipelineRun::execute_on(scenario, &experiment)
    }

    /// Executes many independent scenarios, fanned out across worker
    /// threads (`parallelism` as in [`mercurial_fleet::par`]: `0` = one
    /// per CPU, `1` = serial). Outcomes come back in input order and are
    /// identical to running [`PipelineRun::execute`] on each scenario
    /// serially — each scenario's randomness is a pure function of its
    /// own seed, so scheduling cannot leak between them.
    pub fn execute_many(scenarios: &[Scenario], parallelism: usize) -> Vec<PipelineOutcome> {
        mercurial_fleet::par::map_parallel(scenarios, parallelism, PipelineRun::execute)
    }

    /// Executes on a prebuilt experiment (case studies use explicit
    /// populations).
    pub fn execute_on(scenario: &Scenario, experiment: &FleetExperiment) -> PipelineOutcome {
        // 1. Production signals from the workload simulation.
        let (signals, sim_summary) = experiment.run_signals();
        PipelineRun::complete_from_signals(scenario, experiment, signals, sim_summary)
    }

    /// Runs the post-simulation stages (screening → scoreboard → triage →
    /// quarantine → capacity → scoring) over an already-produced signal
    /// log. This is the batch pipeline's phase-major back half; the
    /// closed-loop driver reuses it when feedback is disabled so both
    /// entry points share one implementation.
    pub fn complete_from_signals(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        signals: SignalLog,
        sim_summary: SimSummary,
    ) -> PipelineOutcome {
        // A disabled recorder turns every provenance emission below into a
        // no-op, and the registry's untraced ops are themselves defined as
        // the traced ops over a disabled recorder — so this is the same
        // computation, bit for bit.
        Self::complete_from_signals_traced(
            scenario,
            experiment,
            signals,
            sim_summary,
            &mut Recorder::disabled(),
        )
    }

    /// [`PipelineRun::complete_from_signals`] with decision provenance:
    /// every signal ingest, suspect flag, quarantine, triage verdict,
    /// exoneration, and restore lands in the trace (and hence the audit
    /// ledger) exactly as the closed-loop driver would record it.
    pub fn complete_from_signals_traced(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        mut signals: SignalLog,
        sim_summary: SimSummary,
        rec: &mut Recorder,
    ) -> PipelineOutcome {
        let topo = experiment.topology();
        let pop = experiment.population();
        let tuning = &scenario.tuning;

        // 2. Automated screening: burn-in, then offline + online campaigns
        //    sharing one detected set (a core caught once is quarantined
        //    and not rescreened).
        let mut detected: FastSet<CoreUid> = FastSet::default();
        // The scenario's fuzz_corpus knob decides whether this is the
        // hand-written default history or the fuzz-augmented schedule; the
        // screeners' machine fan-out reuses the sim parallelism knob.
        let schedule = experiment.screening_schedule();
        let parallelism = scenario.sim.parallelism;
        let burnin = BurnIn {
            schedule: schedule.clone(),
            ops_multiplier: tuning.burnin_ops_multiplier,
            parallelism,
        };
        let (mut detections, burnin_stats) = burnin.run(topo, pop, &mut detected, &mut signals);
        let offline = OfflineScreener {
            schedule: schedule.clone(),
            interval_hours: scenario.offline_interval_hours,
            fraction_per_sweep: scenario.offline_fraction,
            drain_hours_per_machine: tuning.offline_drain_hours_per_machine,
            parallelism,
        };
        let (offline_detections, offline_stats) =
            offline.run(topo, pop, scenario.sim.months, &mut detected, &mut signals);
        detections.extend(offline_detections);
        let online = OnlineScreener {
            schedule,
            interval_hours: scenario.online_interval_hours,
            ops_fraction: tuning.online_ops_fraction,
            parallelism,
        };
        let (online_detections, online_stats) =
            online.run(topo, pop, scenario.sim.months, &mut detected, &mut signals);
        detections.extend(online_detections);
        if !detections.is_empty() {
            rec.counter_add("audit.screen_detections", detections.len() as u64);
        }

        // 3. Production-signal suspicion: the scoreboard accumulates every
        //    signal; cores crossing the threshold (and not already caught
        //    by a screener) go to human triage.
        let mut scoreboard = Scoreboard::new();
        scoreboard.ingest_all_provenance(signals.all().iter(), rec);
        let suspects: Vec<(CoreUid, f64)> = scoreboard
            .suspects_excluding(scenario.suspicion_threshold, |core| {
                detected.contains(&core)
            })
            .into_iter()
            .map(|s| (s.core, s.last_hour))
            .collect();

        // 4. Human triage extracts confessions.
        let triage = HumanTriage::default();
        let (triage_detections, triage_stats) = triage.investigate_all(topo, pop, &suspects);

        // 5. Quarantine bookkeeping. Screener detections are proof (a
        //    controlled test failed): suspect → quarantine → confirm.
        let mut registry = QuarantineRegistry::new();
        for d in &detections {
            registry
                .mark_suspect_traced(d.core, d.hour, "screener failure", rec)
                .and_then(|()| {
                    registry.quarantine_traced(d.core, d.hour, "controlled test failed", rec)
                })
                .and_then(|()| {
                    registry.confirm_traced(d.core, d.hour, "screen reproduced defect", rec)
                })
                .expect("fresh core walks the legal path");
            rec.counter_add("audit.quarantines", 1);
            rec.counter_add("audit.confirms", 1);
        }
        //    Triage suspects were quarantined on suspicion, then either
        //    confirmed or exonerated.
        let mut exonerated_innocents = 0usize;
        let confirmed_by_triage: HashSet<CoreUid> =
            triage_detections.iter().map(|d| d.core).collect();
        for &(core, hour) in &suspects {
            registry
                .mark_suspect_traced(core, hour, "signal concentration", rec)
                .and_then(|()| registry.quarantine_traced(core, hour, "suspicion threshold", rec))
                .expect("fresh core walks the legal path");
            rec.counter_add("audit.quarantines", 1);
            if confirmed_by_triage.contains(&core) {
                let confirm_hour = hour + tuning.triage_latency_hours;
                registry
                    .confirm_traced(core, confirm_hour, "triage confession", rec)
                    .expect("quarantined core can confirm");
                rec.instant(confirm_hour, "detect.triage", Some(core.as_u64()), 0.0);
                rec.counter_add("audit.confirms", 1);
            } else {
                registry
                    .exonerate_traced(
                        core,
                        hour + tuning.triage_latency_hours,
                        "nothing reproduced",
                        rec,
                    )
                    .expect("quarantined core can exonerate");
                rec.counter_add("audit.exonerations", 1);
                registry
                    .restore_traced(
                        core,
                        hour + tuning.restore_latency_hours,
                        "returned to pool",
                        rec,
                    )
                    .expect("exonerated core can restore");
                rec.counter_add("audit.restores", 1);
                if !pop.is_mercurial(core) {
                    exonerated_innocents += 1;
                }
            }
        }
        detections.extend(triage_detections);
        detections.sort_by(|a, b| a.hour.partial_cmp(&b.hour).expect("hours are finite"));

        // 6. Capacity accounting: confirmed cores leave the pool.
        let mut ledger = CapacityLedger::new();
        for m in topo.machines() {
            let cores = topo.product_of(m.machine).cores_per_socket as u64
                * topo.config().sockets_per_machine as u64;
            ledger.register_machine(m.machine, cores);
        }
        for core in registry.in_state(mercurial_isolation::CoreState::Confirmed) {
            ledger.remove_core(core);
        }

        // 7. Scoring against ground truth.
        let detected_cores: HashSet<CoreUid> = detections.iter().map(|d| d.core).collect();
        let detected_true = detected_cores
            .iter()
            .filter(|c| pop.is_mercurial(**c))
            .count();
        let mut detection_latency_hours = Vec::new();
        for d in &detections {
            if let Some(profile) = pop.profile_of(d.core) {
                let deploy = topo.machines()[d.core.machine as usize].deploy_hour;
                // The defect only threatens production once the machine is
                // deployed AND the (possibly latent) defect has onset.
                let active_from = deploy + profile.earliest_onset_hours().max(0.0);
                detection_latency_hours.push((d.hour - active_from).max(0.0));
            }
        }

        PipelineOutcome {
            detections,
            burnin_stats,
            offline_stats,
            online_stats,
            triage_stats,
            capacity: ledger.pool(),
            registry,
            signals,
            sim_summary,
            ground_truth: pop.count(),
            detected_true,
            exonerated_innocents,
            detection_latency_hours,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fleet::SignalKind;

    #[test]
    fn median_averages_the_two_middle_values() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[4.0, 1.0, 3.0]), Some(3.0));
        // Even length: the old implementation returned the upper middle
        // element (3.0 here); the median of [1, 2, 3, 4] is 2.5.
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), Some(2.5));
        assert_eq!(median(&[10.0, 20.0]), Some(15.0));
    }

    #[test]
    fn pipeline_detects_most_of_the_population() {
        let scenario = Scenario::small(11);
        let outcome = PipelineRun::execute(&scenario);
        assert!(outcome.ground_truth > 0, "seeded fleet should have defects");
        // The combined pipeline should find a solid majority of active
        // defects in 18 months (latent ones past the window excepted).
        assert!(
            outcome.recall() >= 0.4,
            "recall {} with {} ground truth",
            outcome.recall(),
            outcome.ground_truth
        );
        // No innocent core is ever *confirmed* (screens are exact).
        assert_eq!(
            outcome.detected_true,
            outcome
                .detections
                .iter()
                .map(|d| d.core)
                .collect::<std::collections::HashSet<_>>()
                .len()
        );
    }

    #[test]
    fn pipeline_capacity_loss_is_tiny() {
        let scenario = Scenario::small(12);
        let outcome = PipelineRun::execute(&scenario);
        // Quarantining a few cores out of ~100k is negligible capacity.
        assert!(outcome.capacity.availability() > 0.999);
        assert_eq!(outcome.capacity.lost_cores as usize, {
            outcome
                .registry
                .in_state(mercurial_isolation::CoreState::Confirmed)
                .len()
        });
    }

    #[test]
    fn pipeline_is_deterministic() {
        let scenario = Scenario::small(13);
        let a = PipelineRun::execute(&scenario);
        let b = PipelineRun::execute(&scenario);
        assert_eq!(a.detections.len(), b.detections.len());
        assert_eq!(a.detected_true, b.detected_true);
        assert_eq!(a.triage_stats, b.triage_stats);
    }

    #[test]
    fn detections_are_time_sorted() {
        let scenario = Scenario::small(14);
        let outcome = PipelineRun::execute(&scenario);
        for w in outcome.detections.windows(2) {
            assert!(w[0].hour <= w[1].hour);
        }
    }

    #[test]
    fn signals_include_screener_failures_after_pipeline() {
        let scenario = Scenario::small(15);
        let outcome = PipelineRun::execute(&scenario);
        if !outcome.detections.is_empty() {
            assert!(outcome
                .signals
                .all()
                .iter()
                .any(|s| s.kind == SignalKind::ScreenerFailure));
        }
    }
}
