//! Experiment scenarios: one serializable struct configuring everything.

use mercurial_fleet::sim::SimConfig;
use mercurial_fleet::topology::FleetConfig;
use serde::{Deserialize, Serialize};

/// Options for the fuzz-distilled screening corpus (`mercurial-fuzz`).
///
/// When enabled, the screeners' era schedule is augmented with the units
/// and operand patterns the distilled corpus exercises — the systematic
/// screening-content development §3 of the paper says was missing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzCorpusConfig {
    /// Whether screeners run the distilled fuzz content at all.
    pub enabled: bool,
    /// Campaign seed (the whole campaign is a pure function of it).
    pub seed: u64,
    /// Programs generated per campaign.
    pub budget: u64,
}

impl Default for FuzzCorpusConfig {
    fn default() -> FuzzCorpusConfig {
        FuzzCorpusConfig {
            enabled: false,
            seed: 0xF0CC,
            budget: 64,
        }
    }
}

/// A complete experiment configuration.
///
/// Scenarios serialize to JSON so experiment parameters live in files and
/// reports can embed the exact configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// Fleet shape and product mix.
    pub fleet: FleetConfig,
    /// Signal-simulation parameters.
    pub sim: SimConfig,
    /// Scoreboard suspicion threshold above which a core goes to triage.
    pub suspicion_threshold: f64,
    /// Offline-screening sweep interval in hours.
    pub offline_interval_hours: f64,
    /// Fraction of the fleet each offline sweep visits.
    pub offline_fraction: f64,
    /// Online screening pass interval in hours.
    pub online_interval_hours: f64,
    /// Fuzz-distilled screening-corpus options.
    pub fuzz_corpus: FuzzCorpusConfig,
}

impl Scenario {
    /// The paper-scale default: 20,000 machines observed for 36 months,
    /// deployed continuously across the window (fleets grow; §4 worries
    /// about "the ongoing arrival of new kinds of CPU parts").
    pub fn default_paper() -> Scenario {
        let mut fleet = FleetConfig::default_fleet();
        fleet.rollout_months = 36;
        Scenario {
            name: "paper-scale".to_string(),
            fleet,
            sim: SimConfig::default(),
            suspicion_threshold: 0.6,
            offline_interval_hours: 365.0,
            offline_fraction: 0.10,
            online_interval_hours: 73.0,
            fuzz_corpus: FuzzCorpusConfig::default(),
        }
    }

    /// A laptop-friendly small scenario (2,000 machines, 18 months) with
    /// the seed folded in, for tests and examples.
    pub fn small(seed: u64) -> Scenario {
        let mut s = Scenario::default_paper();
        s.name = format!("small-{seed}");
        s.fleet.machines = 1_500;
        s.fleet.seed = seed;
        s.fleet.rollout_months = 18;
        s.sim.months = 18;
        s.online_interval_hours = 146.0;
        s
    }

    /// A small scenario with **boosted incidence** (8× the catalog rates):
    /// a 1,500-machine fleet only hosts a couple of mercurial cores at the
    /// true rate, which makes figures degenerate. The boost keeps the
    /// phenomena visible at laptop scale; `default_paper` keeps the honest
    /// rate for the headline incidence experiment.
    pub fn demo(seed: u64) -> Scenario {
        let mut s = Scenario::small(seed);
        s.name = format!("demo-{seed}");
        for p in &mut s.fleet.products {
            p.mercurial_rate_per_core *= 8.0;
        }
        s
    }

    /// Total observation window in hours.
    pub fn window_hours(&self) -> f64 {
        self.sim.months as f64 * 730.0
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(json: &str) -> Result<Scenario, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let s = Scenario::small(7);
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Scenario::from_json("{not json").is_err());
    }

    #[test]
    fn presets_are_sane() {
        let paper = Scenario::default_paper();
        assert_eq!(paper.fleet.machines, 20_000);
        assert_eq!(paper.sim.months, 36);
        let small = Scenario::small(1);
        assert!(small.fleet.machines < paper.fleet.machines);
        assert!((small.window_hours() - 18.0 * 730.0).abs() < 1e-9);
    }
}
