//! Experiment scenarios: one serializable struct configuring everything.

use mercurial_fleet::sim::SimConfig;
use mercurial_fleet::topology::FleetConfig;
use mercurial_fleet::TrafficShape;
use mercurial_mitigation::MitigationPolicy;
use serde::{Deserialize, Serialize};

/// Options for the fuzz-distilled screening corpus (`mercurial-fuzz`).
///
/// When enabled, the screeners' era schedule is augmented with the units
/// and operand patterns the distilled corpus exercises — the systematic
/// screening-content development §3 of the paper says was missing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FuzzCorpusConfig {
    /// Whether screeners run the distilled fuzz content at all.
    pub enabled: bool,
    /// Campaign seed (the whole campaign is a pure function of it).
    pub seed: u64,
    /// Programs generated per campaign.
    pub budget: u64,
}

impl Default for FuzzCorpusConfig {
    fn default() -> FuzzCorpusConfig {
        FuzzCorpusConfig {
            enabled: false,
            seed: 0xF0CC,
            budget: 64,
        }
    }
}

/// Tunable constants of the detection pipeline that used to be
/// hard-coded. Every field has a serde default matching the historical
/// value, so existing scenario JSON parses unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineTuning {
    /// Hours from a suspect report to the human-triage verdict
    /// (confirm or exonerate).
    #[serde(default = "default_triage_latency_hours")]
    pub triage_latency_hours: f64,
    /// Hours from a suspect report to an exonerated core's restoration
    /// to service.
    #[serde(default = "default_restore_latency_hours")]
    pub restore_latency_hours: f64,
    /// Multiplier on the era op budget during pre-deployment burn-in.
    #[serde(default = "default_burnin_ops_multiplier")]
    pub burnin_ops_multiplier: u64,
    /// Machine-hours of drain charged per machine per offline sweep.
    #[serde(default = "default_offline_drain_hours")]
    pub offline_drain_hours_per_machine: f64,
    /// Fraction of the era op budget available to online screening from
    /// spare cycles.
    #[serde(default = "default_online_ops_fraction")]
    pub online_ops_fraction: f64,
}

fn default_triage_latency_hours() -> f64 {
    72.0
}
fn default_restore_latency_hours() -> f64 {
    96.0
}
fn default_burnin_ops_multiplier() -> u64 {
    5
}
fn default_offline_drain_hours() -> f64 {
    0.5
}
fn default_online_ops_fraction() -> f64 {
    0.05
}

impl Default for PipelineTuning {
    fn default() -> PipelineTuning {
        PipelineTuning {
            triage_latency_hours: default_triage_latency_hours(),
            restore_latency_hours: default_restore_latency_hours(),
            burnin_ops_multiplier: default_burnin_ops_multiplier(),
            offline_drain_hours_per_machine: default_offline_drain_hours(),
            online_ops_fraction: default_online_ops_fraction(),
        }
    }
}

/// Policy block for the closed-loop epoch driver
/// (`ClosedLoopDriver`): whether detections feed back into the running
/// simulation, and the latencies/budgets of the in-loop isolation
/// machinery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoopConfig {
    /// `true`: confirmed cores leave the workload mix mid-simulation
    /// (their signals and corruption stop) and exonerated cores return.
    /// `false`: the driver reproduces the open-loop batch pipeline
    /// bit-for-bit.
    #[serde(default)]
    pub feedback: bool,
    /// Hours from quarantine to the deep-check verdict.
    #[serde(default = "default_triage_latency_hours")]
    pub triage_latency_hours: f64,
    /// Hours from exoneration to restoration into service.
    #[serde(default = "default_closed_loop_restore_hours")]
    pub restore_latency_hours: f64,
    /// Maximum deep-check verdicts processed per epoch (the human-triage
    /// team is finite; excess suspects queue).
    #[serde(default = "default_deep_checks_per_epoch")]
    pub deep_checks_per_epoch: u32,
}

fn default_closed_loop_restore_hours() -> f64 {
    24.0
}
fn default_deep_checks_per_epoch() -> u32 {
    8
}

impl Default for ClosedLoopConfig {
    fn default() -> ClosedLoopConfig {
        ClosedLoopConfig {
            feedback: false,
            triage_latency_hours: default_triage_latency_hours(),
            restore_latency_hours: default_closed_loop_restore_hours(),
            deep_checks_per_epoch: default_deep_checks_per_epoch(),
        }
    }
}

/// Structured-tracing block: whether runs record telemetry through
/// `mercurial-trace` and at what granularity. Off by default — a disabled
/// recorder costs one branch per call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Master switch for span/event/metric recording.
    #[serde(default)]
    pub enabled: bool,
    /// Also record a span per screened machine. Expensive at fleet scale
    /// (millions of machine screens); intended for small scenarios.
    #[serde(default)]
    pub machine_spans: bool,
}

impl TraceConfig {
    /// The recorder flags this configuration asks for.
    pub fn flags(&self) -> mercurial_trace::TraceFlags {
        mercurial_trace::TraceFlags {
            enabled: self.enabled,
            machine_spans: self.machine_spans,
        }
    }

    /// A recorder honoring this configuration.
    pub fn recorder(&self) -> mercurial_trace::Recorder {
        mercurial_trace::Recorder::with_flags(self.flags())
    }
}

/// Alert-rule block for `mercurial-watch` (off by default, like `trace`).
///
/// The threshold knobs mirror the PR-3 `tuning` pattern: every limit that
/// would otherwise be hard-coded in `crates/watch` lives here with a
/// serde default, so rule files and scenario JSON can tune them without
/// code changes. [`WatchConfig::rule_set`] expands the knobs into the
/// default rule set and appends any custom `rules`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WatchConfig {
    /// Whether the closed-loop driver evaluates rules in-loop (emitting
    /// `alert.fired` trace instants and a `WatchReport` on the outcome).
    #[serde(default)]
    pub enabled: bool,
    /// Threshold for the per-epoch corrupt-ops rule: fire when any single
    /// epoch draws more corruption than this.
    #[serde(default = "default_max_corrupt_ops_per_epoch")]
    pub max_corrupt_ops_per_epoch: f64,
    /// Rate budget for the capacity rule: fire when schedulable capacity
    /// drops by more than this fraction of nominal between two epochs.
    #[serde(default = "default_max_capacity_drop_per_epoch")]
    pub max_capacity_drop_per_epoch: f64,
    /// SLO for the latency-percentile rule: fire when the end-of-run
    /// `detect.latency_hours` p95 reaches this many hours.
    #[serde(default = "default_max_detect_latency_p95_hours")]
    pub max_detect_latency_p95_hours: f64,
    /// Fractional tolerance band of the cross-run regression rules.
    #[serde(default = "default_regression_tolerance")]
    pub regression_tolerance: f64,
    /// Extra rules appended after the defaults (rule-file grammar).
    #[serde(default)]
    pub rules: Vec<mercurial_watch::Rule>,
}

// The paper-scale scenario (seed 24301, feedback on) peaks at ~17.2k
// residual corrupt ops in its worst epoch and lands detect-latency p95 at
// ~3650 h (one full offline sweep: 10 intervals × 365 h covering 10% of
// the fleet each). The defaults leave ~2-3× headroom over those healthy
// readings, so a quiet fleet never fires and a halved screening cadence
// does.
fn default_max_corrupt_ops_per_epoch() -> f64 {
    50_000.0
}
fn default_max_capacity_drop_per_epoch() -> f64 {
    0.001
}
fn default_max_detect_latency_p95_hours() -> f64 {
    4_500.0
}
fn default_regression_tolerance() -> f64 {
    0.25
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            enabled: false,
            max_corrupt_ops_per_epoch: default_max_corrupt_ops_per_epoch(),
            max_capacity_drop_per_epoch: default_max_capacity_drop_per_epoch(),
            max_detect_latency_p95_hours: default_max_detect_latency_p95_hours(),
            regression_tolerance: default_regression_tolerance(),
            rules: Vec::new(),
        }
    }
}

impl WatchConfig {
    /// Expand the knobs into the default six-rule set (three invariants,
    /// three cross-run regressions) plus any custom rules.
    pub fn rule_set(&self) -> mercurial_watch::RuleSet {
        use mercurial_watch::{Cmp, EpochField, Rule, RuleKind, Source};
        let mut rules = vec![
            Rule {
                scope: Default::default(),
                name: "epoch-corrupt-ops".to_string(),
                kind: RuleKind::Threshold {
                    source: Source::EpochMax(EpochField::CorruptOps),
                    op: Cmp::Gt,
                    limit: self.max_corrupt_ops_per_epoch,
                },
            },
            Rule {
                scope: Default::default(),
                name: "capacity-drop-rate".to_string(),
                kind: RuleKind::Rate {
                    field: EpochField::Capacity,
                    max_drop_per_epoch: self.max_capacity_drop_per_epoch,
                },
            },
            Rule {
                scope: Default::default(),
                name: "detect-latency-p95".to_string(),
                kind: RuleKind::Percentile {
                    histogram: "detect.latency_hours".to_string(),
                    q: 0.95,
                    op: Cmp::Ge,
                    limit: self.max_detect_latency_p95_hours,
                },
            },
            Rule {
                scope: Default::default(),
                name: "baseline-detect-latency-p95".to_string(),
                kind: RuleKind::Regression {
                    source: Source::Quantile {
                        histogram: "detect.latency_hours".to_string(),
                        q: 0.95,
                    },
                    tolerance_frac: self.regression_tolerance,
                },
            },
            Rule {
                scope: Default::default(),
                name: "baseline-residual-corrupt-ops".to_string(),
                kind: RuleKind::Regression {
                    source: Source::EpochSum(EpochField::CorruptOps),
                    tolerance_frac: self.regression_tolerance,
                },
            },
            Rule {
                scope: Default::default(),
                name: "baseline-capacity-trough".to_string(),
                kind: RuleKind::Regression {
                    source: Source::EpochMin(EpochField::Capacity),
                    tolerance_frac: self.regression_tolerance,
                },
            },
        ];
        rules.extend(self.rules.iter().cloned());
        mercurial_watch::RuleSet { rules }
    }
}

/// Per-link impairment model for the served (worker/server) topology.
///
/// Applied deterministically at the server's ingest point to **evidence**
/// frames only — the reliable lockstep command/report channel stays
/// intact, the suspect-signal telemetry riding beside it does not. Each
/// decision is a pure function of `(seed, worker, epoch, frame)`, so an
/// impaired run is exactly reproducible, and the loss draw uses the
/// shared-uniform coupling (`u < p`) so raising `loss` can only drop a
/// superset of the frames a lower setting dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImpairConfig {
    /// Seed of the impairment draws (independent of the fleet seed).
    #[serde(default = "default_impair_seed")]
    pub seed: u64,
    /// Probability an evidence frame is silently dropped.
    #[serde(default)]
    pub loss: f64,
    /// Maximum whole-epoch delivery delay; each frame draws a delay
    /// uniformly from `0..=max_delay_epochs`.
    #[serde(default)]
    pub max_delay_epochs: u32,
    /// Probability a delivered frame arrives twice (the duplicate is not
    /// deduplicated downstream, exactly like a redelivered datagram).
    #[serde(default)]
    pub duplicate: f64,
    /// Probability a delivered frame swaps places with its successor in
    /// the per-epoch arrival order.
    #[serde(default)]
    pub reorder: f64,
}

fn default_impair_seed() -> u64 {
    0x11F7
}

impl Default for ImpairConfig {
    fn default() -> ImpairConfig {
        ImpairConfig {
            seed: default_impair_seed(),
            loss: 0.0,
            max_delay_epochs: 0,
            duplicate: 0.0,
            reorder: 0.0,
        }
    }
}

impl ImpairConfig {
    /// True when every impairment knob is at its do-nothing setting — the
    /// configuration under which the served run must reproduce the
    /// in-process closed loop bit-for-bit.
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0
            && self.max_delay_epochs == 0
            && self.duplicate == 0.0
            && self.reorder == 0.0
    }
}

/// Service-topology block for `mercurial-serve` (fleet-as-a-service):
/// how many shard workers the fleet splits across and what the links
/// between them suffer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Fleet-shard worker processes (machines are split into this many
    /// contiguous ranges).
    #[serde(default = "default_serve_workers")]
    pub workers: u32,
    /// Link impairment applied to worker→server evidence frames.
    #[serde(default)]
    pub impair: ImpairConfig,
}

fn default_serve_workers() -> u32 {
    1
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: default_serve_workers(),
            impair: ImpairConfig::default(),
        }
    }
}

/// One class's starting mitigation policy in the `workloads` block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassPolicy {
    /// Workload-class name (one of the default mix's names, e.g.
    /// `"data-pipeline"`).
    pub class: String,
    /// The policy the class starts the run under.
    pub policy: MitigationPolicy,
}

/// Workload-class block (off by default): promotes workload from a
/// construction-time detail to a first-class experiment layer.
///
/// When `enabled`, every class in the default mix gets a deterministic
/// diurnal traffic shape (shared `traffic_amplitude`, phases staggered
/// six hours per class so peaks don't align) and starts under its
/// configured [`MitigationPolicy`]; the closed loop can escalate a
/// class's policy when its per-epoch corruption crosses
/// `escalate_threshold` (`adapt`). Disabled — the default, and what any
/// legacy scenario JSON parses to — means today's flat traffic and zero
/// mitigation, bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadsConfig {
    /// Master switch for the workload layer.
    #[serde(default)]
    pub enabled: bool,
    /// Diurnal amplitude applied to every class's op rate (0 = flat).
    #[serde(default = "default_traffic_amplitude")]
    pub traffic_amplitude: f64,
    /// Starting policy per class; classes absent here start at
    /// [`MitigationPolicy::None`].
    #[serde(default)]
    pub policies: Vec<ClassPolicy>,
    /// Closed-loop adaptation: escalate a class's policy one rung when
    /// its corrupt-ops in a single epoch exceed `escalate_threshold`.
    #[serde(default)]
    pub adapt: bool,
    /// Per-class, per-epoch corrupt-ops threshold for escalation.
    #[serde(default = "default_escalate_threshold")]
    pub escalate_threshold: u64,
}

fn default_traffic_amplitude() -> f64 {
    0.4
}
fn default_escalate_threshold() -> u64 {
    200_000
}

impl Default for WorkloadsConfig {
    fn default() -> WorkloadsConfig {
        WorkloadsConfig {
            enabled: false,
            traffic_amplitude: default_traffic_amplitude(),
            policies: Vec::new(),
            adapt: false,
            escalate_threshold: default_escalate_threshold(),
        }
    }
}

impl WorkloadsConfig {
    /// Initial per-class policies in class-index order; classes not
    /// named in `policies` (and every class when the block is disabled)
    /// start at [`MitigationPolicy::None`].
    pub fn initial_policies(&self, class_names: &[String]) -> Vec<MitigationPolicy> {
        class_names
            .iter()
            .map(|name| {
                if !self.enabled {
                    return MitigationPolicy::None;
                }
                self.policies
                    .iter()
                    .find(|cp| &cp.class == name)
                    .map(|cp| cp.policy)
                    .unwrap_or(MitigationPolicy::None)
            })
            .collect()
    }

    /// The traffic shape class `ix` runs under: flat when the block is
    /// disabled (or the amplitude is zero), else a diurnal shape with
    /// the shared amplitude and a per-class six-hour phase stagger.
    pub fn shape_for(&self, ix: usize) -> TrafficShape {
        if !self.enabled || self.traffic_amplitude == 0.0 {
            return TrafficShape::default();
        }
        TrafficShape::diurnal(self.traffic_amplitude, ix as f64 * 6.0)
    }
}

/// Decision-audit block (off by default): whether runs keep a provenance
/// ledger of every operational decision for ground-truth attribution.
///
/// Enabling audit forces tracing on (the ledger is derived from the trace
/// event stream, which is also what makes the offline replay over exported
/// JSONL reproduce the in-loop ledger byte-for-byte). With the block
/// absent — the default, and what legacy scenario JSON parses to — no
/// extra events are recorded and every output is bit-identical to the
/// pre-audit tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Master switch for decision-provenance recording.
    #[serde(default)]
    pub enabled: bool,
    /// Maximum per-core case files in exported/rendered case output
    /// (fullest cases first, matching the timeline exporter's cap).
    #[serde(default = "default_audit_max_cases")]
    pub max_cases: usize,
}

fn default_audit_max_cases() -> usize {
    40
}

impl Default for AuditConfig {
    fn default() -> AuditConfig {
        AuditConfig {
            enabled: false,
            max_cases: default_audit_max_cases(),
        }
    }
}

/// A complete experiment configuration.
///
/// Scenarios serialize to JSON so experiment parameters live in files and
/// reports can embed the exact configuration that produced them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Human-readable name.
    pub name: String,
    /// Fleet shape and product mix.
    pub fleet: FleetConfig,
    /// Signal-simulation parameters.
    pub sim: SimConfig,
    /// Scoreboard suspicion threshold above which a core goes to triage.
    pub suspicion_threshold: f64,
    /// Offline-screening sweep interval in hours.
    pub offline_interval_hours: f64,
    /// Fraction of the fleet each offline sweep visits.
    pub offline_fraction: f64,
    /// Online screening pass interval in hours.
    pub online_interval_hours: f64,
    /// Fuzz-distilled screening-corpus options.
    pub fuzz_corpus: FuzzCorpusConfig,
    /// Formerly hard-coded pipeline constants.
    #[serde(default)]
    pub tuning: PipelineTuning,
    /// Closed-loop (epoch-interleaved) pipeline policy.
    #[serde(default)]
    pub closed_loop: ClosedLoopConfig,
    /// Structured-tracing options (off by default).
    #[serde(default)]
    pub trace: TraceConfig,
    /// Alert-rule options (off by default).
    #[serde(default)]
    pub watch: WatchConfig,
    /// Served-topology options (single worker, clean links by default).
    #[serde(default)]
    pub serve: ServeConfig,
    /// Workload-class layer: traffic shapes and per-class mitigation
    /// (flat traffic, zero mitigation by default).
    #[serde(default)]
    pub workloads: WorkloadsConfig,
    /// Decision-audit layer: provenance ledger and ground-truth
    /// attribution (off by default).
    #[serde(default)]
    pub audit: AuditConfig,
}

impl Scenario {
    /// The paper-scale default: 20,000 machines observed for 36 months,
    /// deployed continuously across the window (fleets grow; §4 worries
    /// about "the ongoing arrival of new kinds of CPU parts").
    pub fn default_paper() -> Scenario {
        let mut fleet = FleetConfig::default_fleet();
        fleet.rollout_months = 36;
        Scenario {
            name: "paper-scale".to_string(),
            fleet,
            sim: SimConfig::default(),
            suspicion_threshold: 0.6,
            offline_interval_hours: 365.0,
            offline_fraction: 0.10,
            online_interval_hours: 73.0,
            fuzz_corpus: FuzzCorpusConfig::default(),
            tuning: PipelineTuning::default(),
            closed_loop: ClosedLoopConfig::default(),
            trace: TraceConfig::default(),
            watch: WatchConfig::default(),
            serve: ServeConfig::default(),
            workloads: WorkloadsConfig::default(),
            audit: AuditConfig::default(),
        }
    }

    /// A laptop-friendly small scenario (2,000 machines, 18 months) with
    /// the seed folded in, for tests and examples.
    pub fn small(seed: u64) -> Scenario {
        let mut s = Scenario::default_paper();
        s.name = format!("small-{seed}");
        s.fleet.machines = 1_500;
        s.fleet.seed = seed;
        s.fleet.rollout_months = 18;
        s.sim.months = 18;
        s.online_interval_hours = 146.0;
        s
    }

    /// A small scenario with **boosted incidence** (8× the catalog rates):
    /// a 1,500-machine fleet only hosts a couple of mercurial cores at the
    /// true rate, which makes figures degenerate. The boost keeps the
    /// phenomena visible at laptop scale; `default_paper` keeps the honest
    /// rate for the headline incidence experiment.
    pub fn demo(seed: u64) -> Scenario {
        let mut s = Scenario::small(seed);
        s.name = format!("demo-{seed}");
        for p in &mut s.fleet.products {
            p.mercurial_rate_per_core *= 8.0;
        }
        s
    }

    /// Total observation window in hours.
    pub fn window_hours(&self) -> f64 {
        self.sim.months as f64 * 730.0
    }

    /// The effective recorder flags: the `trace` block, with recording
    /// forced on when the audit layer is enabled (the decision ledger is
    /// derived from the trace, so auditing an untraced run would observe
    /// nothing).
    pub fn trace_flags(&self) -> mercurial_trace::TraceFlags {
        let mut flags = self.trace.flags();
        flags.enabled |= self.audit.enabled;
        flags
    }

    /// A recorder honoring [`Scenario::trace_flags`]. Drivers use this
    /// instead of `scenario.trace.recorder()` so the audit block can force
    /// tracing on.
    pub fn recorder(&self) -> mercurial_trace::Recorder {
        mercurial_trace::Recorder::with_flags(self.trace_flags())
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serializes")
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying serde error message.
    pub fn from_json(json: &str) -> Result<Scenario, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let s = Scenario::small(7);
        let json = s.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn bad_json_is_an_error() {
        assert!(Scenario::from_json("{not json").is_err());
    }

    #[test]
    fn legacy_json_without_new_blocks_parses_to_defaults() {
        // Scenario JSON written before `tuning` / `closed_loop` existed
        // must keep parsing, with the historical constants filled in.
        use serde::{Deserialize, Serialize};
        let mut s = Scenario::small(7);
        s.tuning.burnin_ops_multiplier = 9; // non-default, must NOT survive
        s.closed_loop.feedback = true;
        s.trace.enabled = true;
        s.watch.enabled = true;
        s.serve.workers = 3; // non-default, must NOT survive
        s.workloads.enabled = true;
        s.audit.enabled = true;
        let mut v = s.to_value();
        let serde::Value::Object(entries) = &mut v else {
            panic!("scenario serializes to an object");
        };
        let before = entries.len();
        entries.retain(|(k, _)| {
            k != "tuning"
                && k != "closed_loop"
                && k != "trace"
                && k != "watch"
                && k != "serve"
                && k != "workloads"
                && k != "audit"
        });
        assert_eq!(
            entries.len(),
            before - 7,
            "test must strip all seven blocks"
        );
        let back = Scenario::from_value(&v).unwrap();
        assert_eq!(back.tuning, PipelineTuning::default());
        assert_eq!(back.closed_loop, ClosedLoopConfig::default());
        assert_eq!(back.trace, TraceConfig::default());
        assert_eq!(back.watch, WatchConfig::default());
        assert_eq!(back.serve, ServeConfig::default());
        assert_eq!(back.workloads, WorkloadsConfig::default());
        assert_eq!(back.audit, AuditConfig::default());
        assert!(!back.workloads.enabled, "workload layer defaults to off");
        assert!(!back.audit.enabled, "audit layer defaults to off");
        assert_eq!(back.audit.max_cases, 40);
        assert_eq!(back.serve.workers, 1);
        assert!(back.serve.impair.is_noop());
        assert!(!back.trace.enabled, "tracing defaults to off");
        assert!(!back.watch.enabled, "watch defaults to off");
        assert_eq!(back.tuning.triage_latency_hours, 72.0);
        assert_eq!(back.tuning.restore_latency_hours, 96.0);
        assert_eq!(back.tuning.burnin_ops_multiplier, 5);
        assert_eq!(back.tuning.offline_drain_hours_per_machine, 0.5);
        assert_eq!(back.tuning.online_ops_fraction, 0.05);
        assert!(!back.closed_loop.feedback);
    }

    #[test]
    fn partial_tuning_block_fills_missing_knobs() {
        // Per-field serde defaults: specifying one knob leaves the rest
        // at their historical values.
        let json = r#"{"enabled_unused": 0, "triage_latency_hours": 48.0}"#;
        let t: PipelineTuning = serde_json::from_str(json).unwrap();
        assert_eq!(t.triage_latency_hours, 48.0);
        assert_eq!(t.restore_latency_hours, 96.0);
        assert_eq!(t.burnin_ops_multiplier, 5);
    }

    #[test]
    fn partial_watch_block_fills_missing_knobs_and_validates() {
        let json = r#"{"enabled": true, "max_corrupt_ops_per_epoch": 123.0}"#;
        let w: WatchConfig = serde_json::from_str(json).unwrap();
        assert!(w.enabled);
        assert_eq!(w.max_corrupt_ops_per_epoch, 123.0);
        assert_eq!(
            w.max_capacity_drop_per_epoch,
            default_max_capacity_drop_per_epoch()
        );
        assert!(w.rules.is_empty());
        let set = w.rule_set();
        assert_eq!(set.rules.len(), 6);
        set.validate().expect("default rule set validates");
        // Custom rules append after the defaults.
        let mut with_custom = w.clone();
        with_custom.rules.push(mercurial_watch::Rule {
            scope: Default::default(),
            name: "custom".to_string(),
            kind: mercurial_watch::RuleKind::Threshold {
                source: mercurial_watch::Source::Counter("sim.corruptions".to_string()),
                op: mercurial_watch::Cmp::Gt,
                limit: 1e9,
            },
        });
        let set = with_custom.rule_set();
        assert_eq!(set.rules.len(), 7);
        assert_eq!(set.rules[6].name, "custom");
        set.validate().expect("custom rule set validates");
    }

    #[test]
    fn workloads_block_roundtrips_with_nondefault_settings() {
        let mut s = Scenario::small(7);
        s.workloads.enabled = true;
        s.workloads.traffic_amplitude = 0.7;
        s.workloads.adapt = true;
        s.workloads.escalate_threshold = 123;
        s.workloads.policies = vec![
            ClassPolicy {
                class: "database".to_string(),
                policy: MitigationPolicy::Dmr,
            },
            ClassPolicy {
                class: "crypto-frontend".to_string(),
                policy: MitigationPolicy::E2eChecksum,
            },
        ];
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.workloads.policies[0].policy, MitigationPolicy::Dmr);
    }

    #[test]
    fn partial_workloads_block_fills_missing_knobs() {
        let json = r#"{"enabled": true, "policies": [{"class": "database", "policy": "Tmr"}]}"#;
        let w: WorkloadsConfig = serde_json::from_str(json).unwrap();
        assert!(w.enabled);
        assert_eq!(w.traffic_amplitude, default_traffic_amplitude());
        assert!(!w.adapt);
        assert_eq!(w.escalate_threshold, default_escalate_threshold());
        assert_eq!(w.policies.len(), 1);
        assert_eq!(w.policies[0].policy, MitigationPolicy::Tmr);
    }

    #[test]
    fn workloads_policy_lookup_and_shapes() {
        let names = vec![
            "data-pipeline".to_string(),
            "database".to_string(),
            "unknown".to_string(),
        ];
        let mut w = WorkloadsConfig {
            enabled: true,
            ..WorkloadsConfig::default()
        };
        w.policies.push(ClassPolicy {
            class: "database".to_string(),
            policy: MitigationPolicy::Dmr,
        });
        assert_eq!(
            w.initial_policies(&names),
            vec![
                MitigationPolicy::None,
                MitigationPolicy::Dmr,
                MitigationPolicy::None
            ]
        );
        // Enabled: staggered diurnal shapes, one phase per class.
        assert!(!w.shape_for(0).is_flat());
        assert_ne!(w.shape_for(0), w.shape_for(1));
        // Disabled block: every policy None, every shape flat.
        let off = WorkloadsConfig {
            enabled: false,
            ..w.clone()
        };
        assert!(off
            .initial_policies(&names)
            .iter()
            .all(|&p| p == MitigationPolicy::None));
        assert!(off.shape_for(0).is_flat());
    }

    #[test]
    fn presets_are_sane() {
        let paper = Scenario::default_paper();
        assert_eq!(paper.fleet.machines, 20_000);
        assert_eq!(paper.sim.months, 36);
        let small = Scenario::small(1);
        assert!(small.fleet.machines < paper.fleet.machines);
        assert!((small.window_hours() - 18.0 * 730.0).abs() < 1e-9);
    }
}
