//! Figure 1: "Reported CEE rates (normalized)".
//!
//! The paper's only figure plots two per-machine monthly rates over time,
//! normalized to an arbitrary baseline: CEE incidents reported *by users*
//! (humans filing suspect-core reports during incident triage) and by the
//! *automatic detector*. The text adds: "The rate seen by our automatic
//! detector is gradually increasing, but we do not know if this reflects a
//! change in the underlying rate."
//!
//! Our reproduction defines the two series the same way production would:
//!
//! * **user series** — every [`SignalKind::UserReport`] signal, whether or
//!   not a CEE was really behind it (production cannot tell);
//! * **auto series** — every screening failure, plus every automatic
//!   signal (crash / machine check / checksum mismatch) on a core that is
//!   already a *recidivist* (≥1 prior signal inside a 30-day window) — the
//!   automatic infrastructure only "reports a CEE" when the per-core
//!   pattern rule fires, exactly as §6 describes.
//!
//! Two mechanisms push the auto series up over time, and both are the
//! paper's own: screening coverage grows as new test classes ship "a few
//! times per year" ([`mercurial_screening::EraSchedule`]), and latent
//! defects age in while existing defects "get worse with time".
//!
//! Detection feeds back into the series: once the pipeline has detected a
//! core, its subsequent signals are suppressed (the core is quarantined —
//! §6.1), so each defect contributes a burst between manifestation and
//! capture rather than a permanent plateau.

use crate::pipeline::{PipelineOutcome, PipelineRun};
use crate::scenario::Scenario;
use mercurial_fleet::SignalKind;
use mercurial_metrics::MonthlySeries;
use std::collections::HashMap;

/// The two normalized series plus the raw materials.
pub struct Fig1Result {
    /// User-reported CEE incidents per machine per month.
    pub user: MonthlySeries,
    /// Automatically-reported CEE incidents per machine per month.
    pub auto: MonthlySeries,
    /// The normalization baseline (first non-zero monthly rate of the
    /// user series — "an arbitrary baseline").
    pub baseline: f64,
    /// The pipeline outcome the series were derived from.
    pub outcome: PipelineOutcome,
}

impl Fig1Result {
    /// Least-squares slope of the normalized auto series — the paper's
    /// "gradually increasing" claim is `slope > 0`.
    pub fn auto_trend_slope(&self) -> f64 {
        self.auto.trend_slope(self.baseline)
    }

    /// Renders both series as ASCII charts.
    pub fn render(&self) -> String {
        format!(
            "Figure 1 — Reported CEE rates (normalized)\n\n{}\n{}",
            self.user.render(self.baseline, 40),
            self.auto.render(self.baseline, 40),
        )
    }

    /// Emits `month,user,auto` CSV of the normalized series.
    pub fn to_csv(&self) -> String {
        let user = self.user.normalized(self.baseline);
        let auto = self.auto.normalized(self.baseline);
        let mut out = String::from("month,user_normalized,auto_normalized\n");
        for (u, a) in user.iter().zip(&auto) {
            out.push_str(&format!("{},{:.4},{:.4}\n", u.month, u.value, a.value));
        }
        out
    }
}

/// Runs the full pipeline for a scenario and derives the Figure 1 series.
pub fn run_fig1(scenario: &Scenario) -> Fig1Result {
    let outcome = PipelineRun::execute(scenario);
    fig1_from_outcome(scenario, outcome)
}

/// Runs the closed-loop driver and derives the Figure 1 series from its
/// outcome. With feedback enabled the quarantine silencing is real rather
/// than post-hoc: signals of confirmed cores already stop at the source,
/// so the series reflect what the fleet's reporting would actually show.
pub fn run_fig1_closed_loop(scenario: &Scenario) -> Fig1Result {
    let out = crate::closedloop::ClosedLoopDriver::execute(scenario);
    fig1_from_outcome(scenario, out.pipeline)
}

/// Derives Figure 1 from an existing pipeline outcome.
pub fn fig1_from_outcome(scenario: &Scenario, outcome: PipelineOutcome) -> Fig1Result {
    let months = scenario.sim.months;
    let machines = scenario.fleet.machines as u64;
    let mut user = MonthlySeries::new("user-reported", months, machines);
    let mut auto = MonthlySeries::new("automatically-reported", months, machines);

    // Quarantine silences a core: signals attributed to a core stop
    // counting once the pipeline detected it (plus a short operational
    // lag for the drain). Without this a single hot core would scream at
    // the dedup cap for the whole window, which is not how a fleet that
    // actually quarantines behaves.
    const QUARANTINE_LAG_HOURS: f64 = 7.0 * 24.0;
    let mut detected_at: HashMap<mercurial_fault::CoreUid, f64> = HashMap::new();
    for d in &outcome.detections {
        detected_at
            .entry(d.core)
            .and_modify(|h| *h = h.min(d.hour))
            .or_insert(d.hour);
    }
    let silenced = |core: mercurial_fault::CoreUid, hour: f64| {
        detected_at
            .get(&core)
            .is_some_and(|&h| hour > h + QUARANTINE_LAG_HOURS)
    };

    // The recidivism rule for automatic attribution: a prior signal on the
    // same core within the window.
    const RECIDIVISM_WINDOW_HOURS: f64 = 30.0 * 24.0;
    let mut last_signal_hour: HashMap<mercurial_fault::CoreUid, f64> = HashMap::new();

    for s in outcome.signals.all() {
        if silenced(s.core, s.hour) {
            continue;
        }
        match s.kind {
            SignalKind::UserReport => user.record_at_hour(s.hour, 1),
            SignalKind::ScreenerFailure => auto.record_at_hour(s.hour, 1),
            _ => {
                if let Some(&prev) = last_signal_hour.get(&s.core) {
                    if s.hour - prev <= RECIDIVISM_WINDOW_HOURS {
                        auto.record_at_hour(s.hour, 1);
                    }
                }
                last_signal_hour.insert(s.core, s.hour);
            }
        }
    }

    let baseline = user
        .first_nonzero_rate()
        .or_else(|| auto.first_nonzero_rate())
        .unwrap_or(1.0);
    Fig1Result {
        user,
        auto,
        baseline,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_produces_both_series_with_rising_auto_trend() {
        let scenario = Scenario::demo(21);
        let result = run_fig1(&scenario);
        let user_total: u64 = result.user.counts().iter().sum();
        let auto_total: u64 = result.auto.counts().iter().sum();
        assert!(user_total > 0, "user series must be populated");
        assert!(auto_total > 0, "auto series must be populated");
        // The paper's headline qualitative claim.
        assert!(
            result.auto_trend_slope() > 0.0,
            "auto trend slope {} should be positive",
            result.auto_trend_slope()
        );
    }

    #[test]
    fn fig1_render_and_csv_have_one_row_per_month() {
        let scenario = Scenario::demo(22);
        let result = run_fig1(&scenario);
        let csv = result.to_csv();
        assert_eq!(csv.lines().count() as u32, scenario.sim.months + 1);
        let chart = result.render();
        assert!(chart.contains("user-reported"));
        assert!(chart.contains("automatically-reported"));
    }

    #[test]
    fn closed_loop_fig1_populates_both_series() {
        let mut scenario = Scenario::demo(24);
        scenario.closed_loop.feedback = true;
        let result = run_fig1_closed_loop(&scenario);
        assert!(result.user.counts().iter().sum::<u64>() > 0);
        assert!(result.auto.counts().iter().sum::<u64>() > 0);
    }

    #[test]
    fn baseline_normalizes_first_nonzero_user_month_to_one() {
        let scenario = Scenario::demo(23);
        let result = run_fig1(&scenario);
        let pts = result.user.normalized(result.baseline);
        let first = pts
            .iter()
            .find(|p| p.value > 0.0)
            .expect("non-empty user series");
        assert!((first.value - 1.0).abs() < 1e-9);
    }
}
