//! The one-stop experiment handle: topology + population + simulator.

use crate::scenario::Scenario;
use mercurial_fleet::sim::SimSummary;
use mercurial_fleet::topology::FleetTopology;
use mercurial_fleet::{FleetSim, Population, SignalLog};

/// A materialized experiment: everything derived from a [`Scenario`].
pub struct FleetExperiment {
    scenario: Scenario,
    topo: FleetTopology,
    pop: Population,
}

impl FleetExperiment {
    /// Builds the topology and seeds the ground-truth population.
    pub fn build(scenario: &Scenario) -> FleetExperiment {
        let topo = FleetTopology::build(scenario.fleet.clone());
        let pop = Population::seed_from(&topo);
        FleetExperiment {
            scenario: scenario.clone(),
            topo,
            pop,
        }
    }

    /// Builds many experiments (topology construction plus ground-truth
    /// population seeding) fanned out across worker threads, in input
    /// order. Each build depends only on its scenario's seed, so results
    /// match serial construction exactly.
    pub fn build_many(scenarios: &[Scenario], parallelism: usize) -> Vec<FleetExperiment> {
        mercurial_fleet::par::map_parallel(scenarios, parallelism, FleetExperiment::build)
    }

    /// Builds with an explicitly placed population (case studies).
    pub fn with_population(scenario: &Scenario, pop: Population) -> FleetExperiment {
        let topo = FleetTopology::build(scenario.fleet.clone());
        FleetExperiment {
            scenario: scenario.clone(),
            topo,
            pop,
        }
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The materialized topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topo
    }

    /// The ground-truth population.
    pub fn population(&self) -> &Population {
        &self.pop
    }

    /// Ground-truth incidence per thousand machines.
    pub fn incidence_per_kmachine(&self) -> f64 {
        self.pop.count() as f64 / (self.scenario.fleet.machines as f64 / 1000.0)
    }

    /// Runs the workload signal simulation (no screening) and returns the
    /// time-sorted log plus summary counters.
    pub fn run_signals(&self) -> (SignalLog, SimSummary) {
        FleetSim::new(
            self.topo.clone(),
            self.pop.clone(),
            self.scenario.sim.clone(),
        )
        .run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_in_the_scenario() {
        let s = Scenario::small(5);
        let a = FleetExperiment::build(&s);
        let b = FleetExperiment::build(&s);
        assert_eq!(a.population().count(), b.population().count());
    }

    #[test]
    fn incidence_matches_paper_scale() {
        let s = Scenario::small(6);
        let e = FleetExperiment::build(&s);
        let per_k = e.incidence_per_kmachine();
        assert!(
            (0.0..=8.0).contains(&per_k),
            "incidence {per_k} per 1000 machines is implausible"
        );
    }

    #[test]
    fn signals_run_end_to_end() {
        let s = Scenario::small(7);
        let e = FleetExperiment::build(&s);
        let (log, summary) = e.run_signals();
        // There is always at least background noise in 18 fleet-months.
        assert!(!log.is_empty());
        assert!(summary.signals_emitted as usize == log.len());
    }
}
