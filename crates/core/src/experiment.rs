//! The one-stop experiment handle: topology + population + simulator.

use crate::scenario::Scenario;
use mercurial_fleet::sim::SimSummary;
use mercurial_fleet::topology::FleetTopology;
use mercurial_fleet::{FleetSim, Population, SignalLog};
use mercurial_fuzz::{run_campaign, CampaignConfig};
use mercurial_screening::EraSchedule;

/// A materialized experiment: everything derived from a [`Scenario`].
pub struct FleetExperiment {
    scenario: Scenario,
    topo: FleetTopology,
    pop: Population,
}

impl FleetExperiment {
    /// Builds the topology and seeds the ground-truth population.
    pub fn build(scenario: &Scenario) -> FleetExperiment {
        let topo = FleetTopology::build(scenario.fleet.clone());
        let pop = Population::seed_from(&topo);
        FleetExperiment {
            scenario: scenario.clone(),
            topo,
            pop,
        }
    }

    /// Builds many experiments (topology construction plus ground-truth
    /// population seeding) fanned out across worker threads, in input
    /// order. Each build depends only on its scenario's seed, so results
    /// match serial construction exactly.
    pub fn build_many(scenarios: &[Scenario], parallelism: usize) -> Vec<FleetExperiment> {
        mercurial_fleet::par::map_parallel(scenarios, parallelism, FleetExperiment::build)
    }

    /// Builds with an explicitly placed population (case studies).
    pub fn with_population(scenario: &Scenario, pop: Population) -> FleetExperiment {
        let topo = FleetTopology::build(scenario.fleet.clone());
        FleetExperiment {
            scenario: scenario.clone(),
            topo,
            pop,
        }
    }

    /// The scenario.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The materialized topology.
    pub fn topology(&self) -> &FleetTopology {
        &self.topo
    }

    /// The ground-truth population.
    pub fn population(&self) -> &Population {
        &self.pop
    }

    /// Ground-truth incidence per thousand machines.
    pub fn incidence_per_kmachine(&self) -> f64 {
        self.pop.count() as f64 / (self.scenario.fleet.machines as f64 / 1000.0)
    }

    /// The era schedule the screeners should run: the default coverage
    /// history, augmented with fuzz-distilled content when the scenario's
    /// [`fuzz_corpus`](crate::scenario::FuzzCorpusConfig) knob opts in.
    ///
    /// The augmentation runs a full `mercurial-fuzz` campaign (a pure
    /// function of the knob's seed and budget), then folds the distilled
    /// corpus's covered units, operand patterns, and healthy instruction
    /// mix into every era.
    pub fn screening_schedule(&self) -> EraSchedule {
        let base = EraSchedule::default_history();
        let knob = &self.scenario.fuzz_corpus;
        if !knob.enabled {
            return base;
        }
        let cfg = CampaignConfig {
            seed: knob.seed,
            budget: knob.budget as usize,
            parallelism: self.scenario.sim.parallelism,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&cfg);
        let distilled = &out.report.distilled;
        // The corpus's healthy instruction mix becomes extra per-unit op
        // budget on top of each era's hand-written content.
        let extra_ops = distilled.unit_ops.iter().sum::<u64>();
        base.with_fuzz_content(&distilled.covered_units(), &distilled.operands, extra_ops)
    }

    /// A fresh simulator over this experiment's topology and population —
    /// the closed-loop driver steps it epoch by epoch; [`run_signals`]
    /// runs it to completion.
    ///
    /// When the scenario's `workloads` block is enabled, each class in
    /// the default mix gets its diurnal traffic shape
    /// ([`WorkloadsConfig::shape_for`](crate::scenario::WorkloadsConfig::shape_for));
    /// the class weights are untouched, so machine→class assignment (a
    /// pure function of seed and weights) is identical either way.
    ///
    /// [`run_signals`]: FleetExperiment::run_signals
    pub fn sim(&self) -> FleetSim {
        let sim = FleetSim::new(
            self.topo.clone(),
            self.pop.clone(),
            self.scenario.sim.clone(),
        );
        let wk = &self.scenario.workloads;
        if !wk.enabled || wk.traffic_amplitude == 0.0 {
            return sim;
        }
        let mix = mercurial_fleet::WorkloadClass::default_mix()
            .into_iter()
            .enumerate()
            .map(|(ix, (class, weight))| (class.with_traffic(wk.shape_for(ix)), weight))
            .collect();
        sim.with_workloads(mix)
    }

    /// Runs the workload signal simulation (no screening) and returns the
    /// time-sorted log plus summary counters.
    pub fn run_signals(&self) -> (SignalLog, SimSummary) {
        self.sim().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_in_the_scenario() {
        let s = Scenario::small(5);
        let a = FleetExperiment::build(&s);
        let b = FleetExperiment::build(&s);
        assert_eq!(a.population().count(), b.population().count());
    }

    #[test]
    fn incidence_matches_paper_scale() {
        let s = Scenario::small(6);
        let e = FleetExperiment::build(&s);
        let per_k = e.incidence_per_kmachine();
        assert!(
            (0.0..=8.0).contains(&per_k),
            "incidence {per_k} per 1000 machines is implausible"
        );
    }

    #[test]
    fn fuzz_corpus_knob_augments_the_screening_schedule() {
        let mut s = Scenario::small(8);
        let base = FleetExperiment::build(&s).screening_schedule();
        s.fuzz_corpus.enabled = true;
        s.fuzz_corpus.budget = 16;
        let augmented = FleetExperiment::build(&s).screening_schedule();
        for (b, a) in base.eras().iter().zip(augmented.eras()) {
            assert!(a.units.len() >= b.units.len());
            assert!(a.operands.len() >= b.operands.len());
            assert!(a.ops_per_unit > b.ops_per_unit);
        }
        // The month-0 era only covers four units by hand; fuzz content
        // closes gaps from day one.
        assert!(augmented.era_at(0).units.len() > base.era_at(0).units.len());
    }

    #[test]
    fn signals_run_end_to_end() {
        let s = Scenario::small(7);
        let e = FleetExperiment::build(&s);
        let (log, summary) = e.run_signals();
        // There is always at least background noise in 18 fleet-months.
        assert!(!log.is_empty());
        assert!(summary.signals_emitted as usize == log.len());
    }
}
