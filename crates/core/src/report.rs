//! Text rendering of experiment outputs.

use crate::closedloop::ClosedLoopOutcome;
use crate::pipeline::PipelineOutcome;
use mercurial_fault::SymptomClass;
use mercurial_screening::DetectionMethod;

/// Renders a fixed-width two-column table.
pub fn kv_table(title: &str, rows: &[(&str, String)]) -> String {
    let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
    let mut out = format!("== {title} ==\n");
    for (k, v) in rows {
        out.push_str(&format!("  {k:<width$}  {v}\n"));
    }
    out
}

/// Renders the §2 symptom-class distribution from a pipeline outcome.
pub fn symptom_table(outcome: &PipelineOutcome) -> String {
    let total: u64 = outcome.sim_summary.symptom_counts.iter().sum();
    let mut rows = Vec::new();
    for class in SymptomClass::ALL {
        let n = outcome.sim_summary.symptom_count(class);
        let share = if total > 0 {
            100.0 * n as f64 / total as f64
        } else {
            0.0
        };
        rows.push((class.name(), format!("{n:>8}  ({share:>5.1}%)")));
    }
    let rows: Vec<(&str, String)> = rows;
    kv_table("Corruption outcomes by §2 risk class", &rows)
}

/// Renders the detection summary (counts per method, recall, latency).
pub fn detection_table(outcome: &PipelineOutcome) -> String {
    let count = |m: DetectionMethod| outcome.detections.iter().filter(|d| d.method == m).count();
    let rows = vec![
        (
            "ground-truth mercurial cores",
            outcome.ground_truth.to_string(),
        ),
        ("detected (true)", outcome.detected_true.to_string()),
        ("recall", format!("{:.1}%", 100.0 * outcome.recall())),
        ("via burn-in", count(DetectionMethod::BurnIn).to_string()),
        (
            "via offline sweeps",
            count(DetectionMethod::Offline).to_string(),
        ),
        (
            "via online screening",
            count(DetectionMethod::Online).to_string(),
        ),
        (
            "via human triage",
            count(DetectionMethod::Triage).to_string(),
        ),
        (
            "median detection latency",
            outcome
                .median_latency_hours()
                .map(|h| format!("{:.0} h ({:.1} months)", h, h / 730.0))
                .unwrap_or_else(|| "n/a".to_string()),
        ),
        (
            "latency p50/p95/p99",
            mercurial_metrics::percentiles(&outcome.detection_latency_hours)
                .map(|p| format!("{:.0} / {:.0} / {:.0} h", p.p50, p.p95, p.p99))
                .unwrap_or_else(|| "n/a".to_string()),
        ),
        (
            "triage confirmation rate",
            format!("{:.0}%", 100.0 * outcome.triage_stats.confirmation_rate()),
        ),
        (
            "innocents exonerated",
            outcome.exonerated_innocents.to_string(),
        ),
        (
            "capacity retained",
            format!("{:.4}%", 100.0 * outcome.capacity.availability()),
        ),
    ];
    kv_table("Detection pipeline", &rows)
}

/// Renders the closed-loop summary: detection outcomes plus the per-epoch
/// capacity/corruption telemetry the open loop cannot produce.
pub fn closed_loop_table(out: &ClosedLoopOutcome) -> String {
    let series = &out.series;
    let last = series.points().last();
    let rows = vec![
        ("epochs simulated", out.epochs.to_string()),
        ("epoch length", format!("{:.0} h", out.epoch_hours)),
        (
            "residual corrupt-ops",
            series.total_corrupt_ops().to_string(),
        ),
        (
            "capacity trough",
            format!("{:.4}%", 100.0 * series.min_capacity()),
        ),
        (
            "final capacity",
            last.map(|p| format!("{:.4}%", 100.0 * p.capacity))
                .unwrap_or_else(|| "n/a".to_string()),
        ),
        (
            "final capacity w/ safe-task",
            last.map(|p| format!("{:.4}%", 100.0 * p.capacity_with_safetask))
                .unwrap_or_else(|| "n/a".to_string()),
        ),
        (
            "mercurial cores still active",
            last.map(|p| p.active_mercurial.to_string())
                .unwrap_or_else(|| "n/a".to_string()),
        ),
    ];
    let class_table = out.series.render_class_table();
    if class_table.is_empty() {
        format!(
            "{}\n{}",
            kv_table("Closed-loop pipeline", &rows),
            detection_table(&out.pipeline)
        )
    } else {
        format!(
            "{}\n== Per-class attribution ==\n{}\n{}",
            kv_table("Closed-loop pipeline", &rows),
            class_table,
            detection_table(&out.pipeline)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closedloop::ClosedLoopDriver;
    use crate::pipeline::PipelineRun;
    use crate::scenario::Scenario;

    #[test]
    fn tables_render_without_panicking_and_contain_key_rows() {
        let outcome = PipelineRun::execute(&Scenario::small(31));
        let symptoms = symptom_table(&outcome);
        assert!(symptoms.contains("wrong-never-detected"));
        let detection = detection_table(&outcome);
        assert!(detection.contains("recall"));
        assert!(detection.contains("latency p50/p95/p99"));
        assert!(detection.contains("triage confirmation rate"));
    }

    #[test]
    fn closed_loop_table_reports_the_feedback_epoch_series() {
        let mut scenario = Scenario::demo(32);
        scenario.closed_loop.feedback = true;
        let out = ClosedLoopDriver::execute(&scenario);
        let table = closed_loop_table(&out);
        assert!(table.contains("Closed-loop pipeline"));
        assert!(table.contains("capacity trough"));
        assert!(table.contains("recall"));
    }

    #[test]
    fn kv_table_aligns() {
        let t = kv_table("T", &[("a", "1".to_string()), ("longer", "2".to_string())]);
        assert!(t.contains("== T =="));
        assert!(t.contains("a       1"));
    }
}
