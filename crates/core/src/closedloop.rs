//! The closed-loop epoch driver: detect → quarantine → reschedule, every
//! epoch.
//!
//! The batch pipeline ([`PipelineRun`]) is *open loop*: the whole
//! observation window is simulated first, then screening, triage, and
//! quarantine are applied to the finished signal log — so a core the
//! screeners caught in month 2 keeps corrupting results until month 36.
//! That is not how §6 describes operations: "the first line of defense is
//! necessarily a robust infrastructure for detecting mercurial cores *as
//! quickly as possible*", and detections "become grounds for quarantining
//! those cores".
//!
//! [`ClosedLoopDriver`] interleaves everything at epoch granularity: each
//! epoch it (1) restores exonerated cores whose repair latency has
//! elapsed, (2) processes the deep-check verdict queue under a per-epoch
//! budget, (3) runs the due burn-in / offline / online screens, (4) steps
//! the workload simulation one epoch with quarantined cores masked out,
//! (5) ingests the epoch's signals into the suspicion scoreboard, and
//! (6) quarantines new threshold crossings. Confirmed cores leave the
//! workload mix mid-simulation (their corruption and signals stop) and
//! unit-aware safe-task placement ([`SafeTaskPolicy`]) recovers part of
//! the stranded capacity; exonerated cores return to service.
//!
//! With `scenario.closed_loop.feedback == false` the driver degrades to
//! the open loop *bit for bit*: the simulation is stepped epoch by epoch
//! (identical to [`mercurial_fleet::FleetSim::run`] under the §4.1
//! determinism contract) and the batch back half
//! ([`PipelineRun::complete_from_signals`]) runs on the finished log. The
//! batch screeners are phase-major (each campaign scans the whole window
//! before the next starts), which a time-major interleaving cannot
//! reproduce — so equivalence is by construction, not by re-derivation.

use crate::experiment::FleetExperiment;
use crate::pipeline::{PipelineOutcome, PipelineRun};
use crate::scenario::Scenario;
use mercurial_fault::{CoreUid, FastSet, FunctionalUnit};
use mercurial_fleet::sim::SimSummary;
use mercurial_fleet::{EventKind, EventQueue, SignalLog};
use mercurial_isolation::{CapacityLedger, QuarantineRegistry, SafeTaskPolicy, TaskUnitProfile};
use mercurial_metrics::EpochSeries;
use mercurial_screening::{
    BurnIn, DetectionMethod, DetectionRecord, HumanTriage, OfflineScreener, OnlineScreener,
    Scoreboard, TriageOutcome, TriageStats,
};
use mercurial_trace::{MetricSet, Recorder, TraceSink};
use mercurial_watch::{Alert, Baseline, EpochRow, RuleSet, WatchEngine, WatchReport};
use std::collections::{HashMap, HashSet};

/// Emits one `gt.onset` instant per mercurial core at the hour its defect
/// can first manifest (deploy + earliest onset), in population (sorted
/// `CoreUid`) order — the ground-truth anchor of the incident timeline.
fn record_ground_truth_onsets(experiment: &FleetExperiment, rec: &mut Recorder) {
    if !rec.enabled() {
        return;
    }
    let topo = experiment.topology();
    for core in experiment.population().mercurial_cores() {
        let deploy = topo.machines()[core.uid.machine as usize].deploy_hour;
        let onset = deploy + core.profile.earliest_onset_hours().max(0.0);
        rec.instant(onset, "gt.onset", Some(core.uid.as_u64()), 0.0);
    }
    rec.counter_add("gt.mercurial_cores", experiment.population().count() as u64);
}

/// Everything a closed-loop run produced: the familiar end-of-window
/// aggregates plus the per-epoch time series.
pub struct ClosedLoopOutcome {
    /// End-of-window aggregates, same shape as the open-loop pipeline's.
    pub pipeline: PipelineOutcome,
    /// Per-epoch capacity / residual-corruption / active-core telemetry.
    pub series: EpochSeries,
    /// Epochs simulated.
    pub epochs: u32,
    /// Epoch length in hours.
    pub epoch_hours: f64,
    /// Structured trace of the run (empty unless `scenario.trace.enabled`;
    /// when a streaming sink drained the run, events live in the sink's
    /// output and only the metric set remains here).
    pub trace: mercurial_trace::Trace,
    /// Alert readout (`None` unless rules were supplied via
    /// [`RunOptions::rules`] or `scenario.watch.enabled`).
    pub watch: Option<WatchReport>,
}

/// Optional attachments for a closed-loop run: alert rules, a cross-run
/// baseline for regression rules, and a streaming trace sink.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Alert rules to evaluate in-loop. `None` falls back to the
    /// scenario's `watch` block (or no evaluation when that is off).
    pub rules: Option<RuleSet>,
    /// Baseline for regression rules (without one they report
    /// "no baseline" and never fire).
    pub baseline: Option<&'a Baseline>,
    /// Streaming sink drained at every epoch boundary. With a sink
    /// attached the outcome's `trace.events` is empty — events live in
    /// the sink's output, byte-identical to the buffered export.
    pub sink: Option<&'a mut dyn TraceSink>,
}

/// The in-loop alert engine a run asked for, if any.
fn watch_engine(scenario: &Scenario, rules: &Option<RuleSet>) -> Option<WatchEngine> {
    match rules {
        Some(rs) => Some(WatchEngine::new(rs.clone())),
        None if scenario.watch.enabled => Some(WatchEngine::new(scenario.watch.rule_set())),
        None => None,
    }
}

/// Stamp freshly fired alerts into the trace as `alert.fired` instants
/// (value = rule index, hour = the violation's hour).
fn record_alerts(rec: &mut Recorder, alerts: &[(usize, Alert)]) {
    for (idx, a) in alerts {
        rec.instant(a.hour, "alert.fired", None, *idx as f64);
    }
}

/// The §6.1 task mix used to price safe-task recovery on confirmed cores
/// (the "balanced" mix of the E10 experiment).
fn balanced_task_mix() -> Vec<(TaskUnitProfile, f64)> {
    use FunctionalUnit as U;
    vec![
        (
            TaskUnitProfile::new(
                "scalar-batch",
                vec![U::ScalarAlu, U::LoadStore, U::BranchUnit, U::AddressGen],
                false,
            ),
            0.35,
        ),
        (
            TaskUnitProfile::new(
                "gemm",
                vec![U::Fma, U::VectorPipe, U::LoadStore, U::AddressGen],
                false,
            ),
            0.25,
        ),
        (
            TaskUnitProfile::new(
                "tls",
                vec![U::CryptoUnit, U::ScalarAlu, U::LoadStore, U::AddressGen],
                false,
            ),
            0.15,
        ),
        (
            TaskUnitProfile::new(
                "db",
                vec![
                    U::ScalarAlu,
                    U::Atomics,
                    U::LoadStore,
                    U::BranchUnit,
                    U::AddressGen,
                ],
                false,
            ),
            0.15,
        ),
        (
            TaskUnitProfile::new(
                "log-shipper",
                vec![U::ScalarAlu, U::LoadStore, U::AddressGen],
                true,
            ),
            0.10,
        ),
    ]
}

/// The closed-loop driver.
pub struct ClosedLoopDriver;

impl ClosedLoopDriver {
    /// Executes the closed-loop pipeline for a scenario.
    pub fn execute(scenario: &Scenario) -> ClosedLoopOutcome {
        let experiment = FleetExperiment::build(scenario);
        ClosedLoopDriver::execute_on(scenario, &experiment)
    }

    /// Executes on a prebuilt experiment.
    pub fn execute_on(scenario: &Scenario, experiment: &FleetExperiment) -> ClosedLoopOutcome {
        ClosedLoopDriver::execute_with(scenario, experiment, RunOptions::default())
    }

    /// Executes on a prebuilt experiment with run attachments: alert
    /// rules (evaluated at every epoch boundary), a regression baseline,
    /// and/or a streaming trace sink.
    pub fn execute_with(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        if scenario.closed_loop.feedback {
            ClosedLoopDriver::run_with_feedback(scenario, experiment, opts)
        } else {
            ClosedLoopDriver::run_open_loop_stepped(scenario, experiment, opts)
        }
    }

    /// Feedback disabled: step the simulation epoch by epoch (bit-for-bit
    /// equal to the batch run under the determinism contract), record the
    /// per-epoch series, then run the shared batch back half.
    fn run_open_loop_stepped(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        mut opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        let sim = experiment.sim();
        let topo = experiment.topology();
        let mut state = sim.begin();
        let epochs = state.total_epochs();
        let epoch_hours = scenario.sim.epoch_hours;
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        let mut series = EpochSeries::new(epoch_hours);
        let mut engine = watch_engine(scenario, &opts.rules);
        let mut rec = scenario.trace.recorder();
        record_ground_truth_onsets(experiment, &mut rec);
        while !state.is_done() {
            let h0 = state.hour();
            let h1 = h0 + epoch_hours;
            let before = summary.corruptions;
            sim.step_epoch_traced(&mut state, &mut log, &mut summary, &mut rec);
            // Open loop: nothing is ever quarantined mid-window, so
            // capacity is flat at 1.0 and every defect stays active.
            let active = state.active_deployed_mercurial(topo, h0);
            let ops = summary.corruptions - before;
            rec.gauge(h1, "fleet.active_mercurial", active as f64);
            // Last gauge of every epoch boundary: the replay path
            // (`WatchInput::from_jsonl`) closes the epoch row on it.
            rec.gauge(h1, "epoch.corrupt_ops", ops as f64);
            series.push(1.0, 1.0, ops, active);
            if let Some(eng) = engine.as_mut() {
                let fired = eng.push_epoch(EpochRow {
                    hour: h1,
                    capacity: 1.0,
                    capacity_with_safetask: 1.0,
                    corrupt_ops: ops as f64,
                    active_mercurial: active as f64,
                });
                record_alerts(&mut rec, &fired);
            }
            if let Some(s) = opts.sink.as_mut() {
                s.drain(&mut rec).expect("stream sink drain");
            }
        }
        log.sort_by_time();
        let pipeline = PipelineRun::complete_from_signals(scenario, experiment, log, summary);
        for latency in &pipeline.detection_latency_hours {
            rec.observe("detect.latency_hours", *latency);
        }
        let watch = match engine {
            Some(eng) => {
                let empty = MetricSet::new();
                let (report, end_alerts) =
                    eng.finish(rec.metrics().unwrap_or(&empty), opts.baseline);
                record_alerts(&mut rec, &end_alerts);
                Some(report)
            }
            None => None,
        };
        if let Some(s) = opts.sink.as_mut() {
            s.finish(&mut rec).expect("stream sink finish");
        }
        ClosedLoopOutcome {
            pipeline,
            series,
            epochs,
            epoch_hours,
            trace: rec.finish(),
            watch,
        }
    }

    /// Feedback enabled: the full epoch-interleaved loop.
    fn run_with_feedback(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        mut opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        let sim = experiment.sim();
        let topo = experiment.topology();
        let pop = experiment.population();
        let tuning = &scenario.tuning;
        let policy = &scenario.closed_loop;
        let epoch_hours = scenario.sim.epoch_hours;
        let parallelism = scenario.sim.parallelism;
        let schedule = experiment.screening_schedule();

        // Screeners, stepped as campaigns instead of whole-window runs.
        let burnin = BurnIn {
            schedule: schedule.clone(),
            ops_multiplier: tuning.burnin_ops_multiplier,
            parallelism,
        };
        let mut burnin_campaign = burnin.campaign(topo);
        let offline = OfflineScreener {
            schedule: schedule.clone(),
            interval_hours: scenario.offline_interval_hours,
            fraction_per_sweep: scenario.offline_fraction,
            drain_hours_per_machine: tuning.offline_drain_hours_per_machine,
            parallelism,
        };
        let mut offline_campaign = offline.campaign(scenario.sim.months);
        let online = OnlineScreener {
            schedule,
            interval_hours: scenario.online_interval_hours,
            ops_fraction: tuning.online_ops_fraction,
            parallelism,
        };
        let mut online_campaign = online.campaign(scenario.sim.months);

        // In-loop isolation machinery.
        let mut registry = QuarantineRegistry::new();
        let mut ledger = CapacityLedger::new();
        for m in topo.machines() {
            let cores = topo.product_of(m.machine).cores_per_socket as u64
                * topo.config().sockets_per_machine as u64;
            ledger.register_machine(m.machine, cores);
        }
        let safe_policy = SafeTaskPolicy;
        let task_mix = balanced_task_mix();
        // Fractional cores recovered by safe-task placement on confirmed
        // cores (each confirmed core contributes the placeable share of
        // the task mix, given its now-known defective units).
        let mut recovered_cores = 0.0f64;

        let triage = HumanTriage::default();
        let mut triage_stats = TriageStats::default();
        let mut case_id = 0u64;

        let mut scoreboard = Scoreboard::new();
        scoreboard.arm(scenario.suspicion_threshold);
        let mut state = sim.begin();
        let epochs = state.total_epochs();
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        let mut series = EpochSeries::new(epoch_hours);

        let mut detections: Vec<DetectionRecord> = Vec::new();
        // Cores currently out of service: skipped by screeners, masked in
        // the sim, and stripped of newly attributed signals.
        let mut out_of_service: FastSet<CoreUid> = FastSet::default();
        // Cores ever sent to triage — a restored core is not re-triaged on
        // the same (stale) suspicion score.
        let mut handled: FastSet<CoreUid> = FastSet::default();
        // Driver timers live on event heaps: deep-check verdicts pop in
        // due-hour order (an earlier-quarantined suspect is never starved
        // behind a later one by queue position — the old FIFO could
        // reorder same-epoch crossings), restorations pop in restore-hour
        // order, and each screening campaign keeps exactly one pending
        // wake. Ties break `Restore < ScreeningDue < DeepCheck` per the
        // [`EventKind`] rank contract, then by insertion order.
        let mut deep_q: EventQueue<CoreUid> = EventQueue::new();
        let mut restore_q: EventQueue<CoreUid> = EventQueue::new();
        // Payload: 0 = burn-in, 1 = offline, 2 = online.
        let mut screen_q: EventQueue<u8> = EventQueue::new();
        if let Some(h) = burnin_campaign.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 0);
        }
        if let Some(h) = offline_campaign.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 1);
        }
        if let Some(h) = online_campaign.next_hour() {
            screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 2);
        }
        let mut exonerated_innocents = 0usize;

        let mut engine = watch_engine(scenario, &opts.rules);
        let mut rec = scenario.trace.recorder();
        record_ground_truth_onsets(experiment, &mut rec);

        while !state.is_done() {
            let h0 = state.hour();
            let h1 = h0 + epoch_hours;
            rec.begin(h0, "loop.epoch");

            // 1. Restorations whose repair latency has elapsed re-enter
            //    service at the epoch boundary, in restore-hour order.
            while let Some((restore_hour, core)) = restore_q.pop_due(h0) {
                registry
                    .restore_traced(core, restore_hour, "repair latency elapsed", &mut rec)
                    .expect("exonerated core can restore");
                ledger.restore_core_traced(core, restore_hour, &mut rec);
                out_of_service.remove(&core);
                state.set_active(core, true);
            }

            // 2. Deep-check verdicts, due-hour order under the per-epoch
            //    budget (the triage team is finite; excess suspects stay
            //    queued and their verdicts slip to the next boundary).
            let mut budget = policy.deep_checks_per_epoch;
            while budget > 0 && deep_q.peek_time().is_some_and(|t| t < h1) {
                let (due_hour, core) = deep_q.pop().expect("peeked a due case");
                let verdict_hour = due_hour.max(h0);
                budget -= 1;
                triage_stats.investigated += 1;
                match triage.investigate(topo, pop, core, verdict_hour, case_id) {
                    TriageOutcome::Confirmed => {
                        triage_stats.confirmed += 1;
                        if pop.is_mercurial(core) {
                            triage_stats.confirmed_true += 1;
                        }
                        registry
                            .confirm_traced(core, verdict_hour, "deep check confession", &mut rec)
                            .expect("quarantined core can confirm");
                        rec.instant(verdict_hour, "detect.triage", Some(core.as_u64()), 0.0);
                        recovered_cores += safe_task_share(&safe_policy, &task_mix, pop, core);
                        detections.push(DetectionRecord {
                            core,
                            hour: verdict_hour,
                            method: DetectionMethod::Triage,
                        });
                    }
                    TriageOutcome::NotReproduced => {
                        triage_stats.not_reproduced += 1;
                        if pop.is_mercurial(core) {
                            triage_stats.missed_true += 1;
                        }
                        registry
                            .exonerate_traced(core, verdict_hour, "nothing reproduced", &mut rec)
                            .expect("quarantined core can exonerate");
                        if !pop.is_mercurial(core) {
                            exonerated_innocents += 1;
                        }
                        restore_q.schedule_ranked(
                            verdict_hour + policy.restore_latency_hours,
                            EventKind::Restore.rank(),
                            core,
                        );
                    }
                }
                case_id += 1;
            }

            // 3. Screens due this epoch. A screener failure is proof (a
            //    controlled test failed), so the core is confirmed and
            //    leaves service immediately. Campaign timers live on the
            //    event heap — an epoch with nothing due costs one peek —
            //    and due campaigns run in the fixed burn-in → offline →
            //    online phase order regardless of their timer hours.
            let mut campaign_due = [false; 3];
            while screen_q.peek_time().is_some_and(|t| t < h1) {
                let (_, which) = screen_q.pop().expect("peeked a due timer");
                campaign_due[which as usize] = true;
            }
            let mut screened = Vec::new();
            if campaign_due[0] {
                screened.extend(burnin_campaign.step_until_traced(
                    topo,
                    pop,
                    h1,
                    &mut out_of_service,
                    &mut log,
                    &mut rec,
                ));
                if let Some(h) = burnin_campaign.next_hour() {
                    screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 0);
                }
            }
            if campaign_due[1] {
                screened.extend(offline_campaign.step_until_traced(
                    topo,
                    pop,
                    h1,
                    &mut out_of_service,
                    &mut log,
                    &mut rec,
                ));
                if let Some(h) = offline_campaign.next_hour() {
                    screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 1);
                }
            }
            if campaign_due[2] {
                screened.extend(online_campaign.step_until_traced(
                    topo,
                    pop,
                    h1,
                    &mut out_of_service,
                    &mut log,
                    &mut rec,
                ));
                if let Some(h) = online_campaign.next_hour() {
                    screen_q.schedule_ranked(h, EventKind::ScreeningDue.rank(), 2);
                }
            }
            for d in screened {
                registry
                    .mark_suspect_traced(d.core, d.hour, "screener failure", &mut rec)
                    .and_then(|()| {
                        registry.quarantine_traced(
                            d.core,
                            d.hour,
                            "controlled test failed",
                            &mut rec,
                        )
                    })
                    .and_then(|()| {
                        registry.confirm_traced(
                            d.core,
                            d.hour,
                            "screen reproduced defect",
                            &mut rec,
                        )
                    })
                    .expect("in-service core walks the legal path");
                ledger.remove_core_traced(d.core, d.hour, &mut rec);
                recovered_cores += safe_task_share(&safe_policy, &task_mix, pop, d.core);
                state.set_active(d.core, false);
                detections.push(d);
            }

            // 4. One epoch of workload simulation, masked cores silent.
            let before_corruptions = summary.corruptions;
            let mut epoch_log = SignalLog::new();
            sim.step_epoch_traced(&mut state, &mut epoch_log, &mut summary, &mut rec);
            // Withdraw signals attributed to out-of-service cores (the
            // noise layer attributes background events to random cores; a
            // drained core files no reports).
            let dropped = epoch_log.retain(|s| !out_of_service.contains(&s.core));
            summary.signals_emitted -= dropped as u64;
            summary.noise_signals -= dropped as u64;

            // 5. Suspicion accumulates from this epoch's surviving signals.
            scoreboard.ingest_all_traced(epoch_log.all().iter(), &mut rec);
            log.append(epoch_log);

            // 6. New threshold crossings are quarantined and queued for a
            //    deep check after the triage latency.
            let crossings: Vec<(CoreUid, f64)> = scoreboard
                .armed_suspects_excluding(|core| {
                    handled.contains(&core) || out_of_service.contains(&core)
                })
                .into_iter()
                .map(|s| (s.core, s.last_hour))
                .collect();
            for (core, hour) in crossings {
                registry
                    .mark_suspect_traced(core, hour, "signal concentration", &mut rec)
                    .and_then(|()| {
                        registry.quarantine_traced(core, hour, "suspicion threshold", &mut rec)
                    })
                    .expect("in-service core walks the legal path");
                ledger.remove_core_traced(core, hour, &mut rec);
                out_of_service.insert(core);
                handled.insert(core);
                state.set_active(core, false);
                deep_q.schedule_ranked(
                    hour + policy.triage_latency_hours,
                    EventKind::DeepCheck.rank(),
                    core,
                );
            }

            // 7. The epoch's telemetry point.
            let pool = ledger.pool();
            let base = pool.availability();
            let with_safetask = if pool.nominal_cores == 0 {
                1.0
            } else {
                (pool.effective_cores as f64 + recovered_cores) / pool.nominal_cores as f64
            };
            let active = state.active_deployed_mercurial(topo, h0);
            let ops = summary.corruptions - before_corruptions;
            rec.gauge(h1, "capacity.availability", base);
            rec.gauge(h1, "capacity.with_safetask", with_safetask);
            rec.gauge(h1, "fleet.active_mercurial", active as f64);
            // Last gauge of every epoch boundary: the replay path
            // (`WatchInput::from_jsonl`) closes the epoch row on it.
            rec.gauge(h1, "epoch.corrupt_ops", ops as f64);
            series.push(base, with_safetask, ops, active);
            if let Some(eng) = engine.as_mut() {
                let fired = eng.push_epoch(EpochRow {
                    hour: h1,
                    capacity: base,
                    capacity_with_safetask: with_safetask,
                    corrupt_ops: ops as f64,
                    active_mercurial: active as f64,
                });
                record_alerts(&mut rec, &fired);
            }
            rec.end(h1, "loop.epoch");
            if let Some(s) = opts.sink.as_mut() {
                s.drain(&mut rec).expect("stream sink drain");
            }
        }

        // Final assembly. User-report escalations drawn while a core was
        // still in service can carry dates past its later confirmation
        // hour; withdraw them so no signal is attributed to a core after
        // it was confirmed defective.
        let confirm_hour: HashMap<CoreUid, f64> = registry
            .in_state(mercurial_isolation::CoreState::Confirmed)
            .into_iter()
            .map(|core| {
                let hour = registry
                    .history(core)
                    .iter()
                    .find(|t| t.to == mercurial_isolation::CoreState::Confirmed)
                    .expect("confirmed core has a confirm transition")
                    .hour;
                (core, hour)
            })
            .collect();
        let mut dropped_noise = 0u64;
        let dropped = log.retain(|s| {
            let keep = confirm_hour.get(&s.core).is_none_or(|&c| s.hour <= c);
            if !keep && !s.caused_by_cee {
                dropped_noise += 1;
            }
            keep
        });
        summary.signals_emitted -= dropped as u64;
        summary.noise_signals -= dropped_noise;
        log.sort_by_time();

        detections.sort_by(|a, b| a.hour.partial_cmp(&b.hour).expect("hours are finite"));
        let detected_cores: HashSet<CoreUid> = detections.iter().map(|d| d.core).collect();
        let detected_true = detected_cores
            .iter()
            .filter(|c| pop.is_mercurial(**c))
            .count();
        let mut detection_latency_hours = Vec::new();
        for d in &detections {
            if let Some(profile) = pop.profile_of(d.core) {
                let deploy = topo.machines()[d.core.machine as usize].deploy_hour;
                let active_from = deploy + profile.earliest_onset_hours().max(0.0);
                let latency = (d.hour - active_from).max(0.0);
                rec.observe("detect.latency_hours", latency);
                detection_latency_hours.push(latency);
            }
        }

        let pipeline = PipelineOutcome {
            detections,
            burnin_stats: burnin_campaign.stats(),
            offline_stats: offline_campaign.stats(),
            online_stats: online_campaign.stats(),
            triage_stats,
            capacity: ledger.pool(),
            registry,
            signals: log,
            sim_summary: summary,
            ground_truth: pop.count(),
            detected_true,
            exonerated_innocents,
            detection_latency_hours,
        };
        let watch = match engine {
            Some(eng) => {
                let empty = MetricSet::new();
                let (report, end_alerts) =
                    eng.finish(rec.metrics().unwrap_or(&empty), opts.baseline);
                record_alerts(&mut rec, &end_alerts);
                Some(report)
            }
            None => None,
        };
        if let Some(s) = opts.sink.as_mut() {
            s.finish(&mut rec).expect("stream sink finish");
        }
        ClosedLoopOutcome {
            pipeline,
            series,
            epochs,
            epoch_hours,
            trace: rec.finish(),
            watch,
        }
    }
}

/// The share of the task mix placeable on one confirmed core, given its
/// ground-truth defective units (known post-confession).
fn safe_task_share(
    policy: &SafeTaskPolicy,
    task_mix: &[(TaskUnitProfile, f64)],
    pop: &mercurial_fleet::Population,
    core: CoreUid,
) -> f64 {
    match pop.profile_of(core) {
        Some(profile) => policy.capacity_recovered(task_mix, &[profile.afflicted_units()]),
        // Only genuinely defective cores can be confirmed (screens are
        // exact), so this arm is unreachable in practice.
        None => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fleet::SignalKind;
    use mercurial_isolation::CoreState;

    fn feedback_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::demo(seed);
        s.closed_loop.feedback = true;
        s
    }

    #[test]
    fn open_loop_stepped_series_covers_the_window() {
        let scenario = Scenario::small(41);
        let out = ClosedLoopDriver::execute(&scenario);
        assert_eq!(out.series.len() as u32, out.epochs);
        assert!((out.series.min_capacity() - 1.0).abs() < 1e-12);
        assert_eq!(
            out.series.total_corrupt_ops(),
            out.pipeline.sim_summary.corruptions
        );
    }

    #[test]
    fn feedback_quarantines_and_recovers_capacity() {
        let scenario = feedback_scenario(42);
        let out = ClosedLoopDriver::execute(&scenario);
        assert!(
            !out.pipeline.detections.is_empty(),
            "demo fleet must yield detections"
        );
        // Capacity steps down at confirmations...
        assert!(out.series.min_capacity() < 1.0);
        // ...and safe-task placement claws part of it back.
        let last = out.series.points().last().expect("non-empty series");
        assert!(last.capacity_with_safetask > last.capacity);
        assert!(last.capacity_with_safetask <= 1.0 + 1e-12);
        // Confirmed cores match the ledger's loss.
        assert_eq!(
            out.pipeline.capacity.lost_cores as usize,
            out.pipeline.registry.in_state(CoreState::Confirmed).len()
                + out.pipeline.registry.in_state(CoreState::Quarantined).len()
                + out.pipeline.registry.in_state(CoreState::Exonerated).len()
        );
    }

    #[test]
    fn no_signal_attributed_after_confirmation() {
        let scenario = feedback_scenario(43);
        let out = ClosedLoopDriver::execute(&scenario);
        let registry = &out.pipeline.registry;
        let confirmed = registry.in_state(CoreState::Confirmed);
        assert!(!confirmed.is_empty(), "demo fleet must confirm cores");
        for core in confirmed {
            let confirm = registry
                .history(core)
                .iter()
                .find(|t| t.to == CoreState::Confirmed)
                .expect("confirm transition recorded")
                .hour;
            for s in out.pipeline.signals.all().iter().filter(|s| s.core == core) {
                assert!(
                    s.hour <= confirm,
                    "signal at {} after confirmation at {confirm}",
                    s.hour
                );
            }
        }
    }

    #[test]
    fn closed_loop_reduces_residual_corruption() {
        let scenario = Scenario::demo(44);
        let open = ClosedLoopDriver::execute(&scenario);
        let mut with_feedback = scenario.clone();
        with_feedback.closed_loop.feedback = true;
        let closed = ClosedLoopDriver::execute(&with_feedback);
        assert!(
            closed.pipeline.sim_summary.corruptions < open.pipeline.sim_summary.corruptions,
            "closed {} must corrupt less than open {}",
            closed.pipeline.sim_summary.corruptions,
            open.pipeline.sim_summary.corruptions
        );
    }

    #[test]
    fn user_report_signal_kinds_survive_the_loop() {
        // The pruning must not eat the noise haystack wholesale.
        let out = ClosedLoopDriver::execute(&feedback_scenario(45));
        assert!(out
            .pipeline
            .signals
            .all()
            .iter()
            .any(|s| s.kind == SignalKind::UserReport && !s.caused_by_cee));
        assert_eq!(
            out.pipeline.sim_summary.signals_emitted as usize,
            out.pipeline
                .signals
                .all()
                .iter()
                .filter(|s| s.kind != SignalKind::ScreenerFailure)
                .count()
        );
    }
}
