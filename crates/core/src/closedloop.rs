//! The closed-loop epoch driver: detect → quarantine → reschedule, every
//! epoch.
//!
//! The batch pipeline ([`PipelineRun`]) is *open loop*: the whole
//! observation window is simulated first, then screening, triage, and
//! quarantine are applied to the finished signal log — so a core the
//! screeners caught in month 2 keeps corrupting results until month 36.
//! That is not how §6 describes operations: "the first line of defense is
//! necessarily a robust infrastructure for detecting mercurial cores *as
//! quickly as possible*", and detections "become grounds for quarantining
//! those cores".
//!
//! [`ClosedLoopDriver`] interleaves everything at epoch granularity: each
//! epoch it (1) restores exonerated cores whose repair latency has
//! elapsed, (2) processes the deep-check verdict queue under a per-epoch
//! budget, (3) runs the due burn-in / offline / online screens, (4) steps
//! the workload simulation one epoch with quarantined cores masked out,
//! (5) ingests the epoch's signals into the suspicion scoreboard, and
//! (6) quarantines new threshold crossings. Confirmed cores leave the
//! workload mix mid-simulation (their corruption and signals stop) and
//! unit-aware safe-task placement ([`SafeTaskPolicy`]) recovers part of
//! the stranded capacity; exonerated cores return to service.
//!
//! With `scenario.closed_loop.feedback == false` the driver degrades to
//! the open loop *bit for bit*: the simulation is stepped epoch by epoch
//! (identical to [`mercurial_fleet::FleetSim::run`] under the §4.1
//! determinism contract) and the batch back half
//! ([`PipelineRun::complete_from_signals`]) runs on the finished log. The
//! batch screeners are phase-major (each campaign scans the whole window
//! before the next starts), which a time-major interleaving cannot
//! reproduce — so equivalence is by construction, not by re-derivation.

use crate::experiment::FleetExperiment;
use crate::pipeline::{PipelineOutcome, PipelineRun};
use crate::scenario::Scenario;
use crate::shardloop::{
    record_alerts, record_ground_truth_onsets, watch_engine, ClassMetricNames, FleetAggregator,
    FleetShard,
};
use mercurial_fleet::sim::SimSummary;
use mercurial_fleet::SignalLog;
use mercurial_metrics::{ClassPoint, EpochSeries};
use mercurial_prof::Prof;
use mercurial_trace::{MetricSet, TraceSink};
use mercurial_watch::{Baseline, EpochRow, RuleSet, WatchReport};

/// Everything a closed-loop run produced: the familiar end-of-window
/// aggregates plus the per-epoch time series.
pub struct ClosedLoopOutcome {
    /// End-of-window aggregates, same shape as the open-loop pipeline's.
    pub pipeline: PipelineOutcome,
    /// Per-epoch capacity / residual-corruption / active-core telemetry.
    pub series: EpochSeries,
    /// Epochs simulated.
    pub epochs: u32,
    /// Epoch length in hours.
    pub epoch_hours: f64,
    /// Structured trace of the run (empty unless `scenario.trace.enabled`;
    /// when a streaming sink drained the run, events live in the sink's
    /// output and only the metric set remains here).
    pub trace: mercurial_trace::Trace,
    /// Alert readout (`None` unless rules were supplied via
    /// [`RunOptions::rules`] or `scenario.watch.enabled`).
    pub watch: Option<WatchReport>,
}

/// Optional attachments for a closed-loop run: alert rules, a cross-run
/// baseline for regression rules, and a streaming trace sink.
#[derive(Default)]
pub struct RunOptions<'a> {
    /// Alert rules to evaluate in-loop. `None` falls back to the
    /// scenario's `watch` block (or no evaluation when that is off).
    pub rules: Option<RuleSet>,
    /// Baseline for regression rules (without one they report
    /// "no baseline" and never fire).
    pub baseline: Option<&'a Baseline>,
    /// Streaming sink drained at every epoch boundary. With a sink
    /// attached the outcome's `trace.events` is empty — events live in
    /// the sink's output, byte-identical to the buffered export.
    pub sink: Option<&'a mut dyn TraceSink>,
    /// Wall-clock phase profiler. Readings are write-only observability
    /// — they never feed sim-visible state — so attaching a profiler
    /// leaves every output bit-for-bit identical (pinned by
    /// `tests/prof_parity.rs`). `None` profiles nothing at the cost of
    /// one branch per phase.
    pub prof: Option<&'a Prof>,
}

/// The closed-loop driver.
pub struct ClosedLoopDriver;

impl ClosedLoopDriver {
    /// Executes the closed-loop pipeline for a scenario.
    pub fn execute(scenario: &Scenario) -> ClosedLoopOutcome {
        let experiment = FleetExperiment::build(scenario);
        ClosedLoopDriver::execute_on(scenario, &experiment)
    }

    /// Executes on a prebuilt experiment.
    pub fn execute_on(scenario: &Scenario, experiment: &FleetExperiment) -> ClosedLoopOutcome {
        ClosedLoopDriver::execute_with(scenario, experiment, RunOptions::default())
    }

    /// Executes on a prebuilt experiment with run attachments: alert
    /// rules (evaluated at every epoch boundary), a regression baseline,
    /// and/or a streaming trace sink.
    pub fn execute_with(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        if scenario.closed_loop.feedback {
            ClosedLoopDriver::run_with_feedback(scenario, experiment, opts)
        } else {
            ClosedLoopDriver::run_open_loop_stepped(scenario, experiment, opts)
        }
    }

    /// Feedback disabled: step the simulation epoch by epoch (bit-for-bit
    /// equal to the batch run under the determinism contract), record the
    /// per-epoch series, then run the shared batch back half.
    fn run_open_loop_stepped(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        mut opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        let sim = experiment.sim();
        let topo = experiment.topology();
        let mut state = sim.begin();
        let epochs = state.total_epochs();
        let epoch_hours = scenario.sim.epoch_hours;
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        let mut series = EpochSeries::new(epoch_hours);
        let mut engine = watch_engine(scenario, &opts.rules);
        let disabled_prof = Prof::disabled();
        let prof = opts.prof.unwrap_or(&disabled_prof);
        let mut rec = scenario.recorder();
        record_ground_truth_onsets(experiment, &mut rec);
        // Workload classes: initial mitigation policies apply even open
        // loop (there is no adaptation without feedback, but a static
        // policy ladder still trades overhead for coverage); all class
        // surfacing is gated so legacy runs stay bit-for-bit.
        let classes_on = scenario.workloads.enabled;
        let mut class_names: Vec<String> = Vec::new();
        let mut class_gauges: Vec<ClassMetricNames> = Vec::new();
        if classes_on {
            class_names = sim.class_names();
            for (ix, p) in scenario
                .workloads
                .initial_policies(&class_names)
                .into_iter()
                .enumerate()
            {
                state.set_policy(ix, p);
            }
            class_gauges = class_names
                .iter()
                .map(|n| ClassMetricNames::gauges(n))
                .collect();
            series.set_class_names(class_names.clone());
        }
        while !state.is_done() {
            let h0 = state.hour();
            let h1 = h0 + epoch_hours;
            let before = summary.corruptions;
            let class_before = if classes_on {
                state.class_tallies().to_vec()
            } else {
                Vec::new()
            };
            {
                let _p = prof.span("fleet.step");
                sim.step_epoch_traced(&mut state, &mut log, &mut summary, &mut rec);
            }
            // Open loop: nothing is ever quarantined mid-window, so
            // capacity is flat at 1.0 and every defect stays active.
            let active = state.active_deployed_mercurial(topo, h0);
            let ops = summary.corruptions - before;
            rec.gauge(h1, "fleet.active_mercurial", active as f64);
            let class_points: Vec<ClassPoint> = if classes_on {
                let deltas: Vec<_> = state
                    .class_tallies()
                    .iter()
                    .zip(&class_before)
                    .map(|(now, then)| now.delta_since(then))
                    .collect();
                // Per-class epoch gauges come before the boundary marker
                // so the replay path snapshots them into this epoch row.
                for (names, t) in class_gauges.iter().zip(&deltas) {
                    rec.gauge(h1, names.corrupt_ops, t.corrupt_ops as f64);
                    rec.gauge(
                        h1,
                        names.caught,
                        (t.app_caught + t.mitigation_caught) as f64,
                    );
                    rec.gauge(h1, names.user_reports, t.user_reports as f64);
                    rec.gauge(h1, names.overhead_ops, t.overhead_ops() as f64);
                }
                deltas
                    .iter()
                    .map(|t| ClassPoint {
                        corrupt_ops: t.corrupt_ops,
                        caught: t.app_caught + t.mitigation_caught,
                        user_reports: t.user_reports,
                        overhead_ops: t.overhead_ops(),
                    })
                    .collect()
            } else {
                Vec::new()
            };
            // Last gauge of every epoch boundary: the replay path
            // (`WatchInput::from_jsonl`) closes the epoch row on it.
            rec.gauge(h1, "epoch.corrupt_ops", ops as f64);
            series.push(1.0, 1.0, ops, active);
            if classes_on {
                series.push_classes(class_points.clone());
            }
            if let Some(eng) = engine.as_mut() {
                let _watch_span = prof.span("watch.eval");
                let row = EpochRow {
                    hour: h1,
                    capacity: 1.0,
                    capacity_with_safetask: 1.0,
                    corrupt_ops: ops as f64,
                    active_mercurial: active as f64,
                };
                let fired = if classes_on {
                    let classes: Vec<(String, f64)> = class_names
                        .iter()
                        .cloned()
                        .zip(class_points.iter().map(|p| p.corrupt_ops as f64))
                        .collect();
                    eng.push_epoch_classed(row, &classes)
                } else {
                    eng.push_epoch(row)
                };
                record_alerts(&mut rec, &fired, scenario.audit.enabled);
            }
            if let Some(s) = opts.sink.as_mut() {
                s.drain(&mut rec).expect("stream sink drain");
            }
        }
        log.sort_by_time();
        // The batch back half runs untraced unless the audit layer wants
        // decision provenance — the plain traced open loop stays
        // bit-for-bit with its pre-audit exports.
        let batch_span = prof.span("pipeline.batch");
        let pipeline = if scenario.audit.enabled {
            PipelineRun::complete_from_signals_traced(scenario, experiment, log, summary, &mut rec)
        } else {
            PipelineRun::complete_from_signals(scenario, experiment, log, summary)
        };
        drop(batch_span);
        for latency in &pipeline.detection_latency_hours {
            rec.observe("detect.latency_hours", *latency);
        }
        let watch = match engine {
            Some(eng) => {
                let _watch_span = prof.span("watch.eval");
                let empty = MetricSet::new();
                let (report, end_alerts) =
                    eng.finish(rec.metrics().unwrap_or(&empty), opts.baseline);
                record_alerts(&mut rec, &end_alerts, scenario.audit.enabled);
                Some(report)
            }
            None => None,
        };
        if let Some(s) = opts.sink.as_mut() {
            s.finish(&mut rec).expect("stream sink finish");
        }
        ClosedLoopOutcome {
            pipeline,
            series,
            epochs,
            epoch_hours,
            trace: rec.finish(),
            watch,
        }
    }

    /// Feedback enabled: the full epoch-interleaved loop, run as one
    /// full-fleet [`FleetShard`] in lockstep with a [`FleetAggregator`]
    /// sharing a single recorder. This is exactly the service
    /// decomposition `mercurial-serve` runs across processes; here the
    /// "wire" is a function call, which pins the in-process loop and the
    /// zero-impairment served run to the same code path.
    fn run_with_feedback(
        scenario: &Scenario,
        experiment: &FleetExperiment,
        mut opts: RunOptions<'_>,
    ) -> ClosedLoopOutcome {
        let machines = experiment.topology().config().machines;
        let engine = watch_engine(scenario, &opts.rules);
        let disabled_prof = Prof::disabled();
        let prof = opts.prof.unwrap_or(&disabled_prof);
        let mut rec = scenario.recorder();
        record_ground_truth_onsets(experiment, &mut rec);
        let mut agg = FleetAggregator::new(scenario, experiment, engine);
        let mut shard = FleetShard::new(scenario, experiment, 0, machines);
        let epochs = agg.total_epochs();
        let epoch_hours = agg.epoch_hours();
        while !agg.is_done() {
            let cmds = agg.begin_epoch(&mut rec, prof);
            shard.apply_commands(&cmds);
            let report = shard.step_epoch(&mut rec, prof);
            agg.ingest_reports(vec![report], &mut rec, prof);
            if let Some(s) = opts.sink.as_mut() {
                let _p = prof.span("trace.drain");
                s.drain(&mut rec).expect("stream sink drain");
            }
        }
        let finished = agg.finish(&mut rec, &[], opts.baseline, prof);
        if let Some(s) = opts.sink.as_mut() {
            s.finish(&mut rec).expect("stream sink finish");
        }
        ClosedLoopOutcome {
            pipeline: finished.pipeline,
            series: finished.series,
            epochs,
            epoch_hours,
            trace: rec.finish(),
            watch: finished.watch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fleet::SignalKind;
    use mercurial_isolation::CoreState;

    fn feedback_scenario(seed: u64) -> Scenario {
        let mut s = Scenario::demo(seed);
        s.closed_loop.feedback = true;
        s
    }

    #[test]
    fn open_loop_stepped_series_covers_the_window() {
        let scenario = Scenario::small(41);
        let out = ClosedLoopDriver::execute(&scenario);
        assert_eq!(out.series.len() as u32, out.epochs);
        assert!((out.series.min_capacity() - 1.0).abs() < 1e-12);
        assert_eq!(
            out.series.total_corrupt_ops(),
            out.pipeline.sim_summary.corruptions
        );
    }

    #[test]
    fn feedback_quarantines_and_recovers_capacity() {
        let scenario = feedback_scenario(42);
        let out = ClosedLoopDriver::execute(&scenario);
        assert!(
            !out.pipeline.detections.is_empty(),
            "demo fleet must yield detections"
        );
        // Capacity steps down at confirmations...
        assert!(out.series.min_capacity() < 1.0);
        // ...and safe-task placement claws part of it back.
        let last = out.series.points().last().expect("non-empty series");
        assert!(last.capacity_with_safetask > last.capacity);
        assert!(last.capacity_with_safetask <= 1.0 + 1e-12);
        // Confirmed cores match the ledger's loss.
        assert_eq!(
            out.pipeline.capacity.lost_cores as usize,
            out.pipeline.registry.in_state(CoreState::Confirmed).len()
                + out.pipeline.registry.in_state(CoreState::Quarantined).len()
                + out.pipeline.registry.in_state(CoreState::Exonerated).len()
        );
    }

    #[test]
    fn no_signal_attributed_after_confirmation() {
        let scenario = feedback_scenario(43);
        let out = ClosedLoopDriver::execute(&scenario);
        let registry = &out.pipeline.registry;
        let confirmed = registry.in_state(CoreState::Confirmed);
        assert!(!confirmed.is_empty(), "demo fleet must confirm cores");
        for core in confirmed {
            let confirm = registry
                .history(core)
                .iter()
                .find(|t| t.to == CoreState::Confirmed)
                .expect("confirm transition recorded")
                .hour;
            for s in out.pipeline.signals.all().iter().filter(|s| s.core == core) {
                assert!(
                    s.hour <= confirm,
                    "signal at {} after confirmation at {confirm}",
                    s.hour
                );
            }
        }
    }

    #[test]
    fn closed_loop_reduces_residual_corruption() {
        let scenario = Scenario::demo(44);
        let open = ClosedLoopDriver::execute(&scenario);
        let mut with_feedback = scenario.clone();
        with_feedback.closed_loop.feedback = true;
        let closed = ClosedLoopDriver::execute(&with_feedback);
        assert!(
            closed.pipeline.sim_summary.corruptions < open.pipeline.sim_summary.corruptions,
            "closed {} must corrupt less than open {}",
            closed.pipeline.sim_summary.corruptions,
            open.pipeline.sim_summary.corruptions
        );
    }

    #[test]
    fn user_report_signal_kinds_survive_the_loop() {
        // The pruning must not eat the noise haystack wholesale.
        let out = ClosedLoopDriver::execute(&feedback_scenario(45));
        assert!(out
            .pipeline
            .signals
            .all()
            .iter()
            .any(|s| s.kind == SignalKind::UserReport && !s.caused_by_cee));
        assert_eq!(
            out.pipeline.sim_summary.signals_emitted as usize,
            out.pipeline
                .signals
                .all()
                .iter()
                .filter(|s| s.kind != SignalKind::ScreenerFailure)
                .count()
        );
    }
}
