//! E21 acceptance: the decision-audit layer.
//!
//! * Replay parity — the ledger rebuilt offline from the exported trace
//!   JSONL is byte-for-byte the in-loop ledger, at any `sim.parallelism`.
//! * Conservation — every ground-truth mercurial core is exactly one of
//!   TP or FN, and every FP is a quarantined healthy core.
//! * The audit block forces tracing on, and works over both drivers
//!   (closed loop and the open-loop batch back half).

use mercurial::audit::{AuditReport, CaseBook, CaseLabel, DecisionLedger, GroundTruth};
use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::Scenario;

fn audited(seed: u64, feedback: bool) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.sim.engine = SimEngine::Sparse;
    s.closed_loop.feedback = feedback;
    s.watch.enabled = true;
    s.audit.enabled = true;
    s
}

fn rule_names(s: &Scenario) -> Vec<String> {
    s.watch
        .rule_set()
        .rules
        .iter()
        .map(|r| r.name.clone())
        .collect()
}

#[test]
fn replayed_ledger_is_byte_identical_at_any_parallelism() {
    let reference = {
        let s = audited(7, true);
        let out = ClosedLoopDriver::execute(&s);
        DecisionLedger::from_trace(&out.trace).to_jsonl()
    };
    assert!(!reference.is_empty(), "audited run must ledger decisions");
    for parallelism in [1usize, 2, 8] {
        let mut s = audited(7, true);
        s.sim.parallelism = parallelism;
        let out = ClosedLoopDriver::execute(&s);
        let in_loop = DecisionLedger::from_trace(&out.trace);
        assert_eq!(
            in_loop.to_jsonl(),
            reference,
            "in-loop ledger diverges at parallelism {parallelism}"
        );
        // The offline replay path: parse the exported JSONL back.
        let replayed = DecisionLedger::from_trace_jsonl(&out.trace.to_jsonl())
            .expect("exported trace replays");
        assert_eq!(
            replayed, in_loop,
            "replay diverges at parallelism {parallelism}"
        );
        assert_eq!(
            replayed.to_jsonl(),
            reference,
            "replayed ledger bytes diverge at parallelism {parallelism}"
        );
    }
}

#[test]
fn attribution_conserves_ground_truth() {
    let s = audited(7, true);
    let out = ClosedLoopDriver::execute(&s);
    let ledger = DecisionLedger::from_trace(&out.trace);
    let truth = GroundTruth::from_ledger(&ledger);
    let report = AuditReport::build(&ledger, &truth, &rule_names(&s));
    assert!(truth.count() > 0, "demo fleet must seed mercurial cores");
    assert!(
        report.conserves(&ledger),
        "TP={} FN={} must sum to ground truth {} (gt counter {})",
        report.true_positives,
        report.false_negatives,
        truth.count(),
        ledger.gt_count
    );
    // Every FP verdict is a quarantined healthy core, by definition.
    for v in &report.verdicts {
        if v.label == CaseLabel::FalsePositive {
            assert!(!truth.is_mercurial(v.core));
            assert!(v.quarantine_hour.is_some());
        }
    }
    // The case book agrees with the report's verdict counts.
    let book = CaseBook::build(&ledger, &truth, usize::MAX);
    assert_eq!(book.cases.len(), report.verdicts.len());
}

#[test]
fn open_loop_audit_matches_conservation_too() {
    let s = audited(9, false);
    let out = ClosedLoopDriver::execute(&s);
    let ledger = DecisionLedger::from_trace(&out.trace);
    let truth = GroundTruth::from_ledger(&ledger);
    assert!(!ledger.is_empty(), "open-loop audit must ledger decisions");
    let report = AuditReport::build(&ledger, &truth, &rule_names(&s));
    assert!(report.conserves(&ledger));
    // Replay parity holds for the batch back half as well.
    let replayed = DecisionLedger::from_trace_jsonl(&out.trace.to_jsonl()).unwrap();
    assert_eq!(replayed.to_jsonl(), ledger.to_jsonl());
}

#[test]
fn audit_block_forces_tracing_on() {
    let mut s = audited(7, true);
    s.trace.enabled = false;
    assert!(s.trace_flags().enabled, "audit.enabled must imply tracing");
    let out = ClosedLoopDriver::execute(&s);
    assert!(
        !out.trace.events.is_empty(),
        "audit-on run must buffer trace events even with trace.enabled=false"
    );
    assert!(!DecisionLedger::from_trace(&out.trace).is_empty());
}

#[test]
fn audit_off_leaves_no_provenance_in_the_trace() {
    let mut s = audited(7, true);
    s.audit.enabled = false;
    let out = ClosedLoopDriver::execute(&s);
    // Tracing is still on (the scenario asks for it), but the per-signal
    // provenance instants and audit counters only exist under audit.
    assert!(out.trace.events.iter().all(|e| e.name != "score.signal"));
    assert_eq!(out.trace.metrics.counter("audit.quarantines"), 0);
    assert_eq!(out.trace.metrics.counter("audit.alerts"), 0);
}
