//! Prof-on parity: attaching a wall-clock profiler must not move a
//! single bit of any output. The digests here are the E20 legacy pins
//! (captured on the PR 7 head tree, long before `mercurial-prof`
//! existed), so this test simultaneously pins "prof-on == prof-off" and
//! "prof-on == pre-prof history" — the profiler's write-only contract,
//! enforced end to end: closed loop, open loop, dense and sparse
//! engines, trace and watch surfaces.

use mercurial::closedloop::{ClosedLoopDriver, RunOptions};
use mercurial::fleet::SimEngine;
use mercurial::{FleetExperiment, Scenario};
use mercurial_prof::Prof;

/// FNV-1a over a byte string: stable, dependency-free content digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario(seed: u64, feedback: bool, engine: SimEngine) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = feedback;
    s.sim.engine = engine;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s
}

struct Digest {
    corruptions: u64,
    signals: usize,
    detections: usize,
    series_csv: u64,
    trace_jsonl: u64,
    watch_render: u64,
}

/// Run with an *enabled* profiler attached and return both the output
/// digest and the resulting profile.
fn digest_profiled(
    seed: u64,
    feedback: bool,
    engine: SimEngine,
) -> (Digest, mercurial_prof::SelfProfile) {
    let s = scenario(seed, feedback, engine);
    let experiment = FleetExperiment::build(&s);
    let prof = Prof::enabled();
    let opts = RunOptions {
        prof: Some(&prof),
        ..RunOptions::default()
    };
    let out = ClosedLoopDriver::execute_with(&s, &experiment, opts);
    let digest = Digest {
        corruptions: out.pipeline.sim_summary.corruptions,
        signals: out.pipeline.signals.all().len(),
        detections: out.pipeline.detections.len(),
        series_csv: fnv1a(out.series.to_csv().as_bytes()),
        trace_jsonl: fnv1a(out.trace.to_jsonl().as_bytes()),
        watch_render: fnv1a(
            out.watch
                .as_ref()
                .expect("watch enabled")
                .render()
                .as_bytes(),
        ),
    };
    (digest, prof.finish())
}

fn check(name: &str, got: &Digest, want: &Digest) {
    assert_eq!(got.corruptions, want.corruptions, "{name}: corruptions");
    assert_eq!(got.signals, want.signals, "{name}: signal count");
    assert_eq!(got.detections, want.detections, "{name}: detections");
    assert_eq!(got.series_csv, want.series_csv, "{name}: series CSV bytes");
    assert_eq!(
        got.trace_jsonl, want.trace_jsonl,
        "{name}: trace JSONL bytes"
    );
    assert_eq!(got.watch_render, want.watch_render, "{name}: watch render");
}

#[test]
fn profiled_closed_loop_matches_the_legacy_pins() {
    let (got, profile) = digest_profiled(7, true, SimEngine::Sparse);
    let want = Digest {
        corruptions: 68_632_069,
        signals: 381,
        detections: 17,
        series_csv: 0x9d12_71ac_ddd0_635f,
        trace_jsonl: 0xd7f3_ef09_599a_6f15,
        watch_render: 0x8c7d_8a27_4984_3066,
    };
    check("profiled closed sparse", &got, &want);
    // The profiler actually measured the loop it rode along with.
    assert!(profile.calls("loop.begin") > 0, "loop.begin recorded");
    assert_eq!(
        profile.calls("shard.epoch"),
        profile.calls("loop.ingest"),
        "one shard step per ingest"
    );
    assert!(
        profile.calls("shard.epoch;fleet.step") == profile.calls("shard.epoch"),
        "every epoch stepped the sim"
    );
    assert!(
        profile.calls("shard.epoch;screen.burnin") > 0,
        "burn-in screened"
    );
    assert!(
        profile.calls("loop.ingest;watch.eval") > 0,
        "watch evaluated in-loop"
    );
}

#[test]
fn profiled_open_loop_matches_the_legacy_pins() {
    let (got, profile) = digest_profiled(7, false, SimEngine::Sparse);
    let want = Digest {
        corruptions: 458_834_565,
        signals: 30_430,
        detections: 18,
        series_csv: 0xfc1a_1b5a_5f10_5c10,
        trace_jsonl: 0xbab9_4b5d_c7cd_565f,
        watch_render: 0x12bd_a6f4_5a1e_e9d2,
    };
    check("profiled open sparse", &got, &want);
    assert!(profile.calls("fleet.step") > 0, "open loop stepped the sim");
    assert!(profile.calls("pipeline.batch") == 1, "one batch back half");
}

#[test]
fn profiled_dense_closed_loop_matches_the_legacy_pins() {
    let (got, _) = digest_profiled(23, true, SimEngine::Dense);
    let want = Digest {
        corruptions: 9_592,
        signals: 274,
        detections: 5,
        series_csv: 0xfd0f_f437_64a6_f8e5,
        trace_jsonl: 0x39ea_604b_8a1c_6b68,
        watch_render: 0x63bd_1bdd_32a9_9ac1,
    };
    check("profiled closed dense", &got, &want);
}
