//! Dense/sparse engine parity at the closed-loop driver level.
//!
//! The fleet crate pins `SimEngine::Sparse` against `SimEngine::Dense`
//! bit-for-bit at the simulation layer. These tests pin the whole driver:
//! with the event-driven clock underneath, the closed loop's detections,
//! signal log, watch report, and exported trace must not move by a byte —
//! at any worker count, traced or untraced (the untraced screeners take
//! closed-form fast paths that skip all-healthy machines).

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::Scenario;

fn scenario(seed: u64, engine: SimEngine, parallelism: usize, traced: bool) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.trace.enabled = traced;
    s.watch.enabled = traced;
    s.sim.engine = engine;
    s.sim.parallelism = parallelism;
    s
}

#[test]
fn traced_closed_loop_is_bit_identical_across_engines_and_workers() {
    let reference = ClosedLoopDriver::execute(&scenario(7, SimEngine::Dense, 1, true));
    let ref_report = reference.watch.as_ref().expect("watch enabled").render();
    let ref_trace = reference.trace.to_jsonl();
    assert!(
        !reference.pipeline.detections.is_empty(),
        "demo fleet must yield detections"
    );
    for parallelism in [1usize, 2, 8] {
        let out = ClosedLoopDriver::execute(&scenario(7, SimEngine::Sparse, parallelism, true));
        assert_eq!(
            out.watch.as_ref().expect("watch enabled").render(),
            ref_report,
            "watch report diverges at {parallelism} workers"
        );
        assert_eq!(
            out.trace.to_jsonl(),
            ref_trace,
            "trace diverges at {parallelism} workers"
        );
        assert_eq!(
            out.pipeline.detections, reference.pipeline.detections,
            "detections diverge at {parallelism} workers"
        );
        assert_eq!(
            out.pipeline.signals.all(),
            reference.pipeline.signals.all(),
            "signals diverge at {parallelism} workers"
        );
        assert_eq!(
            out.pipeline.sim_summary, reference.pipeline.sim_summary,
            "summary diverges at {parallelism} workers"
        );
    }
}

#[test]
fn untraced_closed_loop_matches_dense_through_the_screener_fast_paths() {
    let reference = ClosedLoopDriver::execute(&scenario(11, SimEngine::Dense, 1, false));
    assert!(!reference.pipeline.detections.is_empty());
    for parallelism in [1usize, 2, 8] {
        let out = ClosedLoopDriver::execute(&scenario(11, SimEngine::Sparse, parallelism, false));
        assert_eq!(out.pipeline.detections, reference.pipeline.detections);
        assert_eq!(out.pipeline.signals.all(), reference.pipeline.signals.all());
        assert_eq!(out.pipeline.sim_summary, reference.pipeline.sim_summary);
        assert_eq!(
            out.pipeline.burnin_stats, reference.pipeline.burnin_stats,
            "burn-in stats diverge at {parallelism} workers"
        );
        assert_eq!(out.pipeline.offline_stats, reference.pipeline.offline_stats);
        assert_eq!(out.pipeline.online_stats, reference.pipeline.online_stats);
        assert_eq!(
            out.series.total_corrupt_ops(),
            reference.series.total_corrupt_ops()
        );
        assert_eq!(out.series.min_capacity(), reference.series.min_capacity());
    }
}

#[test]
fn open_loop_stepping_is_engine_invariant() {
    let mut dense = Scenario::demo(13);
    dense.sim.engine = SimEngine::Dense;
    let mut sparse = dense.clone();
    sparse.sim.engine = SimEngine::Sparse;
    let a = ClosedLoopDriver::execute(&dense);
    let b = ClosedLoopDriver::execute(&sparse);
    assert_eq!(a.pipeline.sim_summary, b.pipeline.sim_summary);
    assert_eq!(a.pipeline.signals.all(), b.pipeline.signals.all());
    assert_eq!(a.pipeline.detections, b.pipeline.detections);
    assert_eq!(a.series.total_corrupt_ops(), b.series.total_corrupt_ops());
}
