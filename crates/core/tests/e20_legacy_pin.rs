//! E20 legacy pin: with the scenario `workloads` block absent (its
//! default), the workload-layer refactor must not move a single bit of
//! any pre-existing output. The digests below were captured on the
//! pre-refactor tree (PR 7 head) and the refactored code must keep
//! reproducing them exactly — open loop, closed loop, traced and
//! untraced, dense and sparse.

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::Scenario;

/// FNV-1a over a byte string: stable, dependency-free content digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn scenario(seed: u64, feedback: bool, engine: SimEngine) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = feedback;
    s.sim.engine = engine;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s
}

struct Digest {
    corruptions: u64,
    signals: usize,
    detections: usize,
    series_csv: u64,
    trace_jsonl: u64,
    watch_render: u64,
}

fn digest(seed: u64, feedback: bool, engine: SimEngine) -> Digest {
    let out = ClosedLoopDriver::execute(&scenario(seed, feedback, engine));
    Digest {
        corruptions: out.pipeline.sim_summary.corruptions,
        signals: out.pipeline.signals.all().len(),
        detections: out.pipeline.detections.len(),
        series_csv: fnv1a(out.series.to_csv().as_bytes()),
        trace_jsonl: fnv1a(out.trace.to_jsonl().as_bytes()),
        watch_render: fnv1a(
            out.watch
                .as_ref()
                .expect("watch enabled")
                .render()
                .as_bytes(),
        ),
    }
}

fn check(name: &str, got: &Digest, want: &Digest) {
    assert_eq!(got.corruptions, want.corruptions, "{name}: corruptions");
    assert_eq!(got.signals, want.signals, "{name}: signal count");
    assert_eq!(got.detections, want.detections, "{name}: detections");
    assert_eq!(got.series_csv, want.series_csv, "{name}: series CSV bytes");
    assert_eq!(
        got.trace_jsonl, want.trace_jsonl,
        "{name}: trace JSONL bytes"
    );
    assert_eq!(got.watch_render, want.watch_render, "{name}: watch render");
}

#[test]
fn legacy_closed_loop_is_bit_identical_to_pre_refactor() {
    let got = digest(7, true, SimEngine::Sparse);
    let want = Digest {
        corruptions: 68_632_069,
        signals: 381,
        detections: 17,
        series_csv: 0x9d12_71ac_ddd0_635f,
        trace_jsonl: 0xd7f3_ef09_599a_6f15,
        watch_render: 0x8c7d_8a27_4984_3066,
    };
    eprintln!(
        "closed sparse: corruptions={} signals={} detections={} series_csv=0x{:016x} trace_jsonl=0x{:016x} watch_render=0x{:016x}",
        got.corruptions, got.signals, got.detections, got.series_csv, got.trace_jsonl, got.watch_render
    );
    check("closed sparse", &got, &want);
}

#[test]
fn legacy_open_loop_is_bit_identical_to_pre_refactor() {
    let got = digest(7, false, SimEngine::Sparse);
    let want = Digest {
        corruptions: 458_834_565,
        signals: 30_430,
        detections: 18,
        series_csv: 0xfc1a_1b5a_5f10_5c10,
        trace_jsonl: 0xbab9_4b5d_c7cd_565f,
        watch_render: 0x12bd_a6f4_5a1e_e9d2,
    };
    eprintln!(
        "open sparse: corruptions={} signals={} detections={} series_csv=0x{:016x} trace_jsonl=0x{:016x} watch_render=0x{:016x}",
        got.corruptions, got.signals, got.detections, got.series_csv, got.trace_jsonl, got.watch_render
    );
    check("open sparse", &got, &want);
}

#[test]
fn legacy_dense_closed_loop_is_bit_identical_to_pre_refactor() {
    let got = digest(23, true, SimEngine::Dense);
    let want = Digest {
        corruptions: 9_592,
        signals: 274,
        detections: 5,
        series_csv: 0xfd0f_f437_64a6_f8e5,
        trace_jsonl: 0x39ea_604b_8a1c_6b68,
        watch_render: 0x63bd_1bdd_32a9_9ac1,
    };
    eprintln!(
        "closed dense: corruptions={} signals={} detections={} series_csv=0x{:016x} trace_jsonl=0x{:016x} watch_render=0x{:016x}",
        got.corruptions, got.signals, got.detections, got.series_csv, got.trace_jsonl, got.watch_render
    );
    check("closed dense", &got, &want);
}
