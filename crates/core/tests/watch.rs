//! Integration contracts of the alert-rule engine over live runs.
//!
//! Four properties anchor the watch layer:
//!
//! 1. **Determinism parity** — the alerts a run fires (and the
//!    `alert.fired` instants stamped into its trace) are bit-for-bit
//!    identical across worker-thread counts (1, 2, 8), the same §4.1
//!    contract the simulation and trace honor.
//! 2. **Streaming parity** — a run drained through [`JsonlStreamSink`]
//!    produces byte-identical JSONL to the buffered export, while the
//!    in-memory trace keeps only the metric set.
//! 3. **Replay equivalence** — evaluating the rules over the exported
//!    JSONL reproduces the in-loop report exactly.
//! 4. **Quiet fleets stay quiet** — with no mercurial cores, even
//!    hair-trigger rules never fire, and regression rules without a
//!    baseline report "no baseline" instead of firing.

use mercurial::closedloop::{ClosedLoopDriver, RunOptions};
use mercurial::trace::{EventKind, JsonlStreamSink};
use mercurial::watch::{Cmp, EpochField, Rule, RuleKind, RuleSet, RuleStatus, Source, WatchInput};
use mercurial::{FleetExperiment, Scenario};

fn watched_demo(seed: u64) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s
}

/// Rules tight enough that any defective demo fleet trips them.
fn hair_trigger_rules() -> RuleSet {
    RuleSet {
        rules: vec![
            Rule {
                scope: Default::default(),
                name: "ops".into(),
                kind: RuleKind::Threshold {
                    source: Source::EpochMax(EpochField::CorruptOps),
                    op: Cmp::Gt,
                    limit: 10.0,
                },
            },
            Rule {
                scope: Default::default(),
                name: "latency".into(),
                kind: RuleKind::Percentile {
                    histogram: "detect.latency_hours".into(),
                    q: 0.95,
                    op: Cmp::Ge,
                    limit: 1.0,
                },
            },
            Rule {
                scope: Default::default(),
                name: "regress".into(),
                kind: RuleKind::Regression {
                    source: Source::EpochSum(EpochField::CorruptOps),
                    tolerance_frac: 0.25,
                },
            },
        ],
    }
}

#[test]
fn alerts_are_bit_identical_across_thread_counts() {
    let base = watched_demo(7);
    let runs: Vec<(String, String)> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            let mut s = base.clone();
            s.sim.parallelism = p;
            let out = ClosedLoopDriver::execute(&s);
            let report = out.watch.expect("watch block is enabled");
            (report.render(), out.trace.to_jsonl())
        })
        .collect();
    assert!(
        runs[0].0.contains("FIRED"),
        "demo fleet must trip the default rules:\n{}",
        runs[0].0
    );
    for (i, r) in runs[1..].iter().enumerate() {
        assert_eq!(
            runs[0].0,
            r.0,
            "alert report differs between 1 and {} workers",
            [2, 8][i]
        );
        assert_eq!(
            runs[0].1,
            r.1,
            "trace (with alert.fired instants) differs between 1 and {} workers",
            [2, 8][i]
        );
    }
}

#[test]
fn alert_instants_carry_rule_indices_and_hours() {
    let out = ClosedLoopDriver::execute(&watched_demo(7));
    let report = out.watch.expect("watch block is enabled");
    let instants: Vec<(f64, f64)> = out
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "alert.fired")
        .map(|e| (e.hour, e.value))
        .collect();
    let fired: Vec<(usize, f64)> = report
        .outcomes
        .iter()
        .enumerate()
        .filter_map(|(i, o)| match &o.status {
            RuleStatus::Fired(a) => Some((i, a.hour)),
            _ => None,
        })
        .collect();
    assert!(!fired.is_empty(), "demo fleet must fire at least one rule");
    assert_eq!(
        instants.len(),
        fired.len(),
        "one alert.fired instant per fired rule"
    );
    for (idx, hour) in fired {
        assert!(
            instants.contains(&(hour, idx as f64)),
            "rule {idx} fired at h{hour} but no matching instant in {instants:?}"
        );
    }
}

#[test]
fn streamed_run_is_byte_identical_to_buffered_export() {
    let base = watched_demo(7);
    let buffered = ClosedLoopDriver::execute(&base).trace.to_jsonl();

    for p in [1usize, 2, 8] {
        let mut scenario = base.clone();
        scenario.sim.parallelism = p;
        let experiment = FleetExperiment::build(&scenario);
        let mut sink = JsonlStreamSink::new(Vec::new());
        let out = ClosedLoopDriver::execute_with(
            &scenario,
            &experiment,
            RunOptions {
                sink: Some(&mut sink),
                ..RunOptions::default()
            },
        );
        let streamed = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
        assert_eq!(
            streamed, buffered,
            "streaming at {p} workers must not change a byte"
        );
        // The sink drained the events; only the metric set stays in memory.
        assert!(out.trace.events.is_empty(), "events live in the sink");
        assert!(out.trace.metrics.histograms().count() > 0);
    }
}

#[test]
fn replaying_the_exported_trace_reproduces_the_report() {
    let scenario = watched_demo(7);
    let out = ClosedLoopDriver::execute(&scenario);
    let live = out.watch.expect("watch block is enabled");
    let input = WatchInput::from_jsonl(&out.trace.to_jsonl()).expect("exported trace replays");
    let offline = scenario.watch.rule_set().evaluate(&input, None);
    assert_eq!(
        live.render(),
        offline.render(),
        "offline replay must agree with the in-loop engine"
    );
}

#[test]
fn healthy_fleet_fires_nothing_even_on_hair_trigger_rules() {
    let mut scenario = watched_demo(7);
    for p in &mut scenario.fleet.products {
        p.mercurial_rate_per_core = 0.0;
    }
    let experiment = FleetExperiment::build(&scenario);
    assert_eq!(experiment.population().count(), 0, "fleet must be healthy");
    let out = ClosedLoopDriver::execute_with(
        &scenario,
        &experiment,
        RunOptions {
            rules: Some(hair_trigger_rules()),
            ..RunOptions::default()
        },
    );
    let report = out.watch.expect("rules were supplied");
    assert!(
        !report.any_fired(),
        "healthy fleet tripped a rule:\n{}",
        report.render()
    );
    // Nothing was ever detected, so the latency histogram is empty...
    assert!(matches!(report.outcomes[1].status, RuleStatus::NoData));
    // ...and without a recorded baseline the regression rule cannot fire.
    assert!(matches!(report.outcomes[2].status, RuleStatus::NoBaseline));
}

#[test]
fn prometheus_rules_export_matches_the_golden_file() {
    // The CLI surface (`watch --dump-rules --format prom`) renders the
    // scenario's default rule set at the scenario's epoch length; the
    // golden file pins every formatting decision (names, durations,
    // lookbacks, the commented-out regression rules).
    let scenario = Scenario::demo(0);
    let rendered = scenario
        .watch
        .rule_set()
        .to_prometheus_rules("mercurial-watch", scenario.sim.epoch_hours);
    assert_eq!(
        rendered,
        include_str!("golden/watch_rules.prom.yaml"),
        "regenerate with `mercurial-lab watch --dump-rules --format prom`"
    );
}
