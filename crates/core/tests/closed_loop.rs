//! Integration contracts of the closed-loop epoch driver.
//!
//! Three properties anchor the refactor:
//!
//! 1. **Open-loop equivalence** — with feedback disabled the driver must
//!    reproduce the batch pipeline's `PipelineOutcome` bit for bit; the
//!    stepped simulation and the batch back half are the same computation.
//! 2. **Thread-count parity** — the §4.1 determinism contract survives
//!    the interleaving: outcomes at 1, 2, and 8 worker threads are
//!    identical, across seeds.
//! 3. **Feedback semantics** — confirmed cores fall silent after their
//!    confirmation hour, capacity steps down when cores leave the mix and
//!    is partially recovered by safe-task placement, and the residual
//!    corruption is strictly below the open loop's.

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::pipeline::PipelineRun;
use mercurial::Scenario;
use mercurial_isolation::CoreState;

/// Field-by-field equality of two pipeline outcomes (`PipelineOutcome`
/// holds a `QuarantineRegistry`, which has no `PartialEq`; compare its
/// observable state instead).
fn assert_outcomes_identical(
    a: &mercurial::PipelineOutcome,
    b: &mercurial::PipelineOutcome,
    context: &str,
) {
    assert_eq!(a.detections, b.detections, "{context}: detections");
    assert_eq!(a.burnin_stats, b.burnin_stats, "{context}: burnin stats");
    assert_eq!(a.offline_stats, b.offline_stats, "{context}: offline stats");
    assert_eq!(a.online_stats, b.online_stats, "{context}: online stats");
    assert_eq!(a.triage_stats, b.triage_stats, "{context}: triage stats");
    assert_eq!(a.capacity, b.capacity, "{context}: capacity");
    assert_eq!(a.signals.all(), b.signals.all(), "{context}: signals");
    assert_eq!(
        a.sim_summary.corruptions, b.sim_summary.corruptions,
        "{context}: corruptions"
    );
    assert_eq!(
        a.sim_summary.signals_emitted, b.sim_summary.signals_emitted,
        "{context}: signals emitted"
    );
    assert_eq!(a.ground_truth, b.ground_truth, "{context}: ground truth");
    assert_eq!(a.detected_true, b.detected_true, "{context}: detected true");
    assert_eq!(
        a.exonerated_innocents, b.exonerated_innocents,
        "{context}: exonerated innocents"
    );
    assert_eq!(
        a.detection_latency_hours, b.detection_latency_hours,
        "{context}: latencies"
    );
    for state in [
        CoreState::Suspect,
        CoreState::Quarantined,
        CoreState::Confirmed,
        CoreState::Exonerated,
        CoreState::Healthy,
        CoreState::Retired,
    ] {
        assert_eq!(
            a.registry.in_state(state),
            b.registry.in_state(state),
            "{context}: registry {state:?}"
        );
    }
}

#[test]
fn feedback_off_reproduces_the_batch_pipeline_bit_for_bit() {
    for seed in [3, 17] {
        let scenario = Scenario::small(seed);
        assert!(!scenario.closed_loop.feedback, "default must be open loop");
        let batch = PipelineRun::execute(&scenario);
        let stepped = ClosedLoopDriver::execute(&scenario);
        assert_outcomes_identical(&batch, &stepped.pipeline, &format!("seed {seed}"));
    }
}

#[test]
fn closed_loop_outcomes_are_identical_across_thread_counts() {
    for seed in [5, 23] {
        let mut base = Scenario::demo(seed);
        base.closed_loop.feedback = true;
        let runs: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&p| {
                let mut s = base.clone();
                s.sim.parallelism = p;
                ClosedLoopDriver::execute(&s)
            })
            .collect();
        for r in &runs[1..] {
            assert_outcomes_identical(
                &runs[0].pipeline,
                &r.pipeline,
                &format!("seed {seed} thread parity"),
            );
            assert_eq!(runs[0].series, r.series, "seed {seed}: epoch series");
        }
    }
}

#[test]
fn confirmed_cores_fall_silent_and_leave_the_workload_mix() {
    let mut scenario = Scenario::demo(29);
    scenario.closed_loop.feedback = true;
    let out = ClosedLoopDriver::execute(&scenario);
    let confirmed = out.pipeline.registry.in_state(CoreState::Confirmed);
    assert!(!confirmed.is_empty(), "demo fleet must confirm cores");
    for core in confirmed {
        let confirm_hour = out
            .pipeline
            .registry
            .history(core)
            .iter()
            .find(|t| t.to == CoreState::Confirmed)
            .expect("confirm transition recorded")
            .hour;
        let late = out
            .pipeline
            .signals
            .all()
            .iter()
            .filter(|s| s.core == core && s.hour > confirm_hour)
            .count();
        assert_eq!(
            late, 0,
            "core {core:?} has {late} signals after confirmation at {confirm_hour}"
        );
    }
    // Fewer live defects at window end than the open loop leaves (the
    // fleet keeps rolling out new defective cores, so compare against the
    // no-feedback run rather than this run's own peak).
    let open = ClosedLoopDriver::execute(&Scenario::demo(29));
    let last = out.series.points().last().expect("non-empty series");
    let open_last = open.series.points().last().expect("non-empty series");
    assert!(
        last.active_mercurial < open_last.active_mercurial,
        "feedback must retire defects: closed end {} vs open end {}",
        last.active_mercurial,
        open_last.active_mercurial
    );
}

#[test]
fn capacity_steps_down_at_confirmations_and_safetask_recovers_some() {
    let mut scenario = Scenario::demo(31);
    scenario.closed_loop.feedback = true;
    let out = ClosedLoopDriver::execute(&scenario);
    let points = out.series.points();
    // Monotone non-increasing except at explicit restorations; the series
    // must actually step below 1.0 once something is confirmed.
    assert!(out.series.min_capacity() < 1.0, "capacity must step down");
    for p in points {
        assert!(
            p.capacity_with_safetask >= p.capacity - 1e-12,
            "epoch {}: safe-task capacity below base",
            p.epoch
        );
        assert!(p.capacity <= 1.0 + 1e-12 && p.capacity_with_safetask <= 1.0 + 1e-12);
    }
    // Safe-task placement recovered a strictly positive share by the end.
    let last = points.last().expect("non-empty series");
    assert!(
        last.capacity_with_safetask > last.capacity,
        "safe-task recovery must be visible at window end"
    );
}

#[test]
fn feedback_strictly_reduces_residual_corruption() {
    for seed in [37, 41] {
        let scenario = Scenario::demo(seed);
        let open = ClosedLoopDriver::execute(&scenario);
        let mut fb = scenario.clone();
        fb.closed_loop.feedback = true;
        let closed = ClosedLoopDriver::execute(&fb);
        assert!(
            closed.pipeline.sim_summary.corruptions < open.pipeline.sim_summary.corruptions,
            "seed {seed}: closed {} !< open {}",
            closed.pipeline.sim_summary.corruptions,
            open.pipeline.sim_summary.corruptions
        );
    }
}
