//! E20 workload layer: time-varying per-class traffic, per-class
//! mitigation policies, and per-class attribution — determinism,
//! conservation, the escalation ladder, and the corruption-vs-overhead
//! frontier the bench sweeps.

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::mitigation::MitigationPolicy;
use mercurial::report::closed_loop_table;
use mercurial::scenario::ClassPolicy;
use mercurial::trace::EventKind;
use mercurial::Scenario;

/// A demo scenario with the workload layer on: diurnal traffic, one
/// starting policy, adaptation armed.
fn workloads_scenario(seed: u64, feedback: bool, engine: SimEngine) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = feedback;
    s.sim.engine = engine;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s.workloads.enabled = true;
    s.workloads.policies = vec![ClassPolicy {
        class: "database".to_string(),
        policy: MitigationPolicy::E2eChecksum,
    }];
    s.workloads.adapt = feedback;
    s
}

#[test]
fn enabled_runs_are_engine_and_parallelism_invariant() {
    // The workload layer must obey the same §4.1 determinism contract as
    // everything else: identical series (including every per-class
    // column), trace, and summary at any parallelism, dense or sparse.
    let mut reference = workloads_scenario(7, true, SimEngine::Sparse);
    reference.sim.parallelism = 1;
    let ref_out = ClosedLoopDriver::execute(&reference);
    assert!(
        !ref_out.series.class_names().is_empty(),
        "enabled workloads must register classes"
    );
    let ref_jsonl = ref_out.trace.to_jsonl();
    for engine in [SimEngine::Sparse, SimEngine::Dense] {
        for parallelism in [1usize, 4] {
            let mut s = workloads_scenario(7, true, engine);
            s.sim.parallelism = parallelism;
            let out = ClosedLoopDriver::execute(&s);
            assert_eq!(
                out.pipeline.sim_summary, ref_out.pipeline.sim_summary,
                "summary diverges ({engine:?}, par {parallelism})"
            );
            assert_eq!(
                out.series, ref_out.series,
                "series (incl. class columns) diverges ({engine:?}, par {parallelism})"
            );
            assert_eq!(
                out.trace.to_jsonl(),
                ref_jsonl,
                "trace diverges ({engine:?}, par {parallelism})"
            );
        }
    }
}

#[test]
fn class_attribution_conserves_fleet_corruption() {
    // Every corruption is drawn on a core running exactly one class, so
    // the per-class columns must sum to the fleet column — per epoch,
    // not just in aggregate.
    let s = workloads_scenario(11, false, SimEngine::Sparse);
    let out = ClosedLoopDriver::execute(&s);
    let names = out.series.class_names();
    assert_eq!(names.len(), 4, "default mix has four classes");
    for (point, classes) in out.series.points().iter().zip(out.series.class_points()) {
        let class_sum: u64 = classes.iter().map(|c| c.corrupt_ops).sum();
        assert_eq!(
            class_sum, point.corrupt_ops,
            "class attribution must conserve the epoch's corrupt-ops"
        );
    }
    let total: u64 = (0..names.len())
        .map(|c| out.series.class_total_corrupt_ops(c))
        .sum();
    assert_eq!(total, out.pipeline.sim_summary.corruptions);
}

#[test]
fn adaptation_escalates_policies_in_the_closed_loop() {
    // With a threshold the demo fleet's hottest class blows through
    // every epoch, the closed loop must escalate — visible both as
    // `mitigation.escalated` trace instants and as mitigation catches
    // (and overhead) appearing in the per-class columns.
    let mut s = workloads_scenario(7, true, SimEngine::Sparse);
    s.workloads.escalate_threshold = 1_000;
    let out = ClosedLoopDriver::execute(&s);
    let escalations = out
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "mitigation.escalated")
        .count();
    assert!(
        escalations > 0,
        "a low threshold must trigger at least one escalation"
    );
    let names = out.series.class_names();
    let overhead: u64 = (0..names.len())
        .map(|c| out.series.class_total_overhead_ops(c))
        .sum();
    assert!(overhead > 0, "active policies must meter overhead");
    let caught: u64 = out
        .series
        .class_points()
        .iter()
        .flat_map(|row| row.iter())
        .map(|c| c.caught)
        .sum();
    assert!(caught > 0, "active policies must catch corruptions");
}

#[test]
fn policy_ladder_trades_overhead_for_residual_corruption() {
    // The frontier acceptance: walking one class up the policy ladder
    // (everything else fixed) must strictly cut its residual corruption
    // while strictly raising its overhead. Static policies, open loop —
    // the draws are identical across rungs by the determinism contract,
    // so only the mitigation layer moves.
    let ladder = [
        MitigationPolicy::None,
        MitigationPolicy::E2eChecksum,
        MitigationPolicy::InstructionCheck,
        MitigationPolicy::Dmr,
        MitigationPolicy::Tmr,
    ];
    let mut residuals = Vec::new();
    let mut overheads = Vec::new();
    for policy in ladder {
        let mut s = Scenario::demo(7);
        s.sim.engine = SimEngine::Sparse;
        s.workloads.enabled = true;
        s.workloads.adapt = false;
        s.workloads.policies = vec![ClassPolicy {
            class: "database".to_string(),
            policy,
        }];
        let out = ClosedLoopDriver::execute(&s);
        let db = out
            .series
            .class_names()
            .iter()
            .position(|n| n == "database")
            .expect("database class exists");
        let corrupt = out.series.class_total_corrupt_ops(db);
        let caught: u64 = out
            .series
            .class_points()
            .iter()
            .filter_map(|row| row.get(db))
            .map(|c| c.caught)
            .sum();
        residuals.push(corrupt - caught);
        overheads.push(out.series.class_total_overhead_ops(db));
    }
    for i in 1..ladder.len() {
        assert!(
            residuals[i] < residuals[i - 1],
            "rung {i} must strictly cut residual corruption ({:?} vs {:?})",
            residuals[i],
            residuals[i - 1]
        );
        assert!(
            overheads[i] > overheads[i - 1],
            "rung {i} must strictly raise overhead ({:?} vs {:?})",
            overheads[i],
            overheads[i - 1]
        );
    }
    assert_eq!(overheads[0], 0, "policy `none` meters nothing");
}

#[test]
fn per_class_columns_surface_in_csv_and_report() {
    let s = workloads_scenario(7, true, SimEngine::Sparse);
    let out = ClosedLoopDriver::execute(&s);
    let csv = out.series.to_csv();
    let header = csv.lines().next().expect("csv has a header");
    for name in out.series.class_names() {
        assert!(
            header.contains(&format!("{name}.corrupt_ops")),
            "csv header missing {name} columns"
        );
    }
    let table = closed_loop_table(&out);
    assert!(table.contains("Per-class attribution"));
    assert!(table.contains("database"));
    // Disabled runs keep the legacy surfaces byte-identical shapes.
    let mut legacy = Scenario::demo(7);
    legacy.closed_loop.feedback = true;
    legacy.sim.engine = SimEngine::Sparse;
    let legacy_out = ClosedLoopDriver::execute(&legacy);
    assert!(!legacy_out.series.to_csv().contains(".corrupt_ops"));
    assert!(!closed_loop_table(&legacy_out).contains("Per-class attribution"));
}
