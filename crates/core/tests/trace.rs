//! Integration contracts of the structured-tracing layer.
//!
//! Three properties anchor the observability work:
//!
//! 1. **Determinism parity** — the recorded trace is bit-for-bit
//!    identical across worker-thread counts (1, 2, 8), the same §4.1
//!    contract the simulation itself honors. JSONL output is compared
//!    byte-wise because it serializes every event and metric.
//! 2. **Exporter validity** — the Chrome trace export is well-formed
//!    JSON with balanced span begin/end pairs, so Perfetto loads it.
//! 3. **Lifecycle coverage** — for a demo fleet with feedback on, at
//!    least one injected mercurial core's timeline shows the full
//!    onset → signal → quarantine → confirmation story.

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fault::CoreUid;
use mercurial::trace::{incident_timeline, EventKind, Recorder, Trace, TraceFlags};
use mercurial::Scenario;

fn traced_demo(seed: u64) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.trace.enabled = true;
    s
}

#[test]
fn trace_is_bit_identical_across_thread_counts() {
    for seed in [5, 23] {
        let base = traced_demo(seed);
        let traces: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&p| {
                let mut s = base.clone();
                s.sim.parallelism = p;
                ClosedLoopDriver::execute(&s).trace.to_jsonl()
            })
            .collect();
        assert!(!traces[0].is_empty(), "seed {seed}: trace must record");
        for (i, t) in traces[1..].iter().enumerate() {
            assert_eq!(
                &traces[0],
                t,
                "seed {seed}: trace differs between 1 and {} workers",
                [2, 8][i]
            );
        }
    }
}

#[test]
fn disabled_tracing_records_nothing() {
    let mut s = Scenario::demo(5);
    s.closed_loop.feedback = true;
    assert!(!s.trace.enabled, "tracing must default to off");
    let out = ClosedLoopDriver::execute(&s);
    assert!(out.trace.is_empty(), "disabled run must leave no telemetry");
    assert_eq!(out.trace.to_jsonl(), "");
}

/// Spans must balance: every `B` has a matching later `E` of the same name.
fn assert_spans_balanced(trace: &Trace) {
    let mut open: Vec<&'static str> = Vec::new();
    for e in &trace.events {
        match e.kind {
            EventKind::Begin => open.push(e.name),
            EventKind::End => {
                let i = open
                    .iter()
                    .rposition(|n| *n == e.name)
                    .unwrap_or_else(|| panic!("E `{}` without open B", e.name));
                open.remove(i);
            }
            _ => {}
        }
    }
    assert!(open.is_empty(), "unclosed spans: {open:?}");
}

#[test]
fn chrome_export_is_valid_json_with_balanced_spans() {
    let out = ClosedLoopDriver::execute(&traced_demo(5));
    assert_spans_balanced(&out.trace);

    let chrome = out.trace.to_chrome_trace();
    let doc: serde::Value = serde_json::from_str(&chrome).expect("chrome export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "chrome export must carry events");
    let phase = |v: &serde::Value| v.get("ph").and_then(serde::Value::as_str).map(String::from);
    let begins = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("B"))
        .count();
    let ends = events
        .iter()
        .filter(|e| phase(e).as_deref() == Some("E"))
        .count();
    assert_eq!(begins, ends, "chrome B/E phases must pair up");
    for e in events {
        assert!(e.get("name").is_some(), "every event is named");
        assert!(e.get("ph").is_some(), "every event has a phase");
    }
}

#[test]
fn timeline_tells_a_full_incident_story() {
    let out = ClosedLoopDriver::execute(&traced_demo(5));
    let timeline = incident_timeline(&out.trace, &|id| CoreUid::from_u64(id).to_string());
    assert!(timeline.starts_with("incident timeline ("));
    // At least one injected core runs the whole detection gauntlet.
    let full_story = timeline.lines().any(|l| {
        l.contains("onset@")
            && l.contains("signal@")
            && l.contains("quarantine@")
            && l.contains("confirm@")
    });
    assert!(
        full_story,
        "no core shows onset -> signal -> quarantine -> confirm:\n{timeline}"
    );
    // Stages within each core line read in chronological order.
    for line in timeline.lines().skip(1) {
        let hours: Vec<f64> = line
            .split("@h")
            .skip(1)
            .filter_map(|part| {
                part.split(|c: char| !c.is_ascii_digit() && c != '.')
                    .next()
                    .and_then(|h| h.parse().ok())
            })
            .collect();
        for w in hours.windows(2) {
            assert!(w[0] <= w[1], "stages out of order in: {line}");
        }
    }
}

#[test]
fn timeline_renders_a_pure_false_positive_core() {
    // A healthy core that draws signals and a quarantine but has no
    // gt.onset anchor — the audit layer's FP shape. The timeline must
    // still tell its story in causal order, without inventing an onset.
    let mut r = Recorder::with_flags(TraceFlags::enabled());
    r.instant(40.0, "score.first_signal", Some(11), 0.0);
    r.instant(55.0, "score.recidivist", Some(11), 0.3);
    r.instant(60.0, "core.suspect", Some(11), 0.0);
    r.instant(60.0, "core.quarantine", Some(11), 0.0);
    r.instant(72.0, "core.exonerate", Some(11), 0.0);
    r.instant(96.0, "core.restore", Some(11), 0.0);
    let s = incident_timeline(&r.finish(), &|id| format!("c{id}"));
    let line = s
        .lines()
        .find(|l| l.trim_start().starts_with("c11"))
        .unwrap();
    assert_eq!(
        line.trim(),
        "c11  signal@h40 -> recidivist@h55 -> suspect@h60 -> quarantine@h60 \
         -> exonerate@h72 -> restore@h96"
    );
    assert!(!line.contains("onset@"), "no ground truth, no onset stage");
}

#[test]
fn timeline_renders_false_exoneration_then_reconfirmation() {
    // The paper's "test escape": a mercurial core is exonerated (deep
    // check found nothing), returns to the pool, keeps corrupting, and is
    // re-quarantined and confirmed later. Both passes must render, in
    // causal order, on one line.
    let mut r = Recorder::with_flags(TraceFlags::enabled());
    r.instant(10.0, "gt.onset", Some(5), 0.0);
    r.instant(30.0, "score.first_signal", Some(5), 0.0);
    r.instant(50.0, "core.suspect", Some(5), 0.0);
    r.instant(50.0, "core.quarantine", Some(5), 0.0);
    r.instant(62.0, "core.exonerate", Some(5), 0.0);
    r.instant(70.0, "core.restore", Some(5), 0.0);
    // Second pass: fresh evidence, emitted out of hour order (a later
    // evidence batch can carry an earlier-hour signal).
    r.instant(130.0, "core.suspect", Some(5), 0.0);
    r.instant(120.0, "score.recidivist", Some(5), 0.4);
    r.instant(130.0, "core.quarantine", Some(5), 0.0);
    r.instant(144.0, "detect.triage", Some(5), 0.0);
    r.instant(144.0, "core.confirm", Some(5), 0.0);
    let s = incident_timeline(&r.finish(), &|id| format!("c{id}"));
    let line = s
        .lines()
        .find(|l| l.trim_start().starts_with("c5"))
        .unwrap();
    assert_eq!(
        line.trim(),
        "c5  onset@h10 -> signal@h30 -> suspect@h50 -> quarantine@h50 \
         -> exonerate@h62 -> restore@h70 -> recidivist@h120 -> suspect@h130 \
         -> quarantine@h130 -> detect(triage)@h144 -> confirm@h144"
    );
}
