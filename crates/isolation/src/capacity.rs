//! Capacity accounting for a pool of no-longer-identical machines.
//!
//! §6.1: isolating a core "undermines a scheduler assumption that all
//! machines of a specific type have identical resources". The ledger
//! tracks nominal vs. effective core counts per machine so the scheduler
//! (and the capacity-planning experiments) can reason about how much the
//! fleet has actually lost to quarantine — and how much a false-positive-
//! happy detector would cost.

use mercurial_fault::{CoreUid, FastMap, FastSet};
use mercurial_trace::Recorder;
use serde::{Deserialize, Serialize};

/// Aggregate capacity numbers for a pool.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCapacity {
    /// Cores the hardware nominally provides.
    pub nominal_cores: u64,
    /// Cores currently schedulable.
    pub effective_cores: u64,
    /// Cores lost to quarantine/retirement.
    pub lost_cores: u64,
    /// Machines whose effective count differs from nominal (the scheduler
    /// can no longer treat them as identical).
    pub heterogeneous_machines: u64,
}

impl PoolCapacity {
    /// Fraction of nominal capacity still available.
    pub fn availability(&self) -> f64 {
        if self.nominal_cores == 0 {
            return 1.0;
        }
        self.effective_cores as f64 / self.nominal_cores as f64
    }
}

/// Tracks per-machine nominal and lost cores.
///
/// Aggregates ([`CapacityLedger::pool`]) are maintained incrementally so
/// the closed-loop driver can read them every epoch without an
/// O(machines) walk — at fleet-study scale (10⁶ machines × hundreds of
/// epochs) the walk was the single largest cost in the loop.
#[derive(Debug, Clone, Default)]
pub struct CapacityLedger {
    nominal: FastMap<u32, u64>,
    lost: FastMap<u32, FastSet<CoreUid>>,
    /// Running totals, updated on every register/remove/restore; always
    /// equal to what a full walk of the maps would produce.
    nominal_total: u64,
    lost_total: u64,
    heterogeneous: u64,
}

impl CapacityLedger {
    /// Creates an empty ledger.
    pub fn new() -> CapacityLedger {
        CapacityLedger::default()
    }

    /// Registers a machine with its nominal core count. Re-registering
    /// replaces the previous count.
    pub fn register_machine(&mut self, machine: u32, cores: u64) {
        if let Some(old) = self.nominal.insert(machine, cores) {
            self.nominal_total -= old;
        }
        self.nominal_total += cores;
    }

    /// Records a core as removed from service.
    ///
    /// Idempotent: removing the same core twice counts once.
    ///
    /// # Panics
    ///
    /// Panics if the machine was never registered or the loss would
    /// exceed its nominal count.
    pub fn remove_core(&mut self, core: CoreUid) {
        let nominal = *self
            .nominal
            .get(&core.machine)
            .unwrap_or_else(|| panic!("machine {} not registered", core.machine));
        let set = self.lost.entry(core.machine).or_default();
        if set.insert(core) {
            self.lost_total += 1;
            if set.len() == 1 {
                self.heterogeneous += 1;
            }
        }
        assert!(
            set.len() as u64 <= nominal,
            "machine {} lost more cores than it has",
            core.machine
        );
    }

    /// [`CapacityLedger::remove_core`] with telemetry: a
    /// `capacity.core_removed` instant plus counter (first removal only —
    /// idempotent repeats are not re-announced).
    pub fn remove_core_traced(&mut self, core: CoreUid, hour: f64, rec: &mut Recorder) {
        let already = self
            .lost
            .get(&core.machine)
            .is_some_and(|s| s.contains(&core));
        self.remove_core(core);
        if !already {
            rec.instant(hour, "capacity.core_removed", Some(core.as_u64()), 0.0);
            rec.counter_add("capacity.cores_removed", 1);
        }
    }

    /// Returns a core to service.
    pub fn restore_core(&mut self, core: CoreUid) {
        if let Some(set) = self.lost.get_mut(&core.machine) {
            if set.remove(&core) {
                self.lost_total -= 1;
                if set.is_empty() {
                    self.heterogeneous -= 1;
                }
            }
        }
    }

    /// [`CapacityLedger::restore_core`] with telemetry: a
    /// `capacity.core_restored` instant plus counter (only when the core
    /// was actually out of service).
    pub fn restore_core_traced(&mut self, core: CoreUid, hour: f64, rec: &mut Recorder) {
        let was_lost = self
            .lost
            .get(&core.machine)
            .is_some_and(|s| s.contains(&core));
        self.restore_core(core);
        if was_lost {
            rec.instant(hour, "capacity.core_restored", Some(core.as_u64()), 0.0);
            rec.counter_add("capacity.cores_restored", 1);
        }
    }

    /// Effective core count of one machine.
    pub fn effective_of(&self, machine: u32) -> u64 {
        let nominal = self.nominal.get(&machine).copied().unwrap_or(0);
        let lost = self.lost.get(&machine).map(|s| s.len() as u64).unwrap_or(0);
        nominal - lost
    }

    /// Aggregates the pool. O(1): reads the maintained running totals.
    pub fn pool(&self) -> PoolCapacity {
        PoolCapacity {
            nominal_cores: self.nominal_total,
            effective_cores: self.nominal_total - self.lost_total,
            lost_cores: self.lost_total,
            heterogeneous_machines: self.heterogeneous,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_aggregates() {
        let mut ledger = CapacityLedger::new();
        for m in 0..10 {
            ledger.register_machine(m, 64);
        }
        ledger.remove_core(CoreUid::new(3, 0, 5));
        ledger.remove_core(CoreUid::new(3, 1, 9));
        ledger.remove_core(CoreUid::new(7, 0, 0));
        let pool = ledger.pool();
        assert_eq!(pool.nominal_cores, 640);
        assert_eq!(pool.lost_cores, 3);
        assert_eq!(pool.effective_cores, 637);
        assert_eq!(pool.heterogeneous_machines, 2);
        assert!((pool.availability() - 637.0 / 640.0).abs() < 1e-12);
    }

    #[test]
    fn removal_is_idempotent_and_restorable() {
        let mut ledger = CapacityLedger::new();
        ledger.register_machine(1, 8);
        let core = CoreUid::new(1, 0, 2);
        ledger.remove_core(core);
        ledger.remove_core(core);
        assert_eq!(ledger.effective_of(1), 7);
        ledger.restore_core(core);
        assert_eq!(ledger.effective_of(1), 8);
        assert_eq!(ledger.pool().heterogeneous_machines, 0);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_machine_panics() {
        CapacityLedger::new().remove_core(CoreUid::new(9, 0, 0));
    }

    #[test]
    fn empty_pool_is_fully_available() {
        assert_eq!(CapacityLedger::new().pool().availability(), 1.0);
    }
}
