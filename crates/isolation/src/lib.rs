//! # mercurial-isolation
//!
//! Isolating mercurial cores — §6.1 of *Cores that don't count*:
//!
//! > "It is relatively simple for existing scheduling mechanisms to remove
//! > a machine from the resource pool; isolating a specific core could be
//! > more challenging, because it undermines a scheduler assumption that
//! > all machines of a specific type have identical resources."
//!
//! * [`quarantine`] — the per-core state machine (healthy → suspect →
//!   quarantined → confirmed/exonerated → retired/restored), with a full
//!   audit trail;
//! * [`csr`] — Core Surprise Removal (Shalev et al. [23]): migrating run
//!   queues off a live core and fencing it without a reboot;
//! * [`capacity`] — resource-pool accounting once machines stop being
//!   identical;
//! * [`safetask`] — the paper's speculative idea: "one might identify a
//!   set of tasks that can run safely on a given mercurial core (if these
//!   tasks avoid a defective execution unit), avoiding the cost of
//!   stranding those cores" — unit-aware placement with a residual-risk
//!   audit.
#![warn(missing_docs)]

pub mod capacity;
pub mod csr;
pub mod quarantine;
pub mod safetask;

pub use capacity::{CapacityLedger, PoolCapacity};
pub use csr::{CsrOutcome, CsrSimulator};
pub use quarantine::{CoreState, QuarantineError, QuarantineRegistry, Transition};
pub use safetask::{PlacementDecision, SafeTaskPolicy, TaskUnitProfile};
