//! The quarantine state machine.
//!
//! §6: suspect cores "become grounds for quarantining those cores,
//! followed by more careful checking". The registry enforces a legal
//! transition graph and keeps an audit trail, because a fleet needs to
//! answer "why is this core out of service, since when, on what evidence"
//! long after the incident.
//!
//! ```text
//! Healthy ──suspect──► Suspect ──quarantine──► Quarantined
//!    ▲                    │                        │
//!    │                exonerate                 confirm ──► Confirmed ──retire──► Retired
//!    │                    │                        │
//!    └────────────────────┴──────exonerate─────────┘
//!               (restore returns Exonerated cores to Healthy)
//! ```

use mercurial_fault::CoreUid;
use mercurial_trace::Recorder;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Lifecycle state of a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreState {
    /// In service, no outstanding evidence.
    Healthy,
    /// Under suspicion (signals accumulated), still schedulable.
    Suspect,
    /// Removed from the schedulable pool pending deep checking.
    Quarantined,
    /// Deep checking confirmed the defect.
    Confirmed,
    /// Deep checking found nothing; eligible for restore.
    Exonerated,
    /// Permanently out of service.
    Retired,
}

/// A recorded state transition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Fleet hour.
    pub hour: f64,
    /// State before.
    pub from: CoreState,
    /// State after.
    pub to: CoreState,
    /// Operator-readable reason.
    pub reason: String,
}

/// Errors from illegal transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineError {
    /// The core.
    pub core: CoreUid,
    /// Its current state.
    pub current: CoreState,
    /// The attempted target state.
    pub attempted: CoreState,
}

impl std::fmt::Display for QuarantineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "core {}: illegal transition {:?} -> {:?}",
            self.core, self.current, self.attempted
        )
    }
}

impl std::error::Error for QuarantineError {}

fn legal(from: CoreState, to: CoreState) -> bool {
    use CoreState::*;
    matches!(
        (from, to),
        (Healthy, Suspect)
            | (Suspect, Quarantined)
            | (Suspect, Exonerated)
            | (Quarantined, Confirmed)
            | (Quarantined, Exonerated)
            | (Confirmed, Retired)
            | (Exonerated, Healthy)
    )
}

/// The fleet-wide quarantine registry.
#[derive(Debug, Clone, Default)]
pub struct QuarantineRegistry {
    states: HashMap<CoreUid, CoreState>,
    history: HashMap<CoreUid, Vec<Transition>>,
}

impl QuarantineRegistry {
    /// Creates an empty registry (unknown cores are Healthy).
    pub fn new() -> QuarantineRegistry {
        QuarantineRegistry::default()
    }

    /// A core's current state.
    pub fn state(&self, core: CoreUid) -> CoreState {
        self.states
            .get(&core)
            .copied()
            .unwrap_or(CoreState::Healthy)
    }

    /// Whether the scheduler may place work on the core.
    pub fn is_schedulable(&self, core: CoreUid) -> bool {
        matches!(self.state(core), CoreState::Healthy | CoreState::Suspect)
    }

    /// The `core.*` instant-event name announcing arrival in a state.
    fn event_name(to: CoreState) -> &'static str {
        match to {
            CoreState::Healthy => "core.restore",
            CoreState::Suspect => "core.suspect",
            CoreState::Quarantined => "core.quarantine",
            CoreState::Confirmed => "core.confirm",
            CoreState::Exonerated => "core.exonerate",
            CoreState::Retired => "core.retire",
        }
    }

    fn transition(
        &mut self,
        core: CoreUid,
        to: CoreState,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        let from = self.state(core);
        if !legal(from, to) {
            return Err(QuarantineError {
                core,
                current: from,
                attempted: to,
            });
        }
        self.states.insert(core, to);
        self.history.entry(core).or_default().push(Transition {
            hour,
            from,
            to,
            reason: reason.into(),
        });
        rec.instant(hour, Self::event_name(to), Some(core.as_u64()), 0.0);
        rec.counter_add("core.transitions", 1);
        Ok(())
    }

    /// Healthy → Suspect.
    pub fn mark_suspect(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Suspect,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::mark_suspect`] with a `core.suspect` instant.
    pub fn mark_suspect_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Suspect, hour, reason, rec)
    }

    /// Suspect → Quarantined (removes the core from the pool).
    pub fn quarantine(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Quarantined,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::quarantine`] with a `core.quarantine` instant.
    pub fn quarantine_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Quarantined, hour, reason, rec)
    }

    /// Quarantined → Confirmed (deep checking reproduced the defect).
    pub fn confirm(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Confirmed,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::confirm`] with a `core.confirm` instant.
    pub fn confirm_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Confirmed, hour, reason, rec)
    }

    /// Suspect/Quarantined → Exonerated (nothing reproduced).
    pub fn exonerate(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Exonerated,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::exonerate`] with a `core.exonerate` instant.
    pub fn exonerate_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Exonerated, hour, reason, rec)
    }

    /// Exonerated → Healthy (returned to the pool).
    pub fn restore(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Healthy,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::restore`] with a `core.restore` instant.
    pub fn restore_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Healthy, hour, reason, rec)
    }

    /// Confirmed → Retired (permanent removal).
    pub fn retire(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
    ) -> Result<(), QuarantineError> {
        self.transition(
            core,
            CoreState::Retired,
            hour,
            reason,
            &mut Recorder::disabled(),
        )
    }

    /// [`QuarantineRegistry::retire`] with a `core.retire` instant.
    pub fn retire_traced(
        &mut self,
        core: CoreUid,
        hour: f64,
        reason: impl Into<String>,
        rec: &mut Recorder,
    ) -> Result<(), QuarantineError> {
        self.transition(core, CoreState::Retired, hour, reason, rec)
    }

    /// The audit trail of a core.
    pub fn history(&self, core: CoreUid) -> &[Transition] {
        self.history.get(&core).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All cores currently in a given state.
    pub fn in_state(&self, state: CoreState) -> Vec<CoreUid> {
        let mut v: Vec<CoreUid> = self
            .states
            .iter()
            .filter(|(_, &s)| s == state)
            .map(|(&c, _)| c)
            .collect();
        v.sort_unstable();
        v
    }

    /// Count of cores not schedulable (the capacity the fleet is losing).
    pub fn unschedulable_count(&self) -> usize {
        self.states
            .values()
            .filter(|s| !matches!(s, CoreState::Healthy | CoreState::Suspect))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core(i: u32) -> CoreUid {
        CoreUid::new(i, 0, 0)
    }

    #[test]
    fn full_confirmation_path() {
        let mut reg = QuarantineRegistry::new();
        let c = core(1);
        assert_eq!(reg.state(c), CoreState::Healthy);
        assert!(reg.is_schedulable(c));
        reg.mark_suspect(c, 1.0, "concentrated reports").unwrap();
        assert!(
            reg.is_schedulable(c),
            "suspects keep running until quarantined"
        );
        reg.quarantine(c, 2.0, "report service verdict").unwrap();
        assert!(!reg.is_schedulable(c));
        reg.confirm(c, 3.0, "deep screen failed on vector-lanes")
            .unwrap();
        reg.retire(c, 4.0, "RMA").unwrap();
        assert_eq!(reg.state(c), CoreState::Retired);
        assert_eq!(reg.history(c).len(), 4);
        assert_eq!(reg.history(c)[0].reason, "concentrated reports");
    }

    #[test]
    fn exoneration_path_restores() {
        let mut reg = QuarantineRegistry::new();
        let c = core(2);
        reg.mark_suspect(c, 1.0, "crash").unwrap();
        reg.quarantine(c, 2.0, "recidivism").unwrap();
        reg.exonerate(c, 3.0, "nothing reproduced").unwrap();
        assert!(
            !reg.is_schedulable(c),
            "exonerated cores need an explicit restore"
        );
        reg.restore(c, 4.0, "returned to pool").unwrap();
        assert_eq!(reg.state(c), CoreState::Healthy);
        assert!(reg.is_schedulable(c));
    }

    #[test]
    fn suspect_can_be_exonerated_without_quarantine() {
        let mut reg = QuarantineRegistry::new();
        let c = core(3);
        reg.mark_suspect(c, 1.0, "one crash").unwrap();
        reg.exonerate(c, 2.0, "evidence aged out").unwrap();
        reg.restore(c, 3.0, "ok").unwrap();
        assert_eq!(reg.state(c), CoreState::Healthy);
    }

    #[test]
    fn illegal_transitions_rejected() {
        let mut reg = QuarantineRegistry::new();
        let c = core(4);
        // Cannot quarantine a healthy core without suspicion first.
        let err = reg.quarantine(c, 1.0, "hasty").unwrap_err();
        assert_eq!(err.current, CoreState::Healthy);
        assert_eq!(err.attempted, CoreState::Quarantined);
        // Cannot confirm without quarantine.
        reg.mark_suspect(c, 1.0, "x").unwrap();
        assert!(reg.confirm(c, 2.0, "y").is_err());
        // Cannot retire an unconfirmed core.
        assert!(reg.retire(c, 3.0, "z").is_err());
        // Cannot re-suspect a suspect.
        assert!(reg.mark_suspect(c, 4.0, "again").is_err());
    }

    #[test]
    fn retired_is_terminal() {
        let mut reg = QuarantineRegistry::new();
        let c = core(5);
        reg.mark_suspect(c, 1.0, "").unwrap();
        reg.quarantine(c, 2.0, "").unwrap();
        reg.confirm(c, 3.0, "").unwrap();
        reg.retire(c, 4.0, "").unwrap();
        assert!(reg.exonerate(c, 5.0, "").is_err());
        assert!(reg.restore(c, 5.0, "").is_err());
        assert!(reg.mark_suspect(c, 5.0, "").is_err());
    }

    #[test]
    fn queries_and_counts() {
        let mut reg = QuarantineRegistry::new();
        for i in 0..4 {
            reg.mark_suspect(core(i), 1.0, "").unwrap();
        }
        reg.quarantine(core(0), 2.0, "").unwrap();
        reg.quarantine(core(1), 2.0, "").unwrap();
        reg.confirm(core(1), 3.0, "").unwrap();
        assert_eq!(reg.in_state(CoreState::Quarantined), vec![core(0)]);
        assert_eq!(reg.in_state(CoreState::Confirmed), vec![core(1)]);
        assert_eq!(reg.in_state(CoreState::Suspect), vec![core(2), core(3)]);
        assert_eq!(reg.unschedulable_count(), 2);
    }
}
