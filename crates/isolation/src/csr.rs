//! Core Surprise Removal.
//!
//! §6.1 cites Shalev et al. [23] ("CSR: Core Surprise Removal in Commodity
//! Operating Systems"): removing a faulty core from a *running* operating
//! system. This module simulates the OS-side mechanics: a per-core run
//! queue model, task migration, interrupt rerouting, and the awkward
//! residue — tasks hard-pinned to the dying core, which can only be
//! killed.

use mercurial_fault::CoreUid;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A scheduled task in the toy OS model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Task {
    /// Task id.
    pub id: u64,
    /// If set, the task may only run on these cores (hard affinity).
    pub affinity: Option<BTreeSet<u16>>,
}

impl Task {
    /// An unpinned task.
    pub fn unpinned(id: u64) -> Task {
        Task { id, affinity: None }
    }

    /// A task hard-pinned to one core.
    pub fn pinned(id: u64, core: u16) -> Task {
        Task {
            id,
            affinity: Some([core].into_iter().collect()),
        }
    }

    /// Whether the task may run on `core`.
    pub fn allows(&self, core: u16) -> bool {
        self.affinity.as_ref().is_none_or(|set| set.contains(&core))
    }
}

/// Outcome of one core-surprise-removal operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrOutcome {
    /// The removed core.
    pub removed: u16,
    /// Tasks migrated to other cores: `(task id, destination core)`.
    pub migrated: Vec<(u64, u16)>,
    /// Hard-pinned tasks that had to be killed.
    pub killed: Vec<u64>,
    /// Interrupt vectors rerouted off the core.
    pub irqs_rerouted: u32,
}

/// A machine-level OS model with per-core run queues.
#[derive(Debug, Clone)]
pub struct CsrSimulator {
    machine: u32,
    socket: u8,
    queues: BTreeMap<u16, Vec<Task>>,
    offline: BTreeSet<u16>,
    irq_homes: BTreeMap<u32, u16>,
}

impl CsrSimulator {
    /// Creates a machine with `cores` cores and a default IRQ layout
    /// (IRQs spread round-robin across cores).
    pub fn new(machine: u32, socket: u8, cores: u16, irqs: u32) -> CsrSimulator {
        let queues = (0..cores).map(|c| (c, Vec::new())).collect();
        let irq_homes = (0..irqs).map(|i| (i, (i % cores as u32) as u16)).collect();
        CsrSimulator {
            machine,
            socket,
            queues,
            offline: BTreeSet::new(),
            irq_homes,
        }
    }

    /// Number of online cores.
    pub fn online_cores(&self) -> usize {
        self.queues.len() - self.offline.len()
    }

    /// Enqueues a task on the least-loaded core that satisfies its
    /// affinity.
    ///
    /// Returns the chosen core, or `None` if no online core satisfies the
    /// affinity.
    pub fn spawn(&mut self, task: Task) -> Option<u16> {
        let dest = self
            .queues
            .iter()
            .filter(|(c, _)| !self.offline.contains(c) && task.allows(**c))
            .min_by_key(|(c, q)| (q.len(), **c))
            .map(|(&c, _)| c)?;
        self.queues.get_mut(&dest).expect("dest exists").push(task);
        Some(dest)
    }

    /// The run-queue length of a core.
    pub fn queue_len(&self, core: u16) -> usize {
        self.queues.get(&core).map(Vec::len).unwrap_or(0)
    }

    /// The fleet-unique uid of a local core.
    pub fn uid(&self, core: u16) -> CoreUid {
        CoreUid::new(self.machine, self.socket, core)
    }

    /// Performs core surprise removal: fence the core, reroute its IRQs,
    /// migrate its run queue, kill what cannot move.
    ///
    /// # Panics
    ///
    /// Panics if the core does not exist or is already offline.
    pub fn remove_core(&mut self, core: u16) -> CsrOutcome {
        assert!(self.queues.contains_key(&core), "no such core {core}");
        assert!(!self.offline.contains(&core), "core {core} already offline");
        // Fence first: no new placements land here.
        self.offline.insert(core);

        // Reroute interrupts whose home was the dying core.
        let mut irqs_rerouted = 0;
        let fallback = self
            .queues
            .keys()
            .copied()
            .find(|c| !self.offline.contains(c));
        for (_, home) in self.irq_homes.iter_mut() {
            if *home == core {
                if let Some(f) = fallback {
                    *home = f;
                    irqs_rerouted += 1;
                }
            }
        }

        // Drain the run queue.
        let orphans = self.queues.insert(core, Vec::new()).expect("core exists");
        let mut migrated = Vec::new();
        let mut killed = Vec::new();
        for task in orphans {
            let dest = self
                .queues
                .iter()
                .filter(|(c, _)| !self.offline.contains(c) && task.allows(**c))
                .min_by_key(|(c, q)| (q.len(), **c))
                .map(|(&c, _)| c);
            match dest {
                Some(d) => {
                    migrated.push((task.id, d));
                    self.queues.get_mut(&d).expect("dest exists").push(task);
                }
                None => killed.push(task.id),
            }
        }
        CsrOutcome {
            removed: core,
            migrated,
            killed,
            irqs_rerouted,
        }
    }

    /// Whether any IRQ is still homed on an offline core (the invariant
    /// CSR must maintain).
    pub fn irqs_consistent(&self) -> bool {
        self.irq_homes
            .values()
            .all(|home| !self.offline.contains(home))
    }

    /// Total queued tasks across online cores.
    pub fn total_tasks(&self) -> usize {
        self.queues
            .iter()
            .filter(|(c, _)| !self.offline.contains(c))
            .map(|(_, q)| q.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_balances_load() {
        let mut os = CsrSimulator::new(0, 0, 4, 8);
        for i in 0..8 {
            os.spawn(Task::unpinned(i));
        }
        for c in 0..4 {
            assert_eq!(os.queue_len(c), 2);
        }
    }

    #[test]
    fn removal_migrates_everything_unpinned() {
        let mut os = CsrSimulator::new(0, 0, 4, 8);
        for i in 0..12 {
            os.spawn(Task::unpinned(i));
        }
        let before = os.total_tasks();
        let outcome = os.remove_core(2);
        assert_eq!(outcome.killed, Vec::<u64>::new());
        assert_eq!(outcome.migrated.len(), 3);
        assert_eq!(os.total_tasks(), before, "no tasks lost");
        assert_eq!(os.queue_len(2), 0);
        assert_eq!(os.online_cores(), 3);
    }

    #[test]
    fn pinned_tasks_are_killed() {
        let mut os = CsrSimulator::new(0, 0, 2, 4);
        os.spawn(Task::pinned(100, 1));
        os.spawn(Task::unpinned(101));
        let outcome = os.remove_core(1);
        assert_eq!(outcome.killed, vec![100]);
    }

    #[test]
    fn irqs_rerouted_off_the_dying_core() {
        let mut os = CsrSimulator::new(0, 0, 4, 16);
        let outcome = os.remove_core(3);
        assert_eq!(outcome.irqs_rerouted, 4); // 16 irqs / 4 cores
        assert!(os.irqs_consistent());
    }

    #[test]
    fn fenced_core_receives_no_new_work() {
        let mut os = CsrSimulator::new(0, 0, 2, 2);
        os.remove_core(0);
        for i in 0..4 {
            assert_eq!(os.spawn(Task::unpinned(i)), Some(1));
        }
        assert_eq!(os.queue_len(0), 0);
    }

    #[test]
    fn task_pinned_to_offline_core_cannot_spawn() {
        let mut os = CsrSimulator::new(0, 0, 2, 2);
        os.remove_core(1);
        assert_eq!(os.spawn(Task::pinned(7, 1)), None);
    }

    #[test]
    #[should_panic(expected = "already offline")]
    fn double_removal_panics() {
        let mut os = CsrSimulator::new(0, 0, 2, 2);
        os.remove_core(0);
        os.remove_core(0);
    }

    #[test]
    fn uid_embeds_machine_and_socket() {
        let os = CsrSimulator::new(7, 1, 4, 4);
        assert_eq!(os.uid(3), CoreUid::new(7, 1, 3));
    }
}
