//! Unit-aware "safe task" placement on defective cores.
//!
//! §6.1: "More speculatively, one might identify a set of tasks that can
//! run safely on a given mercurial core (if these tasks avoid a defective
//! execution unit), avoiding the cost of stranding those cores. It is not
//! clear, though, if we can reliably identify safe tasks with respect to a
//! specific defective core."
//!
//! Both halves are modeled. The policy places tasks whose *declared* unit
//! usage avoids the core's known-defective units — and the audit exposes
//! the paper's caveat: a task's declared usage can be wrong, because the
//! instruction → unit mapping is non-obvious (a task that "only does
//! memcpy" is in fact exercising the vector pipe — §5).

use mercurial_fault::FunctionalUnit;
use serde::{Deserialize, Serialize};

/// A task's functional-unit usage profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskUnitProfile {
    /// Task class name.
    pub name: String,
    /// Units the developer/profiler *declares* the task uses.
    pub declared: Vec<FunctionalUnit>,
    /// Whether the task performs bulk copies. Developers rarely think of
    /// `memcpy` as "vector work", but on this hardware (as on the paper's)
    /// copies run on the vector pipe.
    pub does_bulk_copies: bool,
}

impl TaskUnitProfile {
    /// Creates a profile.
    pub fn new(
        name: impl Into<String>,
        declared: Vec<FunctionalUnit>,
        does_bulk_copies: bool,
    ) -> TaskUnitProfile {
        TaskUnitProfile {
            name: name.into(),
            declared,
            does_bulk_copies,
        }
    }

    /// The units the task *actually* exercises: declared usage plus the
    /// hidden vector-pipe dependency of bulk copies.
    pub fn actual_units(&self) -> Vec<FunctionalUnit> {
        let mut units = self.declared.clone();
        if self.does_bulk_copies && !units.contains(&FunctionalUnit::VectorPipe) {
            units.push(FunctionalUnit::VectorPipe);
        }
        units.sort_unstable();
        units.dedup();
        units
    }
}

/// A placement decision for one task on one defective core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementDecision {
    /// The task's declared usage avoids every defective unit: place it.
    Place {
        /// The defective units the task avoids.
        avoided: Vec<FunctionalUnit>,
    },
    /// The task's declared usage touches a defective unit: refuse.
    Refuse {
        /// The conflicting units.
        conflicts: Vec<FunctionalUnit>,
    },
}

impl PlacementDecision {
    /// Whether the policy would place the task.
    pub fn placed(&self) -> bool {
        matches!(self, PlacementDecision::Place { .. })
    }
}

/// Result of auditing a placement against ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementAudit {
    /// Declared and actual usage both avoid the defective units.
    ActuallySafe,
    /// The policy placed the task but its *actual* usage touches a
    /// defective unit — the paper's "not clear we can reliably identify
    /// safe tasks", realized.
    HiddenConflict(FunctionalUnit),
}

/// The unit-aware placement policy.
#[derive(Debug, Clone, Default)]
pub struct SafeTaskPolicy;

impl SafeTaskPolicy {
    /// Decides placement from the task's *declared* profile (all a real
    /// scheduler has).
    pub fn evaluate(
        &self,
        task: &TaskUnitProfile,
        defective_units: &[FunctionalUnit],
    ) -> PlacementDecision {
        let conflicts: Vec<FunctionalUnit> = task
            .declared
            .iter()
            .copied()
            .filter(|u| defective_units.contains(u))
            .collect();
        if conflicts.is_empty() {
            PlacementDecision::Place {
                avoided: defective_units.to_vec(),
            }
        } else {
            PlacementDecision::Refuse { conflicts }
        }
    }

    /// Audits a placement against the task's actual unit usage.
    pub fn audit(
        &self,
        task: &TaskUnitProfile,
        defective_units: &[FunctionalUnit],
    ) -> PlacementAudit {
        for unit in task.actual_units() {
            if defective_units.contains(&unit) {
                return PlacementAudit::HiddenConflict(unit);
            }
        }
        PlacementAudit::ActuallySafe
    }

    /// The fraction of stranded capacity a task mix can recover from a
    /// population of quarantined cores: for each core (given its defective
    /// units) the share of the task mix that is placeable on it, averaged
    /// over cores.
    ///
    /// `task_mix` pairs each profile with its share of fleet work.
    pub fn capacity_recovered(
        &self,
        task_mix: &[(TaskUnitProfile, f64)],
        defective_unit_sets: &[Vec<FunctionalUnit>],
    ) -> f64 {
        if defective_unit_sets.is_empty() {
            return 0.0;
        }
        let total_weight: f64 = task_mix.iter().map(|(_, w)| w).sum();
        if total_weight <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        for defective in defective_unit_sets {
            let placeable: f64 = task_mix
                .iter()
                .filter(|(t, _)| self.evaluate(t, defective).placed())
                .map(|(_, w)| w)
                .sum();
            acc += placeable / total_weight;
        }
        acc / defective_unit_sets.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use FunctionalUnit as U;

    fn scalar_task() -> TaskUnitProfile {
        TaskUnitProfile::new(
            "scalar-batch",
            vec![U::ScalarAlu, U::LoadStore, U::BranchUnit, U::AddressGen],
            false,
        )
    }

    #[test]
    fn scalar_task_placeable_on_crypto_defective_core() {
        let policy = SafeTaskPolicy;
        let decision = policy.evaluate(&scalar_task(), &[U::CryptoUnit]);
        assert!(decision.placed());
        assert_eq!(
            policy.audit(&scalar_task(), &[U::CryptoUnit]),
            PlacementAudit::ActuallySafe
        );
    }

    #[test]
    fn conflicting_task_refused() {
        let policy = SafeTaskPolicy;
        let crypto_task = TaskUnitProfile::new("tls", vec![U::CryptoUnit, U::ScalarAlu], false);
        match policy.evaluate(&crypto_task, &[U::CryptoUnit]) {
            PlacementDecision::Refuse { conflicts } => {
                assert_eq!(conflicts, vec![U::CryptoUnit])
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn hidden_copy_dependency_defeats_the_policy() {
        // The paper's caveat: a "scalar" task that does bulk copies is
        // placed on a vector-pipe-defective core — and the audit catches
        // the hidden conflict.
        let policy = SafeTaskPolicy;
        let sneaky = TaskUnitProfile::new(
            "log-shipper",
            vec![U::ScalarAlu, U::LoadStore, U::AddressGen, U::BranchUnit],
            true, // it memcpys buffers all day
        );
        let defective = [U::VectorPipe];
        assert!(
            policy.evaluate(&sneaky, &defective).placed(),
            "the scheduler is fooled"
        );
        assert_eq!(
            policy.audit(&sneaky, &defective),
            PlacementAudit::HiddenConflict(U::VectorPipe)
        );
    }

    #[test]
    fn capacity_recovery_depends_on_task_mix() {
        let policy = SafeTaskPolicy;
        let mix = vec![
            (scalar_task(), 0.5),
            (
                TaskUnitProfile::new("gemm", vec![U::Fma, U::VectorPipe, U::LoadStore], false),
                0.3,
            ),
            (
                TaskUnitProfile::new("tls", vec![U::CryptoUnit, U::ScalarAlu], false),
                0.2,
            ),
        ];
        // Cores defective only in crypto strand just the TLS share.
        let rec = policy.capacity_recovered(&mix, &[vec![U::CryptoUnit]]);
        assert!((rec - 0.8).abs() < 1e-12);
        // Cores defective in the scalar ALU strand almost everything.
        let rec = policy.capacity_recovered(&mix, &[vec![U::ScalarAlu]]);
        assert!((rec - 0.3).abs() < 1e-12);
        // Mixed population averages.
        let rec = policy.capacity_recovered(&mix, &[vec![U::CryptoUnit], vec![U::ScalarAlu]]);
        assert!((rec - 0.55).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        let policy = SafeTaskPolicy;
        assert_eq!(policy.capacity_recovered(&[], &[vec![U::Fma]]), 0.0);
        assert_eq!(policy.capacity_recovered(&[(scalar_task(), 1.0)], &[]), 0.0);
    }

    #[test]
    fn actual_units_dedup_and_sort() {
        let t = TaskUnitProfile::new("x", vec![U::VectorPipe, U::ScalarAlu], true);
        assert_eq!(t.actual_units(), vec![U::ScalarAlu, U::VectorPipe]);
    }
}
