//! Property-based tests on the quarantine state machine and CSR model.

use mercurial_fault::CoreUid;
use mercurial_isolation::csr::Task;
use mercurial_isolation::{CoreState, CsrSimulator, QuarantineRegistry};
use proptest::prelude::*;

/// The operations a fuzzer can throw at the registry.
#[derive(Debug, Clone, Copy)]
enum Op {
    Suspect,
    Quarantine,
    Confirm,
    Exonerate,
    Restore,
    Retire,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Suspect),
        Just(Op::Quarantine),
        Just(Op::Confirm),
        Just(Op::Exonerate),
        Just(Op::Restore),
        Just(Op::Retire),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under arbitrary operation sequences the registry never reaches an
    /// inconsistent state: history length equals accepted transitions,
    /// retired cores never leave Retired, and schedulability matches the
    /// state exactly.
    #[test]
    fn quarantine_state_machine_is_sound(ops in proptest::collection::vec(arb_op(), 0..64)) {
        let core = CoreUid::new(1, 0, 0);
        let mut reg = QuarantineRegistry::new();
        let mut accepted = 0usize;
        let mut was_retired = false;
        for (i, op) in ops.iter().enumerate() {
            let hour = i as f64;
            let result = match op {
                Op::Suspect => reg.mark_suspect(core, hour, "fuzz"),
                Op::Quarantine => reg.quarantine(core, hour, "fuzz"),
                Op::Confirm => reg.confirm(core, hour, "fuzz"),
                Op::Exonerate => reg.exonerate(core, hour, "fuzz"),
                Op::Restore => reg.restore(core, hour, "fuzz"),
                Op::Retire => reg.retire(core, hour, "fuzz"),
            };
            if result.is_ok() {
                accepted += 1;
            }
            if was_retired {
                prop_assert!(result.is_err(), "nothing is legal after Retired");
            }
            if reg.state(core) == CoreState::Retired {
                was_retired = true;
            }
            // Schedulability is exactly Healthy-or-Suspect.
            prop_assert_eq!(
                reg.is_schedulable(core),
                matches!(reg.state(core), CoreState::Healthy | CoreState::Suspect)
            );
        }
        prop_assert_eq!(reg.history(core).len(), accepted);
        // The audit trail is contiguous: each transition starts where the
        // previous ended.
        for w in reg.history(core).windows(2) {
            prop_assert_eq!(w[0].to, w[1].from);
        }
    }

    /// CSR conserves tasks: whatever mix of spawns and removals, no
    /// unpinned task is ever lost, and IRQs never point at dead cores.
    #[test]
    fn csr_conserves_tasks(
        cores in 2u16..8,
        spawns in proptest::collection::vec(any::<bool>(), 1..40),
        remove_count in 1u16..4,
    ) {
        let mut os = CsrSimulator::new(0, 0, cores, 2 * cores as u32);
        let mut pinned_spawned = 0usize;
        let mut unpinned_spawned = 0usize;
        for (i, &pin) in spawns.iter().enumerate() {
            let task = if pin {
                Task::pinned(i as u64, (i as u16) % cores)
            } else {
                Task::unpinned(i as u64)
            };
            if os.spawn(task).is_some() {
                if pin {
                    pinned_spawned += 1;
                } else {
                    unpinned_spawned += 1;
                }
            }
        }
        let mut killed_total = 0usize;
        let removals = remove_count.min(cores - 1);
        for c in 0..removals {
            let outcome = os.remove_core(c);
            killed_total += outcome.killed.len();
            prop_assert!(os.irqs_consistent());
        }
        // Unpinned tasks survive every removal; only pinned ones can die.
        prop_assert!(killed_total <= pinned_spawned);
        prop_assert_eq!(
            os.total_tasks(),
            pinned_spawned + unpinned_spawned - killed_total
        );
    }
}
