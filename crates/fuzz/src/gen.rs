//! Seeded program generation over the full `simcpu` ISA.
//!
//! SiliFuzz's central trick is that the proxy fuzzer does not need to be
//! clever about *what* a defect looks like — it only needs to produce a
//! high-volume stream of short, valid, terminating programs whose dynamic
//! behavior touches every functional unit with diverse data. This module
//! is that stream: every program is a pure function of `(seed, index)`
//! through a [`CounterRng`], which is what lets the campaign fan out over
//! `fleet::par::map_parallel` under the bit-for-bit determinism contract.
//!
//! Structural invariants (all load-bearing):
//!
//! * programs always terminate on a healthy core: the body is a single
//!   counted loop on a dedicated down-counter register that body
//!   instructions never write, and every in-body branch is forward-only
//!   with a target at or before the loop decrement;
//! * programs never trap on a healthy core: divides read a dedicated
//!   never-written nonzero register, and every memory operand is built
//!   from the never-written arena base register plus a bounded offset;
//! * every branch target is a real instruction index (`< len`), so
//!   `Program::validate` passes and `assemble(disassemble(p)) == p`
//!   round-trips exactly (no synthetic landing pad);
//! * register values are seeded with the data patterns the `Activation`
//!   gates look for (high popcount, checkerboard, distinct bytes), so
//!   pattern-gated lesions are reachable.

use mercurial_fault::{CounterRng, FunctionalUnit};
use mercurial_simcpu::{Inst, Program, Reg, VReg};

/// The arena base address loaded into [`BASE_REG`].
pub const ARENA_BASE: u64 = 0x100;
/// Bytes of memory staged (and fuzzed over) starting at [`ARENA_BASE`].
pub const ARENA_LEN: usize = 0xc00;
/// Scalar/vector load-store window size (offsets from the base register).
const LS_WINDOW: u64 = 0x100;
/// Atomics operate on this window (absolute addresses).
const ATOMIC_BASE: u64 = 0x600;
const ATOMIC_WINDOW: u64 = 0x100;
/// `memcpy` always lands its destination here so the epilogue can audit it.
const MEMCPY_DST: u64 = 0x800;
/// `memcpy` sources come from this window (absolute addresses).
const MEMCPY_SRC_BASE: u64 = 0x900;
const MEMCPY_SRC_WINDOW: u64 = 0x280;

/// Register conventions. The generator never writes any of these inside a
/// program body, which is what makes termination and trap-freedom static
/// properties rather than hopes. In particular every address-bearing
/// instruction reads only pinned registers — a forward branch can land on
/// *any* body instruction, so no instruction may assume a preceding
/// register setup executed.
const MEMCPY_LEN_REG: Reg = Reg(9); // memcpy byte length
const ATOMIC_ADDR_REG: Reg = Reg(10); // cas/xadd operand address
const MEMCPY_DST_REG: Reg = Reg(11); // memcpy destination address
const MEMCPY_SRC_REG: Reg = Reg(12); // memcpy source address
const BASE_REG: Reg = Reg(13); // arena base, value ARENA_BASE
const DIVISOR_REG: Reg = Reg(14); // nonzero, for div/rem
const COUNTER_REG: Reg = Reg(15); // loop down-counter
/// Writable destination pool: `x1`–`x8` (`x0` is kept as a zero-ish
/// scratch the epilogue reuses).
const POOL_LO: u8 = 1;
const POOL_HI: u8 = 8;

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenConfig {
    /// Instructions in the (single) loop body.
    pub body_len: usize,
    /// Loop trip count.
    pub loop_iters: u64,
    /// Memory size each program assumes (must fit the arena).
    pub mem_size: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            body_len: 48,
            loop_iters: 6,
            mem_size: 1 << 16,
        }
    }
}

/// One generated fuzz program plus its memory image.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzProgram {
    /// Campaign index this program was generated at.
    pub index: u64,
    /// The instruction sequence (passes [`Program::validate`]).
    pub program: Program,
    /// Memory staged before every run: `(addr, bytes)`.
    pub init_mem: Vec<(u64, Vec<u8>)>,
    /// Memory size the program assumes.
    pub mem_size: usize,
    /// The two functional units this program's instruction mix favors.
    pub focus: [FunctionalUnit; 2],
}

/// Instruction families the sampler draws from (branch handled inline).
const FAMILIES: [FunctionalUnit; 8] = [
    FunctionalUnit::ScalarAlu,
    FunctionalUnit::MulDiv,
    FunctionalUnit::Fma,
    FunctionalUnit::LoadStore,
    FunctionalUnit::VectorPipe,
    FunctionalUnit::Atomics,
    FunctionalUnit::CryptoUnit,
    FunctionalUnit::BranchUnit,
];

/// Generates the `index`-th program of a campaign.
///
/// Pure in `(seed, index, cfg)`: two calls with equal arguments return
/// equal programs, regardless of thread or call order.
pub fn generate(seed: u64, index: u64, cfg: &GenConfig) -> FuzzProgram {
    assert!(
        (ARENA_BASE as usize) + ARENA_LEN <= cfg.mem_size,
        "arena must fit in program memory"
    );
    let mut rng = CounterRng::from_parts(seed, index, 0xF0_22, 0);

    // Each program favors two functional units so the campaign as a whole
    // produces unit-specialized content for the distiller to choose from.
    let focus_a = FAMILIES[rng.next_below(FAMILIES.len() as u64) as usize];
    let focus_b = FAMILIES[rng.next_below(FAMILIES.len() as u64) as usize];

    let mut insts: Vec<Inst> = Vec::with_capacity(cfg.body_len + 64);

    // --- Prologue: pin the conventions, seed the patterns. ---
    insts.push(Inst::Li(BASE_REG, ARENA_BASE));
    insts.push(Inst::Li(DIVISOR_REG, rng.next_below(u64::MAX) | 1));
    insts.push(Inst::Li(COUNTER_REG, cfg.loop_iters.max(1)));
    insts.push(Inst::Li(MEMCPY_LEN_REG, 8u64 << rng.next_below(4)));
    insts.push(Inst::Li(
        ATOMIC_ADDR_REG,
        ATOMIC_BASE + rng.next_below(ATOMIC_WINDOW / 8) * 8,
    ));
    insts.push(Inst::Li(MEMCPY_DST_REG, MEMCPY_DST));
    insts.push(Inst::Li(
        MEMCPY_SRC_REG,
        MEMCPY_SRC_BASE + rng.next_below(MEMCPY_SRC_WINDOW / 8) * 8,
    ));
    for r in POOL_LO..=POOL_HI {
        insts.push(Inst::Li(Reg(r), pattern_immediate(&mut rng)));
    }
    // Seed one lane of every vector register from the patterned pool.
    for v in 0..VReg::COUNT as u8 {
        let src = Reg(POOL_LO + (rng.next_below((POOL_HI - POOL_LO + 1) as u64) as u8));
        insts.push(Inst::Vins(VReg(v), src, v % 4));
    }

    // --- Body: one counted loop of unit-biased random instructions. ---
    let body_start = insts.len() as u32;
    let decrement_at = body_start + cfg.body_len as u32;
    while insts.len() < decrement_at as usize {
        let pc = insts.len() as u32;
        emit_random(&mut rng, &mut insts, pc, decrement_at, [focus_a, focus_b]);
    }
    insts.push(Inst::Addi(COUNTER_REG, COUNTER_REG, -1));
    insts.push(Inst::Bnz(COUNTER_REG, body_start));

    // --- Epilogue: make every corruption architecturally visible. ---
    // Pool registers first (scalar/float/muldiv results live here).
    for r in POOL_LO..=POOL_HI {
        insts.push(Inst::Out(Reg(r)));
    }
    // Vector state (crypto + vector lesions hide in lanes until extracted).
    for v in 0..VReg::COUNT as u8 {
        insts.push(Inst::Vext(Reg(0), VReg(v), v % 4));
        insts.push(Inst::Out(Reg(0)));
    }
    // Audit the store windows: the scalar/vector window, the atomics
    // window, and the fixed memcpy destination.
    for k in 0..6u64 {
        insts.push(Inst::Ld(Reg(0), BASE_REG, (k * 0x28) as i64));
        insts.push(Inst::Out(Reg(0)));
    }
    for k in 0..2u64 {
        let off = (ATOMIC_BASE - ARENA_BASE + k * 0x40) as i64;
        insts.push(Inst::Ld(Reg(0), BASE_REG, off));
        insts.push(Inst::Out(Reg(0)));
    }
    for k in 0..4u64 {
        let off = (MEMCPY_DST - ARENA_BASE + k * 8) as i64;
        insts.push(Inst::Ld(Reg(0), BASE_REG, off));
        insts.push(Inst::Out(Reg(0)));
    }
    insts.push(Inst::Halt);

    // --- Memory image: patterned bytes over the whole arena. ---
    let mut image = Vec::with_capacity(ARENA_LEN);
    for i in 0..ARENA_LEN {
        let b = if i % 3 == 0 {
            // High-popcount bytes keep PopcountAtLeast gates reachable
            // through loads.
            0xffu8 ^ (1 << (rng.next_below(8) as u8))
        } else {
            rng.next_below(256) as u8
        };
        image.push(b);
    }

    let program = Program::new(insts);
    debug_assert!(program.validate().is_ok());
    FuzzProgram {
        index,
        program,
        init_mem: vec![(ARENA_BASE, image)],
        mem_size: cfg.mem_size,
        focus: [focus_a, focus_b],
    }
}

/// An immediate biased toward the data patterns `Activation` gates test.
fn pattern_immediate(rng: &mut CounterRng) -> u64 {
    match rng.next_below(5) {
        // Popcount >= 56: flips a few bits off all-ones.
        0 => {
            u64::MAX ^ (rng.next_below(u64::MAX) & rng.next_below(u64::MAX) & 0x0101_0101_0101_0101)
        }
        // Checkerboards (MaskedEquals-style gates).
        1 => 0xaaaa_aaaa_aaaa_aaaa,
        2 => 0x5555_5555_5555_5555,
        // All bytes distinct from neighbors.
        3 => 0x0102_0408_1020_4080u64.wrapping_add(rng.next_below(0x100) * 0x0101_0101_0101_0101),
        // Plain entropy.
        _ => rng.next_below(u64::MAX),
    }
}

/// A random register from the writable pool.
fn pool_reg(rng: &mut CounterRng) -> Reg {
    Reg(POOL_LO + rng.next_below((POOL_HI - POOL_LO + 1) as u64) as u8)
}

fn vreg(rng: &mut CounterRng) -> VReg {
    VReg(rng.next_below(VReg::COUNT as u64) as u8)
}

/// An 8-byte-aligned offset inside the scalar/vector load-store window.
fn ls_offset(rng: &mut CounterRng, reach: u64) -> i64 {
    (rng.next_below((LS_WINDOW - reach) / 8) * 8) as i64
}

/// Emits one instruction into `insts`.
///
/// Branch targets land in `(pc, decrement_at]`, which keeps the loop
/// counter's decrement on every path.
fn emit_random(
    rng: &mut CounterRng,
    insts: &mut Vec<Inst>,
    pc: u32,
    decrement_at: u32,
    focus: [FunctionalUnit; 2],
) {
    // Weighted family pick: base weight 2, +9 per focus hit.
    let mut weights = [2u64; FAMILIES.len()];
    for f in focus {
        if let Some(i) = FAMILIES.iter().position(|&u| u == f) {
            weights[i] += 9;
        }
    }
    let total: u64 = weights.iter().sum();
    let mut draw = rng.next_below(total);
    let mut family = FAMILIES[0];
    for (i, &w) in weights.iter().enumerate() {
        if draw < w {
            family = FAMILIES[i];
            break;
        }
        draw -= w;
    }

    match family {
        FunctionalUnit::ScalarAlu => insts.push(scalar_inst(rng)),
        FunctionalUnit::MulDiv => {
            let (d, a, b) = (pool_reg(rng), pool_reg(rng), pool_reg(rng));
            insts.push(match rng.next_below(4) {
                0 => Inst::Mul(d, a, b),
                1 => Inst::Mulh(d, a, b),
                2 => Inst::Div(d, a, DIVISOR_REG),
                _ => Inst::Rem(d, a, DIVISOR_REG),
            });
        }
        FunctionalUnit::Fma => {
            let (d, a, b) = (pool_reg(rng), pool_reg(rng), pool_reg(rng));
            insts.push(match rng.next_below(6) {
                0 => Inst::Fadd(d, a, b),
                1 => Inst::Fsub(d, a, b),
                2 => Inst::Fmul(d, a, b),
                3 => Inst::Fdiv(d, a, b),
                4 => Inst::Fma(d, a, b),
                _ => Inst::Fsqrt(d, a),
            });
        }
        FunctionalUnit::LoadStore => {
            let r = pool_reg(rng);
            insts.push(match rng.next_below(4) {
                0 => Inst::Ld(r, BASE_REG, ls_offset(rng, 8)),
                1 => Inst::St(r, BASE_REG, ls_offset(rng, 8)),
                2 => Inst::Ldb(r, BASE_REG, ls_offset(rng, 8)),
                _ => Inst::Stb(r, BASE_REG, ls_offset(rng, 8)),
            });
        }
        FunctionalUnit::VectorPipe => insts.push(vector_inst(rng)),
        FunctionalUnit::Atomics => insts.push(atomic_inst(rng)),
        FunctionalUnit::CryptoUnit => {
            let (vd, vk) = (vreg(rng), vreg(rng));
            insts.push(match rng.next_below(4) {
                0 => Inst::AesEnc(vd, vk),
                1 => Inst::AesEncLast(vd, vk),
                2 => Inst::AesDec(vd, vk),
                _ => Inst::AesDecLast(vd, vk),
            });
        }
        FunctionalUnit::BranchUnit => {
            // Forward-only, never past the loop decrement.
            let target = (pc + 1 + rng.next_below(4) as u32).min(decrement_at);
            let (a, b) = (pool_reg(rng), pool_reg(rng));
            insts.push(match rng.next_below(5) {
                0 => Inst::Jmp(target),
                1 => Inst::Beq(a, b, target),
                2 => Inst::Bne(a, b, target),
                3 => Inst::Blt(a, b, target),
                _ => Inst::Bnz(a, target),
            });
        }
        _ => insts.push(Inst::Nop),
    }
}

fn scalar_inst(rng: &mut CounterRng) -> Inst {
    let (d, a, b) = (pool_reg(rng), pool_reg(rng), pool_reg(rng));
    match rng.next_below(18) {
        0 => Inst::Li(d, pattern_immediate(rng)),
        1 => Inst::Mov(d, a),
        2 => Inst::Add(d, a, b),
        3 => Inst::Addi(d, a, rng.next_below(0x2000) as i64 - 0x1000),
        4 => Inst::Sub(d, a, b),
        5 => Inst::And(d, a, b),
        6 => Inst::Or(d, a, b),
        7 => Inst::Xor(d, a, b),
        8 => Inst::Xori(d, a, pattern_immediate(rng)),
        9 => Inst::Shl(d, a, b),
        10 => Inst::Shr(d, a, b),
        11 => Inst::Rotli(d, a, rng.next_below(64) as u32),
        12 => Inst::CmpLt(d, a, b),
        13 => Inst::CmpEq(d, a, b),
        14 => Inst::Popcnt(d, a),
        15 => Inst::Crc32b(d, a, b),
        16 => Inst::Out(a),
        // `x14` is never written and never zero, so a healthy core never
        // trips this assert — but a corrupted one can (a loud CEE).
        _ => Inst::Assert(DIVISOR_REG),
    }
}

fn vector_inst(rng: &mut CounterRng) -> Inst {
    let (vd, va, vb) = (vreg(rng), vreg(rng), vreg(rng));
    match rng.next_below(8) {
        0 => Inst::Vadd(vd, va, vb),
        1 => Inst::Vxor(vd, va, vb),
        2 => Inst::Vmul(vd, va, vb),
        3 => Inst::Vins(vd, pool_reg(rng), rng.next_below(4) as u8),
        4 => Inst::Vext(pool_reg(rng), va, rng.next_below(4) as u8),
        5 => Inst::Vld(vd, BASE_REG, ls_offset(rng, 32)),
        6 => Inst::Vst(vd, BASE_REG, ls_offset(rng, 32)),
        // All three operands are pinned registers, so a branch landing
        // here mid-body still copies inside the arena.
        _ => Inst::MemCpy {
            dst: MEMCPY_DST_REG,
            src: MEMCPY_SRC_REG,
            len: MEMCPY_LEN_REG,
        },
    }
}

fn atomic_inst(rng: &mut CounterRng) -> Inst {
    match rng.next_below(3) {
        0 => Inst::Cas {
            rd: pool_reg(rng),
            addr: ATOMIC_ADDR_REG,
            expected: pool_reg(rng),
            new: pool_reg(rng),
        },
        1 => Inst::Xadd(pool_reg(rng), ATOMIC_ADDR_REG, pool_reg(rng)),
        _ => Inst::Fence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_pure_in_seed_and_index() {
        let cfg = GenConfig::default();
        let a = generate(7, 3, &cfg);
        let b = generate(7, 3, &cfg);
        assert_eq!(a, b);
        let c = generate(7, 4, &cfg);
        assert_ne!(a.program, c.program, "indices decorrelate");
    }

    #[test]
    fn generated_programs_validate() {
        let cfg = GenConfig::default();
        for i in 0..64 {
            let fp = generate(0xf22_2026, i, &cfg);
            fp.program.validate().unwrap_or_else(|e| {
                panic!("program {i} invalid: {e}");
            });
        }
    }

    #[test]
    fn conventions_are_never_clobbered_in_body() {
        let cfg = GenConfig::default();
        for i in 0..32 {
            let fp = generate(1, i, &cfg);
            // Skip the 7 pinning `li`s; after that, the only write to a
            // convention register (x9–x15) is the loop decrement.
            let decrement = Inst::Addi(COUNTER_REG, COUNTER_REG, -1);
            for inst in &fp.program.insts[7..] {
                if *inst == decrement {
                    continue;
                }
                if let Some(d) = dest_of(inst) {
                    assert!(
                        d.index() <= POOL_HI as usize || d.index() == 0,
                        "program {i} writes convention register {d} via {inst:?}"
                    );
                }
            }
        }
    }

    fn dest_of(inst: &Inst) -> Option<Reg> {
        use Inst::*;
        match *inst {
            Li(d, _) | Popcnt(d, _) | Mov(d, _) | Fsqrt(d, _) | Vext(d, _, _) => Some(d),
            Add(d, _, _)
            | Addi(d, _, _)
            | Sub(d, _, _)
            | And(d, _, _)
            | Or(d, _, _)
            | Xor(d, _, _)
            | Xori(d, _, _)
            | Shl(d, _, _)
            | Shr(d, _, _)
            | Rotli(d, _, _)
            | CmpLt(d, _, _)
            | CmpEq(d, _, _)
            | Crc32b(d, _, _)
            | Mul(d, _, _)
            | Mulh(d, _, _)
            | Div(d, _, _)
            | Rem(d, _, _)
            | Fadd(d, _, _)
            | Fsub(d, _, _)
            | Fmul(d, _, _)
            | Fdiv(d, _, _)
            | Fma(d, _, _)
            | Ld(d, _, _)
            | Ldb(d, _, _)
            | Xadd(d, _, _) => Some(d),
            Cas { rd, .. } => Some(rd),
            _ => None,
        }
    }
}
