//! Witness minimization: delta-debugging a diverging program.
//!
//! A raw fuzz hit is a few hundred instructions of noise around the one
//! idiom that tickles the lesion. Triage (§6: "extract confessions via
//! further testing") wants the smallest program that still diverges, so
//! this module shrinks hits the way SiliFuzz and ddmin do: first remove
//! whole instruction windows (halving the window until it is 1), then
//! retry per-instruction removal until a fixpoint.
//!
//! Every candidate is re-validated and re-executed differentially; a
//! candidate is accepted only if it still *indicts* the suspect. A
//! candidate whose reference run traps or spins is rejected by the same
//! oracle (`ReferenceTrapped` / `None` do not indict), so termination
//! safety is preserved automatically.

use crate::diff::{run_differential, DiffConfig};
use crate::gen::FuzzProgram;
use mercurial_fault::CoreFaultProfile;
use mercurial_simcpu::{Inst, Program};

/// Outcome of minimizing one witness.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizedWitness {
    /// The shrunken program (still diverges under the same profile).
    pub program: FuzzProgram,
    /// Instruction count before minimization.
    pub original_len: usize,
    /// Differential oracle calls spent.
    pub oracle_calls: u64,
}

/// Removes instruction range `[a, b)` and patches branch targets.
///
/// Targets inside the removed range are redirected to the first surviving
/// instruction after it; a program whose targets end up out of range is
/// discarded by `validate()` in the oracle.
fn remove_range(prog: &Program, a: usize, b: usize) -> Program {
    let w = (b - a) as u32;
    let mut insts: Vec<Inst> = Vec::with_capacity(prog.insts.len() - (b - a));
    for (pc, inst) in prog.insts.iter().enumerate() {
        if pc >= a && pc < b {
            continue;
        }
        let patched = match *inst {
            Inst::Jmp(t) => Inst::Jmp(patch(t, a, b, w)),
            Inst::Beq(x, y, t) => Inst::Beq(x, y, patch(t, a, b, w)),
            Inst::Bne(x, y, t) => Inst::Bne(x, y, patch(t, a, b, w)),
            Inst::Blt(x, y, t) => Inst::Blt(x, y, patch(t, a, b, w)),
            Inst::Bnz(x, t) => Inst::Bnz(x, patch(t, a, b, w)),
            other => other,
        };
        insts.push(patched);
    }
    Program::new(insts)
}

fn patch(t: u32, a: usize, b: usize, w: u32) -> u32 {
    if (t as usize) >= b {
        t - w
    } else if (t as usize) >= a {
        a as u32
    } else {
        t
    }
}

/// Shrinks `witness` while it keeps indicting `profile`.
///
/// `seed`/`profile_slot` must match the values the original hit was found
/// with so deterministic lesions re-fire identically. `max_oracle_calls`
/// bounds the work; minimization stops early when the budget is spent.
pub fn minimize(
    witness: &FuzzProgram,
    profile: &CoreFaultProfile,
    seed: u64,
    profile_slot: u64,
    dcfg: &DiffConfig,
    max_oracle_calls: u64,
) -> MinimizedWitness {
    let original_len = witness.program.len();
    let mut best = witness.clone();
    let mut calls = 0u64;

    let still_indicts = |candidate: &FuzzProgram, calls: &mut u64| -> bool {
        if candidate.program.validate().is_err() || candidate.program.is_empty() {
            return false;
        }
        *calls += 1;
        run_differential(candidate, profile, seed, profile_slot, dcfg).indicts()
    };

    // Window pass: try removing [i, i+w) for w = n/2, n/4, …, 1.
    let mut window = (best.program.len() / 2).max(1);
    while window >= 1 {
        let mut i = 0;
        while i < best.program.len() && calls < max_oracle_calls {
            let b = (i + window).min(best.program.len());
            let candidate = FuzzProgram {
                program: remove_range(&best.program, i, b),
                ..best.clone()
            };
            if still_indicts(&candidate, &mut calls) {
                best = candidate; // keep i: the next window slid into place
            } else {
                i += window;
            }
        }
        if window == 1 {
            break;
        }
        window /= 2;
    }

    // Per-instruction fixpoint pass (window 1 again until nothing drops).
    let mut improved = true;
    while improved && calls < max_oracle_calls {
        improved = false;
        let mut i = 0;
        while i < best.program.len() && calls < max_oracle_calls {
            let candidate = FuzzProgram {
                program: remove_range(&best.program, i, i + 1),
                ..best.clone()
            };
            if still_indicts(&candidate, &mut calls) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
    }

    MinimizedWitness {
        program: best,
        original_len,
        oracle_calls: calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::run_differential;
    use crate::gen::{generate, GenConfig};
    use mercurial_fault::library;
    use mercurial_simcpu::Reg;

    #[test]
    fn range_removal_patches_branches() {
        let p = Program::new(vec![
            Inst::Li(Reg(1), 1),
            Inst::Nop,
            Inst::Bnz(Reg(1), 4),
            Inst::Nop,
            Inst::Halt,
        ]);
        let q = remove_range(&p, 1, 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.insts[1], Inst::Bnz(Reg(1), 3));
        q.validate().unwrap();
    }

    #[test]
    fn minimized_witness_still_indicts_and_shrinks() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        let profile = library::loadstore_corruptor(1.0);
        // Find a hit first.
        let (fp, slot) = (0..16)
            .map(|i| (generate(42, i, &gcfg), 0u64))
            .find(|(fp, slot)| run_differential(fp, &profile, 42, *slot, &dcfg).indicts())
            .expect("a hot load/store corruptor yields a hit in 16 programs");
        let min = minimize(&fp, &profile, 42, slot, &dcfg, 400);
        assert!(min.program.program.len() < min.original_len);
        assert!(
            run_differential(&min.program, &profile, 42, slot, &dcfg).indicts(),
            "minimized witness must still diverge"
        );
    }
}
