//! Witness minimization: delta-debugging a diverging program.
//!
//! A raw fuzz hit is a few hundred instructions of noise around the one
//! idiom that tickles the lesion. Triage (§6: "extract confessions via
//! further testing") wants the smallest program that still diverges, so
//! this module shrinks hits the way SiliFuzz and ddmin do: first remove
//! whole instruction windows (halving the window until it is 1), then
//! retry per-instruction removal until a fixpoint.
//!
//! Every candidate is re-validated and re-executed differentially; a
//! candidate is accepted only if it still *indicts* the suspect. A
//! candidate whose reference run traps or spins is rejected by the same
//! oracle (`ReferenceTrapped` / `None` do not indict), so termination
//! safety is preserved automatically.
//!
//! After the structural passes an *operand* pass canonicalizes what
//! survives: immediates shrink toward zero (zero first, then repeated
//! halving) and register operands are rewritten toward `x0`/`v0`, as long
//! as the witness keeps indicting. Branch and jump targets are never
//! touched — rewriting control flow is the structural passes' job.
//! Canonical witnesses read better in triage reports and deduplicate
//! across campaigns (two hits on the same lesion usually collapse to the
//! same shape once their incidental constants are gone).

use crate::diff::{run_differential, DiffConfig};
use crate::gen::FuzzProgram;
use mercurial_fault::CoreFaultProfile;
use mercurial_simcpu::{Inst, Program, Reg, VReg};

/// Outcome of minimizing one witness.
#[derive(Debug, Clone, PartialEq)]
pub struct MinimizedWitness {
    /// The shrunken program (still diverges under the same profile).
    pub program: FuzzProgram,
    /// Instruction count before minimization.
    pub original_len: usize,
    /// Differential oracle calls spent.
    pub oracle_calls: u64,
}

/// Removes instruction range `[a, b)` and patches branch targets.
///
/// Targets inside the removed range are redirected to the first surviving
/// instruction after it; a program whose targets end up out of range is
/// discarded by `validate()` in the oracle.
fn remove_range(prog: &Program, a: usize, b: usize) -> Program {
    let w = (b - a) as u32;
    let mut insts: Vec<Inst> = Vec::with_capacity(prog.insts.len() - (b - a));
    for (pc, inst) in prog.insts.iter().enumerate() {
        if pc >= a && pc < b {
            continue;
        }
        let patched = match *inst {
            Inst::Jmp(t) => Inst::Jmp(patch(t, a, b, w)),
            Inst::Beq(x, y, t) => Inst::Beq(x, y, patch(t, a, b, w)),
            Inst::Bne(x, y, t) => Inst::Bne(x, y, patch(t, a, b, w)),
            Inst::Blt(x, y, t) => Inst::Blt(x, y, patch(t, a, b, w)),
            Inst::Bnz(x, t) => Inst::Bnz(x, patch(t, a, b, w)),
            other => other,
        };
        insts.push(patched);
    }
    Program::new(insts)
}

fn patch(t: u32, a: usize, b: usize, w: u32) -> u32 {
    if (t as usize) >= b {
        t - w
    } else if (t as usize) >= a {
        a as u32
    } else {
        t
    }
}

fn reg0(r: Reg) -> Option<Reg> {
    (r.0 != 0).then_some(Reg(0))
}

fn vreg0(v: VReg) -> Option<VReg> {
    (v.0 != 0).then_some(VReg(0))
}

/// Zero, then halve: the immediate ladder every numeric operand walks
/// down. Division truncates toward zero, so every step strictly shrinks
/// the magnitude and the ladder terminates.
fn imm_steps_u64(v: u64) -> Vec<u64> {
    match v {
        0 => vec![],
        1 => vec![0],
        _ => vec![0, v / 2],
    }
}

fn imm_steps_i64(v: i64) -> Vec<i64> {
    match v {
        0 => vec![],
        -1 | 1 => vec![0],
        _ => vec![0, v / 2],
    }
}

fn imm_steps_u32(v: u32) -> Vec<u32> {
    imm_steps_u64(v as u64)
        .into_iter()
        .map(|x| x as u32)
        .collect()
}

fn imm_steps_u8(v: u8) -> Vec<u8> {
    imm_steps_u64(v as u64)
        .into_iter()
        .map(|x| x as u8)
        .collect()
}

fn two(ctor: fn(Reg, Reg) -> Inst, d: Reg, a: Reg) -> Vec<Inst> {
    [reg0(d).map(|z| ctor(z, a)), reg0(a).map(|z| ctor(d, z))]
        .into_iter()
        .flatten()
        .collect()
}

fn three(ctor: fn(Reg, Reg, Reg) -> Inst, d: Reg, a: Reg, b: Reg) -> Vec<Inst> {
    [
        reg0(d).map(|z| ctor(z, a, b)),
        reg0(a).map(|z| ctor(d, z, b)),
        reg0(b).map(|z| ctor(d, a, z)),
    ]
    .into_iter()
    .flatten()
    .collect()
}

fn vtwo(ctor: fn(VReg, VReg) -> Inst, d: VReg, a: VReg) -> Vec<Inst> {
    [vreg0(d).map(|z| ctor(z, a)), vreg0(a).map(|z| ctor(d, z))]
        .into_iter()
        .flatten()
        .collect()
}

fn vthree(ctor: fn(VReg, VReg, VReg) -> Inst, d: VReg, a: VReg, b: VReg) -> Vec<Inst> {
    [
        vreg0(d).map(|z| ctor(z, a, b)),
        vreg0(a).map(|z| ctor(d, z, b)),
        vreg0(b).map(|z| ctor(d, a, z)),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// Register/immediate offset memory ops (`Ld`, `St`, `Ldb`, `Stb`,
/// shapewise also `Addi`).
fn reg_reg_i64(ctor: fn(Reg, Reg, i64) -> Inst, d: Reg, a: Reg, imm: i64) -> Vec<Inst> {
    let mut out: Vec<Inst> = imm_steps_i64(imm)
        .into_iter()
        .map(|i| ctor(d, a, i))
        .collect();
    out.extend(reg0(d).map(|z| ctor(z, a, imm)));
    out.extend(reg0(a).map(|z| ctor(d, z, imm)));
    out
}

/// One-operand-at-a-time simplifications of an instruction, simplest
/// candidate first. Control-flow targets are deliberately left alone.
fn operand_simplifications(inst: &Inst) -> Vec<Inst> {
    use Inst::*;
    match *inst {
        Li(d, imm) => {
            let mut out: Vec<Inst> = imm_steps_u64(imm).into_iter().map(|i| Li(d, i)).collect();
            out.extend(reg0(d).map(|z| Li(z, imm)));
            out
        }
        Mov(d, a) => two(Mov, d, a),
        Add(d, a, b) => three(Add, d, a, b),
        Addi(d, a, imm) => reg_reg_i64(Addi, d, a, imm),
        Sub(d, a, b) => three(Sub, d, a, b),
        And(d, a, b) => three(And, d, a, b),
        Or(d, a, b) => three(Or, d, a, b),
        Xor(d, a, b) => three(Xor, d, a, b),
        Xori(d, a, imm) => {
            let mut out: Vec<Inst> = imm_steps_u64(imm)
                .into_iter()
                .map(|i| Xori(d, a, i))
                .collect();
            out.extend(reg0(d).map(|z| Xori(z, a, imm)));
            out.extend(reg0(a).map(|z| Xori(d, z, imm)));
            out
        }
        Shl(d, a, b) => three(Shl, d, a, b),
        Shr(d, a, b) => three(Shr, d, a, b),
        Rotli(d, a, imm) => {
            let mut out: Vec<Inst> = imm_steps_u32(imm)
                .into_iter()
                .map(|i| Rotli(d, a, i))
                .collect();
            out.extend(reg0(d).map(|z| Rotli(z, a, imm)));
            out.extend(reg0(a).map(|z| Rotli(d, z, imm)));
            out
        }
        CmpLt(d, a, b) => three(CmpLt, d, a, b),
        CmpEq(d, a, b) => three(CmpEq, d, a, b),
        Popcnt(d, a) => two(Popcnt, d, a),
        Crc32b(d, a, b) => three(Crc32b, d, a, b),
        Mul(d, a, b) => three(Mul, d, a, b),
        Mulh(d, a, b) => three(Mulh, d, a, b),
        Div(d, a, b) => three(Div, d, a, b),
        Rem(d, a, b) => three(Rem, d, a, b),
        Fadd(d, a, b) => three(Fadd, d, a, b),
        Fsub(d, a, b) => three(Fsub, d, a, b),
        Fmul(d, a, b) => three(Fmul, d, a, b),
        Fdiv(d, a, b) => three(Fdiv, d, a, b),
        Fma(d, a, b) => three(Fma, d, a, b),
        Fsqrt(d, a) => two(Fsqrt, d, a),
        Ld(d, a, imm) => reg_reg_i64(Ld, d, a, imm),
        St(s, a, imm) => reg_reg_i64(St, s, a, imm),
        Ldb(d, a, imm) => reg_reg_i64(Ldb, d, a, imm),
        Stb(s, a, imm) => reg_reg_i64(Stb, s, a, imm),
        Vadd(d, a, b) => vthree(Vadd, d, a, b),
        Vxor(d, a, b) => vthree(Vxor, d, a, b),
        Vmul(d, a, b) => vthree(Vmul, d, a, b),
        Vins(v, r, lane) => {
            let mut out: Vec<Inst> = imm_steps_u8(lane)
                .into_iter()
                .map(|l| Vins(v, r, l))
                .collect();
            out.extend(vreg0(v).map(|z| Vins(z, r, lane)));
            out.extend(reg0(r).map(|z| Vins(v, z, lane)));
            out
        }
        Vext(r, v, lane) => {
            let mut out: Vec<Inst> = imm_steps_u8(lane)
                .into_iter()
                .map(|l| Vext(r, v, l))
                .collect();
            out.extend(reg0(r).map(|z| Vext(z, v, lane)));
            out.extend(vreg0(v).map(|z| Vext(r, z, lane)));
            out
        }
        Vld(v, a, imm) => {
            let mut out: Vec<Inst> = imm_steps_i64(imm)
                .into_iter()
                .map(|i| Vld(v, a, i))
                .collect();
            out.extend(vreg0(v).map(|z| Vld(z, a, imm)));
            out.extend(reg0(a).map(|z| Vld(v, z, imm)));
            out
        }
        Vst(v, a, imm) => {
            let mut out: Vec<Inst> = imm_steps_i64(imm)
                .into_iter()
                .map(|i| Vst(v, a, i))
                .collect();
            out.extend(vreg0(v).map(|z| Vst(z, a, imm)));
            out.extend(reg0(a).map(|z| Vst(v, z, imm)));
            out
        }
        MemCpy { dst, src, len } => [
            reg0(dst).map(|z| MemCpy { dst: z, src, len }),
            reg0(src).map(|z| MemCpy { dst, src: z, len }),
            reg0(len).map(|z| MemCpy { dst, src, len: z }),
        ]
        .into_iter()
        .flatten()
        .collect(),
        Cas {
            rd,
            addr,
            expected,
            new,
        } => [
            reg0(rd).map(|z| Cas {
                rd: z,
                addr,
                expected,
                new,
            }),
            reg0(addr).map(|z| Cas {
                rd,
                addr: z,
                expected,
                new,
            }),
            reg0(expected).map(|z| Cas {
                rd,
                addr,
                expected: z,
                new,
            }),
            reg0(new).map(|z| Cas {
                rd,
                addr,
                expected,
                new: z,
            }),
        ]
        .into_iter()
        .flatten()
        .collect(),
        Xadd(d, a, b) => three(Xadd, d, a, b),
        AesEnc(d, k) => vtwo(AesEnc, d, k),
        AesEncLast(d, k) => vtwo(AesEncLast, d, k),
        AesDec(d, k) => vtwo(AesDec, d, k),
        AesDecLast(d, k) => vtwo(AesDecLast, d, k),
        // Branch/jump targets stay put; only their register operands
        // simplify.
        Jmp(_) => vec![],
        Beq(a, b, t) => [reg0(a).map(|z| Beq(z, b, t)), reg0(b).map(|z| Beq(a, z, t))]
            .into_iter()
            .flatten()
            .collect(),
        Bne(a, b, t) => [reg0(a).map(|z| Bne(z, b, t)), reg0(b).map(|z| Bne(a, z, t))]
            .into_iter()
            .flatten()
            .collect(),
        Blt(a, b, t) => [reg0(a).map(|z| Blt(z, b, t)), reg0(b).map(|z| Blt(a, z, t))]
            .into_iter()
            .flatten()
            .collect(),
        Bnz(a, t) => reg0(a).map(|z| Bnz(z, t)).into_iter().collect(),
        Out(a) => reg0(a).map(Out).into_iter().collect(),
        Assert(a) => reg0(a).map(Assert).into_iter().collect(),
        Fence | Halt | Nop => vec![],
    }
}

/// Shrinks `witness` while it keeps indicting `profile`.
///
/// `seed`/`profile_slot` must match the values the original hit was found
/// with so deterministic lesions re-fire identically. `max_oracle_calls`
/// bounds the work; minimization stops early when the budget is spent.
pub fn minimize(
    witness: &FuzzProgram,
    profile: &CoreFaultProfile,
    seed: u64,
    profile_slot: u64,
    dcfg: &DiffConfig,
    max_oracle_calls: u64,
) -> MinimizedWitness {
    let original_len = witness.program.len();
    let mut best = witness.clone();
    let mut calls = 0u64;

    let still_indicts = |candidate: &FuzzProgram, calls: &mut u64| -> bool {
        if candidate.program.validate().is_err() || candidate.program.is_empty() {
            return false;
        }
        *calls += 1;
        run_differential(candidate, profile, seed, profile_slot, dcfg).indicts()
    };

    // Window pass: try removing [i, i+w) for w = n/2, n/4, …, 1.
    let mut window = (best.program.len() / 2).max(1);
    while window >= 1 {
        let mut i = 0;
        while i < best.program.len() && calls < max_oracle_calls {
            let b = (i + window).min(best.program.len());
            let candidate = FuzzProgram {
                program: remove_range(&best.program, i, b),
                ..best.clone()
            };
            if still_indicts(&candidate, &mut calls) {
                best = candidate; // keep i: the next window slid into place
            } else {
                i += window;
            }
        }
        if window == 1 {
            break;
        }
        window /= 2;
    }

    // Per-instruction fixpoint pass (window 1 again until nothing drops).
    let mut improved = true;
    while improved && calls < max_oracle_calls {
        improved = false;
        let mut i = 0;
        while i < best.program.len() && calls < max_oracle_calls {
            let candidate = FuzzProgram {
                program: remove_range(&best.program, i, i + 1),
                ..best.clone()
            };
            if still_indicts(&candidate, &mut calls) {
                best = candidate;
                improved = true;
            } else {
                i += 1;
            }
        }
    }

    // Operand pass: drive the surviving instructions' immediates and
    // registers toward zero while the witness keeps indicting. Each
    // accepted candidate strictly shrinks an operand (magnitude halves or
    // a register drops to zero), so the fixpoint terminates.
    let mut improved = true;
    while improved && calls < max_oracle_calls {
        improved = false;
        let mut i = 0;
        while i < best.program.len() && calls < max_oracle_calls {
            let mut simplified = false;
            for inst in operand_simplifications(&best.program.insts[i]) {
                if calls >= max_oracle_calls {
                    break;
                }
                let mut insts = best.program.insts.clone();
                insts[i] = inst;
                let candidate = FuzzProgram {
                    program: Program::new(insts),
                    ..best.clone()
                };
                if still_indicts(&candidate, &mut calls) {
                    best = candidate;
                    improved = true;
                    simplified = true;
                    // Revisit the same slot: the simpler instruction may
                    // have further steps down the ladder.
                    break;
                }
            }
            if !simplified {
                i += 1;
            }
        }
    }

    MinimizedWitness {
        program: best,
        original_len,
        oracle_calls: calls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::run_differential;
    use crate::gen::{generate, GenConfig};
    use mercurial_fault::library;
    use mercurial_simcpu::Reg;

    #[test]
    fn range_removal_patches_branches() {
        let p = Program::new(vec![
            Inst::Li(Reg(1), 1),
            Inst::Nop,
            Inst::Bnz(Reg(1), 4),
            Inst::Nop,
            Inst::Halt,
        ]);
        let q = remove_range(&p, 1, 2);
        assert_eq!(q.len(), 4);
        assert_eq!(q.insts[1], Inst::Bnz(Reg(1), 3));
        q.validate().unwrap();
    }

    /// Operand noise left in a program: total immediate magnitude plus the
    /// count of non-zero register operands.
    fn complexity(p: &Program) -> u128 {
        let mut c: u128 = 0;
        for inst in &p.insts {
            match *inst {
                Inst::Li(d, imm) => c += imm as u128 + (d.0 != 0) as u128,
                Inst::Addi(d, a, imm) | Inst::Ld(d, a, imm) | Inst::St(d, a, imm) => {
                    c += imm.unsigned_abs() as u128 + (d.0 != 0) as u128 + (a.0 != 0) as u128
                }
                Inst::Out(a) => c += (a.0 != 0) as u128,
                _ => {}
            }
        }
        c
    }

    #[test]
    fn operand_pass_drives_immediates_and_registers_toward_zero() {
        // A load on a hot load/store corruptor indicts whatever the
        // address or registers are, so everything incidental must
        // canonicalize away: the structural pass cannot drop the load or
        // the observing `Out`, and the operand pass should walk the
        // immediates to 0 and the registers to x0.
        let dcfg = DiffConfig::default();
        let profile = library::loadstore_corruptor(1.0);
        let noisy = FuzzProgram {
            index: 0,
            program: Program::new(vec![
                Inst::Li(Reg(3), 123_456),
                Inst::Ld(Reg(4), Reg(3), 72),
                Inst::Out(Reg(4)),
                Inst::Halt,
            ]),
            init_mem: Vec::new(),
            mem_size: 1 << 20,
            focus: [
                mercurial_fault::FunctionalUnit::LoadStore,
                mercurial_fault::FunctionalUnit::AddressGen,
            ],
        };
        assert!(
            run_differential(&noisy, &profile, 7, 0, &dcfg).indicts(),
            "the handcrafted witness must indict before minimization"
        );
        let min = minimize(&noisy, &profile, 7, 0, &dcfg, 600);
        assert!(
            run_differential(&min.program, &profile, 7, 0, &dcfg).indicts(),
            "minimized witness must still diverge"
        );
        let before = complexity(&noisy.program);
        let after = complexity(&min.program.program);
        assert!(
            after < before,
            "operand pass must shrink complexity ({before} -> {after})"
        );
        // The surviving load/Out pair has nothing incidental left.
        assert_eq!(after, 0, "witness should be fully canonical: {min:?}");
    }

    #[test]
    fn simplification_candidates_leave_control_flow_targets_alone() {
        for c in operand_simplifications(&Inst::Beq(Reg(2), Reg(5), 9)) {
            match c {
                Inst::Beq(_, _, t) => assert_eq!(t, 9),
                other => panic!("unexpected candidate {other:?}"),
            }
        }
        assert!(operand_simplifications(&Inst::Jmp(3)).is_empty());
        assert!(operand_simplifications(&Inst::Nop).is_empty());
        // The immediate ladder is strictly decreasing.
        assert_eq!(imm_steps_u64(0), Vec::<u64>::new());
        assert_eq!(imm_steps_u64(1), vec![0]);
        assert_eq!(imm_steps_u64(100), vec![0, 50]);
        assert_eq!(imm_steps_i64(-9), vec![0, -4]);
    }

    #[test]
    fn minimized_witness_still_indicts_and_shrinks() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        let profile = library::loadstore_corruptor(1.0);
        // Find a hit first.
        let (fp, slot) = (0..16)
            .map(|i| (generate(42, i, &gcfg), 0u64))
            .find(|(fp, slot)| run_differential(fp, &profile, 42, *slot, &dcfg).indicts())
            .expect("a hot load/store corruptor yields a hit in 16 programs");
        let min = minimize(&fp, &profile, 42, slot, &dcfg, 400);
        assert!(min.program.program.len() < min.original_len);
        assert!(
            run_differential(&min.program, &profile, 42, slot, &dcfg).indicts(),
            "minimized witness must still diverge"
        );
    }
}
