//! # mercurial-fuzz
//!
//! A SiliFuzz-style proxy fuzzer for the simulated CPU: the "systematic
//! method of developing these tests" that §3 of *Cores that don't count*
//! says the authors lacked. Following Serebryany et al. (SiliFuzz,
//! arXiv:2110.11519), the crate closes the screening-content gap in four
//! layers:
//!
//! 1. **[`gen`]** — a seeded program generator over the full `simcpu`
//!    ISA: unit-mix-biased sampling, valid operand construction, counted
//!    loops so programs terminate, and data-pattern seeding so
//!    `Activation` pattern gates are reachable. Every program is a pure
//!    function of `(seed, index)`.
//! 2. **[`diff`]** — a differential executor pitting a fault-injected
//!    suspect core against a clean reference through the screening
//!    crate's `DivergenceFinder`, naming the first divergent pc,
//!    instruction, and functional unit.
//! 3. **[`minimize`]** — delta-debugging (window removal, then
//!    per-instruction removal) that shrinks a diverging program to a
//!    near-minimal witness while preserving the indictment.
//! 4. **[`distill`]** — a (program × fault profile) detection matrix over
//!    the `fault::library` catalog, greedy-set-covered into a compact
//!    corpus and exported as `SimKernel`s the screeners can run.
//!
//! **[`campaign`]** ties the layers together and fans the work out
//! through `fleet::par::map_parallel`; campaign reports are bit-for-bit
//! identical at any worker count.

#![warn(missing_docs)]

pub mod campaign;
pub mod diff;
pub mod distill;
pub mod gen;
pub mod minimize;

pub use campaign::{
    catalog_kinds, hot_catalog, is_activatable, run_campaign, CampaignConfig, CampaignOutput,
    CampaignReport, CatalogEntry, CoverageRow, DetectionOutcome, LesionWitness,
};
pub use diff::{healthy_run, run_differential, DiffConfig, HealthyRun};
pub use distill::{DetectionMatrix, DistilledCorpus, ProgramRow};
pub use gen::{generate, FuzzProgram, GenConfig};
pub use minimize::{minimize, MinimizedWitness};
