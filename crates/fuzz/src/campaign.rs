//! Campaign orchestration: generate → differentially execute → minimize →
//! distill, fanned out over `fleet::par::map_parallel`.
//!
//! Determinism contract (DESIGN.md §4.1): every generated program, every
//! injector seed, and every greedy-cover tie-break is a pure function of
//! `(campaign seed, program index, catalog slot)`. The campaign therefore
//! produces bit-for-bit identical reports at 1, 2, or 8 worker threads —
//! parallelism only changes wall-clock time, never results.

use crate::diff::{healthy_run, run_differential, DiffConfig, HealthyRun};
use crate::distill::{DetectionMatrix, DistilledCorpus, ProgramRow};
use crate::gen::{generate, FuzzProgram, GenConfig};
use crate::minimize::minimize;
use mercurial_corpus::SimKernel;
use mercurial_fault::{library, CoreFaultProfile, FunctionalUnit};
use mercurial_fleet::par::map_parallel;
use mercurial_screening::Divergence;

/// One single-lesion column of the detection matrix, derived from a
/// `fault::library` archetype run "hot" (activation rates saturated).
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    /// The library archetype this lesion came from.
    pub archetype: &'static str,
    /// The lesion kind (`Lesion::kind_name`).
    pub kind: &'static str,
    /// A single-lesion profile, so detections attribute to exactly one
    /// lesion kind.
    pub profile: CoreFaultProfile,
}

/// The full library catalog, decomposed to single-lesion entries with
/// saturated activation rates.
///
/// Rates are chosen so every lesion fires with probability 1 at the
/// default operating point (`freq_sensitive_fma` divides its rate by 100
/// and `low_freq_worse_alu` by 50; `late_onset_muldiv` gets onset 0 so it
/// is active from birth). Multi-lesion archetypes (`vector_copy_coupled`)
/// contribute one entry per lesion.
pub fn hot_catalog() -> Vec<CatalogEntry> {
    let sources: Vec<(&'static str, CoreFaultProfile)> = vec![
        ("self-inverting-aes", library::self_inverting_aes()),
        ("string-bitflip", library::string_bitflip(11, 1.0)),
        ("lock-violator", library::lock_violator(1.0)),
        ("vector-copy-coupled", library::vector_copy_coupled(1.0)),
        ("freq-sensitive-fma", library::freq_sensitive_fma(100.0)),
        ("low-freq-worse-alu", library::low_freq_worse_alu(50.0)),
        ("late-onset-muldiv", library::late_onset_muldiv(0.0, 1.0)),
        ("data-pattern-vector", library::data_pattern_vector(1.0)),
        ("addressgen-crasher", library::addressgen_crasher(1.0)),
        ("loadstore-corruptor", library::loadstore_corruptor(1.0)),
    ];
    let mut out = Vec::new();
    for (archetype, profile) in sources {
        for lesion in &profile.lesions {
            let kind = lesion.lesion.kind_name();
            out.push(CatalogEntry {
                archetype,
                kind,
                profile: CoreFaultProfile::new(format!("{archetype}/{kind}"), vec![*lesion]),
            });
        }
    }
    out
}

/// The distinct lesion kinds present in a catalog, in first-seen order.
pub fn catalog_kinds(catalog: &[CatalogEntry]) -> Vec<&'static str> {
    let mut kinds = Vec::new();
    for e in catalog {
        if !kinds.contains(&e.kind) {
            kinds.push(e.kind);
        }
    }
    kinds
}

/// Whether a catalog entry can fire at all under `cfg`'s conditions, for
/// any of a representative operand sample (pattern immediates included).
pub fn is_activatable(entry: &CatalogEntry, cfg: &DiffConfig) -> bool {
    const OPERANDS: [u64; 6] = [
        0,
        u64::MAX,
        0xaaaa_aaaa_aaaa_aaaa,
        0x5555_5555_5555_5555,
        0x0102_0408_1020_4080,
        0xdead_beef_cafe_f00d,
    ];
    entry.profile.lesions.iter().any(|l| {
        OPERANDS
            .iter()
            .any(|&op| l.activation.probability(cfg.point, op, cfg.age_hours) > 0.0)
    })
}

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; with an index it determines everything.
    pub seed: u64,
    /// Number of programs to generate.
    pub budget: usize,
    /// Worker threads for the fan-out (`0` = auto).
    pub parallelism: usize,
    /// Generator knobs.
    pub gen: GenConfig,
    /// Execution conditions.
    pub diff: DiffConfig,
    /// Oracle-call budget per witness minimization.
    pub minimize_oracle_calls: u64,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 0xF0CC,
            budget: 64,
            parallelism: 1,
            gen: GenConfig::default(),
            diff: DiffConfig::default(),
            minimize_oracle_calls: 300,
        }
    }
}

/// What one differential run concluded (a compact, comparable summary of
/// [`Divergence`]).
#[derive(Debug, Clone, PartialEq)]
pub enum DetectionOutcome {
    /// No divergence.
    Clean,
    /// Architectural state diverged.
    Diverged {
        /// Program counter of the divergent instruction.
        pc: u32,
        /// Retired-instruction index.
        step: u64,
        /// Implicated functional unit.
        unit: FunctionalUnit,
    },
    /// The suspect trapped where the reference did not.
    Trapped {
        /// Retired-instruction index at the trap.
        step: u64,
    },
}

impl DetectionOutcome {
    fn from_divergence(d: &Divergence) -> DetectionOutcome {
        match d {
            Divergence::At { pc, step, unit, .. } => DetectionOutcome::Diverged {
                pc: *pc,
                step: *step,
                unit: *unit,
            },
            Divergence::SuspectTrapped { step, .. } => DetectionOutcome::Trapped { step: *step },
            _ => DetectionOutcome::Clean,
        }
    }

    /// Whether this outcome indicts the suspect.
    pub fn indicts(&self) -> bool {
        !matches!(self, DetectionOutcome::Clean)
    }
}

/// A minimized diverging witness for one lesion kind.
#[derive(Debug, Clone, PartialEq)]
pub struct LesionWitness {
    /// The lesion kind this witness covers.
    pub kind: String,
    /// Catalog entry name the hit was found against.
    pub catalog_entry: String,
    /// Campaign index of the witnessing program.
    pub program_index: u64,
    /// Instruction count before minimization.
    pub original_len: usize,
    /// Instruction count after minimization.
    pub minimized_len: usize,
    /// The minimized program (still diverges under the entry's profile).
    pub program: FuzzProgram,
}

/// One cumulative detection-coverage-vs-budget row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageRow {
    /// Programs generated so far (budget spent).
    pub programs: usize,
    /// Catalog entries detected by at least one program so far.
    pub entries_covered: usize,
    /// Lesion kinds witnessed so far.
    pub kinds_covered: usize,
}

/// The campaign's deterministic result (everything `PartialEq`-comparable,
/// which is what the 1/2/8-thread parity tests pin).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Seed the campaign ran with.
    pub seed: u64,
    /// Programs generated.
    pub budget: usize,
    /// Programs whose healthy run completed cleanly (matrix rows).
    pub valid_programs: usize,
    /// Catalog entry names, matrix column order.
    pub catalog_names: Vec<String>,
    /// Distinct lesion kinds in the catalog.
    pub kinds: Vec<String>,
    /// The (program × entry) detection matrix.
    pub matrix: DetectionMatrix,
    /// One minimized witness per witnessed lesion kind.
    pub witnesses: Vec<LesionWitness>,
    /// The distilled corpus (greedy set cover over the matrix).
    pub distilled: DistilledCorpus,
    /// Cumulative coverage after each generated program.
    pub coverage: Vec<CoverageRow>,
}

impl CampaignReport {
    /// Kinds for which a diverging witness was found.
    pub fn witnessed_kinds(&self) -> Vec<&str> {
        self.witnesses.iter().map(|w| w.kind.as_str()).collect()
    }

    /// Whether every catalog lesion kind has a witness.
    pub fn all_kinds_witnessed(&self) -> bool {
        self.kinds
            .iter()
            .all(|k| self.witnesses.iter().any(|w| &w.kind == k))
    }

    /// Distilled corpus size as a fraction of the generation budget.
    pub fn distilled_fraction(&self) -> f64 {
        if self.budget == 0 {
            return 0.0;
        }
        self.distilled.selected_rows.len() as f64 / self.budget as f64
    }
}

/// Report plus the executable kernels exported from the distillation.
pub struct CampaignOutput {
    /// The comparable report.
    pub report: CampaignReport,
    /// Distilled programs as screening kernels (golden outputs captured).
    pub kernels: Vec<SimKernel>,
}

/// Runs a full campaign.
///
/// Bit-for-bit deterministic in `cfg` modulo `cfg.parallelism`, which
/// only changes scheduling: the per-program work is fanned out through
/// [`map_parallel`], whose results are stored by input index.
pub fn run_campaign(cfg: &CampaignConfig) -> CampaignOutput {
    let catalog = hot_catalog();
    let kinds = catalog_kinds(&catalog);

    // Phase 1: generate + healthy-run + differentially execute each
    // program against every catalog entry (the expensive, parallel part).
    let indices: Vec<u64> = (0..cfg.budget as u64).collect();
    let results: Vec<(FuzzProgram, Option<HealthyRun>, Vec<DetectionOutcome>)> =
        map_parallel(&indices, cfg.parallelism, |&i| {
            let fp = generate(cfg.seed, i, &cfg.gen);
            match healthy_run(&fp, &cfg.diff) {
                Err(_) => (fp, None, Vec::new()),
                Ok(run) => {
                    let detections: Vec<DetectionOutcome> = catalog
                        .iter()
                        .enumerate()
                        .map(|(slot, entry)| {
                            let d = run_differential(
                                &fp,
                                &entry.profile,
                                cfg.seed,
                                slot as u64,
                                &cfg.diff,
                            );
                            DetectionOutcome::from_divergence(&d)
                        })
                        .collect();
                    (fp, Some(run), detections)
                }
            }
        });

    // Phase 2 (serial): assemble the matrix and coverage curve.
    let mut runs: Vec<(FuzzProgram, HealthyRun)> = Vec::new();
    let mut rows: Vec<ProgramRow> = Vec::new();
    let mut coverage: Vec<CoverageRow> = Vec::new();
    let mut entry_covered = vec![false; catalog.len()];
    for (fp, healthy, detections) in results {
        if let Some(run) = healthy {
            let detected: Vec<bool> = detections.iter().map(|d| d.indicts()).collect();
            for (k, hit) in detected.iter().enumerate() {
                if *hit {
                    entry_covered[k] = true;
                }
            }
            rows.push(ProgramRow {
                index: fp.index,
                detected,
                healthy_ops: run.instructions,
            });
            runs.push((fp, run));
        }
        let kinds_covered = kinds
            .iter()
            .filter(|k| {
                catalog
                    .iter()
                    .enumerate()
                    .any(|(slot, e)| e.kind == **k && entry_covered[slot])
            })
            .count();
        coverage.push(CoverageRow {
            programs: coverage.len() + 1,
            entries_covered: entry_covered.iter().filter(|&&c| c).count(),
            kinds_covered,
        });
    }
    let matrix = DetectionMatrix {
        profiles: catalog.iter().map(|e| e.profile.name.clone()).collect(),
        rows,
    };

    // Phase 3: pick the first hit per lesion kind and minimize it (one
    // parallel task per witness; each is pure in its arguments).
    let witness_seeds: Vec<(usize, usize)> = kinds
        .iter()
        .filter_map(|kind| {
            // First (row, slot) in index-then-slot order detecting `kind`.
            for (ri, row) in matrix.rows.iter().enumerate() {
                for (slot, e) in catalog.iter().enumerate() {
                    if e.kind == *kind && row.detected[slot] {
                        return Some((ri, slot));
                    }
                }
            }
            None
        })
        .collect();
    let witnesses: Vec<LesionWitness> =
        map_parallel(&witness_seeds, cfg.parallelism, |&(ri, slot)| {
            let fp = &runs[ri].0;
            let entry = &catalog[slot];
            let min = minimize(
                fp,
                &entry.profile,
                cfg.seed,
                slot as u64,
                &cfg.diff,
                cfg.minimize_oracle_calls,
            );
            LesionWitness {
                kind: entry.kind.to_string(),
                catalog_entry: entry.profile.name.clone(),
                program_index: fp.index,
                original_len: min.original_len,
                minimized_len: min.program.program.len(),
                program: min.program,
            }
        });

    // Phase 4 (serial): distill and export kernels.
    let distilled = DistilledCorpus::build(&matrix, &runs);
    let kernels = distilled.to_kernels(&runs);

    CampaignOutput {
        report: CampaignReport {
            seed: cfg.seed,
            budget: cfg.budget,
            valid_programs: matrix.rows.len(),
            catalog_names: matrix.profiles.clone(),
            kinds: kinds.iter().map(|k| k.to_string()).collect(),
            matrix,
            witnesses,
            distilled,
            coverage,
        },
        kernels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CampaignConfig {
        CampaignConfig {
            budget: 24,
            minimize_oracle_calls: 120,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn catalog_decomposes_to_single_lesions() {
        let catalog = hot_catalog();
        assert!(catalog.len() >= 10, "10 archetypes, >=1 lesion each");
        assert!(catalog.iter().all(|e| e.profile.lesions.len() == 1));
        let kinds = catalog_kinds(&catalog);
        assert!(kinds.contains(&"round-xor"));
        assert!(kinds.contains(&"corrupt-copy"));
        assert!(kinds.contains(&"lock-violation"));
    }

    #[test]
    fn every_hot_catalog_entry_is_activatable() {
        let dcfg = DiffConfig::default();
        for e in hot_catalog() {
            assert!(
                is_activatable(&e, &dcfg),
                "{} not activatable",
                e.profile.name
            );
        }
    }

    #[test]
    fn campaign_witnesses_every_lesion_kind() {
        let out = run_campaign(&small_cfg());
        let r = &out.report;
        assert_eq!(r.valid_programs, r.budget, "generated programs are valid");
        assert!(
            r.all_kinds_witnessed(),
            "kinds {:?} vs witnessed {:?}",
            r.kinds,
            r.witnessed_kinds()
        );
        for w in &r.witnesses {
            assert!(w.minimized_len <= w.original_len);
        }
    }

    #[test]
    fn distilled_corpus_is_compact_and_covering() {
        let out = run_campaign(&small_cfg());
        let r = &out.report;
        assert!(
            r.distilled_fraction() <= 0.25,
            "distilled {} of {} programs",
            r.distilled.selected_rows.len(),
            r.budget
        );
        // The cover detects everything any program detected.
        let covered = r.matrix.covered_profiles();
        let mut union = vec![false; r.catalog_names.len()];
        for &ri in &r.distilled.selected_rows {
            for (k, hit) in r.matrix.rows[ri].detected.iter().enumerate() {
                if *hit {
                    union[k] = true;
                }
            }
        }
        assert_eq!(union.iter().filter(|&&c| c).count(), covered);
        // And the kernels exported are runnable golden-output kernels.
        assert_eq!(out.kernels.len(), r.distilled.selected_rows.len());
        assert!(out.kernels.iter().all(|k| !k.expected.is_empty()));
    }

    #[test]
    fn campaign_is_bit_for_bit_identical_across_thread_counts() {
        let base = small_cfg();
        let r1 = run_campaign(&CampaignConfig {
            parallelism: 1,
            ..base
        });
        let r2 = run_campaign(&CampaignConfig {
            parallelism: 2,
            ..base
        });
        let r8 = run_campaign(&CampaignConfig {
            parallelism: 8,
            ..base
        });
        assert_eq!(r1.report, r2.report);
        assert_eq!(r1.report, r8.report);
        // Kernel exports agree too (names, programs, golden outputs).
        let sig = |out: &CampaignOutput| {
            out.kernels
                .iter()
                .map(|k| (k.name, k.program.clone(), k.expected.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&r1), sig(&r2));
        assert_eq!(sig(&r1), sig(&r8));
    }
}
