//! Differential execution: a generated program versus a fault library.
//!
//! Each run pits a fresh fault-injected *suspect* [`SimCore`] against a
//! fresh clean *reference* through the screening crate's
//! [`DivergenceFinder`], which names the first divergent pc, instruction,
//! and functional unit. Cores are constructed per run — never reused —
//! because a core's injector draw sequence (`op_seq`) survives `reset()`;
//! fresh cores make every comparison a pure function of its arguments,
//! which the parallel campaign's determinism contract requires.

use crate::gen::FuzzProgram;
use mercurial_fault::rng::stream_key;
use mercurial_fault::{CoreFaultProfile, CounterRng, Injector};
use mercurial_fault::{CoreUid, OperatingPoint};
use mercurial_screening::{Divergence, DivergenceFinder};
use mercurial_simcpu::unitmap::unit_of;
use mercurial_simcpu::{CoreConfig, Memory, SimCore, StepOutcome, Trap};

/// Execution conditions for a differential comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffConfig {
    /// Operating point both cores run at.
    pub point: OperatingPoint,
    /// Core age in hours (aging-gated lesions).
    pub age_hours: f64,
    /// Lockstep step bound (defends against corrupted infinite loops).
    pub max_steps: u64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig {
            point: OperatingPoint::NOMINAL,
            age_hours: 1.0,
            max_steps: 200_000,
        }
    }
}

/// Builds the suspect core for `(campaign seed, program index, profile slot)`.
fn suspect_core(
    fp: &FuzzProgram,
    profile: &CoreFaultProfile,
    seed: u64,
    profile_slot: u64,
    cfg: &DiffConfig,
) -> SimCore {
    let inj_seed = stream_key(seed, fp.index, profile_slot, 0xD1FF);
    let config = CoreConfig {
        uid: CoreUid::new(0, 0, 0),
        point: cfg.point,
        age_hours: cfg.age_hours,
        seed: inj_seed,
        ..CoreConfig::default()
    };
    SimCore::new(config, Some(Injector::new(inj_seed, profile.clone())))
}

/// Runs one differential comparison.
///
/// Pure in its arguments: the injector and core seeds are derived from
/// `(seed, fp.index, profile_slot)`, so the verdict does not depend on
/// how many comparisons ran before this one or on which thread.
pub fn run_differential(
    fp: &FuzzProgram,
    profile: &CoreFaultProfile,
    seed: u64,
    profile_slot: u64,
    cfg: &DiffConfig,
) -> Divergence {
    let mut suspect = suspect_core(fp, profile, seed, profile_slot, cfg);
    let mut reference = SimCore::new(
        CoreConfig {
            point: cfg.point,
            age_hours: cfg.age_hours,
            ..CoreConfig::default()
        },
        None,
    );
    let finder = DivergenceFinder {
        max_steps: cfg.max_steps,
        mem_size: fp.mem_size,
    };
    finder.compare(&mut suspect, &mut reference, &fp.program, &fp.init_mem)
}

/// What a healthy core does with a program: golden outputs plus the
/// per-unit dynamic operation histogram the distiller needs.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthyRun {
    /// Instructions retired.
    pub instructions: u64,
    /// Values emitted by `out`.
    pub outputs: Vec<u64>,
    /// Retired instructions per functional unit (indexed by
    /// [`mercurial_fault::FunctionalUnit::index`]).
    pub unit_ops: [u64; 9],
}

/// Executes `fp` on a healthy core, tallying per-unit retired ops.
///
/// Returns `Err` if the program traps — generated programs never should,
/// but the campaign treats a trap as "invalid program, discard" rather
/// than a panic so a generator regression cannot take the fleet down.
pub fn healthy_run(fp: &FuzzProgram, cfg: &DiffConfig) -> Result<HealthyRun, Trap> {
    let mut core = SimCore::new(
        CoreConfig {
            point: cfg.point,
            age_hours: cfg.age_hours,
            ..CoreConfig::default()
        },
        None,
    );
    let mut mem = Memory::new(fp.mem_size);
    for (addr, bytes) in &fp.init_mem {
        mem.write_bytes(*addr, bytes)?;
    }
    let mut unit_ops = [0u64; 9];
    for _ in 0..cfg.max_steps {
        let pc = core.pc() as usize;
        let inst = fp.program.insts.get(pc).copied();
        match core.step(&fp.program, &mut mem)? {
            StepOutcome::Running => {
                if let Some(inst) = inst {
                    unit_ops[unit_of(&inst).index()] += 1;
                }
            }
            StepOutcome::Halted => {
                if let Some(inst) = inst {
                    unit_ops[unit_of(&inst).index()] += 1;
                }
                return Ok(HealthyRun {
                    instructions: core.stats().instructions,
                    outputs: core.output().to_vec(),
                    unit_ops,
                });
            }
        }
    }
    Err(Trap::FuelExhausted)
}

/// Convenience: seeds a [`CounterRng`] stream for ad-hoc draws tied to a
/// `(seed, index)` pair without threading generator state around.
pub fn draw_stream(seed: u64, index: u64, tag: u64) -> CounterRng {
    CounterRng::from_parts(seed, index, tag, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, GenConfig};
    use mercurial_fault::{library, FunctionalUnit};

    #[test]
    fn healthy_programs_never_trap_or_diverge() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        for i in 0..48 {
            let fp = generate(0xcafe, i, &gcfg);
            let run = healthy_run(&fp, &dcfg)
                .unwrap_or_else(|t| panic!("program {i} trapped healthy: {t}"));
            assert!(!run.outputs.is_empty(), "program {i} emitted no output");
            // A benign (empty) fault profile must produce no divergence.
            let clean = CoreFaultProfile::new("empty", vec![]);
            let d = run_differential(&fp, &clean, 0xcafe, 0, &dcfg);
            assert_eq!(d, Divergence::None, "program {i}");
        }
    }

    #[test]
    fn hot_lesion_is_caught_differentially() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        let profile = library::loadstore_corruptor(1.0);
        let caught = (0..8).any(|i| {
            let fp = generate(0xbeef, i, &gcfg);
            run_differential(&fp, &profile, 0xbeef, 0, &dcfg).indicts()
        });
        assert!(caught, "a hot load/store corruptor must be caught quickly");
    }

    #[test]
    fn differential_is_order_independent() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        let fp = generate(5, 2, &gcfg);
        let profile = library::string_bitflip(11, 1.0);
        let first = run_differential(&fp, &profile, 5, 3, &dcfg);
        // Interleave unrelated work; the verdict must not move.
        let other = generate(5, 9, &gcfg);
        let _ = run_differential(&other, &profile, 5, 1, &dcfg);
        let second = run_differential(&fp, &profile, 5, 3, &dcfg);
        assert_eq!(first, second);
    }

    #[test]
    fn unit_histogram_counts_focus_units() {
        let gcfg = GenConfig::default();
        let dcfg = DiffConfig::default();
        let fp = generate(77, 0, &gcfg);
        let run = healthy_run(&fp, &dcfg).unwrap();
        let total: u64 = run.unit_ops.iter().sum();
        assert_eq!(total, run.instructions);
        assert!(run.unit_ops[FunctionalUnit::ScalarAlu.index()] > 0);
    }
}
