//! Corpus distillation: greedy set cover over the detection matrix.
//!
//! A fuzz campaign produces far more diverging programs than a screening
//! budget can afford to run. SiliFuzz's answer — and this module's — is to
//! build the (program × fault profile) *detection matrix* and keep only a
//! minimal subset of programs whose union still detects everything any
//! program detected. Greedy set cover is within `ln(n)+1` of optimal and,
//! run with deterministic tie-breaking (most new coverage, then fewest
//! healthy ops, then lowest index), is reproducible bit-for-bit.
//!
//! The distilled survivors are exported as [`SimKernel`]s — golden outputs
//! captured from a healthy core — so the execution-based screeners in
//! `mercurial-screening` can run fuzz-distilled content exactly like the
//! hand-written corpus.

use crate::diff::HealthyRun;
use crate::gen::FuzzProgram;
use mercurial_corpus::SimKernel;
use mercurial_fault::FunctionalUnit;

/// One row of the detection matrix: a valid program and which catalog
/// entries it detected.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRow {
    /// Campaign index of the program.
    pub index: u64,
    /// `detected[k]` ⇔ the program diverged under catalog entry `k`.
    pub detected: Vec<bool>,
    /// Healthy instruction count (screening cost; set-cover tie-breaker).
    pub healthy_ops: u64,
}

/// The (program × profile) detection matrix.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DetectionMatrix {
    /// Catalog entry names, column order.
    pub profiles: Vec<String>,
    /// One row per *valid* generated program, in campaign index order.
    pub rows: Vec<ProgramRow>,
}

impl DetectionMatrix {
    /// How many catalog entries at least one program detects.
    pub fn covered_profiles(&self) -> usize {
        (0..self.profiles.len())
            .filter(|&k| self.rows.iter().any(|r| r.detected[k]))
            .count()
    }

    /// Greedy set cover: row positions (into `rows`) whose union detects
    /// every detectable catalog entry, deterministic under ties.
    pub fn greedy_cover(&self) -> Vec<usize> {
        let n_cols = self.profiles.len();
        let mut uncovered: Vec<bool> = (0..n_cols)
            .map(|k| self.rows.iter().any(|r| r.detected[k]))
            .collect();
        let mut chosen = Vec::new();
        while uncovered.iter().any(|&u| u) {
            let mut best: Option<(usize, usize, u64)> = None; // (row, gain, ops)
            for (ri, row) in self.rows.iter().enumerate() {
                if chosen.contains(&ri) {
                    continue;
                }
                let gain = (0..n_cols)
                    .filter(|&k| uncovered[k] && row.detected[k])
                    .count();
                if gain == 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((_, bg, bops)) => gain > bg || (gain == bg && row.healthy_ops < bops),
                };
                if better {
                    best = Some((ri, gain, row.healthy_ops));
                }
            }
            match best {
                Some((ri, _, _)) => {
                    chosen.push(ri);
                    for (cov, &hit) in uncovered.iter_mut().zip(&self.rows[ri].detected) {
                        if hit {
                            *cov = false;
                        }
                    }
                }
                None => break,
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

/// The distilled corpus: selected programs plus the analytic-side summary
/// the fleet screeners consume.
#[derive(Debug, Clone, PartialEq)]
pub struct DistilledCorpus {
    /// Positions into the matrix rows of the selected programs.
    pub selected_rows: Vec<usize>,
    /// Campaign indices of the selected programs.
    pub selected_indices: Vec<u64>,
    /// Per-unit healthy retired-op totals across the selection (indexed by
    /// [`FunctionalUnit::index`]) — the extra screening content the
    /// analytic screeners charge and credit.
    pub unit_ops: [u64; 9],
    /// Distinct data-pattern operands the selection feeds through its
    /// instructions (seeds the analytic screeners' operand list).
    pub operands: Vec<u64>,
}

impl DistilledCorpus {
    /// Builds the distilled corpus from the matrix and the per-program
    /// healthy runs (`runs[i]` pairs with `matrix.rows[i]`).
    pub fn build(matrix: &DetectionMatrix, runs: &[(FuzzProgram, HealthyRun)]) -> DistilledCorpus {
        assert_eq!(matrix.rows.len(), runs.len());
        let selected_rows = matrix.greedy_cover();
        let mut unit_ops = [0u64; 9];
        let mut operands = Vec::new();
        for &ri in &selected_rows {
            let (fp, run) = &runs[ri];
            for (i, ops) in run.unit_ops.iter().enumerate() {
                unit_ops[i] += ops;
            }
            for inst in &fp.program.insts {
                if let mercurial_simcpu::Inst::Li(_, imm) = *inst {
                    if !operands.contains(&imm) {
                        operands.push(imm);
                    }
                }
            }
        }
        operands.truncate(12);
        DistilledCorpus {
            selected_indices: selected_rows
                .iter()
                .map(|&ri| matrix.rows[ri].index)
                .collect(),
            selected_rows,
            unit_ops,
            operands,
        }
    }

    /// Units the selection exercises.
    pub fn covered_units(&self) -> Vec<FunctionalUnit> {
        FunctionalUnit::ALL
            .into_iter()
            .filter(|u| self.unit_ops[u.index()] > 0)
            .collect()
    }

    /// Exports the selected programs as screening kernels with golden
    /// outputs captured from a healthy core.
    ///
    /// Programs that fail kernel capture (they should not — selection
    /// implies a clean healthy run) are skipped rather than fatal.
    pub fn to_kernels(&self, runs: &[(FuzzProgram, HealthyRun)]) -> Vec<SimKernel> {
        self.selected_rows
            .iter()
            .filter_map(|&ri| {
                let (fp, run) = &runs[ri];
                let units: Vec<FunctionalUnit> = FunctionalUnit::ALL
                    .into_iter()
                    .filter(|u| run.unit_ops[u.index()] > 0)
                    .collect();
                let name: &'static str = Box::leak(format!("fuzz-{}", fp.index).into_boxed_str());
                SimKernel::from_program(
                    name,
                    units,
                    fp.program.clone(),
                    fp.init_mem.clone(),
                    fp.mem_size,
                )
                .ok()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(index: u64, detected: &[bool], ops: u64) -> ProgramRow {
        ProgramRow {
            index,
            detected: detected.to_vec(),
            healthy_ops: ops,
        }
    }

    #[test]
    fn greedy_cover_picks_minimal_hitting_set() {
        let matrix = DetectionMatrix {
            profiles: vec!["a".into(), "b".into(), "c".into()],
            rows: vec![
                row(0, &[true, false, false], 10),
                row(1, &[true, true, true], 50),
                row(2, &[false, false, true], 10),
            ],
        };
        // Row 1 alone covers everything.
        assert_eq!(matrix.greedy_cover(), vec![1]);
        assert_eq!(matrix.covered_profiles(), 3);
    }

    #[test]
    fn greedy_cover_tie_breaks_on_cost_then_index() {
        let matrix = DetectionMatrix {
            profiles: vec!["a".into(), "b".into()],
            rows: vec![
                row(0, &[true, false], 100),
                row(1, &[true, false], 5),
                row(2, &[false, true], 5),
            ],
        };
        // Rows 1 and 2 (cheaper than 0), sorted ascending.
        assert_eq!(matrix.greedy_cover(), vec![1, 2]);
    }

    #[test]
    fn undetectable_columns_do_not_wedge_the_cover() {
        let matrix = DetectionMatrix {
            profiles: vec!["a".into(), "ghost".into()],
            rows: vec![row(0, &[true, false], 1)],
        };
        assert_eq!(matrix.greedy_cover(), vec![0]);
    }
}
