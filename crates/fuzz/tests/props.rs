//! Property tests pinning the assembler/disassembler against the full
//! generator distribution: `assemble ∘ disassemble = id` for every
//! fuzzer-generated program.
//!
//! Generated programs keep every branch target strictly inside the
//! instruction stream (the generator guarantees it by construction), so
//! label reconstruction is exact and the roundtrip must reproduce the
//! instruction sequence bit for bit.

use mercurial_fuzz::{generate, GenConfig};
use mercurial_simcpu::{assemble, disassemble};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Textual roundtrip over the generator distribution: random campaign
    /// seed, random program index, default generator shape.
    #[test]
    fn assemble_disassemble_is_identity(seed in any::<u64>(), index in 0u64..4096) {
        let fp = generate(seed, index, &GenConfig::default());
        fp.program.validate().expect("generated programs validate");
        let text = disassemble(&fp.program);
        let back = assemble(&text).expect("disassembly must reassemble");
        prop_assert_eq!(back.insts, fp.program.insts);
    }

    /// The roundtrip also holds for stressed generator shapes (short
    /// bodies maximize the branch-target-at-edge cases).
    #[test]
    fn roundtrip_holds_for_short_bodies(seed in any::<u64>(), body_len in 1usize..12) {
        let cfg = GenConfig { body_len, ..GenConfig::default() };
        let fp = generate(seed, 0, &cfg);
        let back = assemble(&disassemble(&fp.program)).expect("reassembles");
        prop_assert_eq!(back.insts, fp.program.insts);
    }
}
