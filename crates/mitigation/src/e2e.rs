//! End-to-end checksummed storage with scrubbing.
//!
//! §6: "Many of our applications already checked for SDCs; this checking
//! can also detect CEEs, at minimal extra cost. For example, the Colossus
//! file system protects the write path with end-to-end checksums."
//! Combined with §3's "scrub storage to detect corruption-at-rest", this
//! module is the storage-shaped mitigation: a put/get store where every
//! blob carries a CRC-32C computed at the *client* (the end of the
//! end-to-end argument [20]), verified on read and by a background
//! scrubber.

use bytes::Bytes;
use mercurial_corpus::crc::{crc_bitwise, POLY_CRC32C};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No such key.
    NotFound,
    /// The blob's checksum did not verify on read.
    CorruptOnRead {
        /// Stored CRC.
        expected: u32,
        /// CRC of the bytes actually returned.
        got: u32,
    },
    /// The write path corrupted data before it was persisted (caught by
    /// the post-write verify).
    CorruptOnWrite,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound => f.write_str("key not found"),
            StoreError::CorruptOnRead { expected, got } => {
                write!(
                    f,
                    "corrupt on read: expected {expected:#010x}, got {got:#010x}"
                )
            }
            StoreError::CorruptOnWrite => f.write_str("write path corrupted the payload"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A scrub pass report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Blobs examined.
    pub scanned: u64,
    /// Blobs whose checksum failed.
    pub corrupt: u64,
}

fn crc32c(data: &[u8]) -> u32 {
    crc_bitwise(POLY_CRC32C, data)
}

struct Entry {
    data: Bytes,
    crc: u32,
}

/// A put/get blob store with client-side end-to-end checksums.
///
/// The write path is pluggable (`write_path` transforms the payload on its
/// way to the medium) so tests and experiments can interpose a defective
/// copy engine — exactly the §1 scenario where a low-level library change
/// routed copies through a defective unit.
#[derive(Default)]
pub struct ChecksummedStore {
    entries: BTreeMap<String, Entry>,
}

impl ChecksummedStore {
    /// Creates an empty store.
    pub fn new() -> ChecksummedStore {
        ChecksummedStore::default()
    }

    /// Number of blobs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a blob through a (possibly defective) write path, verifying
    /// the persisted bytes against the client-computed checksum before
    /// acknowledging.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::CorruptOnWrite`] if the write path mangled
    /// the payload; nothing is persisted in that case.
    pub fn put_via<F>(
        &mut self,
        key: impl Into<String>,
        data: &[u8],
        mut write_path: F,
    ) -> Result<(), StoreError>
    where
        F: FnMut(&[u8]) -> Vec<u8>,
    {
        let crc = crc32c(data); // end-to-end: computed before the copy
        let persisted = write_path(data);
        if crc32c(&persisted) != crc {
            return Err(StoreError::CorruptOnWrite);
        }
        self.entries.insert(
            key.into(),
            Entry {
                data: Bytes::from(persisted),
                crc,
            },
        );
        Ok(())
    }

    /// Stores a blob through the identity write path.
    pub fn put(&mut self, key: impl Into<String>, data: &[u8]) -> Result<(), StoreError> {
        self.put_via(key, data, |d| d.to_vec())
    }

    /// Reads a blob, verifying its checksum.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] or [`StoreError::CorruptOnRead`].
    pub fn get(&self, key: &str) -> Result<Bytes, StoreError> {
        let entry = self.entries.get(key).ok_or(StoreError::NotFound)?;
        let got = crc32c(&entry.data);
        if got != entry.crc {
            return Err(StoreError::CorruptOnRead {
                expected: entry.crc,
                got,
            });
        }
        Ok(entry.data.clone())
    }

    /// Corrupts a stored blob in place (test/experiment hook: bit `bit` of
    /// byte `byte` flips, as a defective medium or copy engine would).
    ///
    /// Returns `false` if the key does not exist or the byte is out of
    /// range.
    pub fn corrupt_at_rest(&mut self, key: &str, byte: usize, bit: u8) -> bool {
        if let Some(entry) = self.entries.get_mut(key) {
            let mut data = entry.data.to_vec();
            if byte < data.len() {
                data[byte] ^= 1 << (bit & 7);
                entry.data = Bytes::from(data);
                return true;
            }
        }
        false
    }

    /// Scrubs every blob (§3's "scrub storage to detect
    /// corruption-at-rest"), returning counts. Corrupt blobs stay in place
    /// for forensic inspection; callers repair from replicas.
    pub fn scrub(&self) -> ScrubReport {
        let mut report = ScrubReport::default();
        for entry in self.entries.values() {
            report.scanned += 1;
            if crc32c(&entry.data) != entry.crc {
                report.corrupt += 1;
            }
        }
        report
    }

    /// Keys whose blobs currently fail verification.
    pub fn corrupt_keys(&self) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|(_, e)| crc32c(&e.data) != e.crc)
            .map(|(k, _)| k.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut store = ChecksummedStore::new();
        store.put("a", b"hello").unwrap();
        assert_eq!(store.get("a").unwrap().as_ref(), b"hello");
        assert_eq!(store.get("missing"), Err(StoreError::NotFound));
    }

    #[test]
    fn defective_write_path_is_refused_before_persisting() {
        // §1's incident shape: the write path's copy corrupts. The
        // end-to-end check catches it at write time, so no corrupt data is
        // ever acknowledged.
        let mut store = ChecksummedStore::new();
        let err = store
            .put_via("k", b"important data", |d| {
                let mut v = d.to_vec();
                v[2] ^= 0x08; // stuck bit in the copy engine
                v
            })
            .unwrap_err();
        assert_eq!(err, StoreError::CorruptOnWrite);
        assert!(store.is_empty());
    }

    #[test]
    fn corruption_at_rest_caught_on_read_and_by_scrub() {
        let mut store = ChecksummedStore::new();
        store.put("x", b"precious bytes").unwrap();
        store.put("y", b"also precious").unwrap();
        assert!(store.corrupt_at_rest("x", 3, 5));
        match store.get("x") {
            Err(StoreError::CorruptOnRead { .. }) => {}
            other => panic!("expected corrupt-on-read, got {other:?}"),
        }
        // The untouched blob still reads fine.
        assert!(store.get("y").is_ok());
        let report = store.scrub();
        assert_eq!(
            report,
            ScrubReport {
                scanned: 2,
                corrupt: 1
            }
        );
        assert_eq!(store.corrupt_keys(), vec!["x"]);
    }

    #[test]
    fn corrupt_at_rest_bounds_checked() {
        let mut store = ChecksummedStore::new();
        store.put("x", b"ab").unwrap();
        assert!(!store.corrupt_at_rest("x", 99, 0));
        assert!(!store.corrupt_at_rest("nope", 0, 0));
    }

    #[test]
    fn scrub_clean_store() {
        let mut store = ChecksummedStore::new();
        for i in 0..10 {
            store
                .put(format!("k{i}"), format!("payload {i}").as_bytes())
                .unwrap();
        }
        let report = store.scrub();
        assert_eq!(
            report,
            ScrubReport {
                scanned: 10,
                corrupt: 0
            }
        );
    }
}
