//! Blast radius: how far one silent corruption propagates.
//!
//! §2: "Wrong answers that are not immediately detected have potential
//! real-world consequences: these can propagate through other (correct)
//! computations to amplify their effects — for example, bad metadata can
//! cause the loss of an entire file system, and a corrupted encryption key
//! can render large amounts of data permanently inaccessible. Errors in
//! computation due to mercurial cores can therefore compound to
//! significantly increase the blast radius of the failures they can
//! cause."
//!
//! The model is a layered dataflow DAG: `width` values per level, each
//! depending on `fanin` values of the previous level. A corruption
//! injected at one node taints every dependent node — unless it reaches a
//! **check level** (end-to-end checksum, invariant test, checkpoint
//! verify), where it is detected and repaired. The experiment in
//! EXPERIMENTS.md sweeps check spacing and shows the radius shrink.

use serde::{Deserialize, Serialize};

/// The DAG shape and check placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlastModel {
    /// Number of levels (depth of the pipeline).
    pub levels: u32,
    /// Values per level.
    pub width: u32,
    /// How many previous-level values each node reads (window centered on
    /// the node's index, wrapping).
    pub fanin: u32,
    /// Every `check_every`-th level verifies its inputs and repairs
    /// contamination (`None` = no checks anywhere).
    pub check_every: Option<u32>,
}

/// What one injected corruption did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlastReport {
    /// Nodes that carried a corrupted value.
    pub contaminated_nodes: u64,
    /// Final-level (sink) values that were corrupted.
    pub contaminated_sinks: u64,
    /// Total sinks.
    pub sinks: u64,
    /// Whether a check level caught the contamination.
    pub detected: bool,
}

impl BlastReport {
    /// The §2 "blast radius": fraction of final outputs corrupted.
    pub fn radius(&self) -> f64 {
        if self.sinks == 0 {
            return 0.0;
        }
        self.contaminated_sinks as f64 / self.sinks as f64
    }
}

impl BlastModel {
    /// A model with no checks: worst-case propagation.
    pub fn unchecked(levels: u32, width: u32, fanin: u32) -> BlastModel {
        BlastModel {
            levels,
            width,
            fanin,
            check_every: None,
        }
    }

    /// Whether `level` runs checks before consuming its inputs.
    fn is_check_level(&self, level: u32) -> bool {
        match self.check_every {
            Some(k) if k > 0 => level > 0 && level.is_multiple_of(k),
            _ => false,
        }
    }

    /// Injects one corruption at `(inject_level, inject_node)` and
    /// propagates taint through the DAG.
    ///
    /// # Panics
    ///
    /// Panics if the injection point is out of range or the model is
    /// degenerate.
    pub fn run(&self, inject_level: u32, inject_node: u32) -> BlastReport {
        assert!(
            self.levels > 0 && self.width > 0 && self.fanin > 0,
            "degenerate model"
        );
        assert!(inject_level < self.levels, "injection level out of range");
        assert!(inject_node < self.width, "injection node out of range");

        let w = self.width as usize;
        let mut tainted = vec![false; w];
        let mut report = BlastReport {
            sinks: self.width as u64,
            ..BlastReport::default()
        };

        for level in 0..self.levels {
            let mut next = vec![false; w];
            if level == 0 {
                // Sources are clean except a level-0 injection.
            } else {
                // Check levels scrub their inputs before reading them.
                if self.is_check_level(level) && tainted.iter().any(|&t| t) {
                    report.detected = true;
                    tainted.iter_mut().for_each(|t| *t = false);
                }
                for (i, slot) in next.iter_mut().enumerate() {
                    // Fan-in window centered on i, wrapping.
                    let half = (self.fanin / 2) as isize;
                    for d in -half..=(self.fanin as isize - 1 - half) {
                        let p = (i as isize + d).rem_euclid(w as isize) as usize;
                        if tainted[p] {
                            *slot = true;
                            break;
                        }
                    }
                }
            }
            if level == inject_level {
                next[inject_node as usize] = true;
            }
            report.contaminated_nodes += next.iter().filter(|&&t| t).count() as u64;
            tainted = next;
        }
        report.contaminated_sinks = tainted.iter().filter(|&&t| t).count() as u64;
        report
    }

    /// Mean blast radius over one injection per source-node position at
    /// level 0.
    pub fn mean_radius(&self) -> f64 {
        let total: f64 = (0..self.width).map(|n| self.run(0, n).radius()).sum();
        total / self.width as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unchecked_corruption_spreads_geometrically() {
        let model = BlastModel::unchecked(20, 64, 3);
        let report = model.run(0, 10);
        // With fan-in 3 the taint widens by ~2 nodes per level; after 20
        // levels it covers a large share of the 64 sinks.
        assert!(report.radius() > 0.5, "radius {}", report.radius());
        assert!(!report.detected);
        assert!(report.contaminated_nodes > 100);
    }

    #[test]
    fn deep_unchecked_pipeline_loses_everything() {
        // The §2 encryption-key scenario: enough depth and everything
        // downstream is gone.
        let model = BlastModel::unchecked(80, 64, 3);
        assert_eq!(model.run(0, 0).radius(), 1.0);
    }

    #[test]
    fn checks_contain_the_blast() {
        let unchecked = BlastModel::unchecked(40, 64, 3);
        let checked = BlastModel {
            check_every: Some(4),
            ..unchecked
        };
        let r_unchecked = unchecked.run(0, 10);
        let r_checked = checked.run(0, 10);
        assert!(r_checked.detected);
        assert_eq!(r_checked.radius(), 0.0, "taint never crosses a check level");
        assert!(r_unchecked.radius() > 0.9);
        assert!(r_checked.contaminated_nodes < r_unchecked.contaminated_nodes / 4);
    }

    #[test]
    fn tighter_check_spacing_shrinks_contamination() {
        let loose = BlastModel {
            check_every: Some(16),
            ..BlastModel::unchecked(33, 64, 3)
        };
        let tight = BlastModel {
            check_every: Some(2),
            ..BlastModel::unchecked(33, 64, 3)
        };
        let r_loose = loose.run(0, 5);
        let r_tight = tight.run(0, 5);
        assert!(r_tight.contaminated_nodes < r_loose.contaminated_nodes);
        assert!(r_tight.detected && r_loose.detected);
    }

    #[test]
    fn late_injection_contaminates_less() {
        let model = BlastModel::unchecked(20, 64, 3);
        let early = model.run(0, 0);
        let late = model.run(18, 0);
        assert!(late.contaminated_sinks < early.contaminated_sinks);
        assert!(late.contaminated_sinks >= 1);
    }

    #[test]
    fn injection_after_last_check_escapes() {
        // A corruption injected after the final check level reaches the
        // sinks undetected — checks only help upstream of them.
        let model = BlastModel {
            check_every: Some(10),
            ..BlastModel::unchecked(25, 32, 3)
        };
        let report = model.run(21, 3);
        assert!(!report.detected);
        assert!(report.contaminated_sinks > 0);
    }

    #[test]
    fn mean_radius_is_position_independent_for_symmetric_dag() {
        let model = BlastModel::unchecked(10, 32, 3);
        let r0 = model.run(0, 0).radius();
        let r7 = model.run(0, 7).radius();
        assert!((r0 - r7).abs() < 1e-12);
        assert!((model.mean_radius() - r0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "injection level out of range")]
    fn bad_injection_panics() {
        BlastModel::unchecked(5, 5, 3).run(5, 0);
    }
}
