//! Per-workload-class mitigation policies: the §7 toolkit reduced to a
//! closed-loop control surface.
//!
//! The paper's mitigations trade *overhead* for *coverage* per workload:
//! end-to-end checksums are cheap but only catch what the checksum
//! covers, DMR/TMR pay full re-execution for near-total detection, and
//! ITHICA-style intra-thread instruction checking sits between. A
//! [`MitigationPolicy`] is the knob the closed loop turns per workload
//! class — each class's consequential operations pay the policy's
//! overhead (metered through [`CostMeter`]) and gain its detection
//! coverage, converting would-be silent corruptions into immediately
//! visible checker signals.
//!
//! Coverage and overhead are modeled, not measured: the numbers below
//! are the frontier shape the literature reports (checksums ~60-70%
//! coverage at a few percent overhead; instruction checking ~85% at
//! ~25%; DMR ~99% at ~100%; TMR ~99.9% at ~200%), chosen so the
//! corruption-vs-overhead frontier is strictly ordered — every step up
//! the ladder buys strictly more coverage at strictly more cost.

use serde::{Deserialize, Serialize};

use crate::redundancy::CostMeter;

/// A per-class mitigation policy, ordered from cheapest/weakest to most
/// expensive/strongest. The ordering is load-bearing: the closed loop
/// escalates along it, and the frontier bench asserts coverage and
/// overhead are both strictly monotone in it.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum MitigationPolicy {
    /// No mitigation: corruptions escape unless the application's own
    /// checks happen to catch them.
    #[default]
    None,
    /// End-to-end checksums on the class's data path (§7): cheap, but
    /// blind to corruptions that happen before the checksum is taken.
    E2eChecksum,
    /// ITHICA-style intra-thread instruction checking (PAPERS.md):
    /// selective re-execution of vulnerable instruction slices.
    InstructionCheck,
    /// Dual modular redundancy: execute twice, compare (§7). Detects
    /// nearly everything, pays nearly double.
    Dmr,
    /// Triple modular redundancy: execute three times, vote (§7).
    /// Detects and *corrects*, pays nearly triple.
    Tmr,
}

impl MitigationPolicy {
    /// Every policy, escalation order.
    pub const ALL: [MitigationPolicy; 5] = [
        MitigationPolicy::None,
        MitigationPolicy::E2eChecksum,
        MitigationPolicy::InstructionCheck,
        MitigationPolicy::Dmr,
        MitigationPolicy::Tmr,
    ];

    /// Fraction of otherwise-silent corruptions this policy detects.
    pub fn coverage(self) -> f64 {
        match self {
            MitigationPolicy::None => 0.0,
            MitigationPolicy::E2eChecksum => 0.65,
            MitigationPolicy::InstructionCheck => 0.85,
            MitigationPolicy::Dmr => 0.99,
            MitigationPolicy::Tmr => 0.999,
        }
    }

    /// Extra executed operations per consequential operation (1.0 means
    /// the class's work doubles).
    pub fn overhead_frac(self) -> f64 {
        match self {
            MitigationPolicy::None => 0.0,
            MitigationPolicy::E2eChecksum => 0.04,
            MitigationPolicy::InstructionCheck => 0.27,
            MitigationPolicy::Dmr => 1.05,
            MitigationPolicy::Tmr => 2.1,
        }
    }

    /// The next-stronger policy, or `self` at the top of the ladder.
    pub fn escalate(self) -> MitigationPolicy {
        match self {
            MitigationPolicy::None => MitigationPolicy::E2eChecksum,
            MitigationPolicy::E2eChecksum => MitigationPolicy::InstructionCheck,
            MitigationPolicy::InstructionCheck => MitigationPolicy::Dmr,
            MitigationPolicy::Dmr | MitigationPolicy::Tmr => MitigationPolicy::Tmr,
        }
    }

    /// Short stable name, used in metric labels and report tables.
    pub fn label(self) -> &'static str {
        match self {
            MitigationPolicy::None => "none",
            MitigationPolicy::E2eChecksum => "e2e-checksum",
            MitigationPolicy::InstructionCheck => "instr-check",
            MitigationPolicy::Dmr => "dmr",
            MitigationPolicy::Tmr => "tmr",
        }
    }

    /// Meter `ops` consequential operations executed under this policy
    /// into `meter`: the redundant executions and the compare/checksum
    /// steps they imply. Deterministic and RNG-free, and split so that
    /// `(executions + comparisons) / ops` equals [`overhead_frac`] (up to
    /// rounding each part to whole operations).
    ///
    /// [`overhead_frac`]: MitigationPolicy::overhead_frac
    pub fn meter_ops(self, ops: u64, meter: &mut CostMeter) {
        let part = |frac: f64| (ops as f64 * frac).round() as u64;
        match self {
            MitigationPolicy::None => {}
            MitigationPolicy::E2eChecksum => {
                // 0.04 total: pure checksum comparisons.
                meter.comparisons += part(0.04);
            }
            MitigationPolicy::InstructionCheck => {
                // 0.27 total: selective re-execution plus compare.
                meter.executions += part(0.25);
                meter.comparisons += part(0.02);
            }
            MitigationPolicy::Dmr => {
                // 1.05 total: one full redundant execution plus votes.
                meter.executions += ops;
                meter.comparisons += part(0.05);
            }
            MitigationPolicy::Tmr => {
                // 2.1 total: two redundant executions plus votes.
                meter.executions += 2 * ops;
                meter.comparisons += part(0.1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_strictly_ordered_in_both_coverage_and_overhead() {
        for pair in MitigationPolicy::ALL.windows(2) {
            assert!(pair[0].coverage() < pair[1].coverage());
            assert!(pair[0].overhead_frac() < pair[1].overhead_frac());
        }
    }

    #[test]
    fn escalation_walks_the_ladder_and_saturates() {
        let mut p = MitigationPolicy::None;
        for want in &MitigationPolicy::ALL[1..] {
            p = p.escalate();
            assert_eq!(p, *want);
        }
        assert_eq!(p.escalate(), MitigationPolicy::Tmr);
    }

    #[test]
    fn policies_roundtrip_through_serde() {
        for p in MitigationPolicy::ALL {
            let v = p.to_value();
            assert_eq!(MitigationPolicy::from_value(&v).unwrap(), p);
        }
    }

    #[test]
    fn metering_matches_the_declared_overhead_fraction() {
        let ops = 1_000_000u64;
        for p in MitigationPolicy::ALL {
            let mut meter = CostMeter::default();
            p.meter_ops(ops, &mut meter);
            let total = meter.executions + meter.comparisons + meter.retries;
            let frac = total as f64 / ops as f64;
            assert!(
                (frac - p.overhead_frac()).abs() < 1e-9,
                "{}: metered {} vs declared {}",
                p.label(),
                frac,
                p.overhead_frac()
            );
        }
    }
}
