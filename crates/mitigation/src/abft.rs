//! Algorithm-based fault tolerance (ABFT) for matrix computations.
//!
//! §7 asks "can we extend the class of SDC-resilient algorithms beyond
//! sorting and matrix factorization?"; this module implements the matrix
//! half the paper cites (Wu et al. [27], after Huang & Abraham): checksum-
//! augmented matrix multiplication that **detects, locates, and corrects**
//! a single corrupted output entry in O(n²) extra work, and a checksummed
//! LU factorization whose row-sum invariant catches corruptions of the
//! elimination arithmetic.

use mercurial_corpus::matmul::{matmul_naive, Matrix};
use serde::{Deserialize, Serialize};

/// ABFT verification failures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AbftError {
    /// More than one row/column checksum failed in a way no single-entry
    /// correction explains.
    Uncorrectable {
        /// Failing row indices.
        bad_rows: Vec<usize>,
        /// Failing column indices.
        bad_cols: Vec<usize>,
    },
    /// The LU row-sum invariant failed at a row.
    LuInvariantViolated {
        /// The offending row.
        row: usize,
        /// Absolute residual.
        residual: f64,
    },
}

impl std::fmt::Display for AbftError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbftError::Uncorrectable { bad_rows, bad_cols } => write!(
                f,
                "uncorrectable corruption: rows {bad_rows:?}, cols {bad_cols:?}"
            ),
            AbftError::LuInvariantViolated { row, residual } => {
                write!(
                    f,
                    "LU checksum invariant violated at row {row} (residual {residual:e})"
                )
            }
        }
    }
}

impl std::error::Error for AbftError {}

/// What a verify-and-correct pass did.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AbftVerdict {
    /// All checksums verified.
    Clean,
    /// One entry was corrupted; it has been corrected in place.
    Corrected {
        /// Row of the corrected entry.
        row: usize,
        /// Column of the corrected entry.
        col: usize,
        /// The delta that was removed.
        delta: f64,
    },
}

/// A checksum-carrying matrix product.
#[derive(Debug, Clone)]
pub struct AbftProduct {
    c: Matrix,
    /// Expected row sums of C (from the augmented multiply).
    row_check: Vec<f64>,
    /// Expected column sums of C.
    col_check: Vec<f64>,
    tol: f64,
}

impl AbftProduct {
    /// Computes `C = A * B` with checksum augmentation.
    ///
    /// The row/column check vectors are produced by multiplying the
    /// checksum-extended operands, so they are *independent* witnesses to
    /// C's content (a corruption of C's entries does not corrupt them,
    /// and vice versa — either way verification fails).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn multiply(a: &Matrix, b: &Matrix) -> AbftProduct {
        assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
        let c = matmul_naive(a, b);
        // col_check[j] = (colsums of A) * B = sum over rows of C.
        let mut a_colsum = vec![0.0f64; a.cols()];
        for i in 0..a.rows() {
            for k in 0..a.cols() {
                a_colsum[k] += a[(i, k)];
            }
        }
        let col_check: Vec<f64> = (0..b.cols())
            .map(|j| (0..b.rows()).map(|k| a_colsum[k] * b[(k, j)]).sum())
            .collect();
        // row_check[i] = A * (rowsums of B).
        let mut b_rowsum = vec![0.0f64; b.rows()];
        for k in 0..b.rows() {
            for j in 0..b.cols() {
                b_rowsum[k] += b[(k, j)];
            }
        }
        let row_check: Vec<f64> = (0..a.rows())
            .map(|i| (0..a.cols()).map(|k| a[(i, k)] * b_rowsum[k]).sum())
            .collect();
        let scale = a.cols() as f64;
        AbftProduct {
            c,
            row_check,
            col_check,
            tol: 1e-9 * scale.max(1.0),
        }
    }

    /// The product matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.c
    }

    /// Mutable access (test hook for corruption injection).
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        &mut self.c
    }

    fn residuals(&self) -> (Vec<usize>, Vec<usize>, f64) {
        let m = self.c.rows();
        let n = self.c.cols();
        let mut bad_rows = Vec::new();
        let mut bad_cols = Vec::new();
        let mut delta = 0.0;
        for i in 0..m {
            let sum: f64 = (0..n).map(|j| self.c[(i, j)]).sum();
            let r = sum - self.row_check[i];
            if r.abs() > self.tol * (1.0 + self.row_check[i].abs()) {
                bad_rows.push(i);
                delta = r;
            }
        }
        for j in 0..n {
            let sum: f64 = (0..m).map(|i| self.c[(i, j)]).sum();
            let r = sum - self.col_check[j];
            if r.abs() > self.tol * (1.0 + self.col_check[j].abs()) {
                bad_cols.push(j);
            }
        }
        (bad_rows, bad_cols, delta)
    }

    /// Verifies the checksums and corrects a single corrupted entry in
    /// place if one is found.
    ///
    /// # Errors
    ///
    /// Returns [`AbftError::Uncorrectable`] when the failure pattern is
    /// not a single entry (multiple corruptions, or corrupted checksum
    /// rows interacting).
    pub fn verify_and_correct(&mut self) -> Result<AbftVerdict, AbftError> {
        let (bad_rows, bad_cols, delta) = self.residuals();
        match (bad_rows.len(), bad_cols.len()) {
            (0, 0) => Ok(AbftVerdict::Clean),
            (1, 1) => {
                let (r, c) = (bad_rows[0], bad_cols[0]);
                self.c[(r, c)] -= delta;
                // Re-verify after correction.
                let (br, bc, _) = self.residuals();
                if br.is_empty() && bc.is_empty() {
                    Ok(AbftVerdict::Corrected {
                        row: r,
                        col: c,
                        delta,
                    })
                } else {
                    Err(AbftError::Uncorrectable {
                        bad_rows: br,
                        bad_cols: bc,
                    })
                }
            }
            _ => Err(AbftError::Uncorrectable { bad_rows, bad_cols }),
        }
    }
}

/// LU factorization (Doolittle, partial pivoting) with a maintained
/// row-sum checksum column.
///
/// The factorization operates on the augmented matrix `[A | A·1]`; every
/// elimination update is applied to the checksum column too, so at
/// completion each row of the working matrix must still satisfy
/// `aug[i] = Σ_j row[i][j]`. A corrupted multiply-subtract anywhere in the
/// elimination breaks the invariant for its row.
#[derive(Debug, Clone)]
pub struct ChecksummedLu {
    /// The packed LU factors (L below the diagonal, unit diagonal
    /// implicit; U on and above).
    pub lu: Matrix,
    /// Row permutation applied (pivoting).
    pub perm: Vec<usize>,
}

/// Factorizes with a fault-injectable multiply-subtract.
///
/// `mul_sub(x, y, z)` must compute `x - y * z`; experiments pass a closure
/// that occasionally lies, modeling a defective FMA unit.
///
/// # Errors
///
/// Returns [`AbftError::LuInvariantViolated`] if the checksum invariant
/// fails (corruption detected).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn lu_checksummed_via<F>(a: &Matrix, mut mul_sub: F) -> Result<ChecksummedLu, AbftError>
where
    F: FnMut(f64, f64, f64) -> f64,
{
    assert_eq!(a.rows(), a.cols(), "LU needs a square matrix");
    let n = a.rows();
    // Working matrix with checksum column.
    let mut w = Matrix::zeros(n, n + 1);
    for i in 0..n {
        let mut sum = 0.0;
        for j in 0..n {
            w[(i, j)] = a[(i, j)];
            sum += a[(i, j)];
        }
        w[(i, n)] = sum;
    }
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Partial pivot.
        let mut pivot = k;
        for i in k + 1..n {
            if w[(i, k)].abs() > w[(pivot, k)].abs() {
                pivot = i;
            }
        }
        if pivot != k {
            perm.swap(pivot, k);
            for j in 0..=n {
                let tmp = w[(k, j)];
                w[(k, j)] = w[(pivot, j)];
                w[(pivot, j)] = tmp;
            }
        }
        let diag = w[(k, k)];
        if diag == 0.0 {
            continue; // singular column; factorization proceeds loosely
        }
        for i in k + 1..n {
            let factor = w[(i, k)] / diag;
            w[(i, k)] = factor;
            for j in k + 1..=n {
                // The injectable arithmetic: w[i][j] -= factor * w[k][j].
                w[(i, j)] = mul_sub(w[(i, j)], factor, w[(k, j)]);
            }
        }
    }
    // Verify the invariant: aug column equals the row sum of [L\U] rows
    // *as transformed*, i.e. for each row, sum of U part plus L part
    // applied to transformed sums. Because the checksum column received
    // exactly the same updates, the residual per row must be ~0 against
    // the recomputed row sum of the working matrix.
    for i in 0..n {
        let mut sum = 0.0;
        for j in 0..n {
            sum += w[(i, j)];
        }
        // L entries replaced the eliminated zeros: the checksum column
        // tracked the *eliminated* values (zeros), so reconstruct: the
        // expected checksum is sum over U part plus zeros for eliminated
        // entries; subtract the L factors we stored in their place.
        let mut l_part = 0.0;
        for j in 0..i.min(n) {
            l_part += w[(i, j)];
        }
        let expected = sum - l_part;
        let residual = (w[(i, n)] - expected).abs();
        let scale = 1.0 + expected.abs();
        if residual > 1e-8 * scale * n as f64 {
            return Err(AbftError::LuInvariantViolated { row: i, residual });
        }
    }
    let mut lu = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            lu[(i, j)] = w[(i, j)];
        }
    }
    Ok(ChecksummedLu { lu, perm })
}

/// Factorizes with honest arithmetic.
pub fn lu_checksummed(a: &Matrix) -> Result<ChecksummedLu, AbftError> {
    lu_checksummed_via(a, |x, y, z| x - y * z)
}

impl ChecksummedLu {
    /// Reconstructs `P·A` from the factors (test utility).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.lu.rows();
        let mut pa = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                let kmax = i.min(j);
                for k in 0..=kmax {
                    let l = if k == i { 1.0 } else { self.lu[(i, k)] };
                    let u = if k <= j { self.lu[(k, j)] } else { 0.0 };
                    if k <= i {
                        acc += l * u;
                    }
                }
                pa[(i, j)] = acc;
            }
        }
        pa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_product_verifies() {
        let a = Matrix::random(12, 9, 1);
        let b = Matrix::random(9, 15, 2);
        let mut p = AbftProduct::multiply(&a, &b);
        assert_eq!(p.verify_and_correct().unwrap(), AbftVerdict::Clean);
    }

    #[test]
    fn single_corruption_located_and_corrected() {
        let a = Matrix::random(10, 10, 3);
        let b = Matrix::random(10, 10, 4);
        let honest = matmul_naive(&a, &b);
        let mut p = AbftProduct::multiply(&a, &b);
        p.matrix_mut()[(4, 7)] += 2.5; // a silent CEE in the output
        match p.verify_and_correct().unwrap() {
            AbftVerdict::Corrected { row, col, delta } => {
                assert_eq!((row, col), (4, 7));
                assert!((delta - 2.5).abs() < 1e-9);
            }
            other => panic!("expected correction, got {other:?}"),
        }
        assert!(
            p.matrix().max_abs_diff(&honest) < 1e-9,
            "corrected back to truth"
        );
    }

    #[test]
    fn double_corruption_detected_as_uncorrectable() {
        let a = Matrix::random(8, 8, 5);
        let b = Matrix::random(8, 8, 6);
        let mut p = AbftProduct::multiply(&a, &b);
        p.matrix_mut()[(1, 2)] += 1.0;
        p.matrix_mut()[(5, 6)] -= 3.0;
        match p.verify_and_correct() {
            Err(AbftError::Uncorrectable { bad_rows, bad_cols }) => {
                assert_eq!(bad_rows, vec![1, 5]);
                assert_eq!(bad_cols, vec![2, 6]);
            }
            other => panic!("expected uncorrectable, got {other:?}"),
        }
    }

    #[test]
    fn tiny_relative_corruption_still_caught() {
        let a = Matrix::random(6, 6, 7);
        let b = Matrix::random(6, 6, 8);
        let mut p = AbftProduct::multiply(&a, &b);
        let v = p.matrix()[(2, 3)];
        p.matrix_mut()[(2, 3)] = v + 1e-4;
        assert!(matches!(
            p.verify_and_correct().unwrap(),
            AbftVerdict::Corrected { row: 2, col: 3, .. }
        ));
    }

    #[test]
    fn lu_clean_run_verifies_and_reconstructs() {
        let a = Matrix::random(8, 8, 9);
        let f = lu_checksummed(&a).expect("honest LU verifies");
        let pa = f.reconstruct();
        // P·A comparison: permute A's rows by perm.
        let n = 8;
        let mut expect = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                expect[(i, j)] = a[(f.perm[i], j)];
            }
        }
        assert!(
            pa.max_abs_diff(&expect) < 1e-9,
            "diff {}",
            pa.max_abs_diff(&expect)
        );
    }

    #[test]
    fn lu_detects_a_single_bad_mul_sub() {
        let a = Matrix::random(10, 10, 10);
        let mut call = 0u64;
        let result = lu_checksummed_via(&a, |x, y, z| {
            call += 1;
            if call == 137 {
                // One corrupted FMA, mid-elimination.
                x - y * z + 0.125
            } else {
                x - y * z
            }
        });
        assert!(
            matches!(result, Err(AbftError::LuInvariantViolated { .. })),
            "got {result:?}"
        );
    }

    #[test]
    fn lu_detection_rate_over_many_injection_sites() {
        // Inject one corrupted mul-sub at each of many call positions; the
        // invariant must catch the overwhelming majority (corruptions of
        // the checksum column itself are also caught — they unbalance the
        // same equation).
        let a = Matrix::random(8, 8, 11);
        let honest_calls = {
            let mut n = 0u64;
            let _ = lu_checksummed_via(&a, |x, y, z| {
                n += 1;
                x - y * z
            });
            n
        };
        let mut caught = 0;
        let mut total = 0;
        for site in (1..=honest_calls).step_by(7) {
            let mut call = 0u64;
            let r = lu_checksummed_via(&a, |x, y, z| {
                call += 1;
                if call == site {
                    x - y * z + 1.0
                } else {
                    x - y * z
                }
            });
            total += 1;
            if r.is_err() {
                caught += 1;
            }
        }
        let rate = caught as f64 / total as f64;
        assert!(rate > 0.9, "detection rate {rate} over {total} sites");
    }
}
