//! Temporal redundancy: re-execute on the *same* core and compare.
//!
//! The cheapest redundancy of all — no second core, no scheduler change —
//! and §2 explains exactly when it fails: some CEEs are *deterministic*
//! ("in just a few cases, we can reproduce the errors deterministically"),
//! so the same core computes the same wrong answer twice and the compare
//! passes. Intermittent defects, by contrast, usually fire on only one of
//! the two runs and are caught.
//!
//! This module makes that ablation executable: [`temporal_dmr`] runs a
//! simulated-core program repeatedly on one core, and the tests (plus
//! experiment E7) show deterministic lesions evading it while spatial DMR
//! ([`crate::redundancy::dmr`]) catches both.

use mercurial_simcpu::{Memory, Program, SimCore, Trap};
use serde::{Deserialize, Serialize};

/// Outcome of a temporal-redundancy run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TemporalOutcome {
    /// All runs agreed on this output.
    Agreed {
        /// The agreed output values.
        output: Vec<u64>,
        /// Runs performed.
        runs: u32,
    },
    /// Two runs disagreed: a CEE was detected (an intermittent defect).
    Disagreed {
        /// The run index that first disagreed with run 0.
        at_run: u32,
    },
    /// A run trapped: loud failure.
    Trapped(Trap),
}

impl TemporalOutcome {
    /// Whether the redundancy scheme reported a problem.
    pub fn detected(&self) -> bool {
        !matches!(self, TemporalOutcome::Agreed { .. })
    }
}

/// Runs `prog` `runs` times on the same core with a fresh memory image
/// each time, comparing output buffers.
///
/// The core's operation-sequence counter advances across runs, so
/// probabilistic lesions get independent activation draws per run — the
/// mechanism that makes temporal redundancy work against intermittent
/// defects and useless against deterministic ones.
///
/// # Panics
///
/// Panics if `runs == 0`.
pub fn temporal_dmr(
    core: &mut SimCore,
    prog: &Program,
    init_mem: &[(u64, Vec<u8>)],
    mem_size: usize,
    runs: u32,
) -> TemporalOutcome {
    assert!(runs > 0, "need at least one run");
    let mut first: Option<Vec<u64>> = None;
    for run in 0..runs {
        core.reset();
        let mut mem = Memory::new(mem_size);
        for (addr, bytes) in init_mem {
            mem.write_bytes(*addr, bytes).expect("image fits");
        }
        if let Err(trap) = core.run(prog, &mut mem) {
            return TemporalOutcome::Trapped(trap);
        }
        let out = core.output().to_vec();
        match &first {
            None => first = Some(out),
            Some(expected) if *expected != out => {
                return TemporalOutcome::Disagreed { at_run: run };
            }
            Some(_) => {}
        }
    }
    TemporalOutcome::Agreed {
        output: first.expect("runs > 0"),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{
        library, Activation, CoreFaultProfile, FunctionalUnit, Injector, Lesion,
    };
    use mercurial_simcpu::{assemble, CoreConfig};

    fn program() -> Program {
        assemble(
            "li x1, 37
             li x2, 100
             loop:
             mul x3, x1, x1
             add x1, x3, x2
             xori x1, x1, 0x55
             addi x2, x2, -1
             bnz x2, loop
             out x1
             halt",
        )
        .unwrap()
    }

    #[test]
    fn healthy_core_agrees_with_itself() {
        let mut core = SimCore::new(CoreConfig::default(), None);
        let out = temporal_dmr(&mut core, &program(), &[], 4096, 3);
        assert!(matches!(out, TemporalOutcome::Agreed { runs: 3, .. }));
    }

    #[test]
    fn intermittent_defect_is_caught_by_reexecution() {
        // A 5%-per-op defect: over a few hundred ops per run, the two runs
        // essentially never corrupt identically.
        let profile = CoreFaultProfile::single(
            "flaky",
            FunctionalUnit::MulDiv,
            Lesion::CorruptValue,
            Activation::with_prob(0.05),
        );
        let mut core = SimCore::new(CoreConfig::default(), Some(Injector::new(4, profile)));
        let out = temporal_dmr(&mut core, &program(), &[], 4096, 3);
        assert!(
            out.detected(),
            "intermittent corruption must show up: {out:?}"
        );
    }

    #[test]
    fn deterministic_defect_evades_temporal_redundancy() {
        // §2's deterministic miscomputations: the same wrong answer every
        // time. Temporal DMR agrees — on garbage.
        let profile = CoreFaultProfile::single(
            "deterministic",
            FunctionalUnit::MulDiv,
            Lesion::XorMask { mask: 0x80 },
            Activation::always(),
        );
        let mut bad = SimCore::new(CoreConfig::default(), Some(Injector::new(4, profile)));
        let out = temporal_dmr(&mut bad, &program(), &[], 4096, 5);
        let TemporalOutcome::Agreed { output, .. } = &out else {
            panic!("deterministic lesion must agree with itself: {out:?}");
        };
        // And the agreed answer is wrong: spatial comparison against a
        // healthy core exposes what temporal redundancy cannot.
        let mut good = SimCore::new(CoreConfig::default(), None);
        let honest = temporal_dmr(&mut good, &program(), &[], 4096, 1);
        let TemporalOutcome::Agreed {
            output: honest_out, ..
        } = honest
        else {
            unreachable!("healthy run agrees");
        };
        assert_ne!(*output, honest_out, "agreed-upon garbage");
    }

    #[test]
    fn self_inverting_aes_also_evades_temporal_redundancy() {
        // The flagship deterministic case: always fires, always the same
        // mask, so every run produces the same wrong ciphertext.
        let mut core = SimCore::new(
            CoreConfig::default(),
            Some(Injector::new(4, library::self_inverting_aes())),
        );
        // Exercise the crypto unit via the corpus kernel's program shape:
        // a single AES round on fixed data.
        let prog = assemble(
            "li x1, 0
             vld v0, x1, 0
             li x2, 64
             vld v1, x2, 0
             aesenc v0, v1
             vext x3, v0, 0
             vext x4, v0, 1
             out x3
             out x4
             halt",
        )
        .unwrap();
        let init = vec![(0u64, vec![0x11u8; 16]), (64u64, vec![0x22u8; 16])];
        let out = temporal_dmr(&mut core, &prog, &init, 4096, 5);
        assert!(
            matches!(out, TemporalOutcome::Agreed { .. }),
            "self-inverting defect agrees with itself: {out:?}"
        );
    }

    #[test]
    fn crash_prone_defect_reports_trap() {
        let mut core = SimCore::new(
            CoreConfig::default(),
            Some(Injector::new(4, library::addressgen_crasher(0.9))),
        );
        let prog = assemble(
            "li x1, 512
             ld x2, x1, 0
             out x2
             halt",
        )
        .unwrap();
        let out = temporal_dmr(&mut core, &prog, &[], 4096, 3);
        assert!(matches!(out, TemporalOutcome::Trapped(_)));
    }
}
