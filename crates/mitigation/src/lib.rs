//! # mercurial-mitigation
//!
//! Tolerating CEEs — §7 of *Cores that don't count*: "Although today we
//! primarily cope with mercurial cores by detecting and isolating them as
//! rapidly as possible, that does not always avoid application impact …
//! Can we design software that can tolerate CEEs, without excessive
//! overheads?"
//!
//! Every mitigation the section sketches is implemented:
//!
//! * [`redundancy`] — execute-twice-and-compare (DMR, with retry on a
//!   different pair: "one could run a computation on two cores, and if
//!   they disagree, restart on a different pair of cores from a
//!   checkpoint") and triple modular redundancy with majority voting
//!   (Lyons & Vanderkulk [15]), including the unreliable-voter caveat
//!   ("this relies on the voting mechanism itself being reliable");
//! * [`checkpoint`] — "system support for efficient checkpointing, to
//!   recover from a failed computation by restarting on a different
//!   core";
//! * [`selfcheck`] — "libraries with self-checking implementations of
//!   critical functions, such as encryption and compression, where one
//!   CEE could have a large blast radius" — including the *cross-
//!   implementation* check that the self-inverting AES case study (§2)
//!   shows is necessary;
//! * [`e2e`] — end-to-end write-path checksums with scrubbing (the
//!   Colossus/Spanner pattern of §6);
//! * [`abft`] — algorithm-based fault tolerance for matrix computations
//!   (checksum-augmented GEMM and LU — the Wu et al. [27] class),
//!   detecting, locating, and correcting single corruptions;
//! * [`ftsort`] — SDC-resilient sorting (the Guan et al. [11] class):
//!   verified sorts with redundant re-execution on disagreement;
//! * [`checker`] — Blum–Kannan program checkers [2]: sortedness +
//!   permutation, Freivalds' product check, division and GCD checkers;
//! * [`blast`] — a corruption-propagation model quantifying "blast
//!   radius": how one CEE compounds through dependent computations, and
//!   how check/checkpoint placement contains it;
//! * [`policy`] — the toolkit folded into a per-workload-class
//!   [`MitigationPolicy`] ladder (none → e2e-checksum → instruction
//!   checking → DMR → TMR) the closed loop selects and escalates per
//!   class, trading metered overhead for detection coverage.
#![warn(missing_docs)]

pub mod abft;
pub mod blast;
pub mod checker;
pub mod checkpoint;
pub mod e2e;
pub mod ftsort;
pub mod policy;
pub mod redundancy;
pub mod replay;
pub mod selfcheck;

pub use abft::{AbftError, AbftProduct};
pub use blast::{BlastModel, BlastReport};
pub use checkpoint::{CheckpointPolicy, CheckpointStats, Checkpointed, StepError};
pub use e2e::{ChecksummedStore, ScrubReport, StoreError};
pub use ftsort::{ft_sort, FtSortError, FtSortStats};
pub use policy::MitigationPolicy;
pub use redundancy::{dmr, tmr, CostMeter, RedundancyError, Voted};
pub use replay::{temporal_dmr, TemporalOutcome};
pub use selfcheck::{
    checked_compress, checked_copy, cross_checked_encrypt, roundtrip_checked_encrypt,
    SelfCheckError,
};
