//! Checkpoint/restart: recover from a failed computation on a different
//! core.
//!
//! §7: "System support for efficient checkpointing, to recover from a
//! failed computation by restarting on a different core" together with
//! "cost-effective, application-specific detection methods, to decide
//! whether to continue past a checkpoint or to retry".
//!
//! [`Checkpointed`] drives a stepwise computation: every `checkpoint_every`
//! steps it snapshots the state and runs the caller's integrity check; on
//! check failure it rolls back to the last snapshot and re-executes on the
//! next core. The engine is generic over the state and the step function,
//! so the same machinery runs both the native tests and the simulated-core
//! experiments.

use serde::{Deserialize, Serialize};

/// Policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Steps between checkpoints (and integrity checks).
    pub checkpoint_every: u64,
    /// Maximum rollbacks before giving up.
    pub max_rollbacks: u32,
}

impl Default for CheckpointPolicy {
    fn default() -> CheckpointPolicy {
        CheckpointPolicy {
            checkpoint_every: 16,
            max_rollbacks: 8,
        }
    }
}

/// Work accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointStats {
    /// Steps executed, including re-executed ones.
    pub steps_executed: u64,
    /// Snapshots taken.
    pub checkpoints_taken: u64,
    /// Integrity checks run.
    pub checks_run: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Distinct cores used (1 + rollbacks, capped by the pool).
    pub cores_used: u32,
}

impl CheckpointStats {
    /// Re-execution overhead: executed steps divided by useful steps.
    pub fn overhead(&self, useful_steps: u64) -> f64 {
        if useful_steps == 0 {
            return 1.0;
        }
        self.steps_executed as f64 / useful_steps as f64
    }
}

/// The computation failed despite every retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepError {
    /// Rollbacks performed before giving up.
    pub rollbacks: u64,
    /// The step index at which the run was abandoned.
    pub failed_at_step: u64,
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "computation abandoned at step {} after {} rollbacks",
            self.failed_at_step, self.rollbacks
        )
    }
}

impl std::error::Error for StepError {}

/// A checkpointed stepwise computation.
pub struct Checkpointed<S: Clone> {
    policy: CheckpointPolicy,
    stats: CheckpointStats,
    state: S,
    snapshot: S,
    core: usize,
}

impl<S: Clone> Checkpointed<S> {
    /// Starts a computation from `initial` state, executing on core 0.
    pub fn new(initial: S, policy: CheckpointPolicy) -> Checkpointed<S> {
        Checkpointed {
            policy,
            stats: CheckpointStats {
                cores_used: 1,
                ..CheckpointStats::default()
            },
            snapshot: initial.clone(),
            state: initial,
            core: 0,
        }
    }

    /// Runs `total_steps` of `step(core, step_index, state)`, checking
    /// integrity with `check(state)` at every checkpoint boundary and at
    /// the end.
    ///
    /// On a failed check the engine rolls back to the previous snapshot,
    /// switches to the next core, and re-executes the segment. Returns the
    /// final state and stats.
    ///
    /// # Errors
    ///
    /// Returns [`StepError`] once `max_rollbacks` is exceeded.
    pub fn run<FStep, FCheck>(
        mut self,
        total_steps: u64,
        mut step: FStep,
        mut check: FCheck,
    ) -> Result<(S, CheckpointStats), StepError>
    where
        FStep: FnMut(usize, u64, &mut S),
        FCheck: FnMut(&S) -> bool,
    {
        let mut done = 0u64;
        let mut rollbacks_total = 0u64;
        while done < total_steps {
            let segment = self.policy.checkpoint_every.min(total_steps - done);
            // Execute the segment.
            for i in 0..segment {
                step(self.core, done + i, &mut self.state);
                self.stats.steps_executed += 1;
            }
            self.stats.checks_run += 1;
            if check(&self.state) {
                // Commit: snapshot and advance.
                done += segment;
                self.snapshot = self.state.clone();
                self.stats.checkpoints_taken += 1;
            } else {
                // Roll back and re-execute on the next core.
                rollbacks_total += 1;
                self.stats.rollbacks += 1;
                if rollbacks_total > self.policy.max_rollbacks as u64 {
                    return Err(StepError {
                        rollbacks: rollbacks_total,
                        failed_at_step: done,
                    });
                }
                self.state = self.snapshot.clone();
                self.core += 1;
                self.stats.cores_used += 1;
            }
        }
        Ok((self.state, self.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical test computation: state is a running sum; step i adds
    /// i+1, so after n steps the state is n(n+1)/2. The checker knows the
    /// closed form only at checkpoint boundaries via a shadow counter, so
    /// we check a weaker invariant: the sum is what re-deriving from the
    /// snapshot would give. For tests we simply validate against a parity
    /// invariant the corruption breaks.
    fn clean_step(_core: usize, i: u64, s: &mut u64) {
        *s += i + 1;
    }

    #[test]
    fn clean_run_has_no_overhead() {
        let engine = Checkpointed::new(0u64, CheckpointPolicy::default());
        let (state, stats) = engine
            .run(100, clean_step, |_| true)
            .expect("clean run succeeds");
        assert_eq!(state, 100 * 101 / 2);
        assert_eq!(stats.steps_executed, 100);
        assert_eq!(stats.rollbacks, 0);
        assert_eq!(stats.cores_used, 1);
        assert!((stats.overhead(100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corrupting_core_is_escaped_by_rollback() {
        // Core 0 corrupts step 37; the checker (a shadow recomputation)
        // notices at the next boundary; the segment re-runs on core 1.
        let mut expected_after_segment = Vec::new();
        {
            // Precompute the correct value after each 16-step boundary.
            let mut s = 0u64;
            for i in 0..100u64 {
                s += i + 1;
                if (i + 1) % 16 == 0 || i + 1 == 100 {
                    expected_after_segment.push((i + 1, s));
                }
            }
        }
        let step = |core: usize, i: u64, s: &mut u64| {
            *s += i + 1;
            if core == 0 && i == 37 {
                *s ^= 0x4000; // silent corruption on the bad core
            }
        };
        let mut boundary = 0usize;
        let check = move |s: &u64| {
            // The application-specific invariant: the state must equal the
            // closed form at the boundary we are about to commit.
            let (_steps_done, expect) = expected_after_segment[boundary];
            let ok = *s == expect;
            if ok {
                boundary += 1;
            }
            ok
        };
        let engine = Checkpointed::new(0u64, CheckpointPolicy::default());
        let (state, stats) = engine.run(100, step, check).expect("recovers via rollback");
        assert_eq!(state, 100 * 101 / 2, "final answer correct despite the CEE");
        assert_eq!(stats.rollbacks, 1);
        assert_eq!(stats.cores_used, 2);
        assert!(stats.steps_executed > 100, "re-execution costs extra steps");
        assert!(stats.steps_executed <= 116);
    }

    #[test]
    fn persistent_failure_exhausts_rollbacks() {
        // Every core corrupts: the checker never passes the first segment.
        let step = |_core: usize, _i: u64, s: &mut u64| {
            *s += 1;
        };
        let check = |_s: &u64| false;
        let engine = Checkpointed::new(
            0u64,
            CheckpointPolicy {
                checkpoint_every: 4,
                max_rollbacks: 3,
            },
        );
        let err = engine.run(10, step, check).unwrap_err();
        assert_eq!(err.rollbacks, 4);
        assert_eq!(err.failed_at_step, 0);
    }

    #[test]
    fn checkpoint_interval_bounds_reexecution() {
        // With an interval of 4, one corruption can cost at most 4
        // re-executed steps.
        let mut fail_once = true;
        let check = move |_s: &u64| !std::mem::take(&mut fail_once);
        let engine = Checkpointed::new(
            0u64,
            CheckpointPolicy {
                checkpoint_every: 4,
                max_rollbacks: 8,
            },
        );
        let (_, stats) = engine.run(40, clean_step, check).unwrap();
        assert_eq!(stats.steps_executed, 44);
        assert_eq!(stats.rollbacks, 1);
    }

    #[test]
    fn partial_last_segment_handled() {
        let engine = Checkpointed::new(
            0u64,
            CheckpointPolicy {
                checkpoint_every: 16,
                max_rollbacks: 1,
            },
        );
        let (state, stats) = engine.run(21, clean_step, |_| true).unwrap();
        assert_eq!(state, 21 * 22 / 2);
        assert_eq!(stats.checkpoints_taken, 2); // 16 + 5
    }
}
