//! SDC-resilient sorting.
//!
//! The paper cites Guan et al. [11] ("Empirical Studies of the Soft Error
//! Susceptibility Of Sorting Algorithms") as one of the two known
//! SDC-resilient algorithm classes. The construction: sort, then run the
//! Blum–Kannan checker (sortedness + permutation digest); on failure,
//! re-sort *on a different core* from the preserved input and check
//! again. Because the checker is O(n), the fault-free overhead is a few
//! percent; the retry cost is paid only when a CEE actually struck.

use crate::checker::{check_sort, MultisetDigest};
use serde::{Deserialize, Serialize};

/// Sorting failed even after every retry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FtSortError {
    /// Attempts made (including the first).
    pub attempts: u32,
}

impl std::fmt::Display for FtSortError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sort failed verification on all {} attempts",
            self.attempts
        )
    }
}

impl std::error::Error for FtSortError {}

/// Work accounting for a fault-tolerant sort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtSortStats {
    /// Sort executions performed.
    pub sorts: u32,
    /// Checker passes performed.
    pub checks: u32,
    /// Whether any corruption was detected (and masked by retrying).
    pub corruption_masked: bool,
}

/// Sorts `data` fault-tolerantly.
///
/// `sorter(core, &mut buf)` sorts in place, possibly on a defective core
/// (`core` increments on each retry, modeling restart-elsewhere). Up to
/// `max_attempts` attempts are verified with the Blum–Kannan checker.
///
/// # Errors
///
/// Returns [`FtSortError`] when no attempt verified.
///
/// # Panics
///
/// Panics if `max_attempts == 0`.
pub fn ft_sort<F>(
    data: &mut Vec<u64>,
    mut sorter: F,
    max_attempts: u32,
) -> Result<FtSortStats, FtSortError>
where
    F: FnMut(usize, &mut [u64]),
{
    assert!(max_attempts > 0, "need at least one attempt");
    let digest = MultisetDigest::of(data);
    let original = data.clone();
    let mut stats = FtSortStats::default();
    for attempt in 0..max_attempts {
        if attempt > 0 {
            data.clone_from(&original);
            stats.corruption_masked = true;
        }
        sorter(attempt as usize, data);
        stats.sorts += 1;
        stats.checks += 1;
        if check_sort(digest, data) {
            return Ok(stats);
        }
    }
    // Leave the caller with the (restored) original rather than garbage.
    data.clone_from(&original);
    Err(FtSortError {
        attempts: max_attempts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_corpus::sort::{sort, SortAlgo};
    use mercurial_fault::CounterRng;

    fn random_input(n: usize, seed: u64) -> Vec<u64> {
        let rng = CounterRng::new(seed);
        (0..n as u64).map(|i| rng.at(i) % 100_000).collect()
    }

    /// A sorter that corrupts one element when running on core 0, and is
    /// honest on every other core.
    fn corrupting_sorter(bad_core: usize) -> impl FnMut(usize, &mut [u64]) {
        move |core, buf| {
            sort(SortAlgo::Quick, buf);
            if core == bad_core && !buf.is_empty() {
                let mid = buf.len() / 2;
                buf[mid] ^= 0x40; // silent corruption after sorting
            }
        }
    }

    #[test]
    fn clean_sort_costs_one_pass() {
        let mut data = random_input(1000, 1);
        let mut expect = data.clone();
        expect.sort_unstable();
        let stats = ft_sort(&mut data, |_c, buf| sort(SortAlgo::Merge, buf), 3).unwrap();
        assert_eq!(data, expect);
        assert_eq!(stats.sorts, 1);
        assert!(!stats.corruption_masked);
    }

    #[test]
    fn corruption_on_first_core_is_masked_by_retry() {
        let mut data = random_input(1000, 2);
        let mut expect = data.clone();
        expect.sort_unstable();
        let stats = ft_sort(&mut data, corrupting_sorter(0), 3).unwrap();
        assert_eq!(data, expect, "the retry produced the honest answer");
        assert_eq!(stats.sorts, 2);
        assert!(stats.corruption_masked);
    }

    #[test]
    fn persistent_corruption_reported_and_input_preserved() {
        let mut data = random_input(100, 3);
        let original = data.clone();
        // Every core corrupts.
        let err = ft_sort(
            &mut data,
            |_core, buf| {
                sort(SortAlgo::Heap, buf);
                buf[0] = buf[0].wrapping_add(1);
            },
            4,
        )
        .unwrap_err();
        assert_eq!(err.attempts, 4);
        assert_eq!(data, original, "no garbage escapes on failure");
    }

    #[test]
    fn detects_corruption_that_keeps_output_sorted() {
        // Corrupt by *dropping to a duplicate*: output remains sorted, so
        // only the permutation digest catches it.
        let mut data = vec![5u64, 3, 9, 1];
        let stats = ft_sort(
            &mut data,
            |core, buf| {
                sort(SortAlgo::Quick, buf);
                if core == 0 {
                    buf[2] = buf[1]; // 5 becomes 3: still sorted
                }
            },
            2,
        )
        .unwrap();
        assert_eq!(data, vec![1, 3, 5, 9]);
        assert!(stats.corruption_masked);
    }

    #[test]
    fn empty_and_single_element_inputs() {
        let mut empty: Vec<u64> = vec![];
        assert!(ft_sort(&mut empty, |_c, b| sort(SortAlgo::Quick, b), 1).is_ok());
        let mut one = vec![7u64];
        assert!(ft_sort(&mut one, |_c, b| sort(SortAlgo::Quick, b), 1).is_ok());
        assert_eq!(one, vec![7]);
    }
}
