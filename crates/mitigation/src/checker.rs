//! Blum–Kannan program checkers.
//!
//! §7: "Blum and Kannan [2] discussed some classes of algorithms for which
//! efficient checkers exist" — checkers that verify a *result* much more
//! cheaply than recomputing it, which is exactly the economics CEE
//! mitigation needs ("cost-effective, application-specific detection
//! methods, to decide whether to continue past a checkpoint or to retry").
//!
//! * [`MultisetDigest`] + [`check_sort`] — O(n) sortedness + permutation
//!   check for any sorting routine;
//! * [`check_division`] — O(1) verification of a quotient/remainder pair;
//! * [`check_gcd`] — O(log) verification of a claimed GCD;
//! * Freivalds' matrix-product check lives in
//!   [`mercurial_corpus::matmul::freivalds_check`] and is re-exported.

use mercurial_corpus::hash::fmix64;
pub use mercurial_corpus::matmul::freivalds_check;
use serde::{Deserialize, Serialize};

/// An order-insensitive digest of a multiset of `u64`s.
///
/// Combines count, wrapping sum, and a XOR of a strong per-element mix —
/// collisions require simultaneously matching all three, which no
/// plausible single corruption does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MultisetDigest {
    count: u64,
    sum: u64,
    mix: u64,
}

impl MultisetDigest {
    /// Digest of a slice.
    pub fn of(data: &[u64]) -> MultisetDigest {
        let mut d = MultisetDigest::default();
        for &v in data {
            d.add(v);
        }
        d
    }

    /// Adds one element.
    pub fn add(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.mix ^= fmix64(v.wrapping_add(0x9e37_79b9_7f4a_7c15));
    }
}

/// Checks a sort: `output` must be non-decreasing and a permutation of
/// the multiset digested in `input_digest`.
///
/// This is the Blum–Kannan sorting checker: O(n), no access to the
/// original input needed beyond its digest.
pub fn check_sort(input_digest: MultisetDigest, output: &[u64]) -> bool {
    if !output.windows(2).all(|w| w[0] <= w[1]) {
        return false;
    }
    MultisetDigest::of(output) == input_digest
}

/// Checks a division: `a == q*b + r && r < b` (for `b > 0`).
pub fn check_division(a: u64, b: u64, q: u64, r: u64) -> bool {
    if b == 0 {
        return false;
    }
    r < b && q.checked_mul(b).and_then(|qb| qb.checked_add(r)) == Some(a)
}

/// Checks a claimed GCD: `g` divides both, and the cofactors are coprime
/// (verified with a cheap Euclid run on the much smaller cofactors).
pub fn check_gcd(a: u64, b: u64, g: u64) -> bool {
    fn euclid(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if g == 0 {
        return a == 0 && b == 0;
    }
    if !a.is_multiple_of(g) || !b.is_multiple_of(g) {
        return false;
    }
    euclid(a / g, b / g) == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_corpus::sort::{sort, SortAlgo};
    use mercurial_fault::CounterRng;

    #[test]
    fn sort_checker_accepts_honest_sorts() {
        let rng = CounterRng::new(5);
        let input: Vec<u64> = (0..500).map(|i| rng.at(i) % 1000).collect();
        let digest = MultisetDigest::of(&input);
        for algo in SortAlgo::ALL {
            let mut v = input.clone();
            sort(algo, &mut v);
            assert!(check_sort(digest, &v), "{} rejected", algo.name());
        }
    }

    #[test]
    fn sort_checker_rejects_unsorted_output() {
        let input = vec![3u64, 1, 2];
        let digest = MultisetDigest::of(&input);
        assert!(!check_sort(digest, &[1, 3, 2]));
    }

    #[test]
    fn sort_checker_rejects_element_substitution() {
        // The subtle failure a sortedness-only check misses: output is
        // sorted but an element was corrupted.
        let input = vec![5u64, 9, 1, 7];
        let digest = MultisetDigest::of(&input);
        assert!(check_sort(digest, &[1, 5, 7, 9]));
        assert!(!check_sort(digest, &[1, 5, 7, 8])); // 9 became 8
        assert!(!check_sort(digest, &[1, 5, 7])); // element dropped
        assert!(!check_sort(digest, &[1, 5, 7, 9, 9])); // element duplicated
    }

    #[test]
    fn sort_checker_rejects_swap_preserving_sum() {
        // Corruptions that preserve count and sum still perturb the mix.
        let input = vec![10u64, 20];
        let digest = MultisetDigest::of(&input);
        assert!(!check_sort(digest, &[11, 19]));
    }

    #[test]
    fn division_checker() {
        assert!(check_division(17, 5, 3, 2));
        assert!(!check_division(17, 5, 3, 3)); // wrong remainder
        assert!(!check_division(17, 5, 2, 2)); // wrong quotient
        assert!(!check_division(17, 5, 3, 7)); // r >= b
        assert!(!check_division(17, 0, 0, 0)); // division by zero claim
                                               // Overflow attempts are rejected, not wrapped.
        assert!(!check_division(5, u64::MAX, u64::MAX, 0));
    }

    #[test]
    fn gcd_checker() {
        assert!(check_gcd(84, 126, 42));
        assert!(!check_gcd(84, 126, 21)); // divides both but not greatest
        assert!(!check_gcd(84, 126, 5)); // does not divide
        assert!(check_gcd(0, 0, 0));
        assert!(check_gcd(0, 7, 7));
        assert!(!check_gcd(0, 7, 0));
    }

    #[test]
    fn freivalds_reexport_works() {
        use mercurial_corpus::matmul::{matmul_naive, Matrix};
        let a = Matrix::random(6, 6, 1);
        let b = Matrix::random(6, 6, 2);
        let c = matmul_naive(&a, &b);
        assert!(freivalds_check(&a, &b, &c, 8, 3));
    }
}
