//! Redundant execution: DMR and TMR.
//!
//! §3 frames the costs: "Detecting CEEs … naively seems to imply a factor
//! of two of extra work. Automatic correction seems to possibly require
//! triple work (e.g. via triple modular redundancy)." §7 sketches the
//! recovery loop: "one could run a computation on two cores, and if they
//! disagree, restart on a different pair of cores", and warns that TMR
//! "relies on the voting mechanism itself being reliable".
//!
//! Computation sites are modeled as closures indexed by a core id; the
//! caller decides what a "core" is (a simulated core, a thread, a fault
//! closure in tests). [`CostMeter`] counts executions so the benches can
//! report the ≈2×/≈3× overheads directly.

use serde::{Deserialize, Serialize};

/// Counts redundant-execution work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostMeter {
    /// Individual executions performed.
    pub executions: u64,
    /// Comparison / voting operations performed.
    pub comparisons: u64,
    /// Retries after disagreement.
    pub retries: u64,
}

/// Failure of a redundant execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RedundancyError {
    /// Every available core pair disagreed.
    PairsExhausted {
        /// Pairs tried.
        pairs_tried: u32,
    },
    /// No majority existed among the three TMR executions.
    NoMajority,
}

impl std::fmt::Display for RedundancyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RedundancyError::PairsExhausted { pairs_tried } => {
                write!(f, "all {pairs_tried} core pairs disagreed")
            }
            RedundancyError::NoMajority => f.write_str("no two TMR executions agreed"),
        }
    }
}

impl std::error::Error for RedundancyError {}

/// Dual modular redundancy with retry-on-different-pair.
///
/// Runs `compute(core)` on cores `0, 1`; on agreement returns the value,
/// on disagreement moves to cores `2, 3`, and so on, up to `max_pairs`
/// pairs.
///
/// # Errors
///
/// Returns [`RedundancyError::PairsExhausted`] if every pair disagreed.
///
/// # Panics
///
/// Panics if `max_pairs == 0`.
pub fn dmr<T, F>(
    mut compute: F,
    max_pairs: u32,
    meter: &mut CostMeter,
) -> Result<T, RedundancyError>
where
    T: PartialEq,
    F: FnMut(usize) -> T,
{
    assert!(max_pairs > 0, "need at least one pair");
    for pair in 0..max_pairs {
        let a = compute(2 * pair as usize);
        let b = compute(2 * pair as usize + 1);
        meter.executions += 2;
        meter.comparisons += 1;
        if a == b {
            return Ok(a);
        }
        meter.retries += 1;
    }
    Err(RedundancyError::PairsExhausted {
        pairs_tried: max_pairs,
    })
}

/// The outcome of a TMR vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Voted<T> {
    /// The majority value.
    pub value: T,
    /// Whether the vote was unanimous (false means one execution was
    /// outvoted — a CEE was *corrected*).
    pub unanimous: bool,
}

/// Triple modular redundancy: three executions, majority vote.
///
/// # Errors
///
/// Returns [`RedundancyError::NoMajority`] when all three results differ
/// (two simultaneous corruptions, or one corruption of a non-deterministic
/// computation).
pub fn tmr<T, F>(mut compute: F, meter: &mut CostMeter) -> Result<Voted<T>, RedundancyError>
where
    T: PartialEq,
    F: FnMut(usize) -> T,
{
    let a = compute(0);
    let b = compute(1);
    let c = compute(2);
    meter.executions += 3;
    meter.comparisons += 3;
    if a == b {
        let unanimous = a == c;
        return Ok(Voted {
            value: a,
            unanimous,
        });
    }
    if a == c {
        return Ok(Voted {
            value: a,
            unanimous: false,
        });
    }
    if b == c {
        return Ok(Voted {
            value: b,
            unanimous: false,
        });
    }
    Err(RedundancyError::NoMajority)
}

/// TMR with an *unreliable voter*: the vote itself runs through a caller-
/// supplied function that may be corrupted (the §7 caveat). Returns the
/// voter's claim and, for scoring, the honest majority.
pub fn tmr_with_unreliable_voter<T, F, V>(
    mut compute: F,
    mut voter: V,
    meter: &mut CostMeter,
) -> (Option<T>, Option<T>)
where
    T: PartialEq + Clone,
    F: FnMut(usize) -> T,
    V: FnMut(&T, &T, &T) -> Option<T>,
{
    let a = compute(0);
    let b = compute(1);
    let c = compute(2);
    meter.executions += 3;
    meter.comparisons += 3;
    let honest = if a == b || a == c {
        Some(a.clone())
    } else if b == c {
        Some(b.clone())
    } else {
        None
    };
    (voter(&a, &b, &c), honest)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A compute fleet where the listed cores corrupt by adding 1000.
    fn faulty(bad_cores: &'static [usize]) -> impl FnMut(usize) -> u64 {
        move |core| {
            let correct = 42u64;
            if bad_cores.contains(&core) {
                correct + 1000
            } else {
                correct
            }
        }
    }

    #[test]
    fn dmr_agrees_on_healthy_pair() {
        let mut meter = CostMeter::default();
        let v = dmr(faulty(&[]), 3, &mut meter).unwrap();
        assert_eq!(v, 42);
        assert_eq!(meter.executions, 2);
        assert_eq!(meter.retries, 0);
    }

    #[test]
    fn dmr_retries_past_a_bad_core() {
        // Core 1 is mercurial: pair (0,1) disagrees, pair (2,3) agrees —
        // the paper's "restart on a different pair of cores".
        let mut meter = CostMeter::default();
        let v = dmr(faulty(&[1]), 3, &mut meter).unwrap();
        assert_eq!(v, 42);
        assert_eq!(meter.executions, 4);
        assert_eq!(meter.retries, 1);
    }

    #[test]
    fn dmr_exhausts_when_everything_disagrees() {
        // One core of every pair is bad.
        let err = dmr(faulty(&[1, 3, 5]), 3, &mut CostMeter::default()).unwrap_err();
        assert_eq!(err, RedundancyError::PairsExhausted { pairs_tried: 3 });
    }

    #[test]
    fn dmr_cannot_detect_identical_corruption_on_both_cores() {
        // The known limit of comparison-based detection: two cores with
        // the same deterministic lesion agree on the wrong answer.
        let mut meter = CostMeter::default();
        let v = dmr(faulty(&[0, 1]), 1, &mut meter).unwrap();
        assert_eq!(v, 1042, "DMR happily returns the agreed-upon wrong answer");
    }

    #[test]
    fn tmr_outvotes_one_bad_core() {
        let mut meter = CostMeter::default();
        let voted = tmr(faulty(&[2]), &mut meter).unwrap();
        assert_eq!(voted.value, 42);
        assert!(!voted.unanimous, "the corruption was corrected, not absent");
        assert_eq!(meter.executions, 3);
    }

    #[test]
    fn tmr_unanimous_on_healthy_cores() {
        let voted = tmr(faulty(&[]), &mut CostMeter::default()).unwrap();
        assert!(voted.unanimous);
    }

    #[test]
    fn tmr_no_majority_with_distinct_corruptions() {
        let mut call = 0u64;
        let compute = |_core: usize| {
            call += 1;
            call * 7777 // every execution differs
        };
        let err = tmr(compute, &mut CostMeter::default()).unwrap_err();
        assert_eq!(err, RedundancyError::NoMajority);
    }

    #[test]
    fn unreliable_voter_can_betray_the_majority() {
        // The §7 caveat: three correct executions, but the voter itself is
        // corrupted and reports the wrong value.
        let mut meter = CostMeter::default();
        let (claimed, honest) = tmr_with_unreliable_voter(
            faulty(&[]),
            |_a, _b, _c| Some(31337u64), // a corrupted voter
            &mut meter,
        );
        assert_eq!(honest, Some(42));
        assert_eq!(claimed, Some(31337));
        assert_ne!(claimed, honest, "reliability of the vote matters");
    }

    #[test]
    fn costs_scale_as_the_paper_says() {
        // §3: detection ≈ 2× work, correction ≈ 3×.
        let mut d = CostMeter::default();
        let mut t = CostMeter::default();
        dmr(faulty(&[]), 1, &mut d).unwrap();
        tmr(faulty(&[]), &mut t).unwrap();
        assert_eq!(d.executions, 2);
        assert_eq!(t.executions, 3);
    }
}
