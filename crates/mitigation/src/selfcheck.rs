//! Self-checking library functions.
//!
//! §7: "we have developed a few libraries with self-checking
//! implementations of critical functions, such as encryption and
//! compression, where one CEE could have a large blast radius."
//!
//! The §2 self-inverting-AES case study dictates the design: a roundtrip
//! check (encrypt → decrypt → compare) executed on the *same* core passes
//! even though the ciphertext is garbage, because the defect cancels
//! itself. The hardened wrapper therefore supports a **second opinion**:
//! re-running the forward operation through an independent path (another
//! core, another implementation) and comparing outputs.

use mercurial_corpus::aes::{Aes, KeySize};
use mercurial_corpus::crc::crc32;
use mercurial_corpus::lz;

/// A self-check failed: the computation is not trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelfCheckError {
    /// The inverse operation did not recover the input.
    RoundtripMismatch,
    /// Two independent forward computations disagreed.
    CrossCheckMismatch,
    /// A checksum over the output did not verify.
    ChecksumMismatch {
        /// Expected CRC.
        expected: u32,
        /// Observed CRC.
        got: u32,
    },
}

impl std::fmt::Display for SelfCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelfCheckError::RoundtripMismatch => f.write_str("roundtrip self-check failed"),
            SelfCheckError::CrossCheckMismatch => f.write_str("independent computations disagreed"),
            SelfCheckError::ChecksumMismatch { expected, got } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {got:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for SelfCheckError {}

/// Encrypts one block with a roundtrip self-check: decrypt the ciphertext
/// (through `decrypt`, which may be the same or a different execution
/// path) and compare with the plaintext.
///
/// **Caveat from §2**: if `encrypt` and `decrypt` run on the same
/// defective core with a self-inverting lesion, this check passes while
/// the ciphertext is wrong. Use [`cross_checked_encrypt`] when that risk
/// matters.
///
/// # Errors
///
/// Returns [`SelfCheckError::RoundtripMismatch`] when decryption does not
/// recover the plaintext.
pub fn roundtrip_checked_encrypt<E, D>(
    block: [u8; 16],
    mut encrypt: E,
    mut decrypt: D,
) -> Result<[u8; 16], SelfCheckError>
where
    E: FnMut([u8; 16]) -> [u8; 16],
    D: FnMut([u8; 16]) -> [u8; 16],
{
    let ct = encrypt(block);
    if decrypt(ct) != block {
        return Err(SelfCheckError::RoundtripMismatch);
    }
    Ok(ct)
}

/// Encrypts one block with a second opinion: the forward operation runs
/// through two independent paths and the ciphertexts must agree.
///
/// This is the check that *does* catch the self-inverting AES defect: the
/// defective path's ciphertext differs from the independent path's.
///
/// # Errors
///
/// Returns [`SelfCheckError::CrossCheckMismatch`] on disagreement.
pub fn cross_checked_encrypt<E1, E2>(
    block: [u8; 16],
    mut primary: E1,
    mut second_opinion: E2,
) -> Result<[u8; 16], SelfCheckError>
where
    E1: FnMut([u8; 16]) -> [u8; 16],
    E2: FnMut([u8; 16]) -> [u8; 16],
{
    let a = primary(block);
    let b = second_opinion(block);
    if a != b {
        return Err(SelfCheckError::CrossCheckMismatch);
    }
    Ok(a)
}

/// A convenience second opinion: the corpus software AES (independent of
/// whatever accelerated path the caller uses).
pub fn software_aes_second_opinion(key: [u8; 16]) -> impl FnMut([u8; 16]) -> [u8; 16] {
    let aes = Aes::new(KeySize::Aes128, &key).expect("16-byte key");
    move |block| aes.encrypt_block(block)
}

/// Compresses with a decompress-and-compare self-check, returning the
/// compressed bytes and their CRC-32 (to be stored alongside, §6-style).
///
/// # Errors
///
/// Returns [`SelfCheckError::RoundtripMismatch`] if decompression does not
/// reproduce the input.
pub fn checked_compress(data: &[u8]) -> Result<(Vec<u8>, u32), SelfCheckError> {
    let compressed = lz::compress(data);
    match lz::decompress(&compressed) {
        Ok(out) if out == data => {
            let crc = crc32(&compressed);
            Ok((compressed, crc))
        }
        _ => Err(SelfCheckError::RoundtripMismatch),
    }
}

/// Copies through a caller-provided copy path and verifies the destination
/// CRC against the source CRC.
///
/// # Errors
///
/// Returns [`SelfCheckError::ChecksumMismatch`] when the copy corrupted
/// data.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn checked_copy<F>(dst: &mut [u8], src: &[u8], mut copy_path: F) -> Result<u32, SelfCheckError>
where
    F: FnMut(&mut [u8], &[u8]),
{
    assert_eq!(dst.len(), src.len(), "length mismatch");
    let expected = crc32(src);
    copy_path(dst, src);
    let got = crc32(dst);
    if got != expected {
        return Err(SelfCheckError::ChecksumMismatch { expected, got });
    }
    Ok(got)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_simcpu::crypto as simaes;

    const KEY: [u8; 16] = *b"mitigation-key-0";
    const BLOCK: [u8; 16] = *b"a block of data!";

    #[test]
    fn roundtrip_check_passes_on_healthy_path() {
        let aes = Aes::new(KeySize::Aes128, &KEY).unwrap();
        let ct =
            roundtrip_checked_encrypt(BLOCK, |b| aes.encrypt_block(b), |c| aes.decrypt_block(c))
                .unwrap();
        assert_eq!(aes.decrypt_block(ct), BLOCK);
    }

    #[test]
    fn roundtrip_check_catches_non_self_inverting_corruption() {
        let aes = Aes::new(KeySize::Aes128, &KEY).unwrap();
        // A defective encrypt path whose corruption is NOT mirrored in
        // decryption: roundtrip catches it.
        let err = roundtrip_checked_encrypt(
            BLOCK,
            |b| {
                let mut ct = aes.encrypt_block(b);
                ct[3] ^= 0x20;
                ct
            },
            |c| aes.decrypt_block(c),
        )
        .unwrap_err();
        assert_eq!(err, SelfCheckError::RoundtripMismatch);
    }

    #[test]
    fn roundtrip_check_is_fooled_by_self_inverting_defect() {
        // The §2 case study. Model the defective core: both directions
        // XOR the same mask into the AES state at the same round — here
        // applied at the boundary for clarity.
        let mask = 0x0000_0400_0000_0000_0000_0000_0002_0000u128;
        let enc = |b: [u8; 16]| {
            let honest = simaes::aes128_encrypt_block(KEY, b);
            (u128::from_le_bytes(honest) ^ mask).to_le_bytes()
        };
        let dec = |c: [u8; 16]| {
            let unmasked = (u128::from_le_bytes(c) ^ mask).to_le_bytes();
            simaes::aes128_decrypt_block(KEY, unmasked)
        };
        // The roundtrip passes — and returns corrupt ciphertext!
        let ct = roundtrip_checked_encrypt(BLOCK, enc, dec).expect("fooled");
        assert_ne!(ct, simaes::aes128_encrypt_block(KEY, BLOCK));
    }

    #[test]
    fn cross_check_catches_the_self_inverting_defect() {
        let mask = 0x0000_0400_0000_0000_0000_0000_0002_0000u128;
        let defective = |b: [u8; 16]| {
            let honest = simaes::aes128_encrypt_block(KEY, b);
            (u128::from_le_bytes(honest) ^ mask).to_le_bytes()
        };
        let err =
            cross_checked_encrypt(BLOCK, defective, software_aes_second_opinion(KEY)).unwrap_err();
        assert_eq!(err, SelfCheckError::CrossCheckMismatch);
    }

    #[test]
    fn cross_check_passes_when_paths_agree() {
        let ct = cross_checked_encrypt(
            BLOCK,
            |b| simaes::aes128_encrypt_block(KEY, b),
            software_aes_second_opinion(KEY),
        )
        .unwrap();
        assert_eq!(ct, simaes::aes128_encrypt_block(KEY, BLOCK));
    }

    #[test]
    fn checked_compress_roundtrips() {
        let data = b"compress me compress me compress me".repeat(10);
        let (compressed, crc) = checked_compress(&data).unwrap();
        assert_eq!(crc, crc32(&compressed));
        assert_eq!(lz::decompress(&compressed).unwrap(), data);
    }

    #[test]
    fn checked_copy_detects_stuck_bit_path() {
        let src: Vec<u8> = (0..64).collect();
        let mut dst = vec![0u8; 64];
        // Honest path passes.
        assert!(checked_copy(&mut dst, &src, |d, s| d.copy_from_slice(s)).is_ok());
        // A stuck-bit copy path (§2's string bit-flips) is caught.
        let err = checked_copy(&mut dst, &src, |d, s| {
            for (dd, &ss) in d.iter_mut().zip(s) {
                *dd = ss | 0x10;
            }
        })
        .unwrap_err();
        assert!(matches!(err, SelfCheckError::ChecksumMismatch { .. }));
    }
}
