//! # mercurial-bench
//!
//! Experiment binaries and Criterion benches regenerating the paper's
//! figure and quantitative claims. One binary per experiment in
//! EXPERIMENTS.md (`cargo run --release -p mercurial-bench --bin <id>`),
//! one Criterion bench per overhead claim (`cargo bench -p
//! mercurial-bench`).
#![warn(missing_docs)]

/// Chooses experiment scale from the `MERCURIAL_SCALE` environment
/// variable: `paper` (20,000 machines, 36 months — minutes of runtime) or
/// anything else / unset for the laptop-friendly demo scale.
pub fn scenario_from_env(seed: u64) -> mercurial::Scenario {
    match std::env::var("MERCURIAL_SCALE").as_deref() {
        Ok("paper") => {
            let mut s = mercurial::Scenario::default_paper();
            s.fleet.seed = seed;
            s
        }
        _ => mercurial::Scenario::demo(seed),
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

/// Writes one `BENCH_*.json` under the shared [`BenchMeta`] envelope.
///
/// `body` is the experiment's own `"key": value` lines (no outer
/// braces) — the envelope contributes schema, experiment id, git
/// commit, host fingerprint, timestamp, reps, and the bench's own
/// wall-clock phase breakdown from `prof`, so all baselines stay
/// machine-comparable under one schema.
///
/// [`BenchMeta`]: mercurial_prof::BenchMeta
pub fn write_bench_json(
    path: &str,
    experiment: &str,
    reps: u64,
    profile: &mercurial_prof::SelfProfile,
    body: &str,
) {
    let meta = mercurial_prof::BenchMeta::capture(experiment, reps, profile);
    std::fs::write(path, meta.envelope(body))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_demo_scale() {
        let s = scenario_from_env(1);
        assert!(s.fleet.machines <= 2_000);
    }
}
