//! # mercurial-bench
//!
//! Experiment binaries and Criterion benches regenerating the paper's
//! figure and quantitative claims. One binary per experiment in
//! EXPERIMENTS.md (`cargo run --release -p mercurial-bench --bin <id>`),
//! one Criterion bench per overhead claim (`cargo bench -p
//! mercurial-bench`).
#![warn(missing_docs)]

/// Chooses experiment scale from the `MERCURIAL_SCALE` environment
/// variable: `paper` (20,000 machines, 36 months — minutes of runtime) or
/// anything else / unset for the laptop-friendly demo scale.
pub fn scenario_from_env(seed: u64) -> mercurial::Scenario {
    match std::env::var("MERCURIAL_SCALE").as_deref() {
        Ok("paper") => {
            let mut s = mercurial::Scenario::default_paper();
            s.fleet.seed = seed;
            s
        }
        _ => mercurial::Scenario::demo(seed),
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_default_is_demo_scale() {
        let s = scenario_from_env(1);
        assert!(s.fleet.machines <= 2_000);
    }
}
