//! E7 — §3/§7: the cost of tolerance.
//!
//! "Detecting CEEs … naively seems to imply a factor of two of extra work.
//! Automatic correction seems to possibly require triple work (e.g. via
//! triple modular redundancy)." And §3's amortization argument: storage
//! and networking tolerate low-level errors cheaply because they checksum
//! *large chunks*, which "seems harder to do at a per-instruction scale".
//!
//! This binary reports measured wall-clock ratios (the Criterion benches
//! report the same quantities with rigorous statistics).
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e7_overheads
//! ```

use mercurial_corpus::aes::{Aes, KeySize};
use mercurial_corpus::lz;
use mercurial_mitigation::{checked_compress, dmr, tmr, CostMeter};
use std::time::Instant;

fn time<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    mercurial_bench::header("E7 — mitigation overheads: ≈2x detect, ≈3x correct, amortization");

    // The guarded computation: a healthy compute-heavy kernel.
    let work = |_core: usize| -> u64 {
        let mut acc = 0xabcdefu64;
        for i in 0..40_000u64 {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
            acc ^= acc >> 29;
        }
        acc
    };

    let iters = 200;
    let t_raw = time(iters, || {
        std::hint::black_box(work(0));
    });
    let t_dmr = time(iters, || {
        let mut m = CostMeter::default();
        std::hint::black_box(dmr(work, 1, &mut m).unwrap());
    });
    let t_tmr = time(iters, || {
        let mut m = CostMeter::default();
        std::hint::black_box(tmr(work, &mut m).unwrap());
    });
    println!("redundant execution (40k-op integer kernel):");
    println!("  raw: {:>9.1} µs   1.00x", t_raw * 1e6);
    println!(
        "  DMR: {:>9.1} µs   {:.2}x   (paper: 'a factor of two of extra work')",
        t_dmr * 1e6,
        t_dmr / t_raw
    );
    println!(
        "  TMR: {:>9.1} µs   {:.2}x   (paper: 'triple work … via TMR')",
        t_tmr * 1e6,
        t_tmr / t_raw
    );

    // Self-checking libraries.
    let key = [7u8; 16];
    let aes = Aes::new(KeySize::Aes128, &key).unwrap();
    let block = *b"0123456789abcdef";
    let t_enc = time(2000, || {
        std::hint::black_box(aes.encrypt_block(block));
    });
    let t_enc_rt = time(2000, || {
        let ct = aes.encrypt_block(block);
        std::hint::black_box(aes.decrypt_block(ct));
    });
    println!("\nself-checking AES (one block):");
    println!("  encrypt:                {:>9.2} µs   1.00x", t_enc * 1e6);
    println!(
        "  encrypt+decrypt-verify: {:>9.2} µs   {:.2}x",
        t_enc_rt * 1e6,
        t_enc_rt / t_enc
    );

    let data: Vec<u8> = (0..64 * 1024u32).map(|i| (i % 251) as u8).collect();
    let t_comp = time(50, || {
        std::hint::black_box(lz::compress(&data));
    });
    let t_comp_checked = time(50, || {
        std::hint::black_box(checked_compress(&data).unwrap());
    });
    println!("\nself-checking compression (64 KiB):");
    println!("  compress:            {:>9.1} µs   1.00x", t_comp * 1e6);
    println!(
        "  compress+verify+crc: {:>9.1} µs   {:.2}x",
        t_comp_checked * 1e6,
        t_comp_checked / t_comp
    );

    // §3 amortization: a *protocol* check costs a fixed part per chunk
    // (header digest, metadata update, comparison, bookkeeping) plus a
    // marginal part per byte (the CRC itself). Larger chunks spread the
    // fixed part — that is the storage/network advantage the paper
    // contrasts with per-instruction checking, which has no chunk to grow.
    println!("\nend-to-end check protocol cost per KiB of payload");
    println!("(fixed per-chunk header digest + per-byte CRC-32C, slicing-by-8):");
    println!("  chunk-size   ns/KiB   relative");
    let mut header = [0x5au8; 64];
    let sip = mercurial_corpus::hash::SipHash24::new(0x1234, 0x5678);
    let table = mercurial_corpus::crc::CrcTable::new(mercurial_corpus::crc::POLY_CRC32C);
    let mut baseline = 0.0;
    for &chunk in &[64usize, 512, 4096, 65536] {
        let mut buf: Vec<u8> = (0..chunk as u32).map(|i| i as u8).collect();
        let chunks_per_mib = (1 << 20) / chunk;
        let t = time(20, || {
            let mut acc = 0u64;
            for i in 0..chunks_per_mib {
                // Touch the inputs each iteration so the pure functions
                // cannot be hoisted out of the timing loop.
                buf[0] = i as u8;
                header[0] = i as u8;
                // Fixed per-chunk work: digest the header/metadata record
                // and fold in the stored checksum comparison.
                let tag = sip.hash(&header);
                let crc = table.crc_slice8(&buf);
                acc ^= tag ^ crc as u64;
            }
            std::hint::black_box(acc);
        });
        let ns_per_kib = t * 1e9 / 1024.0;
        if baseline == 0.0 {
            baseline = ns_per_kib;
        }
        println!(
            "  {:>9}   {:>6.0}   {:.2}x",
            chunk,
            ns_per_kib,
            ns_per_kib / baseline
        );
    }
    println!("\npaper §3: 'storage and networking … typically operate on relatively large");
    println!("chunks of data … this allows corruption-checking costs to be amortized, which");
    println!("seems harder to do at a per-instruction scale' — the fixed per-chunk cost");
    println!("washes out as chunks grow, while DMR/TMR (the per-instruction analogue)");
    println!("stay pinned at 2x/3x no matter the granularity.");
}
