//! E3 — §2's symptom taxonomy, "in increasing order of risk".
//!
//! Tallies every simulated corruption into the four classes and shows the
//! defining property of the CEE problem: the riskiest class — wrong
//! answers that are *never* detected — is a substantial share.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e3_symptoms
//! ```

use mercurial::pipeline::PipelineRun;
use mercurial::report;
use mercurial_fault::SymptomClass;

fn main() {
    mercurial_bench::header("E3 — corruption outcomes by §2 risk class");
    let scenario = mercurial_bench::scenario_from_env(0xe3);
    let outcome = PipelineRun::execute(&scenario);
    println!("{}", report::symptom_table(&outcome));
    let never = outcome
        .sim_summary
        .symptom_count(SymptomClass::WrongNeverDetected);
    let total: u64 = outcome.sim_summary.symptom_counts.iter().sum();
    println!(
        "silent (never detected) share: {:.1}% of {} corruptions",
        100.0 * never as f64 / total.max(1) as f64,
        total
    );
    println!(
        "retryable (immediately detected + machine check) share: {:.1}%",
        {
            let retryable = outcome
                .sim_summary
                .symptom_count(SymptomClass::WrongDetectedImmediately)
                + outcome
                    .sim_summary
                    .symptom_count(SymptomClass::MachineCheck);
            100.0 * retryable as f64 / total.max(1) as f64
        }
    );
    println!("\npaper: all four classes occur; the silent class is why 'we can no longer");
    println!("ignore the CEE problem' — application checks only cover what they cover.");
}
