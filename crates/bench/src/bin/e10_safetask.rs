//! E10 — §6.1: safe-task placement on quarantined cores — recovered
//! capacity and residual risk.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e10_safetask
//! ```

use mercurial_fault::{library, FunctionalUnit as U};
use mercurial_isolation::safetask::PlacementAudit;
use mercurial_isolation::{PlacementDecision, SafeTaskPolicy, TaskUnitProfile};

fn mixes() -> Vec<(&'static str, Vec<(TaskUnitProfile, f64)>)> {
    let scalar = TaskUnitProfile::new(
        "scalar-batch",
        vec![U::ScalarAlu, U::LoadStore, U::BranchUnit, U::AddressGen],
        false,
    );
    let gemm = TaskUnitProfile::new(
        "gemm",
        vec![U::Fma, U::VectorPipe, U::LoadStore, U::AddressGen],
        false,
    );
    let tls = TaskUnitProfile::new(
        "tls",
        vec![U::CryptoUnit, U::ScalarAlu, U::LoadStore, U::AddressGen],
        false,
    );
    let db = TaskUnitProfile::new(
        "db",
        vec![
            U::ScalarAlu,
            U::Atomics,
            U::LoadStore,
            U::BranchUnit,
            U::AddressGen,
        ],
        false,
    );
    let shipper = TaskUnitProfile::new(
        "log-shipper(hidden memcpy)",
        vec![U::ScalarAlu, U::LoadStore, U::AddressGen],
        true,
    );
    vec![
        (
            "balanced",
            vec![
                (scalar.clone(), 0.35),
                (gemm.clone(), 0.25),
                (tls.clone(), 0.15),
                (db.clone(), 0.15),
                (shipper.clone(), 0.10),
            ],
        ),
        ("compute-heavy", vec![(gemm, 0.7), (scalar.clone(), 0.3)]),
        ("scalar-heavy", vec![(scalar, 0.8), (shipper, 0.2)]),
    ]
}

fn main() {
    mercurial_bench::header("E10 — unit-aware placement: capacity recovered vs residual risk");
    // A quarantined-core population sampled from the archetype library.
    let defective_sets: Vec<Vec<U>> = (0..300)
        .map(|i| library::sample_profile(0xe10, i).afflicted_units())
        .collect();
    let policy = SafeTaskPolicy;

    println!("quarantined cores: 300 (archetype-sampled); task mixes vs recovery:\n");
    println!(
        "{:<16} {:>18} {:>22} {:>18}",
        "task-mix", "capacity-recovered", "placements-audited", "hidden-conflicts"
    );
    for (name, mix) in mixes() {
        let recovered = policy.capacity_recovered(&mix, &defective_sets);
        let mut placements = 0u32;
        let mut hidden = 0u32;
        for defective in &defective_sets {
            for (task, _) in &mix {
                if let PlacementDecision::Place { .. } = policy.evaluate(task, defective) {
                    placements += 1;
                    if policy.audit(task, defective) != PlacementAudit::ActuallySafe {
                        hidden += 1;
                    }
                }
            }
        }
        println!(
            "{:<16} {:>17.1}% {:>22} {:>13} ({:.1}%)",
            name,
            100.0 * recovered,
            placements,
            hidden,
            100.0 * hidden as f64 / placements.max(1) as f64,
        );
    }
    println!("\npaper §6.1: placement by declared unit profile recovers most of the");
    println!("stranded capacity — but 'it is not clear … if we can reliably identify");
    println!("safe tasks': every hidden-conflict placement is a task whose bulk copies");
    println!("secretly exercise the defective vector pipe (§5's non-obvious mapping).");
}
