//! E5 — §6: "roughly half of these human-identified suspects are actually
//! proven, on deeper investigation, to be mercurial cores … The other half
//! is a mix of false accusations and limited reproducibility."
//!
//! "Human-identified" is the operative phrase: these suspects come from
//! incident triage and debugging — i.e., from the **user-report stream**,
//! which mixes genuine CEE escalations with mistaken accusations (a crash
//! was probably software, but the human on call names a core anyway). We
//! therefore take every core named by a user report (not already caught by
//! automated screening) and put it through deep investigation.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e5_triage
//! ```

use mercurial::pipeline::PipelineRun;
use mercurial_fault::CoreUid;
use mercurial_fleet::SignalKind;
use mercurial_screening::HumanTriage;
use std::collections::HashMap;

fn main() {
    mercurial_bench::header("E5 — human triage: the ≈50% confirmation rate");
    println!("suspects = cores named by user reports (incident triage), minus the ones");
    println!("automated screening already caught.\n");
    println!("seed  suspects  confirmed  rate   false-accusations  limited-repro");
    let mut total_confirmed = 0u64;
    let mut total_suspects = 0u64;
    for seed in 0..6u64 {
        let scenario = mercurial_bench::scenario_from_env(0xe5_00 + seed);
        let experiment = mercurial::FleetExperiment::build(&scenario);
        let outcome = PipelineRun::execute_on(&scenario, &experiment);

        // Human-identified suspects: first user report per core, unless a
        // screener had already caught the core before the report was filed
        // (a human does not file a ticket about a quarantined core).
        let screener_caught_at: HashMap<CoreUid, f64> = outcome
            .detections
            .iter()
            .filter(|d| d.method != mercurial_screening::DetectionMethod::Triage)
            .map(|d| (d.core, d.hour))
            .collect();
        let mut named: HashMap<CoreUid, f64> = HashMap::new();
        for s in outcome.signals.of_kind(SignalKind::UserReport) {
            let pre_detection = screener_caught_at.get(&s.core).is_none_or(|&h| s.hour < h);
            if pre_detection {
                named
                    .entry(s.core)
                    .and_modify(|h| *h = h.min(s.hour))
                    .or_insert(s.hour);
            }
        }
        let mut suspects: Vec<(CoreUid, f64)> = named.into_iter().collect();
        suspects.sort_by_key(|a| a.0);

        let triage = HumanTriage::default();
        let (_, stats) =
            triage.investigate_all(experiment.topology(), experiment.population(), &suspects);
        if stats.investigated == 0 {
            println!("{seed:>4}  (no user reports at this seed)");
            continue;
        }
        let false_acc = stats.not_reproduced - stats.missed_true;
        println!(
            "{:>4}  {:>8}  {:>9}  {:>4.0}%  {:>17}  {:>13}",
            seed,
            stats.investigated,
            stats.confirmed,
            100.0 * stats.confirmation_rate(),
            false_acc,
            stats.missed_true,
        );
        total_confirmed += stats.confirmed;
        total_suspects += stats.investigated;
    }
    if total_suspects > 0 {
        println!(
            "\npooled confirmation rate: {}/{} = {:.0}%",
            total_confirmed,
            total_suspects,
            100.0 * total_confirmed as f64 / total_suspects as f64
        );
        println!("paper: 'roughly half … the other half is a mix of false accusations and");
        println!("limited reproducibility' — both failure modes appear in the columns above.");
    }
}
