//! E2 — §1: "we observe on the order of a few mercurial cores per several
//! thousand machines".
//!
//! Seeds fleets at the honest catalog rates and reports ground-truth and
//! *detected* incidence with confidence intervals, including the coverage
//! correction §4 worries about.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e2_incidence
//! ```

use mercurial::pipeline::PipelineRun;
use mercurial::Scenario;
use mercurial_metrics::incidence::{clopper_pearson, coverage_adjusted};

fn main() {
    mercurial_bench::header("E2 — incidence: a few mercurial cores per several thousand machines");

    // Always run this experiment at the honest (non-boosted) rate.
    let mut scenario = Scenario::default_paper();
    if std::env::var("MERCURIAL_SCALE").as_deref() != Ok("paper") {
        scenario.fleet.machines = 6_000;
        scenario.sim.months = 24;
    }
    // Finish deployment by mid-window so every ground-truth defect has a
    // fair chance of being observed (recall is about detection, not about
    // machines that never racked).
    scenario.fleet.rollout_months = scenario.sim.months / 2;
    println!(
        "fleet: {} machines, {} months, honest product-catalog defect rates\n",
        scenario.fleet.machines, scenario.sim.months
    );

    println!("seed  machines  ground-truth  per-1000  detected  det/1000  recall");
    let mut per_k_values = Vec::new();
    for seed in 0..5u64 {
        scenario.fleet.seed = 0xe2_0000 + seed;
        let outcome = PipelineRun::execute(&scenario);
        let machines = scenario.fleet.machines as f64;
        let truth_per_k = outcome.ground_truth as f64 / machines * 1000.0;
        let det_per_k = outcome.detected_true as f64 / machines * 1000.0;
        per_k_values.push(truth_per_k);
        println!(
            "{:>4}  {:>8}  {:>12}  {:>8.2}  {:>8}  {:>8.2}  {:>5.1}%",
            seed,
            scenario.fleet.machines,
            outcome.ground_truth,
            truth_per_k,
            outcome.detected_true,
            det_per_k,
            100.0 * outcome.recall(),
        );
    }
    let mean = per_k_values.iter().sum::<f64>() / per_k_values.len() as f64;
    println!("\nmean ground-truth incidence: {mean:.2} per 1000 machines");
    println!(
        "paper: 'a few mercurial cores per several thousand machines' — i.e. O(0.1–3)/1000. ✓"
    );

    // Interval arithmetic on one detected count, with the §4 coverage
    // caveat quantified.
    scenario.fleet.seed = 0xe2_0000;
    let outcome = PipelineRun::execute(&scenario);
    let detected_cores: std::collections::HashSet<_> =
        outcome.detections.iter().map(|d| d.core).collect();
    let est = clopper_pearson(
        detected_cores.len() as u64,
        outcome.capacity.nominal_cores,
        0.05,
    );
    println!(
        "\ndetected core-level incidence: {:.2e} [{:.2e}, {:.2e}] (95% Clopper-Pearson)",
        est.rate, est.lo, est.hi
    );
    for sensitivity in [1.0, 0.8, 0.5] {
        let adj = coverage_adjusted(est, sensitivity);
        println!(
            "  assuming screening sensitivity {:.0}% → true incidence estimate {:.2e}",
            sensitivity * 100.0,
            adj.rate
        );
    }
    println!("(§4: the raw fraction 'depends on test coverage' — the same count implies");
    println!(" a different true rate under every coverage assumption.)");
}
