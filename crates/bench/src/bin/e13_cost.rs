//! E13 — §4: the cost of measurement.
//!
//! "Quantifying their values in practice is also difficult and expensive,
//! because it requires running tests on many machines, potentially for a
//! long time, before one can get high-confidence results — we don't even
//! know yet how many or how long." And: "Can we develop … a model for
//! trading off the inaccuracies in our measurements of these rates against
//! the costs of measurement?"
//!
//! This binary is that model, evaluated: test budget vs. detectable-rate
//! floor, budget needed per defect-rate decade, and what each screening
//! policy in this repository can and cannot see.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e13_cost
//! ```

use mercurial_metrics::cost::{detection_probability, ops_for_confidence, sensitivity_floor};
use mercurial_screening::{EraSchedule, HumanTriage};

fn main() {
    mercurial_bench::header("E13 — measurement cost: budget vs sensitivity (§4)");

    println!("test operations needed to catch a defect with 95% confidence:");
    println!("  defect rate   ops needed");
    for exp in [3, 4, 5, 6, 7, 8, 9] {
        let rate = 10f64.powi(-exp);
        println!(
            "  1e-{exp:<10} {:>12.2e}",
            ops_for_confidence(rate, 0.95) as f64
        );
    }
    println!("  (each decade of rarity costs a decade of testing — linear in 1/rate)\n");

    println!("sensitivity floor (weakest defect seen with 95% confidence) per budget:");
    println!("  budget (ops)   floor (rate)");
    for exp in [4, 5, 6, 7, 8, 9] {
        let ops = 10u64.pow(exp);
        println!("  1e{exp:<11}  {:>12.2e}", sensitivity_floor(ops, 0.95));
    }

    println!("\nwhat the shipped screening policies can see (per single screen):");
    let schedule = EraSchedule::default_history();
    for month in [0u32, 12, 30] {
        let era = schedule.era_at(month);
        let total_ops = era.ops_per_unit * era.units.len() as u64;
        println!(
            "  offline era @month {:>2}: {:>9} ops/screen → floor {:.1e}",
            month,
            total_ops,
            sensitivity_floor(total_ops, 0.95)
        );
    }
    let triage = HumanTriage::default();
    println!(
        "  human deep triage:    {:>9.1e} ops     → floor {:.1e}",
        triage.deep_ops_per_unit as f64 * 9.0 * 3.0 * triage.sessions as f64,
        triage.sensitivity_floor()
    );

    println!("\nresidual risk: detection probability of a 1e-8 defect under each budget:");
    for (name, ops) in [
        ("one online screen", 45_000u64),
        ("one offline screen", 9_000_000),
        ("a month of online screens", 45_000 * 300),
        ("deep triage", 135_000_000),
    ] {
        println!(
            "  {:<26} {:>6.2}%",
            name,
            100.0 * detection_probability(1e-8, ops)
        );
    }
    println!("\n§4's conclusion, quantified: the question 'what is the right target rate?'");
    println!("is inseparable from 'what test budget will you pay?' — defects below the");
    println!("fleet's sensitivity floor are simply part of the background failure rate.");
}
