//! E12 — the §2 case studies, executed on the instruction-level simulator
//! and screened by the corpus.
//!
//! Each row is one of the paper's concrete CEE examples; the table shows
//! which corpus kernels indict it (and the self-inverting AES row shows
//! the roundtrip lanes verifying while the ciphertext lanes fail).
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e12_cases
//! ```

use mercurial_fault::{library, CoreFaultProfile, Injector};
use mercurial_screening::chipscreen::ChipScreen;
use mercurial_simcpu::{CoreConfig, SimCore};

fn main() {
    mercurial_bench::header("E12 — §2 case studies on the simulated CPU");
    let cases: Vec<(&str, CoreFaultProfile)> = vec![
        (
            "self-inverting AES (deterministic)",
            library::self_inverting_aes(),
        ),
        (
            "string bit-flips at fixed position",
            library::string_bitflip(11, 0.3),
        ),
        ("lock-semantics violation", library::lock_violator(0.3)),
        (
            "copy+vector shared hardware (§5)",
            library::vector_copy_coupled(0.3),
        ),
        ("frequency-sensitive FMA", library::freq_sensitive_fma(0.9)),
        (
            "low-frequency-worse ALU (§5)",
            library::low_freq_worse_alu(0.9),
        ),
        ("load/store corruption", library::loadstore_corruptor(0.3)),
        (
            "address-gen crasher (kernel state)",
            library::addressgen_crasher(0.5),
        ),
        (
            "data-pattern-gated vector defect",
            library::data_pattern_vector(0.5),
        ),
        (
            "late-onset multiplier (age 0: latent)",
            library::late_onset_muldiv(5000.0, 0.1),
        ),
    ];

    let screen = ChipScreen::new(3);
    println!("{:<40} verdict (failing kernels)", "case study");
    for (name, profile) in &cases {
        let mut core = SimCore::new(
            CoreConfig::default(),
            Some(Injector::new(0xe12, profile.clone())),
        );
        let report = screen.screen(&mut core);
        println!("{name:<40} {}", report.summary());
    }

    println!("\nnotes:");
    println!("• the latent multiplier passes at age 0 — rescreen after onset:");
    let (_, profile) = &cases[9];
    let mut core = SimCore::new(
        CoreConfig::default(),
        Some(Injector::new(0xe12, profile.clone())),
    );
    core.set_age_hours(6000.0);
    println!("    at age 6000h: {}", screen.screen(&mut core).summary());

    println!("• frequency-gated defects need the right operating point — the offline");
    println!("  screener's (f,V,T) sweep exists for exactly this reason (see E6);");
    println!("• the pattern-gated defect may escape if no corpus operand satisfies its");
    println!("  gate: that is a zero-day, and why coverage keeps growing (EraSchedule).");
}
