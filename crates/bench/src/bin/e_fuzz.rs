//! E14 — §3: fuzzing the proxy CPU into a screening corpus.
//!
//! The paper laments there is no "systematic method of developing these
//! tests"; SiliFuzz (arXiv:2110.11519) later showed one: generate random
//! programs, execute them differentially against defective silicon,
//! minimize the hits, and distill the survivors into a compact corpus.
//! This experiment runs that loop against the simulated CPU and the full
//! `fault::library` lesion catalog and reports detection coverage vs
//! generation budget, the minimized witness per lesion kind, and the
//! distillation ratio.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e_fuzz [-- --smoke]
//! ```
//!
//! `--smoke` shrinks the budget for CI (`make fuzz-smoke`).

use mercurial_fuzz::{catalog_kinds, hot_catalog, run_campaign, CampaignConfig};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    mercurial_bench::header(if smoke {
        "E14 — proxy fuzzing: generate → diff → minimize → distill (smoke)"
    } else {
        "E14 — proxy fuzzing: generate → diff → minimize → distill"
    });

    let cfg = CampaignConfig {
        budget: if smoke { 16 } else { 64 },
        minimize_oracle_calls: if smoke { 120 } else { 300 },
        parallelism: 0, // one worker per CPU; results identical regardless
        ..CampaignConfig::default()
    };
    let catalog = hot_catalog();
    let kinds = catalog_kinds(&catalog);
    println!(
        "campaign: seed {:#x}, budget {} programs, catalog {} single-lesion entries ({} kinds)\n",
        cfg.seed,
        cfg.budget,
        catalog.len(),
        kinds.len()
    );

    let out = run_campaign(&cfg);
    let r = &out.report;

    println!("detection coverage vs budget (cumulative):");
    println!(
        "{:<10} {:>16} {:>14}",
        "programs", "entries-covered", "kinds-covered"
    );
    let mut last = (usize::MAX, usize::MAX);
    for row in &r.coverage {
        let cur = (row.entries_covered, row.kinds_covered);
        if cur != last || row.programs == r.coverage.len() {
            println!(
                "{:<10} {:>13}/{:<2} {:>11}/{:<2}",
                row.programs,
                row.entries_covered,
                r.catalog_names.len(),
                row.kinds_covered,
                r.kinds.len()
            );
            last = cur;
        }
    }

    println!("\nminimized witnesses (one per lesion kind):");
    println!(
        "{:<16} {:<32} {:>8} {:>12}",
        "kind", "catalog entry", "program", "insts"
    );
    for w in &r.witnesses {
        println!(
            "{:<16} {:<32} {:>8} {:>5} -> {:<4}",
            w.kind, w.catalog_entry, w.program_index, w.original_len, w.minimized_len
        );
    }
    assert!(
        r.all_kinds_witnessed(),
        "acceptance: every lesion kind in the library must have a witness"
    );

    println!(
        "\ndistilled corpus: {} of {} programs ({:.0}%), {} kernels exported, units {:?}",
        r.distilled.selected_rows.len(),
        r.budget,
        100.0 * r.distilled_fraction(),
        out.kernels.len(),
        r.distilled
            .covered_units()
            .iter()
            .map(|u| u.name())
            .collect::<Vec<_>>()
    );
    assert!(
        r.distilled_fraction() <= 0.25,
        "acceptance: distilled corpus must be <= 25% of generated programs"
    );

    // Determinism contract: the whole campaign is a pure function of the
    // seed — rerun it at fixed worker counts and demand identical reports.
    let parity: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            run_campaign(&CampaignConfig {
                parallelism: p,
                ..cfg
            })
            .report
        })
        .collect();
    let identical = parity.iter().all(|rep| *rep == parity[0]) && parity[0] == *r;
    println!(
        "\nparity: reports at 1/2/8 worker threads bit-for-bit identical: {}",
        if identical { "yes" } else { "NO" }
    );
    assert!(
        identical,
        "acceptance: campaign must not depend on thread count"
    );
}
