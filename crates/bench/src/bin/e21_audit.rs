//! E21 — decision provenance: how good were the loop's decisions, really?
//!
//! §5 of the paper admits "we have no way of knowing the extent of the
//! problem": production quarantines and exonerations are never reconciled
//! against ground truth. The laboratory has ground truth, so the audit
//! layer joins every operational decision to the lesion record and scores
//! the loop itself: TP/FP/FN attribution, time-to-root-cause, and the
//! exoneration-error (test-escape) audit.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e21_audit [-- --smoke]
//! ```
//!
//! Full mode audits the E20 policy-ladder arms and the E19 impairment
//! arms, measures the in-loop overhead of auditing against an audit-off
//! run (<2% acceptance bar), and writes `BENCH_audit.json`. `--smoke`
//! checks the contracts instead (`make audit-smoke`): audit off moves no
//! pre-audit bit (the E20 pin digests), the offline replay reproduces the
//! in-loop ledger byte-for-byte at parallelism 1/2/8, and attribution
//! conserves ground truth (TP + FN == mercurial cores; every FP is a
//! quarantined healthy core).

use std::time::Instant;

use mercurial::audit::{AuditReport, CaseLabel, DecisionLedger, GroundTruth};
use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::scenario::{ClassPolicy, ImpairConfig};
use mercurial::Scenario;
use mercurial_mitigation::MitigationPolicy;
use mercurial_serve::{run_served_impaired, ServeOptions};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

/// The audited scenario: demo fleet, sparse engine, closed loop, watch
/// rules live, decision audit on.
fn audited_scenario(seed: u64) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.sim.engine = SimEngine::Sparse;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s.audit.enabled = true;
    s
}

fn rule_names(s: &Scenario) -> Vec<String> {
    s.watch
        .rule_set()
        .rules
        .iter()
        .map(|r| r.name.clone())
        .collect()
}

fn report_of(s: &Scenario, trace: &mercurial_trace::Trace) -> (DecisionLedger, AuditReport) {
    let ledger = DecisionLedger::from_trace(trace);
    let truth = GroundTruth::from_ledger(&ledger);
    let report = AuditReport::build(&ledger, &truth, &rule_names(s));
    (ledger, report)
}

/// FNV-1a over a byte string: stable, dependency-free content digest.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ------------------------------------------------------------- smoke mode

fn run_smoke() {
    mercurial_bench::header("E21 — decision-audit contracts (smoke)");

    // 1. Audit off is bit-for-bit the pre-audit tree: the E20 pin digests
    //    (closed sparse, seed 7) must keep reproducing with the audit
    //    block at its default.
    {
        let mut s = audited_scenario(7);
        s.audit.enabled = false;
        let out = ClosedLoopDriver::execute(&s);
        assert_eq!(out.pipeline.sim_summary.corruptions, 68_632_069);
        assert_eq!(out.pipeline.detections.len(), 17);
        assert_eq!(
            fnv1a(out.series.to_csv().as_bytes()),
            0x9d12_71ac_ddd0_635f,
            "audit-off series CSV moved"
        );
        assert_eq!(
            fnv1a(out.trace.to_jsonl().as_bytes()),
            0xd7f3_ef09_599a_6f15,
            "audit-off trace JSONL moved"
        );
        assert_eq!(
            fnv1a(out.watch.as_ref().expect("watch on").render().as_bytes()),
            0x8c7d_8a27_4984_3066,
            "audit-off watch render moved"
        );
        println!("gating: audit off reproduces the E20 pin digests bit-for-bit");
    }

    // 2. The offline replay (exported JSONL → ledger) is byte-for-byte the
    //    in-loop ledger, at any parallelism.
    {
        let mut reference: Option<String> = None;
        for parallelism in [1usize, 2, 8] {
            let mut s = audited_scenario(7);
            s.sim.parallelism = parallelism;
            let out = ClosedLoopDriver::execute(&s);
            let in_loop = DecisionLedger::from_trace(&out.trace);
            let replayed = DecisionLedger::from_trace_jsonl(&out.trace.to_jsonl())
                .expect("exported trace replays");
            assert_eq!(replayed, in_loop, "replay diverges at par {parallelism}");
            let bytes = in_loop.to_jsonl();
            assert!(!bytes.is_empty(), "audited run must ledger decisions");
            if let Some(r) = &reference {
                assert_eq!(r, &bytes, "ledger diverges at par {parallelism}");
            } else {
                reference = Some(bytes);
            }
        }
        println!("replay: exported-JSONL ledger is byte-identical in-loop at par 1/2/8");
    }

    // 3. Attribution conserves ground truth.
    {
        let s = audited_scenario(7);
        let out = ClosedLoopDriver::execute(&s);
        let (ledger, report) = report_of(&s, &out.trace);
        assert!(report.ground_truth > 0, "demo fleet must seed defects");
        assert!(
            report.conserves(&ledger),
            "TP {} + FN {} must equal ground truth {} (gt counter {})",
            report.true_positives,
            report.false_negatives,
            report.ground_truth,
            ledger.gt_count
        );
        let truth = GroundTruth::from_ledger(&ledger);
        for v in &report.verdicts {
            if v.label == CaseLabel::FalsePositive {
                assert!(
                    !truth.is_mercurial(v.core) && v.quarantine_hour.is_some(),
                    "every FP is a quarantined healthy core"
                );
            }
        }
        println!(
            "conservation: TP={} FP={} FN={} over {} ground-truth cores",
            report.true_positives,
            report.false_positives,
            report.false_negatives,
            report.ground_truth
        );
    }

    println!("\nE21 smoke: all decision-audit contracts hold");
}

// -------------------------------------------------------------- full mode

/// The E20 policy ladder, weakest to strongest.
const LADDER: [MitigationPolicy; 5] = [
    MitigationPolicy::None,
    MitigationPolicy::E2eChecksum,
    MitigationPolicy::InstructionCheck,
    MitigationPolicy::Dmr,
    MitigationPolicy::Tmr,
];

fn run_full() {
    mercurial_bench::header("E21 — attribution quality and audit overhead");
    let seed = 7u64;
    let base = audited_scenario(seed);
    println!(
        "scenario {}: {} machines, {} months, seed {seed}",
        base.name, base.fleet.machines, base.sim.months
    );
    let prof = mercurial_prof::Prof::enabled();
    let mut arms: Vec<String> = Vec::new();

    // E20 policy-ladder arms: stronger mitigation catches corruptions
    // in-line, which changes the evidence mix the loop decides on — the
    // audit shows what that does to attribution quality.
    for policy in LADDER {
        let mut s = audited_scenario(seed);
        s.workloads.enabled = true;
        s.workloads.adapt = false;
        s.workloads.policies = [
            "data-pipeline",
            "storage-server",
            "database",
            "crypto-frontend",
        ]
        .iter()
        .map(|c| ClassPolicy {
            class: c.to_string(),
            policy,
        })
        .collect();
        let t0 = Instant::now();
        let out = prof.scope("audit.ladder", || ClosedLoopDriver::execute(&s));
        let secs = t0.elapsed().as_secs_f64();
        let (ledger, report) = report_of(&s, &out.trace);
        assert!(
            report.conserves(&ledger),
            "{}: must conserve",
            policy.label()
        );
        let label = format!("ladder/{}", policy.label());
        print_arm(&label, &report, secs);
        arms.push(arm_json(&label, &report, secs));
    }

    // E19 impairment arms: evidence frames dropped on the wire starve the
    // scoreboard — the audit prices the observability gap in recall and
    // time-to-root-cause.
    for loss in [0.0, 0.2, 0.5, 0.9] {
        let mut s = audited_scenario(seed);
        s.serve.workers = 2;
        let impair = ImpairConfig {
            loss,
            ..ImpairConfig::default()
        };
        let t0 = Instant::now();
        let served = prof
            .scope("audit.impair", || {
                run_served_impaired(&s, impair, &ServeOptions::default())
            })
            .expect("served run");
        let secs = t0.elapsed().as_secs_f64();
        let (ledger, report) = report_of(&s, &served.outcome.trace);
        assert!(report.conserves(&ledger), "loss {loss}: must conserve");
        let label = format!("impair/loss-{loss}");
        print_arm(&label, &report, secs);
        arms.push(arm_json(&label, &report, secs));
    }

    // Overhead: the audited loop against the identical loop with the
    // audit block off (tracing stays on in both — the audit's own cost is
    // the provenance instants and counters, not the trace machinery).
    let scale = mercurial_bench::scenario_from_env(seed);
    let mut on = audited_scenario(seed);
    on.fleet = scale.fleet.clone();
    on.sim.months = scale.sim.months;
    let mut off = on.clone();
    off.audit.enabled = false;
    let reps = 3;
    let once = |s: &Scenario| -> f64 {
        let t = Instant::now();
        std::hint::black_box(ClosedLoopDriver::execute(s));
        t.elapsed().as_secs_f64()
    };
    // Warm both paths once (page cache, allocator), then interleave the
    // timed reps so drift hits both arms alike; best-of is the estimator.
    once(&off);
    once(&on);
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        off_secs = off_secs.min(prof.scope("audit.overhead_off", || once(&off)));
        on_secs = on_secs.min(prof.scope("audit.overhead_on", || once(&on)));
    }
    let overhead_pct = 100.0 * (on_secs / off_secs - 1.0);
    println!(
        "\noverhead ({} machines, {} months, best of {reps}):",
        on.fleet.machines, on.sim.months
    );
    println!("  audit off: {off_secs:>8.3} s");
    println!("  audit on:  {on_secs:>8.3} s   ({overhead_pct:+.2}%)");
    assert!(
        overhead_pct < 2.0,
        "acceptance: audit overhead {overhead_pct:.2}% must stay under 2%"
    );

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"seed\": {seed},\n  \"overhead_machines\": {},\n  \"overhead_off_secs\": {off_secs:.4},\n  \"overhead_on_secs\": {on_secs:.4},\n  \"overhead_pct\": {overhead_pct:.3},\n  \"arms\": [\n{}\n  ]",
        base.name,
        base.fleet.machines,
        base.sim.months,
        on.fleet.machines,
        arms.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_audit.json");
    mercurial_bench::write_bench_json(path, "e21_audit", reps as u64, &prof.finish(), &body);
    println!("\naudit frontier written to BENCH_audit.json");
}

fn print_arm(label: &str, report: &AuditReport, secs: f64) {
    println!(
        "{label:>22}: TP={:<3} FP={:<3} FN={:<3} precision={:.3} recall={:.3} \
         ttrc_p50={:.0}h ttrc_p95={:.0}h escapes={} ({secs:.2}s)",
        report.true_positives,
        report.false_positives,
        report.false_negatives,
        report.precision(),
        report.recall(),
        report.ttrc_p50().unwrap_or(0.0),
        report.ttrc_p95().unwrap_or(0.0),
        report.test_escapes,
    );
}

fn arm_json(label: &str, report: &AuditReport, secs: f64) -> String {
    format!(
        "    {{\"arm\": \"{label}\", \"decisions\": {}, \"ground_truth\": {}, \
         \"tp\": {}, \"fp\": {}, \"fn\": {}, \"precision\": {:.4}, \"recall\": {:.4}, \
         \"ttrc_p50_hours\": {:.2}, \"ttrc_p95_hours\": {:.2}, \
         \"false_exonerations\": {}, \"test_escapes\": {}, \"secs\": {secs:.3}}}",
        report.decisions,
        report.ground_truth,
        report.true_positives,
        report.false_positives,
        report.false_negatives,
        report.precision(),
        report.recall(),
        report.ttrc_p50().unwrap_or(0.0),
        report.ttrc_p95().unwrap_or(0.0),
        report.false_exonerations,
        report.test_escapes,
    )
}
