//! E15 — closing the loop: open- vs closed-loop residual corruption.
//!
//! The open-loop pipeline (E1–E13) simulates the whole observation window
//! and only then screens, triages, and quarantines — so a core caught in
//! month 2 keeps corrupting results until month 36. The closed-loop
//! driver interleaves detect → quarantine → reschedule at epoch
//! granularity (§6: detect "as quickly as possible", then quarantine).
//! This experiment runs both on the same scenario and quantifies what the
//! feedback buys (residual corrupt-ops) and what it costs (schedulable
//! capacity surrendered to quarantine, partially recovered by unit-aware
//! safe-task placement).
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e15_closed_loop [-- --smoke]
//! MERCURIAL_SCALE=paper cargo run --release -p mercurial-bench --bin e15_closed_loop
//! ```
//!
//! `--smoke` keeps the demo scale and trims output for CI
//! (`make e15-smoke`).

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::report::closed_loop_table;
use mercurial::Scenario;

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut scenario = if smoke {
        Scenario::demo(0x0e15)
    } else {
        load_paper_scenario()
    };
    mercurial_bench::header(&format!(
        "E15 — closed-loop detect → quarantine → reschedule   [{}: {} machines, {} months]{}",
        scenario.name,
        scenario.fleet.machines,
        scenario.sim.months,
        if smoke { " (smoke)" } else { "" }
    ));

    scenario.closed_loop.feedback = false;
    let open = ClosedLoopDriver::execute(&scenario);
    scenario.closed_loop.feedback = true;
    let closed = ClosedLoopDriver::execute(&scenario);

    let open_ops = open.pipeline.sim_summary.corruptions;
    let closed_ops = closed.pipeline.sim_summary.corruptions;
    println!("residual corrupt-ops, open loop:   {open_ops}");
    println!(
        "residual corrupt-ops, closed loop: {closed_ops}  ({:.1}% of open)",
        if open_ops > 0 {
            100.0 * closed_ops as f64 / open_ops as f64
        } else {
            0.0
        }
    );
    let trough = closed.series.min_capacity();
    println!(
        "capacity cost: trough {:.4}% of nominal ({} cores confirmed/quarantined at peak)\n",
        100.0 * trough,
        closed.pipeline.capacity.lost_cores,
    );

    println!("{}", closed_loop_table(&closed));
    if !smoke {
        println!("{}", closed.series.render(24));
        println!("per-epoch series (CSV):\n{}", closed.series.to_csv());
    }

    // Acceptance: feedback must strictly reduce residual corruption.
    assert!(
        closed_ops < open_ops,
        "acceptance: closed loop ({closed_ops}) must corrupt strictly less than open ({open_ops})"
    );
    // Acceptance: safe-task placement recovers part of the surrendered
    // capacity, never more than nominal.
    let last = closed.series.points().last().expect("non-empty series");
    assert!(
        last.capacity_with_safetask >= last.capacity && last.capacity_with_safetask <= 1.0 + 1e-12,
        "acceptance: safe-task capacity must sit between base capacity and nominal"
    );

    // Determinism contract (§4.1): the closed loop is a pure function of
    // the scenario — rerun at fixed worker counts, demand identical
    // outcomes.
    let parity: Vec<_> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            let mut s = scenario.clone();
            s.sim.parallelism = p;
            let out = ClosedLoopDriver::execute(&s);
            (
                out.series,
                out.pipeline.sim_summary.corruptions,
                out.pipeline.detections,
                out.pipeline.signals.len(),
            )
        })
        .collect();
    let identical = parity.iter().all(|r| *r == parity[0]);
    println!(
        "parity: outcomes at 1/2/8 worker threads identical: {}",
        if identical { "yes" } else { "NO" }
    );
    assert!(
        identical,
        "acceptance: closed loop must not depend on thread count"
    );
}

/// The committed paper scenario if present (runs from the repo), else the
/// environment-selected scale.
fn load_paper_scenario() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/paper.json");
    match std::fs::read_to_string(path) {
        Ok(json) => Scenario::from_json(&json).expect("scenarios/paper.json parses"),
        Err(_) => mercurial_bench::scenario_from_env(0x0e15),
    }
}
