//! E16 — tracing overhead: disabled recording must be free.
//!
//! The observability layer (`mercurial-trace`) threads a `Recorder`
//! through the fleet simulator, the screeners, and the closed-loop
//! driver. The deal that makes this acceptable in the hot path is that a
//! *disabled* recorder costs one branch per call site — no allocation, no
//! formatting. This experiment prices that deal at paper scale: the
//! whole-window simulation untraced, with a disabled recorder, and with
//! recording on, plus the closed loop off vs on, and writes the baseline
//! to `BENCH_trace.json`.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e16_trace_overhead [-- --smoke]
//! ```
//!
//! `--smoke` skips the timing (meaningless on shared CI machines) and
//! instead checks the tracing correctness contracts at demo scale:
//! byte-identical JSONL across 1/2/8 workers, a Chrome export that parses
//! as JSON with balanced B/E span pairs, and an incident timeline showing
//! a full onset → signal → quarantine → confirm story (`make trace-smoke`).

use std::time::Instant;

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fault::CoreUid;
use mercurial::trace::{incident_timeline, Recorder, TraceFlags};
use mercurial::{FleetExperiment, Scenario};
use mercurial_fleet::{SignalLog, SimSummary};
use mercurial_prof::Prof;

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

// ------------------------------------------------------------- smoke mode

fn traced_demo(seed: u64) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.trace.enabled = true;
    s
}

fn run_smoke() {
    mercurial_bench::header("E16 — tracing contracts (smoke)");
    let base = traced_demo(0x0e16);

    // 1. Determinism parity: the trace is a pure function of the
    //    scenario, not of the worker count.
    let traces: Vec<String> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            let mut s = base.clone();
            s.sim.parallelism = p;
            ClosedLoopDriver::execute(&s).trace.to_jsonl()
        })
        .collect();
    assert!(!traces[0].is_empty(), "trace must record something");
    assert!(
        traces.iter().all(|t| *t == traces[0]),
        "JSONL trace differs across 1/2/8 workers"
    );
    println!(
        "parity: JSONL byte-identical at 1/2/8 workers ({} bytes): yes",
        traces[0].len()
    );

    // 2. The Chrome export is valid trace-event JSON with paired spans.
    let out = ClosedLoopDriver::execute(&base);
    let chrome = out.trace.to_chrome_trace();
    let doc: serde::Value = serde_json::from_str(&chrome).expect("chrome export parses as JSON");
    let events = doc
        .get("traceEvents")
        .and_then(serde::Value::as_array)
        .expect("traceEvents array");
    let count_ph = |ph: &str| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(serde::Value::as_str) == Some(ph))
            .count()
    };
    let (b, e) = (count_ph("B"), count_ph("E"));
    assert!(b > 0 && b == e, "chrome spans unbalanced: {b} B vs {e} E");
    println!(
        "chrome: valid JSON, {} events, {b} balanced span pairs",
        events.len()
    );

    // 3. The timeline reconstructs a full incident for some injected core.
    let timeline = incident_timeline(&out.trace, &|id| CoreUid::from_u64(id).to_string());
    let full_story = timeline.lines().any(|l| {
        l.contains("onset@")
            && l.contains("signal@")
            && l.contains("quarantine@")
            && l.contains("confirm@")
    });
    assert!(
        full_story,
        "no full onset→signal→quarantine→confirm story:\n{timeline}"
    );
    println!("timeline: full onset → signal → quarantine → confirm story present");
    println!("\nE16 smoke: all tracing contracts hold");
}

// -------------------------------------------------------------- full mode

/// Best-of-`reps` wall-clock seconds for `f`.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn run_full() {
    let scenario = load_paper_scenario();
    mercurial_bench::header(&format!(
        "E16 — tracing overhead   [{}: {} machines, {} months]",
        scenario.name, scenario.fleet.machines, scenario.sim.months
    ));
    let reps = 3;
    // The bench's own phase breakdown, embedded in the BenchMeta
    // envelope: wall clock per measured section, write-only as always.
    let prof = Prof::enabled();

    // Whole-window simulation, three ways. `FleetSim::run` is the
    // untraced baseline (its serial path with a disabled recorder is the
    // pre-instrumentation loop, byte for byte).
    let exp = FleetExperiment::build(&scenario);
    let sim = exp.sim();
    let step_all = |rec: &mut Recorder| {
        let mut state = sim.begin();
        let mut log = SignalLog::new();
        let mut summary = SimSummary::default();
        sim.step_epochs_traced(&mut state, u32::MAX, &mut log, &mut summary, rec);
        log.sort_by_time();
        (log, summary)
    };
    let untraced = prof.scope("sim.untraced", || {
        best_of(reps, || {
            let (log, _) = sim.run();
            assert!(!log.is_empty());
        })
    });
    let disabled = prof.scope("sim.disabled", || {
        best_of(reps, || {
            let (log, _) = step_all(&mut Recorder::disabled());
            assert!(!log.is_empty());
        })
    });
    let mut trace_events = 0usize;
    let enabled = prof.scope("sim.enabled", || {
        best_of(reps, || {
            let mut rec = Recorder::with_flags(TraceFlags::enabled());
            let (log, _) = step_all(&mut rec);
            assert!(!log.is_empty());
            trace_events = rec.event_count();
        })
    });
    let disabled_pct = 100.0 * (disabled / untraced - 1.0);
    let enabled_pct = 100.0 * (enabled / untraced - 1.0);
    println!("sim, untraced baseline:   {untraced:>8.3} s   (best of {reps})");
    println!("sim, recorder disabled:   {disabled:>8.3} s   ({disabled_pct:+.2}%)");
    println!(
        "sim, recorder enabled:    {enabled:>8.3} s   ({enabled_pct:+.2}%, {trace_events} events)"
    );

    // The closed loop end to end, tracing off vs on (1 rep — the screeners
    // dominate and the comparison is already conservative).
    let mut s = scenario.clone();
    s.closed_loop.feedback = true;
    s.trace.enabled = false;
    let t = Instant::now();
    let off = prof.scope("loop.untraced", || ClosedLoopDriver::execute(&s));
    let loop_off = t.elapsed().as_secs_f64();
    assert!(off.trace.is_empty());
    s.trace.enabled = true;
    let t = Instant::now();
    let on = prof.scope("loop.traced", || ClosedLoopDriver::execute(&s));
    let loop_on = t.elapsed().as_secs_f64();
    let jsonl = on.trace.to_jsonl();
    let loop_pct = 100.0 * (loop_on / loop_off - 1.0);
    println!("closed loop, tracing off: {loop_off:>8.3} s");
    println!(
        "closed loop, tracing on:  {loop_on:>8.3} s   ({loop_pct:+.2}%, {} events, {} B JSONL)",
        on.trace.events.len(),
        jsonl.len()
    );

    // Acceptance: a disabled recorder costs < 2% of the untraced sim.
    assert!(
        disabled_pct < 2.0,
        "acceptance: disabled tracing overhead {disabled_pct:.2}% must stay under 2%"
    );

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"sim_untraced_secs\": {untraced:.4},\n  \"sim_disabled_secs\": {disabled:.4},\n  \"sim_enabled_secs\": {enabled:.4},\n  \"sim_disabled_overhead_pct\": {disabled_pct:.3},\n  \"sim_enabled_overhead_pct\": {enabled_pct:.3},\n  \"closed_loop_off_secs\": {loop_off:.4},\n  \"closed_loop_on_secs\": {loop_on:.4},\n  \"closed_loop_on_overhead_pct\": {loop_pct:.3},\n  \"sim_trace_events\": {trace_events},\n  \"closed_loop_trace_events\": {},\n  \"closed_loop_jsonl_bytes\": {}",
        scenario.name,
        scenario.fleet.machines,
        scenario.sim.months,
        on.trace.events.len(),
        jsonl.len()
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    mercurial_bench::write_bench_json(
        path,
        "e16_trace_overhead",
        reps as u64,
        &prof.finish(),
        &body,
    );
    println!("\nbaseline written to BENCH_trace.json");
}

/// The committed paper scenario if present (runs from the repo), else the
/// environment-selected scale.
fn load_paper_scenario() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/paper.json");
    match std::fs::read_to_string(path) {
        Ok(json) => Scenario::from_json(&json).expect("scenarios/paper.json parses"),
        Err(_) => mercurial_bench::scenario_from_env(0x0e16),
    }
}
