//! E4 — §2/§5: "Corruption rates vary by many orders of magnitude … across
//! defective cores, and for any given core can be highly dependent on
//! workload and on f, V, T", including the surprising low-frequency cases.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e4_rates_fvt
//! ```

use mercurial_fault::CoreUid;
use mercurial_fault::{library, OperatingPoint};
use mercurial_fleet::population::TestSpec;
use mercurial_fleet::Population;
use mercurial_metrics::LogDecadeHistogram;

fn main() {
    mercurial_bench::header("E4 — corruption-rate spread across cores and (f, V, T)");

    // Part 1: the cross-core spread. Sample many defective cores and
    // histogram their per-operation rates at nominal conditions.
    let mut hist = LogDecadeHistogram::new(-9, -2);
    let cores: Vec<(CoreUid, mercurial_fault::CoreFaultProfile)> = (0..400)
        .map(|i| {
            (
                CoreUid::new(i, 0, 0),
                library::sample_profile(0xe4, i as u64),
            )
        })
        .collect();
    let pop = Population::with_explicit(0xe4, cores.clone());
    let nominal = OperatingPoint::NOMINAL;
    let operands = TestSpec::default_operands();
    for (uid, _) in &cores {
        let rates = pop.unit_rates(*uid, &operands, nominal, 40_000.0);
        let total: f64 = rates.iter().map(|r| 1.0 - r).product();
        hist.record(1.0 - total);
    }
    println!("per-operation corruption rate across 400 sampled mercurial cores");
    println!("(at nominal operating point, age ≈ 4.5 years):\n");
    print!("{}", hist.render());
    println!(
        "spread: {:.1} orders of magnitude (p10 {:.1e}, median {:.1e}, p90 {:.1e})",
        hist.spread_decades(),
        hist.quantile(0.1).unwrap_or(0.0),
        hist.quantile(0.5).unwrap_or(0.0),
        hist.quantile(0.9).unwrap_or(0.0),
    );
    println!("paper: 'corruption rates vary by many orders of magnitude'. ✓\n");

    // Part 2: (f, V, T) dependence for three archetypes, swept along the
    // DVFS curve (f and V move together, footnote 1) and over temperature.
    let curve = mercurial_fault::DvfsCurve::typical_server();
    let archetypes = [
        (
            "freq-sensitive-fma (classic)",
            library::freq_sensitive_fma(0.8),
        ),
        (
            "low-freq-worse-alu (surprising)",
            library::low_freq_worse_alu(0.8),
        ),
        (
            "string-bitflip (insensitive)",
            library::string_bitflip(9, 1e-4),
        ),
    ];
    println!("per-op rate vs DVFS step (T = 65C) and at T = 92C (top step):\n");
    print!("{:<34}", "archetype");
    for &(f, v) in curve.steps() {
        print!("  {f}MHz/{v}mV");
    }
    println!("      hot");
    for (name, profile) in &archetypes {
        let uid = CoreUid::new(0, 0, 0);
        let p = Population::with_explicit(1, vec![(uid, profile.clone())]);
        print!("{name:<34}");
        for step in 0..curve.step_count() {
            let point = curve.point_at_step(step, 65);
            let rates = p.unit_rates(uid, &operands, point, 0.0);
            let rate: f64 = 1.0 - rates.iter().map(|r| 1.0 - r).product::<f64>();
            print!("  {rate:>12.2e}");
        }
        let hot = curve.max_point(92);
        let rates = p.unit_rates(uid, &operands, hot, 0.0);
        let rate: f64 = 1.0 - rates.iter().map(|r| 1.0 - r).product::<f64>();
        println!("  {rate:>8.2e}");
    }
    println!("\npaper §5: 'some mercurial core CEE rates are strongly frequency-sensitive,");
    println!("some aren't' and 'lower frequency sometimes (surprisingly) increases the");
    println!("failure rate' — visible in rows 1–3 respectively.");
}
