//! E20 — the corruption-vs-overhead frontier of per-class mitigation.
//!
//! §7 of the paper prices the defenses: end-to-end checksums are cheap
//! but partial, dual/triple modular redundancy is near-complete but
//! costs one or two extra executions per op. With workload classes as a
//! first-class layer, that trade becomes measurable per class: walk the
//! policy ladder (none → e2e-checksum → instr-check → DMR → TMR) and
//! chart each class's residual corruption against the overhead the
//! [`CostMeter`] bills it — plus an adaptive arm where the closed loop
//! escalates hot classes on its own.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e20_frontier [-- --smoke]
//! ```
//!
//! Full mode sweeps the ladder and writes `BENCH_frontier.json`.
//! `--smoke` checks the contracts instead: a zeroed workload layer moves
//! no simulation bit, per-class attribution conserves fleet totals at
//! any parallelism, and the ladder is strictly monotone — lower residual
//! corruption at higher overhead, every rung (`make frontier-smoke`).
//!
//! [`CostMeter`]: mercurial_mitigation::redundancy::CostMeter

use std::time::Instant;

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::scenario::ClassPolicy;
use mercurial::Scenario;
use mercurial_mitigation::MitigationPolicy;
use mercurial_trace::EventKind;

/// The policy ladder, weakest to strongest.
const LADDER: [MitigationPolicy; 5] = [
    MitigationPolicy::None,
    MitigationPolicy::E2eChecksum,
    MitigationPolicy::InstructionCheck,
    MitigationPolicy::Dmr,
    MitigationPolicy::Tmr,
];

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

/// The frontier scenario: demo fleet, sparse engine, workload layer on.
/// `uniform` pins every class to one rung (adaptation off); `None` leaves
/// the block's own policy/adaptation settings in place.
fn frontier_scenario(seed: u64, feedback: bool, uniform: Option<MitigationPolicy>) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = feedback;
    s.sim.engine = SimEngine::Sparse;
    s.workloads.enabled = true;
    if let Some(policy) = uniform {
        s.workloads.adapt = false;
        s.workloads.policies = [
            "data-pipeline",
            "storage-server",
            "database",
            "crypto-frontend",
        ]
        .iter()
        .map(|c| ClassPolicy {
            class: c.to_string(),
            policy,
        })
        .collect();
    }
    s
}

/// One class's whole-window totals pulled out of the epoch series.
struct ClassTotals {
    name: String,
    corrupt_ops: u64,
    caught: u64,
    user_reports: u64,
    overhead_ops: u64,
}

impl ClassTotals {
    fn residual(&self) -> u64 {
        self.corrupt_ops - self.caught
    }
}

fn class_totals(out: &mercurial::ClosedLoopOutcome) -> Vec<ClassTotals> {
    out.series
        .class_names()
        .iter()
        .enumerate()
        .map(|(c, name)| {
            let (mut caught, mut reports) = (0u64, 0u64);
            for row in out.series.class_points() {
                if let Some(cp) = row.get(c) {
                    caught += cp.caught;
                    reports += cp.user_reports;
                }
            }
            ClassTotals {
                name: name.clone(),
                corrupt_ops: out.series.class_total_corrupt_ops(c),
                caught,
                user_reports: reports,
                overhead_ops: out.series.class_total_overhead_ops(c),
            }
        })
        .collect()
}

// ------------------------------------------------------------- smoke mode

fn run_smoke() {
    mercurial_bench::header("E20 — workload-frontier contracts (smoke)");

    // 1. A zeroed workload layer (flat traffic, all policies `none`,
    //    adaptation off) adds attribution columns but moves no simulation
    //    bit: summary, detections, and the fleet columns are unchanged
    //    against the same scenario with the block disabled.
    {
        let mut zeroed = frontier_scenario(7, true, Some(MitigationPolicy::None));
        zeroed.workloads.traffic_amplitude = 0.0;
        let mut off = zeroed.clone();
        off.workloads.enabled = false;
        let a = ClosedLoopDriver::execute(&zeroed);
        let b = ClosedLoopDriver::execute(&off);
        assert_eq!(a.pipeline.sim_summary, b.pipeline.sim_summary);
        assert_eq!(a.pipeline.detections, b.pipeline.detections);
        assert_eq!(a.series.points(), b.series.points());
        assert!(!a.series.class_names().is_empty());
        assert!(b.series.class_names().is_empty());
        println!("gating: zeroed workload layer moves no simulation bit");
    }

    // 2. Attribution conserves fleet totals, bit-for-bit at any
    //    parallelism (1/2/8 worker threads over the same fleet).
    {
        let mut reference: Option<mercurial::ClosedLoopOutcome> = None;
        for parallelism in [1usize, 2, 8] {
            let mut s = frontier_scenario(7, true, None);
            s.workloads.adapt = true;
            s.sim.parallelism = parallelism;
            let out = ClosedLoopDriver::execute(&s);
            for (point, classes) in out.series.points().iter().zip(out.series.class_points()) {
                let sum: u64 = classes.iter().map(|c| c.corrupt_ops).sum();
                assert_eq!(sum, point.corrupt_ops, "attribution must conserve");
            }
            if let Some(r) = &reference {
                assert_eq!(r.series, out.series, "series diverge at par {parallelism}");
                assert_eq!(r.pipeline.sim_summary, out.pipeline.sim_summary);
            } else {
                reference = Some(out);
            }
        }
        println!("attribution: per-class columns conserve fleet totals at par 1/2/8");
    }

    // 3. The frontier is strictly monotone per rung: less residual
    //    corruption, more overhead — for the fleet and for every class.
    {
        let mut last: Option<(u64, u64)> = None;
        for policy in LADDER {
            let out = ClosedLoopDriver::execute(&frontier_scenario(7, false, Some(policy)));
            let totals = class_totals(&out);
            let residual: u64 = totals.iter().map(ClassTotals::residual).sum();
            let overhead: u64 = totals.iter().map(|t| t.overhead_ops).sum();
            if let Some((r, o)) = last {
                assert!(
                    residual < r,
                    "{}: residual must strictly fall ({residual} vs {r})",
                    policy.label()
                );
                assert!(
                    overhead > o,
                    "{}: overhead must strictly rise ({overhead} vs {o})",
                    policy.label()
                );
            }
            last = Some((residual, overhead));
        }
        println!("frontier: residual strictly falls and overhead strictly rises up the ladder");
    }

    println!("\nE20 smoke: all workload-frontier contracts hold");
}

// -------------------------------------------------------------- full mode

fn run_full() {
    mercurial_bench::header("E20 — the corruption-vs-overhead frontier");
    let seed = 7u64;
    let base = frontier_scenario(seed, true, None);
    println!(
        "scenario {}: {} machines, {} months, seed {seed}, diurnal amplitude {}",
        base.name, base.fleet.machines, base.sim.months, base.workloads.traffic_amplitude
    );

    let mut arms: Vec<String> = Vec::new();

    // Uniform rungs: every class pinned to one policy, closed loop.
    let prof = mercurial_prof::Prof::enabled();
    for policy in LADDER {
        let t0 = Instant::now();
        let out = prof.scope("frontier.ladder", || {
            ClosedLoopDriver::execute(&frontier_scenario(seed, true, Some(policy)))
        });
        let secs = t0.elapsed().as_secs_f64();
        arms.push(arm_json(policy.label(), &out, 0, secs));
        print_arm(policy.label(), &out, 0, secs);
    }

    // Adaptive arms: classes start at `none`; the closed loop escalates
    // any class whose per-epoch corruption crosses the threshold. The
    // default threshold only reacts to the big bursts — one epoch too
    // late, since a switch broadcast at epoch N takes effect at N+1 and
    // the demo's defects corrupt in single-epoch bursts. The sensitive
    // threshold arms policies off the small precursor trickles, so the
    // later bursts land on an already-escalated class.
    for (label, threshold) in [
        ("adaptive", base.workloads.escalate_threshold),
        ("adaptive-sensitive", 100),
    ] {
        let mut s = frontier_scenario(seed, true, None);
        s.workloads.adapt = true;
        s.workloads.escalate_threshold = threshold;
        s.trace.enabled = true;
        let t0 = Instant::now();
        let out = prof.scope("frontier.adaptive", || ClosedLoopDriver::execute(&s));
        let secs = t0.elapsed().as_secs_f64();
        let escalations = out
            .trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Instant && e.name == "mitigation.escalated")
            .count();
        arms.push(arm_json(label, &out, escalations, secs));
        print_arm(label, &out, escalations, secs);
    }

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"seed\": {seed},\n  \"traffic_amplitude\": {},\n  \"escalate_threshold\": {},\n  \"arms\": [\n{}\n  ]",
        base.name,
        base.fleet.machines,
        base.sim.months,
        base.workloads.traffic_amplitude,
        base.workloads.escalate_threshold,
        arms.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json");
    mercurial_bench::write_bench_json(path, "e20_frontier", 1, &prof.finish(), &body);
    println!("\nfrontier written to BENCH_frontier.json");
}

fn print_arm(label: &str, out: &mercurial::ClosedLoopOutcome, escalations: usize, secs: f64) {
    let totals = class_totals(out);
    let residual: u64 = totals.iter().map(ClassTotals::residual).sum();
    let overhead: u64 = totals.iter().map(|t| t.overhead_ops).sum();
    println!(
        "\n{label:>12}: residual {residual:>12}, overhead {overhead:>14}, \
         {escalations} escalations, {secs:.2}s"
    );
    for t in &totals {
        println!(
            "{:>16}: corrupt {:>12}  caught {:>12}  residual {:>12}  overhead {:>14}",
            t.name,
            t.corrupt_ops,
            t.caught,
            t.residual(),
            t.overhead_ops
        );
    }
}

fn arm_json(
    label: &str,
    out: &mercurial::ClosedLoopOutcome,
    escalations: usize,
    secs: f64,
) -> String {
    let totals = class_totals(out);
    let classes: Vec<String> = totals
        .iter()
        .map(|t| {
            format!(
                "        {{\"class\": \"{}\", \"corrupt_ops\": {}, \"caught\": {}, \
                 \"residual\": {}, \"user_reports\": {}, \"overhead_ops\": {}}}",
                t.name,
                t.corrupt_ops,
                t.caught,
                t.residual(),
                t.user_reports,
                t.overhead_ops
            )
        })
        .collect();
    let residual: u64 = totals.iter().map(ClassTotals::residual).sum();
    let overhead: u64 = totals.iter().map(|t| t.overhead_ops).sum();
    format!
        (
        "    {{\"arm\": \"{label}\", \"residual\": {residual}, \"overhead_ops\": {overhead}, \
         \"detections\": {}, \"escalations\": {escalations}, \"secs\": {secs:.3}, \"classes\": [\n{}\n      ]}}",
        out.pipeline.detections.len(),
        classes.join(",\n"),
    )
}
