//! E11 — §2/§4: age until onset.
//!
//! "Some cores only become defective after considerable time has passed"
//! (§6); "if many CEEs stay latent until chips have been in use for
//! several years, this metric depends on how long you can wait, and
//! requires continual screening over a machine's lifetime" (§4).
//!
//! Fits Kaplan–Meier survival curves to the latent-defect population under
//! observation windows of different lengths, showing exactly that
//! dependence.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e11_onset
//! ```

use mercurial_fault::library;
use mercurial_metrics::{KaplanMeier, Observation};

fn main() {
    mercurial_bench::header("E11 — age until onset (Kaplan–Meier, right-censored)");

    // Ground-truth onset ages from the archetype sampler. The §4 metric
    // concerns the *latent* subpopulation — defects present from
    // manufacturing have onset age zero by definition and burn-in owns
    // them; the survival analysis is about everything burn-in cannot see.
    let all: Vec<f64> = (0..2_000)
        .map(|i| library::sample_profile(0xe11, i).earliest_onset_hours())
        .collect();
    let onsets: Vec<f64> = all.iter().copied().filter(|&o| o > 0.0).collect();
    println!(
        "population: 2000 sampled mercurial cores, {} ({:.0}%) latent (onset > 0);",
        onsets.len(),
        100.0 * onsets.len() as f64 / 2000.0
    );
    println!("survival analysis below is over the latent subpopulation.\n");

    println!("survival S(t) = P[defect not yet manifest at age t]:");
    println!(
        "{:>22}  {:>8}  {:>8}  {:>8}  {:>12}",
        "observation window", "S(1yr)", "S(2yr)", "S(3yr)", "median onset"
    );
    for window_years in [1.0f64, 2.0, 4.0, 8.0] {
        let window_hours = window_years * 365.25 * 24.0;
        let obs: Vec<Observation> = onsets
            .iter()
            .map(|&o| {
                if o <= window_hours {
                    Observation::onset(o)
                } else {
                    Observation::censored(window_hours)
                }
            })
            .collect();
        let km = KaplanMeier::fit(&obs);
        let at = |years: f64| km.survival_at(years * 365.25 * 24.0);
        println!(
            "{:>19.0} yr  {:>8.3}  {:>8.3}  {:>8.3}  {:>12}",
            window_years,
            at(1.0),
            at(2.0),
            at(3.0),
            km.median_onset_hours()
                .map(|h| format!("{:.1} yr", h / (365.25 * 24.0)))
                .unwrap_or_else(|| ">window".to_string()),
        );
    }
    println!("\nthe §4 challenge, visible: a 1-year study cannot even see the median;");
    println!("estimates only stabilize once the window covers the latent tail. Hence");
    println!("'testing becomes part of the full lifecycle of a CPU' (§6) — burn-in alone");
    println!("misses every defect on the right side of the curve.");
}
