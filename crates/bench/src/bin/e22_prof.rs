//! E22 — self-observability: the profiler must be free and honest.
//!
//! `mercurial-prof` rides along the closed loop, the screening
//! campaigns, and the serve protocol, reading wall clocks. The deal that
//! makes that acceptable in a bit-deterministic simulator is the
//! write-only contract: readings never feed sim-visible state, so a
//! profiled run is byte-identical to an unprofiled one — and the
//! profiler itself must cost under 2% when enabled and one branch when
//! disabled. This experiment prices both halves at paper scale, prints
//! the measured phase breakdown and a flamegraph-ready folded-stack
//! sample, and writes `BENCH_prof.json` under the shared [`BenchMeta`]
//! envelope every other bench now embeds.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e22_prof [-- --smoke]
//! ```
//!
//! `--smoke` checks the same contracts at demo scale (`make prof-smoke`):
//! prof-on parity against the E20 legacy pin, the <2% enabled-overhead
//! budget, and a `BenchMeta` envelope round-trip through its validator.
//!
//! [`BenchMeta`]: mercurial_prof::BenchMeta

use std::time::Instant;

use mercurial::closedloop::{ClosedLoopDriver, ClosedLoopOutcome, RunOptions};
use mercurial::fleet::SimEngine;
use mercurial::{FleetExperiment, Scenario};
use mercurial_prof::{BenchMeta, Prof, SelfProfile};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

/// The fully instrumented closed loop: tracing and watch on, feedback on.
fn traced_scenario(base: &Scenario) -> Scenario {
    let mut s = base.clone();
    s.closed_loop.feedback = true;
    s.sim.engine = SimEngine::Sparse;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s
}

/// One run with a profiler attached; returns the outcome, the wall
/// seconds, and the collected profile.
fn profiled_run(s: &Scenario, prof: &Prof) -> (ClosedLoopOutcome, f64) {
    let experiment = FleetExperiment::build(s);
    let opts = RunOptions {
        prof: Some(prof),
        ..RunOptions::default()
    };
    let t = Instant::now();
    let out = ClosedLoopDriver::execute_with(s, &experiment, opts);
    (out, t.elapsed().as_secs_f64())
}

/// Interleaved best-of-`reps` for the unprofiled and profiled arms (off,
/// on, off, on, …) so scheduler drift hits both alike. Returns
/// `(off_secs, on_secs, last profiled outcome, last profile)`.
fn measure_overhead(s: &Scenario, reps: usize) -> (f64, f64, ClosedLoopOutcome, SelfProfile) {
    let (mut off_secs, mut on_secs) = (f64::INFINITY, f64::INFINITY);
    let mut last = None;
    for _ in 0..reps {
        let disabled = Prof::disabled();
        let (off_out, t) = profiled_run(s, &disabled);
        off_secs = off_secs.min(t);
        std::hint::black_box(&off_out);

        let prof = Prof::enabled();
        let (on_out, t) = profiled_run(s, &prof);
        on_secs = on_secs.min(t);
        last = Some((on_out, prof.finish()));
    }
    let (out, profile) = last.expect("reps >= 1");
    (off_secs, on_secs, out, profile)
}

// ------------------------------------------------------------- smoke mode

fn run_smoke() {
    mercurial_bench::header("E22 — self-observability contracts (smoke)");

    // 1. Parity against pre-prof history: the E20 legacy pin (closed
    //    sparse, seed 7, demo scale) was captured long before the
    //    profiler existed; a profiled run must still land on it exactly.
    let s = traced_scenario(&Scenario::demo(7));
    let prof = Prof::enabled();
    let (out, _) = profiled_run(&s, &prof);
    assert_eq!(
        out.pipeline.sim_summary.corruptions, 68_632_069,
        "prof-on corruptions diverge from the E20 legacy pin"
    );
    assert_eq!(
        out.pipeline.detections.len(),
        17,
        "prof-on detections diverge from the E20 legacy pin"
    );
    let profile = prof.finish();
    assert!(
        profile.calls("shard.epoch") > 0,
        "profiler must have measured the loop it rode"
    );
    println!(
        "parity: profiled run matches the E20 legacy pin (68 632 069 corruptions, 17 detections)"
    );

    // 2. Enabled overhead under the 2% budget, interleaved best-of-5.
    let (off_secs, on_secs, on_out, _) = measure_overhead(&s, 5);
    let pct = 100.0 * (on_secs / off_secs - 1.0);
    assert_eq!(
        on_out.pipeline.sim_summary.corruptions, 68_632_069,
        "overhead arm must stay on the pin too"
    );
    println!("overhead: prof off {off_secs:.4} s, prof on {on_secs:.4} s ({pct:+.2}%)");
    assert!(
        pct < 2.0,
        "acceptance: enabled profiler overhead {pct:.2}% must stay under 2%"
    );

    // 3. The envelope round-trips through its own validator.
    let meta = BenchMeta::capture("e22_prof", 5, &profile);
    let json = meta.envelope("\"machines\": 500");
    let parsed = BenchMeta::from_bench_json(&json).expect("envelope validates");
    assert_eq!(parsed, meta);
    assert!(
        parsed.phases.iter().any(|p| p.stack == "shard.epoch"),
        "envelope carries the phase breakdown"
    );
    println!(
        "envelope: BenchMeta round-trips ({} phases, commit {})",
        parsed.phases.len(),
        &parsed.git_commit[..parsed.git_commit.len().min(12)]
    );

    println!("\nE22 smoke: all self-observability contracts hold");
}

// -------------------------------------------------------------- full mode

fn run_full() {
    let scenario = traced_scenario(&load_paper_scenario());
    mercurial_bench::header(&format!(
        "E22 — self-observability   [{}: {} machines, {} months]",
        scenario.name, scenario.fleet.machines, scenario.sim.months
    ));
    let reps = 3;

    let (off_secs, on_secs, out, profile) = measure_overhead(&scenario, reps);
    let pct = 100.0 * (on_secs / off_secs - 1.0);
    println!("closed loop, prof off:    {off_secs:>8.3} s   (best of {reps})");
    println!("closed loop, prof on:     {on_secs:>8.3} s   ({pct:+.2}%)");
    println!(
        "run: {} detections, {} trace events",
        out.pipeline.detections.len(),
        out.trace.events.len()
    );

    // The measured breakdown, in both human and flamegraph form.
    println!("\n{}", profile.render_table());
    let folded = profile.folded_stacks();
    println!(
        "folded stacks (flamegraph.pl input, {} lines):",
        folded.len()
    );
    for line in folded.iter().take(8) {
        println!("  {line}");
    }

    // Acceptance: the enabled profiler stays under the 2% budget.
    assert!(
        pct < 2.0,
        "acceptance: enabled profiler overhead {pct:.2}% must stay under 2%"
    );

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"prof_off_secs\": {off_secs:.4},\n  \"prof_on_secs\": {on_secs:.4},\n  \"prof_overhead_pct\": {pct:.3},\n  \"total_wall_ms\": {:.3},\n  \"peak_rss_bytes\": {},\n  \"phase_count\": {},\n  \"detections\": {}",
        scenario.name,
        scenario.fleet.machines,
        scenario.sim.months,
        profile.total_wall_ns as f64 / 1e6,
        profile.peak_rss_bytes.unwrap_or(0),
        folded.len(),
        out.pipeline.detections.len(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_prof.json");
    mercurial_bench::write_bench_json(path, "e22_prof", reps as u64, &profile, &body);
    println!("\nbaseline written to BENCH_prof.json");
}

/// The committed paper scenario if present (runs from the repo), else the
/// environment-selected scale.
fn load_paper_scenario() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/paper.json");
    match std::fs::read_to_string(path) {
        Ok(json) => Scenario::from_json(&json).expect("scenarios/paper.json parses"),
        Err(_) => mercurial_bench::scenario_from_env(0x0e22),
    }
}
