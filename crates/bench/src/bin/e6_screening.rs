//! E6 — §6: the offline/online screening tradeoff and the value of
//! coverage growth.
//!
//! Compares four policies on the same fleet: online-only, offline-only,
//! combined, and combined-with-frozen-coverage (the ablation showing why
//! "our regular fleet-wide testing has expanded … a few times per year"
//! matters).
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e6_screening
//! ```

use mercurial::fault::FastSet;
use mercurial_fleet::topology::{FleetConfig, FleetTopology};
use mercurial_fleet::{Population, SignalLog};
use mercurial_screening::{
    DetectionRecord, EraSchedule, OfflineScreener, OnlineScreener, ScreeningStats,
};
use std::collections::HashSet;

struct PolicyResult {
    name: &'static str,
    records: Vec<DetectionRecord>,
    stats: ScreeningStats,
}

fn mean_month(records: &[DetectionRecord]) -> f64 {
    if records.is_empty() {
        return f64::NAN;
    }
    records.iter().map(|r| r.hour).sum::<f64>() / records.len() as f64 / 730.0
}

fn main() {
    mercurial_bench::header("E6 — screening policies: coverage vs cost");
    let months = 36;
    let mut cfg = FleetConfig::default_fleet();
    cfg.machines = 4_000;
    cfg.seed = 0xe6;
    // Boost incidence so the comparison has enough defects to count.
    for p in &mut cfg.products {
        p.mercurial_rate_per_core *= 10.0;
    }
    let topo = FleetTopology::build(cfg);
    let pop = Population::seed_from(&topo);
    println!(
        "fleet: 4000 machines, {} ground-truth mercurial cores, {months} months\n",
        pop.count()
    );

    let mut results = Vec::new();

    // Online only.
    {
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let (records, stats) =
            OnlineScreener::default().run(&topo, &pop, months, &mut detected, &mut log);
        results.push(PolicyResult {
            name: "online-only",
            records,
            stats,
        });
    }
    // Offline only.
    {
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let (records, stats) =
            OfflineScreener::default().run(&topo, &pop, months, &mut detected, &mut log);
        results.push(PolicyResult {
            name: "offline-only",
            records,
            stats,
        });
    }
    // Combined.
    {
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let (mut records, on_stats) =
            OnlineScreener::default().run(&topo, &pop, months, &mut detected, &mut log);
        let (off_records, off_stats) =
            OfflineScreener::default().run(&topo, &pop, months, &mut detected, &mut log);
        records.extend(off_records);
        results.push(PolicyResult {
            name: "combined",
            records,
            stats: ScreeningStats {
                core_screens: on_stats.core_screens + off_stats.core_screens,
                test_ops: on_stats.test_ops + off_stats.test_ops,
                drained_machine_hours: off_stats.drained_machine_hours,
                detections: on_stats.detections + off_stats.detections,
            },
        });
    }
    // Combined but with month-0 coverage frozen forever (ablation).
    {
        let frozen = EraSchedule::frozen(EraSchedule::default_history().era_at(0).clone());
        let mut detected = FastSet::default();
        let mut log = SignalLog::new();
        let online = OnlineScreener {
            schedule: frozen.clone(),
            ..OnlineScreener::default()
        };
        let offline = OfflineScreener {
            schedule: frozen,
            ..OfflineScreener::default()
        };
        let (mut records, on_stats) = online.run(&topo, &pop, months, &mut detected, &mut log);
        let (off_records, off_stats) = offline.run(&topo, &pop, months, &mut detected, &mut log);
        records.extend(off_records);
        results.push(PolicyResult {
            name: "combined-frozen-tests",
            records,
            stats: ScreeningStats {
                core_screens: on_stats.core_screens + off_stats.core_screens,
                test_ops: on_stats.test_ops + off_stats.test_ops,
                drained_machine_hours: off_stats.drained_machine_hours,
                detections: on_stats.detections + off_stats.detections,
            },
        });
    }

    println!(
        "{:<24} {:>10} {:>8} {:>16} {:>14} {:>12}",
        "policy", "detected", "recall", "mean-det-month", "drain-mach-h", "test-ops"
    );
    for r in &results {
        let unique: HashSet<_> = r.records.iter().map(|d| d.core).collect();
        println!(
            "{:<24} {:>10} {:>7.0}% {:>16.1} {:>14.0} {:>12.2e}",
            r.name,
            unique.len(),
            100.0 * unique.len() as f64 / pop.count() as f64,
            mean_month(&r.records),
            r.stats.drained_machine_hours,
            r.stats.test_ops as f64,
        );
    }
    println!("\nshape checks (the §6 qualitative claims):");
    println!("  • the two policies catch different defects: offline's (f,V,T) sweeps reach");
    println!("    frequency/voltage-gated defects online can never see, while online's");
    println!("    constant passes win on sheer frequency — at zero drain cost;");
    println!("  • combined > either alone (the union is strictly better);");
    println!("  • freezing the month-0 test corpus permanently costs recall: the eras that");
    println!("    add vector/atomics/crypto/address-gen coverage are what catch those defects.");
}
