//! E9 — §7 / refs [2, 11, 27]: SDC-resilient algorithms and program
//! checkers under systematic fault injection.
//!
//! Reproduces the evaluation style of the cited prior work (which the
//! paper notes "evaluated algorithms using fault injection, a technique
//! that does not require access to a large fleet"):
//!
//! * ABFT matrix multiply: detection + correction coverage over every
//!   output position;
//! * checksummed LU: detection coverage over injection sites in the
//!   elimination arithmetic;
//! * fault-tolerant sorting: masking coverage over corrupting cores;
//! * Freivalds' checker: false-accept rate vs round count.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e9_abft
//! ```

use mercurial_corpus::matmul::{freivalds_check, matmul_naive, Matrix};
use mercurial_corpus::sort::{sort, SortAlgo};
use mercurial_fault::CounterRng;
use mercurial_mitigation::abft::{lu_checksummed_via, AbftProduct, AbftVerdict};
use mercurial_mitigation::ft_sort;

fn main() {
    mercurial_bench::header("E9 — ABFT, FT-sort, and Blum-Kannan checkers under injection");

    // ABFT GEMM: inject at every output position.
    let n = 16;
    let a = Matrix::random(n, n, 0xe9);
    let b = Matrix::random(n, n, 0xe9 + 1);
    let honest = matmul_naive(&a, &b);
    let mut detected = 0;
    let mut corrected = 0;
    let total = n * n;
    for r in 0..n {
        for c in 0..n {
            let mut p = AbftProduct::multiply(&a, &b);
            p.matrix_mut()[(r, c)] += 1.0;
            match p.verify_and_correct() {
                Ok(AbftVerdict::Corrected { row, col, .. }) if row == r && col == c => {
                    detected += 1;
                    if p.matrix().max_abs_diff(&honest) < 1e-6 {
                        corrected += 1;
                    }
                }
                Ok(AbftVerdict::Clean) => {}
                _ => detected += 1,
            }
        }
    }
    println!("ABFT GEMM ({n}x{n}), one injected corruption per output position:");
    println!(
        "  detected {}/{} ({:.1}%), corrected back to truth {}/{} ({:.1}%)",
        detected,
        total,
        100.0 * detected as f64 / total as f64,
        corrected,
        total,
        100.0 * corrected as f64 / total as f64
    );

    // Checksummed LU: inject at every 5th mul-sub site.
    let a = Matrix::random(12, 12, 0xe9 + 2);
    let honest_calls = {
        let mut n = 0u64;
        let _ = lu_checksummed_via(&a, |x, y, z| {
            n += 1;
            x - y * z
        });
        n
    };
    let mut caught = 0;
    let mut sites = 0;
    for site in (1..=honest_calls).step_by(5) {
        let mut call = 0u64;
        let r = lu_checksummed_via(&a, |x, y, z| {
            call += 1;
            if call == site {
                x - y * z + 0.5
            } else {
                x - y * z
            }
        });
        sites += 1;
        if r.is_err() {
            caught += 1;
        }
    }
    println!("\nchecksummed LU (12x12), one corrupted multiply-subtract per run:");
    println!(
        "  detected {caught}/{sites} injection sites ({:.1}%)",
        100.0 * caught as f64 / sites as f64
    );

    // FT-sort: one corrupting core among four, every algorithm.
    println!("\nfault-tolerant sorting (10k elements, core 0 corrupts post-sort):");
    for algo in SortAlgo::ALL {
        let rng = CounterRng::new(0xe9 + 3);
        let input: Vec<u64> = (0..10_000u64).map(|i| rng.at(i)).collect();
        let mut data = input.clone();
        let stats = ft_sort(
            &mut data,
            |core, buf| {
                sort(algo, buf);
                if core == 0 {
                    let mid = buf.len() / 2;
                    buf[mid] ^= 0x100;
                }
            },
            4,
        )
        .expect("retry on core 1 succeeds");
        let mut expect = input;
        expect.sort_unstable();
        assert_eq!(data, expect);
        println!(
            "  {:<6} masked the corruption with {} sorts ({} would suffice fault-free)",
            algo.name(),
            stats.sorts,
            1
        );
    }

    // Freivalds: false-accept rate of a corrupted product vs rounds.
    println!("\nFreivalds' checker: acceptance of a corrupted 32x32 product vs rounds:");
    let a = Matrix::random(32, 32, 0xe9 + 4);
    let b = Matrix::random(32, 32, 0xe9 + 5);
    let mut c = matmul_naive(&a, &b);
    c[(3, 3)] += 1.0;
    println!("  rounds  accepts(out of 200 seeds)   bound 2^-rounds");
    for rounds in [1u32, 2, 4, 8] {
        let accepts = (0..200)
            .filter(|&seed| freivalds_check(&a, &b, &c, rounds, seed))
            .count();
        println!(
            "  {:>6}  {:>24}   {:.3}",
            rounds,
            accepts,
            0.5f64.powi(rounds as i32)
        );
    }
    println!("\npaper §7 / Blum-Kannan [2]: efficient checkers let applications 'decide");
    println!("whether to continue past a checkpoint or to retry' at O(n^2), not O(n^3).");
}
