//! E1 — Figure 1: "Reported CEE rates (normalized)".
//!
//! Regenerates the paper's only figure: user-reported vs. automatically-
//! reported CEE incidents per machine per month, normalized to an
//! arbitrary baseline, with the automatic series gradually increasing.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin fig1
//! MERCURIAL_SCALE=paper cargo run --release -p mercurial-bench --bin fig1
//! ```

use mercurial::fig1::run_fig1;

fn main() {
    let scenario = mercurial_bench::scenario_from_env(0x0f19);
    mercurial_bench::header(&format!(
        "E1 / Figure 1 — Reported CEE rates (normalized)   [{}: {} machines, {} months]",
        scenario.name, scenario.fleet.machines, scenario.sim.months
    ));
    let result = run_fig1(&scenario);
    println!("{}", result.render());
    println!("normalized series (CSV):\n{}", result.to_csv());
    println!(
        "auto-detector trend slope: {:+.4}/month  (paper: 'gradually increasing' → positive)",
        result.auto_trend_slope()
    );
    println!(
        "user-report total: {}   auto-report total: {}",
        result.user.counts().iter().sum::<u64>(),
        result.auto.counts().iter().sum::<u64>(),
    );
}
