//! E8 — §2/§7: blast radius, and how checks/checkpoints contain it.
//!
//! "Errors in computation due to mercurial cores can therefore compound to
//! significantly increase the blast radius of the failures they can
//! cause." Sweeps check spacing in the propagation DAG and reports the
//! fraction of final outputs corrupted by one silent CEE, plus the
//! checkpoint/restart re-execution cost from §7.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e8_blast
//! ```

use mercurial_mitigation::{BlastModel, CheckpointPolicy, Checkpointed};

fn main() {
    mercurial_bench::header("E8 — blast radius vs check spacing");
    let base = BlastModel::unchecked(64, 128, 3);
    println!("pipeline: 64 levels x 128 values, fan-in 3, one silent corruption at level 0\n");
    println!("check-every-k-levels   blast-radius   contaminated-nodes   detected");
    for check in [None, Some(32), Some(16), Some(8), Some(4), Some(2)] {
        let model = BlastModel {
            check_every: check,
            ..base
        };
        let report = model.run(0, 64);
        println!(
            "{:>20}   {:>12.1}%   {:>18}   {}",
            check
                .map(|k| k.to_string())
                .unwrap_or_else(|| "never".to_string()),
            100.0 * report.radius(),
            report.contaminated_nodes,
            report.detected,
        );
    }
    // A corruption can also strike downstream of the last check level and
    // escape: sweep the injection over every level for the honest average
    // exposure.
    println!("\ncorruption injected at every level (averaged):");
    println!("check-every-k-levels   mean-blast-radius   escaped-injections");
    for check in [None, Some(32), Some(16), Some(8), Some(4), Some(2)] {
        let model = BlastModel {
            check_every: check,
            ..base
        };
        let mut radius_sum = 0.0;
        let mut escaped = 0u32;
        for level in 0..model.levels {
            let report = model.run(level, 64);
            radius_sum += report.radius();
            if report.contaminated_sinks > 0 {
                escaped += 1;
            }
        }
        println!(
            "{:>20}   {:>16.1}%   {:>13}/{}",
            check
                .map(|k| k.to_string())
                .unwrap_or_else(|| "never".to_string()),
            100.0 * radius_sum / model.levels as f64,
            escaped,
            model.levels,
        );
    }

    println!("\npaper: unchecked corruption compounds ('bad metadata can cause the loss of");
    println!("an entire file system'); every check level it crosses multiplies the damage;");
    println!("tighter check spacing shrinks both the escape window and the mean radius.");

    // §7's checkpoint/restart: the re-execution overhead of recovery.
    mercurial_bench::header("E8b — checkpoint/restart recovery cost (§7)");
    println!("checkpoint-every   corruptions   extra-steps   overhead");
    for every in [4u64, 16, 64, 256] {
        for n_corruptions in [1u32, 4] {
            let mut remaining = n_corruptions;
            let total_steps = 1024u64;
            let engine = Checkpointed::new(
                0u64,
                CheckpointPolicy {
                    checkpoint_every: every,
                    max_rollbacks: 64,
                },
            );
            let (_, stats) = engine
                .run(
                    total_steps,
                    |_core, i, s: &mut u64| {
                        *s = s.wrapping_add(i);
                    },
                    |_s| {
                        // The integrity check fails once per outstanding
                        // corruption (detection at the next boundary).
                        if remaining > 0 {
                            remaining -= 1;
                            false
                        } else {
                            true
                        }
                    },
                )
                .expect("recovers");
            println!(
                "{:>16}   {:>11}   {:>11}   {:.3}x",
                every,
                n_corruptions,
                stats.steps_executed - total_steps,
                stats.overhead(total_steps),
            );
        }
    }
    println!("\nthe tradeoff §7 implies: tight checkpointing bounds re-execution (cheap");
    println!("recovery) at the cost of more frequent checks; loose checkpointing is the");
    println!("opposite. Either way the *fault-free* path costs only the checks.");
}
