//! E18 — the event-driven sparse fleet core at fleet-study scale.
//!
//! Fleet studies only see mercurial cores at hundreds of thousands to
//! millions of machines (Dixit et al.; Hochschild et al. §3's "a few
//! mercurial cores per several thousand machines"), which makes healthy
//! machines the asymptote: almost every core the simulator pays for does
//! nothing. The sparse core (`SimEngine::Sparse`) schedules onset,
//! activation-edge, and deploy events on the `EventQueue` heap and the
//! screeners fold all-healthy machines into closed-form accounting, so
//! per-epoch work scales with *defective* state while staying bit-for-bit
//! identical to the dense walk. This experiment prices the claim: the
//! 20k-machine paper scenario before/after, and 1M machines × 36 months
//! against the acceptance budget — the time 20k took on the dense path
//! before the refactor (BENCH_watch.json).
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e18_sparse [-- --smoke]
//! ```
//!
//! `--smoke` skips absolute timings and checks the contracts instead:
//! dense/sparse bit-parity through the closed-loop driver (traced and
//! untraced, 1/2/8 workers), stepping-granularity invariance, and the
//! 1M-machine event accounting — zero per-epoch work on healthy machines,
//! wall clock within a self-calibrated budget (`make sparse-smoke`).

use std::time::Instant;

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::{SignalLog, SimEngine};
use mercurial::{FleetExperiment, Scenario};

/// The 20k-machine dense-path closed-loop time before this refactor
/// (BENCH_watch.json `watch_off_secs`, same machine class): the
/// acceptance budget for the 1M-machine sparse run.
const DENSE_20K_BEFORE_SECS: f64 = 7.8201;

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

/// The committed paper scenario if present (runs from the repo), else the
/// environment-selected scale.
fn load_paper_scenario() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/paper.json");
    match std::fs::read_to_string(path) {
        Ok(json) => Scenario::from_json(&json).expect("scenarios/paper.json parses"),
        Err(_) => mercurial_bench::scenario_from_env(0x0e18),
    }
}

/// Feedback on, tracing and watch off: the configuration the ~8 s
/// BENCH_watch baseline was measured under.
fn closed_loop_scenario(base: &Scenario, engine: SimEngine) -> Scenario {
    let mut s = base.clone();
    s.closed_loop.feedback = true;
    s.trace.enabled = false;
    s.watch.enabled = false;
    s.sim.engine = engine;
    s
}

/// The fleet-study scenario: the paper config at 1,000,000 machines.
fn fleet_study_scenario(base: &Scenario) -> Scenario {
    let mut s = closed_loop_scenario(base, SimEngine::Sparse);
    s.name = "fleet-study-1m".into();
    s.fleet.machines = 1_000_000;
    s
}

// ------------------------------------------------------------- smoke mode

fn run_smoke() {
    mercurial_bench::header("E18 — sparse fleet core contracts (smoke)");

    // 1. Traced driver parity: watch report, trace JSONL, signal log, and
    //    summary are bit-identical dense vs sparse at 1/2/8 workers.
    let mut traced = Scenario::demo(7);
    traced.closed_loop.feedback = true;
    traced.trace.enabled = true;
    traced.watch.enabled = true;
    traced.sim.engine = SimEngine::Dense;
    let reference = ClosedLoopDriver::execute(&traced);
    let ref_report = reference.watch.as_ref().expect("watch enabled").render();
    let ref_trace = reference.trace.to_jsonl();
    assert!(!reference.pipeline.detections.is_empty());
    for parallelism in [1usize, 2, 8] {
        let mut s = traced.clone();
        s.sim.engine = SimEngine::Sparse;
        s.sim.parallelism = parallelism;
        let out = ClosedLoopDriver::execute(&s);
        assert_eq!(
            out.watch.as_ref().expect("watch enabled").render(),
            ref_report,
            "watch report diverges at {parallelism} workers"
        );
        assert_eq!(out.trace.to_jsonl(), ref_trace);
        assert_eq!(out.pipeline.signals.all(), reference.pipeline.signals.all());
        assert_eq!(out.pipeline.sim_summary, reference.pipeline.sim_summary);
    }
    println!("parity: traced closed loop identical dense vs sparse at 1/2/8 workers");

    // 2. Untraced driver parity — the screeners' closed-form fast plans.
    let untraced_ref = ClosedLoopDriver::execute(&closed_loop_scenario(&Scenario::demo(11), {
        SimEngine::Dense
    }));
    for parallelism in [1usize, 8] {
        let mut s = closed_loop_scenario(&Scenario::demo(11), SimEngine::Sparse);
        s.sim.parallelism = parallelism;
        let out = ClosedLoopDriver::execute(&s);
        assert_eq!(out.pipeline.detections, untraced_ref.pipeline.detections);
        assert_eq!(out.pipeline.sim_summary, untraced_ref.pipeline.sim_summary);
        assert_eq!(
            out.pipeline.burnin_stats,
            untraced_ref.pipeline.burnin_stats
        );
        assert_eq!(
            out.pipeline.offline_stats,
            untraced_ref.pipeline.offline_stats
        );
        assert_eq!(
            out.pipeline.online_stats,
            untraced_ref.pipeline.online_stats
        );
    }
    println!("parity: untraced closed loop (screener fast plans) identical at 1/8 workers");

    // 3. Stepping-granularity invariance at the sim layer.
    let mut sim_s = Scenario::demo(21);
    sim_s.sim.parallelism = 2;
    sim_s.sim.engine = SimEngine::Dense;
    let dense_exp = FleetExperiment::build(&sim_s);
    let (ref_log, ref_sum) = dense_exp.sim().run();
    for granularity in [1u32, 5, u32::MAX] {
        let mut s = sim_s.clone();
        s.sim.engine = SimEngine::Sparse;
        let sim = FleetExperiment::build(&s).sim();
        let mut state = sim.begin();
        let mut log = SignalLog::new();
        let mut summary = Default::default();
        while !state.is_done() {
            sim.step_epochs(&mut state, granularity, &mut log, &mut summary);
        }
        log.sort_by_time();
        assert_eq!(log.all(), ref_log.all(), "log diverges at {granularity}");
        assert_eq!(summary, ref_sum, "summary diverges at {granularity}");
    }
    println!("parity: sparse == dense at stepping granularities 1/5/MAX");

    // 4. The fleet-study smoke: 1M machines × 36 months. Healthy machines
    //    must cost zero per-epoch work (event accounting), and the closed
    //    loop must finish within the budget — the larger of the recorded
    //    pre-refactor 20k dense time and 4× the in-process 20k dense time
    //    (so a slow CI machine scales the budget with itself).
    let paper = load_paper_scenario();
    let t = Instant::now();
    let dense_20k = closed_loop_scenario(&paper, SimEngine::Dense);
    let out_20k = ClosedLoopDriver::execute(&dense_20k);
    let dense_20k_secs = t.elapsed().as_secs_f64();
    assert!(!out_20k.pipeline.detections.is_empty());
    println!(
        "calibrate: dense 20k closed loop {:.2} s ({} detections)",
        dense_20k_secs,
        out_20k.pipeline.detections.len()
    );

    let study = fleet_study_scenario(&paper);
    let t = Instant::now();
    let experiment = FleetExperiment::build(&study);
    let build_secs = t.elapsed().as_secs_f64();
    let mercurial_cores = experiment.population().count() as u64;

    // Event accounting on the raw sim: the clock touches defective cores
    // only — deploy/onset events bounded by a few per mercurial core,
    // live-core epochs bounded by mercurial cores × epochs, healthy cores
    // contributing exactly zero.
    let sim = experiment.sim();
    let mut state = sim.begin();
    let mut log = SignalLog::new();
    let mut summary = Default::default();
    let t = Instant::now();
    while !state.is_done() {
        sim.step_epochs(&mut state, u32::MAX, &mut log, &mut summary);
    }
    let sim_secs = t.elapsed().as_secs_f64();
    let clock = state.clock_stats();
    let epochs = state.total_epochs() as u64;
    let core_epochs = sim.topology().total_cores() * epochs;
    assert!(
        clock.events_processed <= 8 * mercurial_cores,
        "clock processed {} events for {mercurial_cores} mercurial cores",
        clock.events_processed
    );
    assert!(
        clock.live_core_epochs <= mercurial_cores * epochs,
        "live-core epochs exceed the defective population"
    );
    println!(
        "accounting: {} machines, {mercurial_cores} mercurial cores, {} clock events, \
         {} live-core epochs ({:.8}% of {core_epochs} core-epochs), sim {sim_secs:.2} s",
        study.fleet.machines,
        clock.events_processed,
        clock.live_core_epochs,
        100.0 * clock.live_core_epochs as f64 / core_epochs as f64,
    );

    let t = Instant::now();
    let out_1m = ClosedLoopDriver::execute_on(&study, &experiment);
    let sparse_1m_secs = t.elapsed().as_secs_f64();
    let budget = DENSE_20K_BEFORE_SECS.max(4.0 * dense_20k_secs);
    println!(
        "budget: sparse 1M closed loop {sparse_1m_secs:.2} s (build {build_secs:.2} s, \
         {} detections) vs budget {budget:.2} s",
        out_1m.pipeline.detections.len()
    );
    assert!(
        sparse_1m_secs <= budget,
        "acceptance: 1M x 36mo took {sparse_1m_secs:.2} s, budget {budget:.2} s"
    );
    assert!(!out_1m.pipeline.detections.is_empty());
    println!("\nE18 smoke: all sparse-core contracts hold");
}

// -------------------------------------------------------------- full mode

fn run_full() {
    let paper = load_paper_scenario();
    mercurial_bench::header(&format!(
        "E18 — sparse fleet core   [{}: {} machines, {} months]",
        paper.name, paper.fleet.machines, paper.sim.months
    ));

    // Interleave the 20k arms (dense, sparse, dense, …) so thermal drift
    // cannot masquerade as engine cost; best of `reps` each.
    let reps = 3;
    let mut dense_20k = f64::INFINITY;
    let mut sparse_20k = f64::INFINITY;
    let mut detections_20k = (0usize, 0usize);
    let prof = mercurial_prof::Prof::enabled();
    for _ in 0..reps {
        let t = Instant::now();
        let d = prof.scope("loop.dense_20k", || {
            ClosedLoopDriver::execute(&closed_loop_scenario(&paper, SimEngine::Dense))
        });
        dense_20k = dense_20k.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let s = prof.scope("loop.sparse_20k", || {
            ClosedLoopDriver::execute(&closed_loop_scenario(&paper, SimEngine::Sparse))
        });
        sparse_20k = sparse_20k.min(t.elapsed().as_secs_f64());
        assert_eq!(
            d.pipeline.detections, s.pipeline.detections,
            "engines disagree at 20k"
        );
        detections_20k = (d.pipeline.detections.len(), s.pipeline.detections.len());
    }
    println!("closed loop 20k, dense (was {DENSE_20K_BEFORE_SECS:.2} s pre-refactor):");
    println!(
        "  dense:  {dense_20k:>8.3} s   ({} detections)",
        detections_20k.0
    );
    println!(
        "  sparse: {sparse_20k:>8.3} s   ({} detections)",
        detections_20k.1
    );

    // The fleet-study arm: 1M machines × 36 months, sparse, once.
    let study = fleet_study_scenario(&paper);
    let t = Instant::now();
    let experiment = prof.scope("study.build_1m", || FleetExperiment::build(&study));
    let build_1m = t.elapsed().as_secs_f64();
    let mercurial_cores = experiment.population().count() as u64;

    let sim = experiment.sim();
    let mut state = sim.begin();
    let mut log = SignalLog::new();
    let mut summary = Default::default();
    let t = Instant::now();
    {
        let _p = prof.span("study.sim_1m");
        while !state.is_done() {
            sim.step_epochs(&mut state, u32::MAX, &mut log, &mut summary);
        }
    }
    let sim_1m = t.elapsed().as_secs_f64();
    let clock = state.clock_stats();
    let epochs = state.total_epochs();

    let t = Instant::now();
    let out_1m = prof.scope("study.closed_loop_1m", || {
        ClosedLoopDriver::execute_on(&study, &experiment)
    });
    let sparse_1m = t.elapsed().as_secs_f64();
    println!("fleet study 1M x {} months, sparse:", study.sim.months);
    println!("  build:       {build_1m:>8.3} s   ({mercurial_cores} mercurial cores)");
    println!(
        "  sim only:    {sim_1m:>8.3} s   ({} clock events, {} live-core epochs)",
        clock.events_processed, clock.live_core_epochs
    );
    println!(
        "  closed loop: {sparse_1m:>8.3} s   ({} detections)",
        out_1m.pipeline.detections.len()
    );

    // Acceptance: 1M × 36 months within the pre-refactor 20k dense time.
    assert!(
        sparse_1m <= DENSE_20K_BEFORE_SECS,
        "acceptance: 1M x 36mo took {sparse_1m:.2} s, budget {DENSE_20K_BEFORE_SECS:.2} s"
    );

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"dense_20k_before_secs\": {DENSE_20K_BEFORE_SECS},\n  \"dense_20k_secs\": {dense_20k:.4},\n  \"sparse_20k_secs\": {sparse_20k:.4},\n  \"study_machines\": {},\n  \"sparse_1m_build_secs\": {build_1m:.4},\n  \"sparse_1m_sim_secs\": {sim_1m:.4},\n  \"sparse_1m_closed_loop_secs\": {sparse_1m:.4},\n  \"mercurial_cores_1m\": {mercurial_cores},\n  \"clock_events_1m\": {},\n  \"live_core_epochs_1m\": {},\n  \"epochs\": {epochs}",
        paper.name,
        paper.fleet.machines,
        paper.sim.months,
        study.fleet.machines,
        clock.events_processed,
        clock.live_core_epochs,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sparse.json");
    mercurial_bench::write_bench_json(path, "e18_sparse", reps as u64, &prof.finish(), &body);
    println!("\nbaseline written to BENCH_sparse.json");
}
