//! Wall-clock scaling of the deterministic parallel fleet runner.
//!
//! Runs the demo scenario's fleet simulation at several thread counts,
//! verifies the outputs are bit-for-bit identical (the determinism
//! contract), and reports wall-clock time and speedup versus serial.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin par_speedup [-- <machines> [months]]
//! ```

use mercurial::Scenario;
use mercurial_fleet::topology::FleetTopology;
use mercurial_fleet::{FleetSim, Population};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let machines: u32 = args
        .first()
        .map(|a| a.parse().expect("machines: integer"))
        .unwrap_or(4000);
    let months: u32 = args
        .get(1)
        .map(|a| a.parse().expect("months: integer"))
        .unwrap_or(6);

    let mut scenario = Scenario::demo(0xacce55);
    scenario.fleet.machines = machines;
    scenario.sim.months = months;
    let topo = FleetTopology::build(scenario.fleet.clone());
    let pop = Population::seed_from(&topo);

    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!("fleet: {machines} machines, {months} months; host CPUs: {cpus}");

    let mut reference = None;
    let mut serial_secs = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let mut config = scenario.sim.clone();
        config.parallelism = threads;
        let sim = FleetSim::new(topo.clone(), pop.clone(), config);
        let start = Instant::now();
        let (log, summary) = sim.run();
        let secs = start.elapsed().as_secs_f64();

        match &reference {
            None => {
                serial_secs = secs;
                reference = Some((log, summary));
            }
            Some((ref_log, ref_summary)) => {
                assert_eq!(
                    &summary, ref_summary,
                    "summary diverged at {threads} threads"
                );
                assert_eq!(
                    log.all(),
                    ref_log.all(),
                    "signal log diverged at {threads} threads"
                );
            }
        }
        println!(
            "threads {threads}: {secs:>7.3} s  speedup {:>5.2}x  (output identical: yes)",
            serial_secs / secs
        );
    }
}
