//! E19 — fleet-as-a-service: what an impaired telemetry link costs.
//!
//! `mercurial-serve` splits the closed loop into shard workers streaming
//! evidence to one scoreboard/watch server over a framed socket protocol,
//! with a deterministic link-impairment layer (loss, delay, duplication,
//! reorder) between them. The paper's detection machinery implicitly
//! assumes the signals *arrive*; this experiment prices that assumption:
//! detection-latency p95 and alert fidelity (missed / late / spurious
//! against the clean run) as functions of the impairment level.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e19_serve [-- --smoke]
//! ```
//!
//! Full mode sweeps loss levels (with a delay+duplication+reorder arm on
//! top of the worst loss) and writes `BENCH_serve.json`. `--smoke` checks
//! the contracts instead: frame round-trip, zero-impairment parity with
//! the in-process driver, and loss monotonicity — the shared-uniform
//! coupling guarantees a higher loss level drops a superset of frames
//! (`make serve-smoke`).

use std::time::Instant;

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::scenario::ImpairConfig;
use mercurial::Scenario;
use mercurial_serve::{alert_fidelity, p95, run_served, run_served_impaired, ServeOptions};
use mercurial_trace::export::to_prometheus;
use mercurial_watch::{Cmp, EpochField, Rule, RuleKind, RuleSet, Source};

/// Loss sweep; each level reruns the full served loop.
const LOSS_LEVELS: [f64; 5] = [0.0, 0.05, 0.1, 0.3, 0.6];

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

/// The served scenario: demo fleet, feedback on, tracing and watch on
/// (the watch report is the fidelity measurand), sparse engine.
fn serve_scenario(seed: u64, workers: u32) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.sim.engine = SimEngine::Sparse;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s.serve.workers = workers;
    s
}

/// The scenario's default rules plus hair-trigger ones, so the clean run
/// fires enough alerts for missed/late classification to have support.
fn fidelity_rules(scenario: &Scenario) -> RuleSet {
    let mut rules = scenario.watch.rule_set();
    rules.rules.push(Rule {
        scope: Default::default(),
        name: "ops-hair-trigger".into(),
        kind: RuleKind::Threshold {
            source: Source::EpochMax(EpochField::CorruptOps),
            op: Cmp::Gt,
            limit: 10.0,
        },
    });
    rules.rules.push(Rule {
        scope: Default::default(),
        name: "ops-windowed".into(),
        kind: RuleKind::Windowed {
            field: EpochField::CorruptOps,
            op: Cmp::Gt,
            limit: 1.0,
            window: 3,
        },
    });
    rules.rules.push(Rule {
        scope: Default::default(),
        name: "latency-hair-trigger".into(),
        kind: RuleKind::Percentile {
            histogram: "detect.latency_hours".into(),
            q: 0.95,
            op: Cmp::Ge,
            limit: 1.0,
        },
    });
    rules
}

fn opts(scenario: &Scenario) -> ServeOptions<'static> {
    ServeOptions {
        rules: Some(fidelity_rules(scenario)),
        ..ServeOptions::default()
    }
}

// ------------------------------------------------------------- smoke mode

fn run_smoke() {
    mercurial_bench::header("E19 — served-topology contracts (smoke)");

    // 1. Frame codec round-trip: back-to-back frames, clean EOF.
    {
        use mercurial_serve::frame::{read_frame, write_frame};
        let mut buf = Vec::new();
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![7], vec![0xAB; 4096]];
        for p in &payloads {
            write_frame(&mut buf, p).expect("write frame");
        }
        let mut r = &buf[..];
        for p in &payloads {
            assert_eq!(read_frame(&mut r).expect("read frame"), Some(p.clone()));
        }
        assert_eq!(read_frame(&mut r).expect("clean EOF"), None);
        println!("frames: round-trip and boundary EOF ok");
    }

    // 2. Zero-impairment parity: the served topology reproduces the
    //    in-process driver bit-for-bit at 1/2/4 workers.
    let reference = ClosedLoopDriver::execute(&serve_scenario(7, 1));
    let ref_watch = reference.watch.as_ref().expect("watch enabled").render();
    let ref_prom = to_prometheus(&reference.trace);
    assert!(!reference.pipeline.detections.is_empty());
    for workers in [1u32, 2, 4] {
        let s = serve_scenario(7, workers);
        let served = run_served(&s, &ServeOptions::default()).expect("served run");
        assert_eq!(served.link.dropped, 0);
        let out = &served.outcome;
        assert_eq!(out.pipeline.detections, reference.pipeline.detections);
        assert_eq!(out.pipeline.signals.all(), reference.pipeline.signals.all());
        assert_eq!(out.pipeline.sim_summary, reference.pipeline.sim_summary);
        assert_eq!(out.series, reference.series);
        assert_eq!(
            out.watch.as_ref().expect("watch enabled").render(),
            ref_watch
        );
        assert_eq!(to_prometheus(&out.trace), ref_prom);
    }
    println!("parity: served == in-process bit-for-bit at 1/2/4 workers");

    // 3. Loss monotonicity: drop decisions are a pure function of
    //    (seed, worker, epoch) under shared-uniform coupling, so a higher
    //    loss level drops a superset of frames — and therefore a
    //    monotonically non-decreasing count at equal frame offers.
    let mut last_dropped = 0u64;
    let mut frames = None;
    for loss in [0.0, 0.2, 0.5, 0.9] {
        let s = serve_scenario(7, 2);
        let impair = ImpairConfig {
            loss,
            ..ImpairConfig::default()
        };
        let served = run_served_impaired(&s, impair, &ServeOptions::default()).expect("served");
        let f = *frames.get_or_insert(served.link.frames);
        assert_eq!(
            served.link.frames, f,
            "frame offers must not vary with loss"
        );
        assert!(
            served.link.dropped >= last_dropped,
            "dropped frames must be monotone in loss"
        );
        last_dropped = served.link.dropped;
    }
    assert!(last_dropped > 0, "loss 0.9 must actually drop frames");
    println!("impairment: dropped frames monotone across loss 0/0.2/0.5/0.9");

    println!("\nE19 smoke: all served-topology contracts hold");
}

// -------------------------------------------------------------- full mode

fn run_full() {
    let workers = 2u32;
    let seed = 7u64;
    let base = serve_scenario(seed, workers);
    mercurial_bench::header(&format!(
        "E19 — fleet-as-a-service   [{}: {} machines, {} months, {workers} workers]",
        base.name, base.fleet.machines, base.sim.months
    ));
    let opts = opts(&base);

    // The clean served run is ground truth for fidelity and latency.
    let prof = mercurial_prof::Prof::enabled();
    let t = Instant::now();
    let clean = prof
        .scope("serve.clean", || run_served(&base, &opts))
        .expect("clean served run");
    let clean_secs = t.elapsed().as_secs_f64();
    let clean_watch = clean.outcome.watch.clone().expect("watch enabled");
    let clean_fired = clean_watch.alerts().len();
    let clean_p95 = p95(&clean.outcome.pipeline.detection_latency_hours).unwrap_or(0.0);
    println!(
        "clean: {clean_secs:.2} s, {} detections, p95 latency {clean_p95:.0} h, {clean_fired} alerts fired",
        clean.outcome.pipeline.detections.len()
    );
    assert!(
        clean_fired > 0,
        "fidelity needs the clean run to fire alerts"
    );

    let mut rows = Vec::new();
    for loss in LOSS_LEVELS {
        let impair = ImpairConfig {
            loss,
            ..ImpairConfig::default()
        };
        let served = prof
            .scope("serve.loss_sweep", || {
                run_served_impaired(&base, impair, &opts)
            })
            .expect("impaired run");
        rows.push(measure("loss", loss, &served, &clean_watch, clean_p95));
    }
    // One arm with everything on, stacked on a mid loss level: the
    // realistic degraded network rather than a single failure mode.
    let chaos = ImpairConfig {
        loss: 0.3,
        max_delay_epochs: 4,
        duplicate: 0.2,
        reorder: 0.2,
        ..ImpairConfig::default()
    };
    let served = prof
        .scope("serve.chaos", || run_served_impaired(&base, chaos, &opts))
        .expect("chaos run");
    rows.push(measure("chaos", 0.3, &served, &clean_watch, clean_p95));

    // Acceptance: dropped frames strictly track the loss level, and the
    // fidelity degradation score is monotone (non-decreasing) in loss.
    for pair in rows.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        if a.arm == "loss" && b.arm == "loss" {
            assert!(
                b.dropped >= a.dropped,
                "dropped frames must be monotone in loss"
            );
            assert!(
                b.degradation >= a.degradation,
                "alert-fidelity degradation must be monotone in loss \
                 ({} at {}, {} at {})",
                a.degradation,
                a.level,
                b.degradation,
                b.level
            );
        }
    }

    let json_rows: Vec<String> = rows.iter().map(Row::to_json).collect();
    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"workers\": {workers},\n  \"seed\": {seed},\n  \"rules\": {},\n  \"clean_secs\": {clean_secs:.4},\n  \"clean_alerts_fired\": {clean_fired},\n  \"clean_detect_latency_p95_hours\": {clean_p95:.1},\n  \"sweep\": [\n{}\n  ]",
        base.name,
        base.fleet.machines,
        base.sim.months,
        opts.rules.as_ref().map_or(0, |r| r.rules.len()),
        json_rows.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    mercurial_bench::write_bench_json(path, "e19_serve", 1, &prof.finish(), &body);
    println!("\ndegradation curves written to BENCH_serve.json");
}

struct Row {
    arm: &'static str,
    level: f64,
    frames: u64,
    dropped: u64,
    delayed: u64,
    duplicated: u64,
    reordered: u64,
    detections: usize,
    detect_p95: f64,
    matched: u32,
    missed: u32,
    late: u32,
    spurious: u32,
    lateness_hours: f64,
    degradation: f64,
}

fn measure(
    arm: &'static str,
    level: f64,
    served: &mercurial_serve::ServedOutcome,
    clean_watch: &mercurial_watch::WatchReport,
    clean_p95: f64,
) -> Row {
    let watch = served.outcome.watch.as_ref().expect("watch enabled");
    let f = alert_fidelity(clean_watch, watch);
    let detect_p95 = p95(&served.outcome.pipeline.detection_latency_hours).unwrap_or(f64::NAN);
    let l = &served.link;
    println!(
        "{arm} {level:>4.2}: dropped {}/{} frames, {} detections, p95 {detect_p95:>6.0} h \
         (clean {clean_p95:.0}), fidelity matched/missed/late/spurious {}/{}/{}/{} \
         (degradation {:.1})",
        l.dropped,
        l.frames,
        served.outcome.pipeline.detections.len(),
        f.matched,
        f.missed,
        f.late,
        f.spurious,
        f.degradation()
    );
    Row {
        arm,
        level,
        frames: l.frames,
        dropped: l.dropped,
        delayed: l.delayed,
        duplicated: l.duplicated,
        reordered: l.reordered,
        detections: served.outcome.pipeline.detections.len(),
        detect_p95,
        matched: f.matched,
        missed: f.missed,
        late: f.late,
        spurious: f.spurious,
        lateness_hours: f.lateness_hours,
        degradation: f.degradation(),
    }
}

impl Row {
    fn to_json(&self) -> String {
        format!(
            "    {{\"arm\": \"{}\", \"level\": {}, \"frames\": {}, \"dropped\": {}, \
             \"delayed\": {}, \"duplicated\": {}, \"reordered\": {}, \"detections\": {}, \
             \"detect_latency_p95_hours\": {:.1}, \"matched\": {}, \"missed\": {}, \
             \"late\": {}, \"spurious\": {}, \"lateness_hours\": {:.1}, \"degradation\": {:.1}}}",
            self.arm,
            self.level,
            self.frames,
            self.dropped,
            self.delayed,
            self.duplicated,
            self.reordered,
            self.detections,
            if self.detect_p95.is_nan() {
                -1.0
            } else {
                self.detect_p95
            },
            self.matched,
            self.missed,
            self.late,
            self.spurious,
            self.lateness_hours,
            self.degradation,
        )
    }
}
