//! E17 — alerting overhead: in-loop rule evaluation must be noise.
//!
//! The watch layer (`mercurial-watch`) evaluates alert rules at every
//! epoch boundary of the closed-loop driver and stamps firings into the
//! trace as `alert.fired` instants. The deal that makes always-on
//! alerting acceptable is that rule evaluation is a handful of float
//! comparisons per epoch — invisible next to the screeners and the
//! workload simulation. This experiment prices that deal at paper scale:
//! the closed loop with the watch block off vs on (default rule set), and
//! writes the baseline to `BENCH_watch.json`.
//!
//! ```text
//! cargo run --release -p mercurial-bench --bin e17_watch_overhead [-- --smoke]
//! ```
//!
//! `--smoke` skips the timing (meaningless on shared CI machines) and
//! instead checks the alerting correctness contracts at demo scale:
//! identical alert reports and byte-identical traces across 1/2/8
//! workers, one `alert.fired` instant per fired rule, a streaming sink
//! that reproduces the buffered export byte for byte, offline replay
//! agreeing with the in-loop engine, and a healthy fleet staying silent
//! on hair-trigger rules (`make watch-smoke`).

use std::time::Instant;

use mercurial::closedloop::{ClosedLoopDriver, RunOptions};
use mercurial::trace::{EventKind, JsonlStreamSink};
use mercurial::watch::{Cmp, EpochField, Rule, RuleKind, RuleSet, Source, WatchInput};
use mercurial::{FleetExperiment, Scenario};

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        run_smoke();
    } else {
        run_full();
    }
}

// ------------------------------------------------------------- smoke mode

fn watched_demo(seed: u64) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s
}

fn run_smoke() {
    mercurial_bench::header("E17 — alerting contracts (smoke)");
    // Seed 7 is a demo fleet whose worst epoch clears the default
    // corrupt-ops threshold, so the FIRED path is exercised end to end.
    let base = watched_demo(7);

    // 1. Determinism parity: the alert report and the trace carrying the
    //    alert.fired instants are pure functions of the scenario.
    let runs: Vec<(String, String)> = [1usize, 2, 8]
        .iter()
        .map(|&p| {
            let mut s = base.clone();
            s.sim.parallelism = p;
            let out = ClosedLoopDriver::execute(&s);
            let report = out.watch.expect("watch enabled");
            (report.render(), out.trace.to_jsonl())
        })
        .collect();
    assert!(
        runs[0].0.contains("FIRED"),
        "demo fleet must trip the default rules:\n{}",
        runs[0].0
    );
    assert!(
        runs.iter().all(|r| *r == runs[0]),
        "alerts/trace differ across 1/2/8 workers"
    );
    let fired = runs[0].0.matches("FIRED").count();
    println!("parity: report ({fired} fired) and trace identical at 1/2/8 workers: yes");

    // 2. Every fired rule leaves exactly one alert.fired instant.
    let out = ClosedLoopDriver::execute(&base);
    let instants = out
        .trace
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Instant && e.name == "alert.fired")
        .count();
    assert_eq!(instants, fired, "one alert.fired instant per fired rule");
    println!("instants: {instants} alert.fired instants for {fired} fired rules");

    // 3. Streaming drains reproduce the buffered export byte for byte.
    let experiment = FleetExperiment::build(&base);
    let mut sink = JsonlStreamSink::new(Vec::new());
    let streamed_out = ClosedLoopDriver::execute_with(
        &base,
        &experiment,
        RunOptions {
            sink: Some(&mut sink),
            ..RunOptions::default()
        },
    );
    let streamed = String::from_utf8(sink.into_inner()).expect("JSONL is UTF-8");
    let buffered = out.trace.to_jsonl();
    assert_eq!(streamed, buffered, "streamed bytes must match buffered");
    assert!(streamed_out.trace.events.is_empty(), "sink drained events");
    println!(
        "stream: {} bytes, byte-identical to buffered export",
        streamed.len()
    );

    // 4. Offline replay of the export agrees with the in-loop engine.
    let live = out.watch.expect("watch enabled").render();
    let input = WatchInput::from_jsonl(&buffered).expect("export replays");
    let offline = base.watch.rule_set().evaluate(&input, None).render();
    assert_eq!(live, offline, "replay must reproduce the in-loop report");
    println!("replay: offline evaluation matches the in-loop report");

    // 5. A fleet with no mercurial cores never fires, even on rules set
    //    to trip at the first corrupt op.
    let mut healthy = base.clone();
    for p in &mut healthy.fleet.products {
        p.mercurial_rate_per_core = 0.0;
    }
    let exp = FleetExperiment::build(&healthy);
    let hair_trigger = RuleSet {
        rules: vec![
            Rule {
                scope: Default::default(),
                name: "any-corruption".into(),
                kind: RuleKind::Threshold {
                    source: Source::EpochMax(EpochField::CorruptOps),
                    op: Cmp::Gt,
                    limit: 0.0,
                },
            },
            Rule {
                scope: Default::default(),
                name: "any-latency".into(),
                kind: RuleKind::Percentile {
                    histogram: "detect.latency_hours".into(),
                    q: 0.95,
                    op: Cmp::Ge,
                    limit: 1.0,
                },
            },
        ],
    };
    let quiet = ClosedLoopDriver::execute_with(
        &healthy,
        &exp,
        RunOptions {
            rules: Some(hair_trigger),
            ..RunOptions::default()
        },
    );
    let report = quiet.watch.expect("rules supplied");
    assert!(
        !report.any_fired(),
        "healthy fleet tripped a rule:\n{}",
        report.render()
    );
    println!("quiet: healthy fleet fires nothing on hair-trigger rules");
    println!("\nE17 smoke: all alerting contracts hold");
}

// -------------------------------------------------------------- full mode

fn run_full() {
    let scenario = load_paper_scenario();
    mercurial_bench::header(&format!(
        "E17 — alerting overhead   [{}: {} machines, {} months]",
        scenario.name, scenario.fleet.machines, scenario.sim.months
    ));

    // The closed loop end to end: watch off vs watch on (default rule
    // set, tracing on in both arms so the comparison isolates the rule
    // engine, not the recorder). Best of `reps` per arm — a single
    // ~half-minute run carries a few percent of scheduler noise, more
    // than the engine itself costs.
    let mut off_s = scenario.clone();
    off_s.closed_loop.feedback = true;
    off_s.trace.enabled = true;
    off_s.watch.enabled = false;
    let mut on_s = off_s.clone();
    on_s.watch.enabled = true;
    let reps = 3;

    // Interleave the arms (off, on, off, on, …): a sequential A…A B…B
    // layout lets thermal drift masquerade as rule-engine cost.
    let mut watch_off = f64::INFINITY;
    let mut watch_on = f64::INFINITY;
    let mut report = None;
    let mut epochs = 0u32;
    let prof = mercurial_prof::Prof::enabled();
    for _ in 0..reps {
        let t = Instant::now();
        let off = prof.scope("loop.watch_off", || ClosedLoopDriver::execute(&off_s));
        watch_off = watch_off.min(t.elapsed().as_secs_f64());
        assert!(off.watch.is_none());

        let t = Instant::now();
        let on = prof.scope("loop.watch_on", || ClosedLoopDriver::execute(&on_s));
        watch_on = watch_on.min(t.elapsed().as_secs_f64());
        epochs = on.epochs;
        report = on.watch;
    }
    let report = report.expect("watch enabled");
    let rules = on_s.watch.rule_set().rules.len();
    let fired = report
        .outcomes
        .iter()
        .filter(|o| matches!(o.status, mercurial::watch::RuleStatus::Fired(_)))
        .count();

    let pct = 100.0 * (watch_on / watch_off - 1.0);
    println!("closed loop, watch off:   {watch_off:>8.3} s");
    println!(
        "closed loop, watch on:    {watch_on:>8.3} s   ({pct:+.2}%, {rules} rules, {fired} fired)"
    );
    print!("{}", report.render());

    // Acceptance: in-loop rule evaluation costs < 2% of the run.
    assert!(
        pct < 2.0,
        "acceptance: watch overhead {pct:.2}% must stay under 2%"
    );

    let body = format!(
        "\"scenario\": \"{}\",\n  \"machines\": {},\n  \"months\": {},\n  \"rules\": {rules},\n  \"fired\": {fired},\n  \"watch_off_secs\": {watch_off:.4},\n  \"watch_on_secs\": {watch_on:.4},\n  \"watch_overhead_pct\": {pct:.3},\n  \"epochs\": {epochs}",
        scenario.name, scenario.fleet.machines, scenario.sim.months
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_watch.json");
    mercurial_bench::write_bench_json(
        path,
        "e17_watch_overhead",
        reps as u64,
        &prof.finish(),
        &body,
    );
    println!("\nbaseline written to BENCH_watch.json");
}

/// The committed paper scenario if present (runs from the repo), else the
/// environment-selected scale.
fn load_paper_scenario() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/paper.json");
    match std::fs::read_to_string(path) {
        Ok(json) => Scenario::from_json(&json).expect("scenarios/paper.json parses"),
        Err(_) => mercurial_bench::scenario_from_env(0x0e17),
    }
}
