//! Every committed `BENCH_*.json` baseline must carry the shared
//! [`BenchMeta`] envelope: one schema across all seven experiments, so
//! any tool that compares baselines can trust the provenance fields
//! (commit, host, timestamp, reps, phase breakdown) to be present and
//! uniformly shaped.
//!
//! [`BenchMeta`]: mercurial_prof::BenchMeta

use mercurial_prof::{BenchMeta, BENCH_META_SCHEMA};

const BASELINES: [(&str, &str); 7] = [
    ("BENCH_trace.json", "e16_trace_overhead"),
    ("BENCH_watch.json", "e17_watch_overhead"),
    ("BENCH_sparse.json", "e18_sparse"),
    ("BENCH_serve.json", "e19_serve"),
    ("BENCH_frontier.json", "e20_frontier"),
    ("BENCH_audit.json", "e21_audit"),
    ("BENCH_prof.json", "e22_prof"),
];

#[test]
fn all_committed_baselines_parse_under_one_envelope_schema() {
    for (file, experiment) in BASELINES {
        let path = format!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../{}"), file);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{file}: cannot read committed baseline: {e}"));
        let meta = BenchMeta::from_bench_json(&text)
            .unwrap_or_else(|e| panic!("{file}: envelope rejected: {e}"));
        assert_eq!(meta.schema, BENCH_META_SCHEMA, "{file}: schema");
        assert_eq!(meta.experiment, experiment, "{file}: experiment id");
        assert_eq!(meta.git_commit.len(), 40, "{file}: commit sha");
        assert!(meta.reps >= 1, "{file}: reps");
        assert!(
            meta.timestamp.ends_with('Z') && meta.timestamp.len() == 20,
            "{file}: timestamp {}",
            meta.timestamp
        );
        assert!(
            !meta.phases.is_empty(),
            "{file}: envelope must carry a phase breakdown"
        );
    }
}
