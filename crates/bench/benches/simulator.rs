//! Bench: simulator speed — instructions per second on healthy vs
//! mercurial cores, one full corpus screen, and one fleet-month.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mercurial_fault::{library, Injector};
use mercurial_fleet::sim::SimConfig;
use mercurial_fleet::topology::{FleetConfig, FleetTopology};
use mercurial_fleet::{FleetSim, Population};
use mercurial_screening::chipscreen::ChipScreen;
use mercurial_simcpu::{assemble, CoreConfig, Memory, SimCore};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let prog = assemble(
        "li x1, 0
         li x2, 20000
         loop:
         add x1, x1, x2
         xor x1, x1, x2
         rotli x1, x1, 5
         mul x3, x1, x2
         addi x2, x2, -1
         bnz x2, loop
         out x1
         halt",
    )
    .unwrap();
    // ~6 instructions per iteration x 20k iterations.
    let mut group = c.benchmark_group("simcpu-interpreter");
    group.throughput(Throughput::Elements(120_000));
    group.bench_function("healthy-core", |b| {
        b.iter(|| {
            let mut core = SimCore::new(CoreConfig::default(), None);
            let mut mem = Memory::new(4096);
            core.run(&prog, &mut mem).unwrap();
            black_box(core.output()[0])
        })
    });
    group.bench_function("mercurial-core", |b| {
        b.iter(|| {
            let mut core = SimCore::new(
                CoreConfig::default(),
                Some(Injector::new(7, library::string_bitflip(9, 1e-6))),
            );
            let mut mem = Memory::new(4096);
            core.run(&prog, &mut mem).unwrap();
            black_box(core.output()[0])
        })
    });
    group.finish();
}

fn bench_chip_screen(c: &mut Criterion) {
    let screen = ChipScreen::new(1);
    c.bench_function("full-corpus-screen-healthy-core", |b| {
        b.iter(|| {
            let mut core = SimCore::new(CoreConfig::default(), None);
            black_box(screen.screen(&mut core).failed())
        })
    });
}

fn bench_fleet_month(c: &mut Criterion) {
    let mut cfg = FleetConfig::tiny(1000, 9);
    cfg.rollout_months = 0;
    let topo = FleetTopology::build(cfg);
    let pop = Population::seed_from(&topo);
    c.bench_function("fleet-1000-machines-1-month", |b| {
        b.iter(|| {
            let sim = FleetSim::new(
                topo.clone(),
                pop.clone(),
                SimConfig {
                    months: 1,
                    ..SimConfig::default()
                },
            );
            black_box(sim.run().1)
        })
    });
}

/// The deterministic parallel runner at 1, 2, and 8 worker threads on the
/// same fleet: identical output by contract, wall-clock scaling with the
/// host's CPU count (flat on a single-CPU host).
fn bench_fleet_parallel(c: &mut Criterion) {
    let mut cfg = FleetConfig::tiny(2000, 17);
    cfg.rollout_months = 0;
    let topo = FleetTopology::build(cfg);
    let pop = Population::seed_from(&topo);
    let mut group = c.benchmark_group("fleet-sim-threads");
    for threads in [1usize, 2, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                let sim = FleetSim::new(
                    topo.clone(),
                    pop.clone(),
                    SimConfig {
                        months: 3,
                        parallelism: t,
                        ..SimConfig::default()
                    },
                );
                black_box(sim.run().1)
            })
        });
    }
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_interpreter,
    bench_chip_screen,
    bench_fleet_month,
    bench_fleet_parallel
);
criterion_main!(benches);
