//! Bench: throughput of the proxy fuzzer's two hot loops — program
//! generation (pure RNG + instruction assembly) and differential
//! execution (two `SimCore`s in lockstep through `DivergenceFinder`).
//!
//! These bound how much screening content a fixed fuzzing budget buys:
//! the campaign's wall-clock is `budget × (gen + |catalog| × diff)`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mercurial_fuzz::{generate, hot_catalog, run_differential, DiffConfig, GenConfig};
use std::hint::black_box;

fn bench_generator(c: &mut Criterion) {
    let cfg = GenConfig::default();
    let mut group = c.benchmark_group("fuzz-generate");
    // Throughput in programs; each is a full prologue/body/epilogue build.
    group.throughput(Throughput::Elements(1));
    group.bench_function("program", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(generate(0xF0CC, i, &cfg))
        })
    });
    group.finish();
}

fn bench_differential(c: &mut Criterion) {
    let gcfg = GenConfig::default();
    let dcfg = DiffConfig::default();
    let catalog = hot_catalog();
    let entry = &catalog[0];
    let programs: Vec<_> = (0..8).map(|i| generate(0xF0CC, i, &gcfg)).collect();
    let mut group = c.benchmark_group("fuzz-differential");
    group.throughput(Throughput::Elements(programs.len() as u64));
    group.bench_function("suspect-vs-reference", |b| {
        b.iter(|| {
            for fp in &programs {
                black_box(run_differential(fp, &entry.profile, 0xF0CC, 0, &dcfg));
            }
        })
    });
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_generator, bench_differential);
criterion_main!(benches);
