//! Bench: the §3 cost claims — detection ≈2×, correction (TMR) ≈3×.

use criterion::{criterion_group, criterion_main, Criterion};
use mercurial_mitigation::{dmr, tmr, CostMeter};
use std::hint::black_box;

fn kernel(_core: usize) -> u64 {
    let mut acc = 0x1234_5678u64;
    for i in 0..10_000u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        acc ^= acc >> 29;
    }
    acc
}

fn bench_redundancy(c: &mut Criterion) {
    let mut group = c.benchmark_group("redundancy");
    group.bench_function("raw", |b| b.iter(|| black_box(kernel(0))));
    group.bench_function("dmr", |b| {
        b.iter(|| {
            let mut meter = CostMeter::default();
            black_box(dmr(kernel, 1, &mut meter).unwrap())
        })
    });
    group.bench_function("tmr", |b| {
        b.iter(|| {
            let mut meter = CostMeter::default();
            black_box(tmr(kernel, &mut meter).unwrap())
        })
    });
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_redundancy);
criterion_main!(benches);
