//! Bench: self-checking library overheads (§7) — checked vs raw
//! encryption, compression, and copying.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mercurial_corpus::aes::{Aes, KeySize};
use mercurial_corpus::lz;
use mercurial_mitigation::{checked_compress, checked_copy, cross_checked_encrypt};
use std::hint::black_box;

fn bench_aes(c: &mut Criterion) {
    let aes = Aes::new(KeySize::Aes128, &[7u8; 16]).unwrap();
    let block = *b"0123456789abcdef";
    let mut group = c.benchmark_group("selfcheck-aes");
    group.bench_function("encrypt-raw", |b| {
        b.iter(|| black_box(aes.encrypt_block(block)))
    });
    group.bench_function("encrypt-roundtrip-checked", |b| {
        b.iter(|| {
            let ct = aes.encrypt_block(block);
            black_box(aes.decrypt_block(ct))
        })
    });
    group.bench_function("encrypt-cross-checked", |b| {
        b.iter(|| {
            black_box(
                cross_checked_encrypt(
                    block,
                    |blk| aes.encrypt_block(blk),
                    |blk| mercurial_simcpu::crypto::aes128_encrypt_block([7u8; 16], blk),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_compress(c: &mut Criterion) {
    let data: Vec<u8> = (0..64 * 1024u32).map(|i| ((i / 7) % 251) as u8).collect();
    let mut group = c.benchmark_group("selfcheck-compress");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress-raw", |b| {
        b.iter(|| black_box(lz::compress(&data)))
    });
    group.bench_function("compress-checked", |b| {
        b.iter(|| black_box(checked_compress(&data).unwrap()))
    });
    group.finish();
}

fn bench_copy(c: &mut Criterion) {
    let src: Vec<u8> = (0..256 * 1024u32).map(|i| i as u8).collect();
    let mut dst = vec![0u8; src.len()];
    let mut group = c.benchmark_group("selfcheck-copy");
    group.throughput(Throughput::Bytes(src.len() as u64));
    group.bench_function("copy-raw", |b| {
        b.iter(|| {
            dst.copy_from_slice(black_box(&src));
            black_box(&dst);
        })
    });
    group.bench_function("copy-checked", |b| {
        b.iter(|| black_box(checked_copy(&mut dst, &src, |d, s| d.copy_from_slice(s)).unwrap()))
    });
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_aes, bench_compress, bench_copy);
criterion_main!(benches);
