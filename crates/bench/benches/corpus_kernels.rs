//! Bench: native corpus-kernel throughput (the cost of one screening pass
//! per library family).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mercurial_corpus::crc::{CrcTable, POLY_CRC32};
use mercurial_corpus::hash::{fnv1a64, murmur_like64, SipHash24};
use mercurial_corpus::matmul::{matmul_blocked, matmul_naive, Matrix};
use mercurial_corpus::sort::{sort, SortAlgo};
use mercurial_corpus::{crc, float};
use mercurial_fault::CounterRng;
use std::hint::black_box;

fn bench_crc(c: &mut Criterion) {
    let data: Vec<u8> = (0..64 * 1024u32).map(|i| i as u8).collect();
    let table = CrcTable::new(POLY_CRC32);
    let mut group = c.benchmark_group("crc32-64KiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("bitwise", |b| b.iter(|| black_box(crc::crc32(&data))));
    group.bench_function("table", |b| b.iter(|| black_box(table.crc_table(&data))));
    group.bench_function("slice8", |b| b.iter(|| black_box(table.crc_slice8(&data))));
    group.finish();
}

fn bench_hashes(c: &mut Criterion) {
    let data: Vec<u8> = (0..16 * 1024u32).map(|i| (i * 31) as u8).collect();
    let sip = SipHash24::new(1, 2);
    let mut group = c.benchmark_group("hash-16KiB");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("fnv1a64", |b| b.iter(|| black_box(fnv1a64(&data))));
    group.bench_function("murmur-like", |b| {
        b.iter(|| black_box(murmur_like64(&data, 7)))
    });
    group.bench_function("siphash24", |b| b.iter(|| black_box(sip.hash(&data))));
    group.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let rng = CounterRng::new(77);
    let input: Vec<u64> = (0..10_000u64).map(|i| rng.at(i)).collect();
    let mut group = c.benchmark_group("sort-10k");
    for algo in SortAlgo::ALL {
        group.bench_function(algo.name(), |b| {
            b.iter_batched(
                || input.clone(),
                |mut v| {
                    sort(algo, &mut v);
                    black_box(v)
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let a = Matrix::random(64, 64, 1);
    let b = Matrix::random(64, 64, 2);
    let mut group = c.benchmark_group("gemm-64");
    group.bench_function("naive", |bch| bch.iter(|| black_box(matmul_naive(&a, &b))));
    group.bench_function("blocked-16", |bch| {
        bch.iter(|| black_box(matmul_blocked(&a, &b, 16)))
    });
    group.finish();
}

fn bench_float(c: &mut Criterion) {
    let mut group = c.benchmark_group("float-kernels");
    group.bench_function("fp-signature-10k", |b| {
        b.iter(|| black_box(float::fp_signature(42, 10_000)))
    });
    group.bench_function("fma-chain-100k", |b| {
        b.iter(|| black_box(float::fma_chain_exact(100_000)))
    });
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_crc,
    bench_hashes,
    bench_sorts,
    bench_matmul,
    bench_float
);
criterion_main!(benches);
