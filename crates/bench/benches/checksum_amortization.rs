//! Bench: §3's amortization argument — end-to-end checksum cost per byte
//! as a function of chunk size (storage/network-style protection), vs the
//! per-instruction-scale alternative (redundant execution) which cannot
//! amortize.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mercurial_corpus::crc::{CrcTable, POLY_CRC32C};
use std::hint::black_box;

fn bench_amortization(c: &mut Criterion) {
    let table = CrcTable::new(POLY_CRC32C);
    // The protocol check: a fixed per-chunk cost (header digest + stored-
    // checksum comparison) plus the per-byte CRC. Criterion's throughput
    // view shows bytes/second rising with chunk size as the fixed part
    // amortizes — §3's storage/network advantage.
    let header = [0x5au8; 64];
    let sip = mercurial_corpus::hash::SipHash24::new(0x1234, 0x5678);
    let mut group = c.benchmark_group("checked-chunk-protocol");
    for &chunk in &[64usize, 512, 4096, 65536] {
        let data: Vec<u8> = (0..chunk as u32).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(chunk as u64));
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &data, |b, data| {
            let mut buf = data.clone();
            let mut i = 0u8;
            b.iter(|| {
                i = i.wrapping_add(1);
                buf[0] = i; // defeat loop-invariant hoisting
                let tag = sip.hash(&header);
                let crc = table.crc_slice8(&buf);
                black_box(tag ^ crc as u64)
            })
        });
    }
    group.finish();
}

/// A single-CPU-friendly Criterion config: fewer samples, shorter
/// measurement windows (the ratios, not the absolute precision, are
/// what the experiments report).
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_secs(1))
}

criterion_group!(
    name = benches;
    config = quick();
    targets = bench_amortization);
criterion_main!(benches);
