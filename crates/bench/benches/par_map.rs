//! Bench: `fleet::par::map_parallel` on the post-E18 sparse hot path.
//!
//! The carried-over work-stealing ROADMAP item says "re-profile first":
//! the event clock (E18) made the per-epoch shard body so cheap on
//! healthy-dominated fleets that fan-out overhead, not imbalance, is the
//! question. Three measurements answer it:
//!
//! * the bare fan-out overhead — `map_parallel` over epoch-shaped item
//!   counts with a trivial body, against the serial loop;
//! * the real hot path — a sparse demo fleet simulation at 1/2/8
//!   workers (the per-epoch closure `sim.rs` actually fans out);
//! * a skew probe — items whose costs differ 100× tail-to-head, the
//!   case a work-stealing deque would help (the atomic-cursor claim in
//!   `map_parallel` already balances these dynamically).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mercurial::Scenario;
use mercurial_fleet::par::map_parallel;
use mercurial_fleet::topology::FleetTopology;
use mercurial_fleet::{FleetSim, Population, SimEngine};
use std::hint::black_box;

fn bench_fanout_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("par-map-overhead");
    // A sparse 18-month demo run steps 180 epochs in batches; each
    // map_parallel call sees one batch of epoch ids.
    for items in [8usize, 32, 180] {
        let ids: Vec<u32> = (0..items as u32).collect();
        group.bench_with_input(BenchmarkId::new("serial", items), &ids, |b, ids| {
            b.iter(|| {
                let out: Vec<u64> = ids.iter().map(|&i| black_box(i as u64 + 1)).collect();
                black_box(out)
            })
        });
        group.bench_with_input(BenchmarkId::new("fanout-8", items), &ids, |b, ids| {
            b.iter(|| black_box(map_parallel(ids, 8, |&i| black_box(i as u64 + 1))))
        });
    }
    group.finish();
}

fn bench_sparse_hot_path(c: &mut Criterion) {
    let mut scenario = Scenario::demo(0xacce55);
    scenario.sim.engine = SimEngine::Sparse;
    let topo = FleetTopology::build(scenario.fleet.clone());
    let pop = Population::seed_from(&topo);
    let mut group = c.benchmark_group("par-map-sparse-sim");
    for workers in [1usize, 2, 8] {
        let mut config = scenario.sim.clone();
        config.parallelism = workers;
        let sim = FleetSim::new(topo.clone(), pop.clone(), config);
        group.bench_with_input(BenchmarkId::new("demo-18mo", workers), &sim, |b, sim| {
            b.iter(|| black_box(sim.run().1.corruptions))
        });
    }
    group.finish();
}

fn bench_skewed_items(c: &mut Criterion) {
    // Cost ratio ~100:1 between the heaviest and lightest item, heavy
    // items first — the adversarial layout for fixed chunking, the
    // benign one for a dynamic cursor.
    let weights: Vec<u64> = (0..32u64).map(|i| 1_000 * (32 - i) * (32 - i)).collect();
    let spin = |n: &u64| {
        let mut acc = 0u64;
        for i in 0..*n {
            acc = acc.wrapping_mul(0x9E37).wrapping_add(i);
        }
        acc
    };
    let mut group = c.benchmark_group("par-map-skew");
    group.bench_function("serial", |b| {
        b.iter(|| {
            let out: Vec<u64> = weights.iter().map(spin).collect();
            black_box(out)
        })
    });
    group.bench_function("fanout-8", |b| {
        b.iter(|| black_box(map_parallel(&weights, 8, spin)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fanout_overhead,
    bench_sparse_hot_path,
    bench_skewed_items
);
criterion_main!(benches);
