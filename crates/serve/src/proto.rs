//! The wire protocol: JSON messages, one per frame.
//!
//! Two logical channels share one TCP connection:
//!
//! * the **lockstep channel** (`Config`/`Cmd` down, `Report`/`Bye` up) —
//!   reliable by construction, it carries the closed-loop state machine;
//! * the **telemetry channel** (`Evidence`/`Trace` up) — the
//!   suspect-signal and trace stream the link-impairment model is allowed
//!   to mangle, exactly like the lossy monitoring path of a real fleet.
//!
//! Payloads are JSON rather than a bespoke binary layout because every
//! type already carries serde derives for scenario/report persistence,
//! and the epoch cadence (hours of simulated time per frame) makes wire
//! compactness irrelevant next to debuggability.

use std::io::{self, Read, Write};

use mercurial::shardloop::{EpochCommands, ShardEpochReport};
use mercurial_fleet::SignalLog;
use mercurial_prof::{Prof, ProfileEntry};
use serde::{Deserialize, Serialize};

use crate::frame::{read_frame, write_frame};

/// Protocol revision; bumped on any wire-visible change.
pub const PROTO_VERSION: u32 = 1;

/// One worker counter at end of run (worker-side metric names are a fixed
/// compile-time set, shipped by value because `MetricSet` interns
/// `&'static str` keys).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    /// Metric name.
    pub name: String,
    /// Final counter value.
    pub value: u64,
}

/// One worker gauge at end of run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    /// Metric name.
    pub name: String,
    /// Last-written value.
    pub value: f64,
}

/// Every message that can cross the socket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Message {
    /// Worker → server, first frame after connecting.
    Hello {
        /// The worker's [`PROTO_VERSION`]; mismatches abort the handshake.
        proto: u32,
    },
    /// Server → worker: the run configuration and this worker's shard.
    Config {
        /// Full scenario as JSON (workers rebuild the experiment from it,
        /// so determinism needs no shared filesystem).
        scenario: String,
        /// This worker's index (also its report order).
        worker: u32,
        /// First owned machine.
        lo: u32,
        /// One past the last owned machine.
        hi: u32,
    },
    /// Server → worker: one epoch's restore/quarantine commands.
    Cmd {
        /// The epoch commands (worker asserts the epoch matches its own).
        cmds: EpochCommands,
    },
    /// Worker → server: the epoch's suspect-signal batch (the impairable
    /// telemetry frame, split out of the report).
    Evidence {
        /// Originating worker.
        worker: u32,
        /// Epoch the signals were drawn in.
        epoch: u32,
        /// The signals.
        log: SignalLog,
    },
    /// Worker → server: the epoch's lockstep report (evidence emptied —
    /// it travels in the [`Message::Evidence`] frame).
    Report {
        /// The shard's epoch report (boxed: it dwarfs the other variants).
        report: Box<ShardEpochReport>,
    },
    /// Worker → server: trace events drained since the last epoch,
    /// streamed through the standard JSONL sink.
    Trace {
        /// Originating worker.
        worker: u32,
        /// Zero or more complete JSONL lines (may be empty).
        jsonl: String,
    },
    /// Server → worker: the run is over; send your tail and hang up.
    Fin,
    /// Worker → server: end-of-run metric readout (counters sum across
    /// workers; histograms are aggregator-side by design, so none ship).
    Bye {
        /// Final counters.
        counters: Vec<CounterEntry>,
        /// Final gauges.
        gauges: Vec<GaugeEntry>,
        /// The worker's wall-clock phase profile (empty unless the
        /// worker process profiles, i.e. `MERCURIAL_PROF` is set). The
        /// server absorbs these in worker-index order — the same merge
        /// discipline as trace shards — and the payload is write-only
        /// observability, so shipping it cannot perturb outcomes.
        #[serde(default)]
        profile: Vec<ProfileEntry>,
    },
}

/// Serialize and frame one message. The caller flushes.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn send(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    send_sized(w, msg, &Prof::disabled()).map(|_| ())
}

/// [`send`] with phase attribution (`serve.encode` / `serve.io`) and the
/// frame's wire size (header + payload) for throughput accounting.
///
/// # Errors
///
/// Propagates the writer's I/O error.
pub fn send_sized(w: &mut impl Write, msg: &Message, prof: &Prof) -> io::Result<u64> {
    let json = {
        let _p = prof.span("serve.encode");
        serde_json::to_string(msg)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?
    };
    let _p = prof.span("serve.io");
    write_frame(w, json.as_bytes())?;
    Ok(4 + json.len() as u64)
}

/// Read and decode one message; `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Propagates the reader's I/O error; malformed payloads are
/// `InvalidData`.
pub fn recv(r: &mut impl Read) -> io::Result<Option<Message>> {
    Ok(recv_sized(r, &Prof::disabled())?.map(|(msg, _)| msg))
}

/// [`recv`] with phase attribution (`serve.io` / `serve.decode`) and the
/// frame's wire size (header + payload) for throughput accounting.
///
/// # Errors
///
/// Propagates the reader's I/O error; malformed payloads are
/// `InvalidData`.
pub fn recv_sized(r: &mut impl Read, prof: &Prof) -> io::Result<Option<(Message, u64)>> {
    let payload = {
        let _p = prof.span("serve.io");
        match read_frame(r)? {
            Some(p) => p,
            None => return Ok(None),
        }
    };
    let _p = prof.span("serve.decode");
    let size = 4 + payload.len() as u64;
    let text = String::from_utf8(payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    let msg = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some((msg, size)))
}

/// A protocol-sequence violation (the peer sent something the state
/// machine cannot accept here).
pub fn proto_err(what: &str) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("protocol error: {what}"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial::fault::CoreUid;

    #[test]
    fn messages_roundtrip_through_frames() {
        let msgs = vec![
            Message::Hello {
                proto: PROTO_VERSION,
            },
            Message::Config {
                scenario: "{\"k\": 1}".to_string(),
                worker: 2,
                lo: 500,
                hi: 1000,
            },
            Message::Cmd {
                cmds: EpochCommands {
                    epoch: 7,
                    restores: vec![CoreUid::new(3, 0, 1)],
                    quarantines: vec![CoreUid::new(9, 1, 0)],
                    policy_changes: Vec::new(),
                },
            },
            Message::Trace {
                worker: 0,
                jsonl: "{\"h\":0,\"k\":\"B\",\"n\":\"loop.epoch\"}\n".to_string(),
            },
            Message::Fin,
            Message::Bye {
                counters: vec![CounterEntry {
                    name: "sim.corruptions".to_string(),
                    value: 42,
                }],
                gauges: Vec::new(),
                profile: vec![ProfileEntry {
                    stack: "shard.epoch;fleet.step".to_string(),
                    wall_ns: 1_234,
                    calls: 7,
                }],
            },
        ];
        let mut buf = Vec::new();
        for m in &msgs {
            send(&mut buf, m).unwrap();
        }
        let mut r = buf.as_slice();
        for m in &msgs {
            let back = recv(&mut r).unwrap().expect("frame present");
            // Message lacks PartialEq (SignalLog payloads are big); compare
            // through the serialized form, which is what the wire carries.
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                serde_json::to_string(m).unwrap()
            );
        }
        assert!(recv(&mut r).unwrap().is_none());
    }
}
