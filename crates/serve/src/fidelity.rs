//! Alert-fidelity scoring: what impairment did to the watch readout.
//!
//! The unimpaired run's [`WatchReport`] is ground truth; the impaired
//! run's report is the measurement. A rule that fired in the baseline but
//! not under impairment is **missed** (the worst failure — the paper's
//! whole premise is that silent corruption is the expensive kind), fired
//! in both but later is **late**, fired only under impairment is
//! **spurious**.

use mercurial_watch::{RuleStatus, WatchReport};
use serde::{Deserialize, Serialize};

/// The comparison of an impaired watch readout against the clean one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AlertFidelity {
    /// Rules that fired cleanly and under impairment at the same hour.
    pub matched: u32,
    /// Rules that fired cleanly but not under impairment.
    pub missed: u32,
    /// Rules that fired in both, but later under impairment.
    pub late: u32,
    /// Rules that fired only under impairment.
    pub spurious: u32,
    /// Total lateness across late alerts, in fleet hours.
    pub lateness_hours: f64,
}

impl AlertFidelity {
    /// A single degradation score for monotonicity checks: every failure
    /// mode counts, misses heaviest.
    pub fn degradation(&self) -> f64 {
        3.0 * self.missed as f64 + self.late as f64 + self.spurious as f64
    }
}

/// Score an impaired report against the clean baseline report. Rules are
/// matched by name; both reports normally come from the same rule set,
/// but a rule present in only one side counts as spurious/missed
/// accordingly.
pub fn alert_fidelity(clean: &WatchReport, impaired: &WatchReport) -> AlertFidelity {
    let fired_hour = |report: &WatchReport, rule: &str| -> Option<f64> {
        report.outcomes.iter().find_map(|o| match &o.status {
            RuleStatus::Fired(a) if o.rule == rule => Some(a.hour),
            _ => None,
        })
    };
    let mut f = AlertFidelity::default();
    for o in &clean.outcomes {
        let RuleStatus::Fired(base) = &o.status else {
            continue;
        };
        match fired_hour(impaired, &o.rule) {
            None => f.missed += 1,
            Some(h) if h > base.hour => {
                f.late += 1;
                f.lateness_hours += h - base.hour;
            }
            Some(_) => f.matched += 1,
        }
    }
    for o in &impaired.outcomes {
        if matches!(o.status, RuleStatus::Fired(_)) && fired_hour(clean, &o.rule).is_none() {
            f.spurious += 1;
        }
    }
    f
}

/// The p95 of a latency sample set (exact nearest-rank, shared with the
/// audit layer's time-to-root-cause percentiles); `None` when empty.
pub fn p95(samples: &[f64]) -> Option<f64> {
    mercurial_metrics::nearest_rank(0.95, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_watch::{Alert, RuleOutcome};

    fn fired(rule: &str, hour: f64) -> RuleOutcome {
        RuleOutcome {
            rule: rule.to_string(),
            status: RuleStatus::Fired(Alert {
                rule: rule.to_string(),
                hour,
                value: 1.0,
                limit: 0.0,
                message: String::new(),
            }),
        }
    }

    fn ok(rule: &str) -> RuleOutcome {
        RuleOutcome {
            rule: rule.to_string(),
            status: RuleStatus::Ok,
        }
    }

    #[test]
    fn fidelity_classifies_missed_late_spurious() {
        let clean = WatchReport {
            outcomes: vec![
                fired("a", 100.0),
                fired("b", 200.0),
                fired("c", 300.0),
                ok("d"),
            ],
        };
        let impaired = WatchReport {
            outcomes: vec![
                fired("a", 100.0),
                fired("b", 365.0),
                ok("c"),
                fired("d", 50.0),
            ],
        };
        let f = alert_fidelity(&clean, &impaired);
        assert_eq!(f.matched, 1);
        assert_eq!(f.late, 1);
        assert_eq!(f.missed, 1);
        assert_eq!(f.spurious, 1);
        assert!((f.lateness_hours - 165.0).abs() < 1e-9);
        assert!(f.degradation() > 0.0);
    }

    #[test]
    fn identical_reports_have_perfect_fidelity() {
        let r = WatchReport {
            outcomes: vec![fired("a", 100.0), ok("b")],
        };
        let f = alert_fidelity(&r, &r);
        assert_eq!(
            f,
            AlertFidelity {
                matched: 1,
                ..AlertFidelity::default()
            }
        );
        assert_eq!(f.degradation(), 0.0);
    }

    #[test]
    fn p95_is_nearest_rank() {
        assert_eq!(p95(&[]), None);
        assert_eq!(p95(&[5.0]), Some(5.0));
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(p95(&v), Some(95.0));
    }
}
