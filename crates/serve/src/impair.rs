//! Deterministic link impairment over evidence frames.
//!
//! The model sits at the server's ingest point — equivalent to a lossy
//! telemetry path between each worker and the scoreboard — and mangles
//! **only** evidence frames; the lockstep command/report channel stays
//! reliable, so an impaired run still terminates with a well-defined
//! fleet state, it just detects later (or never) because suspicion
//! evidence went missing, arrived late, doubled up, or shuffled.
//!
//! Every decision is a pure function of
//! `(impair seed, worker, epoch, draw index)` via a splitmix64-style
//! hash: an impaired run replays bit-for-bit, and the loss draw uses the
//! shared-uniform coupling (drop iff `u < loss`), so a higher loss
//! setting drops a strict superset of a lower one's frames — which is
//! what makes the measured degradation curves monotone by construction,
//! not by luck.

use mercurial::scenario::ImpairConfig;
use mercurial_fleet::SignalLog;
use serde::{Deserialize, Serialize};

/// What the link did to the frames that crossed it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Evidence frames offered to the link.
    pub frames: u64,
    /// Frames silently dropped.
    pub dropped: u64,
    /// Frames delivered at least one epoch late.
    pub delayed: u64,
    /// Extra copies delivered.
    pub duplicated: u64,
    /// Adjacent-frame swaps applied at ingest.
    pub reordered: u64,
}

/// A frame sitting in the link, waiting for its arrival epoch.
#[derive(Debug, Clone)]
struct PendingFrame {
    arrival: u32,
    worker: u32,
    epoch: u32,
    /// 0 for the original, 1 for a duplicate.
    copy: u32,
    log: SignalLog,
}

/// The impaired channel all workers' evidence frames pass through.
#[derive(Debug)]
pub struct ImpairedChannel {
    cfg: ImpairConfig,
    pending: Vec<PendingFrame>,
    /// Cumulative link statistics.
    pub stats: LinkStats,
}

/// splitmix64 finalizer over a combined key — the same counter-based-RNG
/// discipline as the fleet sim: no state, every draw addressable.
fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E3779B97F4A7C15))
        .wrapping_add(b.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(c.wrapping_mul(0x94D049BB133111EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` for one addressed draw.
fn unit(seed: u64, worker: u32, epoch: u32, draw: u64) -> f64 {
    (mix(seed, worker as u64, epoch as u64, draw) >> 11) as f64 / (1u64 << 53) as f64
}

// Draw indices — one per decision so adding a knob never perturbs
// another knob's stream.
const DRAW_LOSS: u64 = 0;
const DRAW_DELAY: u64 = 1;
const DRAW_DUP: u64 = 2;
const DRAW_DUP_DELAY: u64 = 3;
const DRAW_REORDER: u64 = 4;

impl ImpairedChannel {
    /// A channel applying `cfg` to every offered frame.
    pub fn new(cfg: ImpairConfig) -> ImpairedChannel {
        ImpairedChannel {
            cfg,
            pending: Vec::new(),
            stats: LinkStats::default(),
        }
    }

    /// Offer one worker's epoch evidence frame to the link: it is
    /// dropped, scheduled (possibly late), and possibly duplicated, all
    /// deterministically.
    pub fn offer(&mut self, worker: u32, epoch: u32, log: SignalLog) {
        self.stats.frames += 1;
        // Shared-uniform coupling: the frame survives loss p iff its one
        // uniform draw clears p, so survivors at a higher p are a subset.
        if unit(self.cfg.seed, worker, epoch, DRAW_LOSS) < self.cfg.loss {
            self.stats.dropped += 1;
            return;
        }
        let delay = |draw: u64| -> u32 {
            if self.cfg.max_delay_epochs == 0 {
                0
            } else {
                (mix(self.cfg.seed, worker as u64, epoch as u64, draw)
                    % (self.cfg.max_delay_epochs as u64 + 1)) as u32
            }
        };
        let d = delay(DRAW_DELAY);
        if d > 0 {
            self.stats.delayed += 1;
        }
        self.pending.push(PendingFrame {
            arrival: epoch + d,
            worker,
            epoch,
            copy: 0,
            log: log.clone(),
        });
        if unit(self.cfg.seed, worker, epoch, DRAW_DUP) < self.cfg.duplicate {
            self.stats.duplicated += 1;
            self.pending.push(PendingFrame {
                arrival: epoch + delay(DRAW_DUP_DELAY),
                worker,
                epoch,
                copy: 1,
                log,
            });
        }
    }

    /// Deliver every frame whose arrival epoch has come, in canonical
    /// arrival order `(arrival, worker, epoch, copy)` with the reorder
    /// permutation applied on top. With a no-op configuration this is
    /// exactly the offered frames in worker order — the bit-for-bit
    /// parity path.
    pub fn drain(&mut self, epoch: u32) -> Vec<SignalLog> {
        let mut due: Vec<PendingFrame> = Vec::new();
        self.pending.retain_mut(|f| {
            if f.arrival <= epoch {
                due.push(PendingFrame {
                    arrival: f.arrival,
                    worker: f.worker,
                    epoch: f.epoch,
                    copy: f.copy,
                    log: std::mem::take(&mut f.log),
                });
                false
            } else {
                true
            }
        });
        due.sort_by_key(|f| (f.arrival, f.worker, f.epoch, f.copy));
        // Reorder: each frame may swap with its successor, decided by the
        // frame's own addressed draw.
        if self.cfg.reorder > 0.0 {
            let mut i = 0;
            while i + 1 < due.len() {
                if unit(self.cfg.seed, due[i].worker, due[i].epoch, DRAW_REORDER) < self.cfg.reorder
                {
                    due.swap(i, i + 1);
                    self.stats.reordered += 1;
                    i += 2; // a swapped pair is settled; don't re-swap its tail
                } else {
                    i += 1;
                }
            }
        }
        due.into_iter().map(|f| f.log).collect()
    }

    /// Frames still in flight (undelivered, not dropped).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fleet::signals::{Signal, SignalKind};

    fn one_signal_log(hour: f64) -> SignalLog {
        let mut log = SignalLog::new();
        log.push(Signal {
            hour,
            core: mercurial::fault::CoreUid::new(1, 0, 0),
            kind: SignalKind::MachineCheckEvent,
            caused_by_cee: true,
        });
        log
    }

    fn clean() -> ImpairConfig {
        ImpairConfig::default()
    }

    #[test]
    fn noop_channel_delivers_in_worker_order() {
        let mut ch = ImpairedChannel::new(clean());
        for w in 0..4u32 {
            ch.offer(w, 0, one_signal_log(w as f64));
        }
        let out = ch.drain(0);
        assert_eq!(out.len(), 4);
        for (w, log) in out.iter().enumerate() {
            assert_eq!(log.all()[0].hour, w as f64);
        }
        assert_eq!(
            ch.stats,
            LinkStats {
                frames: 4,
                ..LinkStats::default()
            }
        );
        assert_eq!(ch.in_flight(), 0);
    }

    #[test]
    fn loss_is_monotone_in_probability() {
        // Shared-uniform coupling: the frames dropped at loss p must be a
        // subset of those dropped at any p' > p.
        let frames: Vec<(u32, u32)> = (0..8).flat_map(|w| (0..50).map(move |e| (w, e))).collect();
        let dropped_at = |loss: f64| -> Vec<(u32, u32)> {
            let mut cfg = clean();
            cfg.loss = loss;
            let mut ch = ImpairedChannel::new(cfg);
            let mut dropped = Vec::new();
            for &(w, e) in &frames {
                let before = ch.stats.dropped;
                ch.offer(w, e, one_signal_log(0.0));
                if ch.stats.dropped > before {
                    dropped.push((w, e));
                }
            }
            dropped
        };
        let mut prev: Vec<(u32, u32)> = Vec::new();
        for loss in [0.0, 0.1, 0.3, 0.5, 0.9] {
            let cur = dropped_at(loss);
            assert!(
                prev.iter().all(|f| cur.contains(f)),
                "loss {loss} must drop a superset of the previous level"
            );
            prev = cur;
        }
        assert!(!prev.is_empty(), "loss 0.9 drops something");
    }

    #[test]
    fn delay_holds_frames_until_their_arrival_epoch() {
        let mut cfg = clean();
        cfg.max_delay_epochs = 3;
        let mut ch = ImpairedChannel::new(cfg);
        for e in 0..20u32 {
            ch.offer(0, e, one_signal_log(e as f64));
        }
        let mut seen = 0;
        for epoch in 0..24u32 {
            for log in ch.drain(epoch) {
                // Nothing arrives before it was sent.
                assert!(log.all()[0].hour <= epoch as f64);
                seen += 1;
            }
        }
        assert_eq!(seen, 20, "every frame eventually arrives");
        assert_eq!(ch.in_flight(), 0);
        assert!(ch.stats.delayed > 0, "a 3-epoch cap delays some frames");
    }

    #[test]
    fn duplication_adds_copies_and_determinism_holds() {
        let mut cfg = clean();
        cfg.duplicate = 0.5;
        let run = || {
            let mut ch = ImpairedChannel::new(cfg);
            for e in 0..40u32 {
                ch.offer(0, e, one_signal_log(e as f64));
            }
            let out: Vec<f64> = ch.drain(100).iter().map(|l| l.all()[0].hour).collect();
            (out, ch.stats)
        };
        let (a, stats_a) = run();
        let (b, stats_b) = run();
        assert_eq!(a, b, "impairment is a pure function of the seed");
        assert_eq!(stats_a, stats_b);
        assert!(stats_a.duplicated > 0);
        assert_eq!(a.len() as u64, stats_a.frames + stats_a.duplicated);
    }

    #[test]
    fn reorder_permutes_but_preserves_the_multiset() {
        let mut cfg = clean();
        cfg.reorder = 0.8;
        let mut ch = ImpairedChannel::new(cfg);
        for w in 0..6u32 {
            ch.offer(w, 0, one_signal_log(w as f64));
        }
        let out: Vec<f64> = ch.drain(0).iter().map(|l| l.all()[0].hour).collect();
        let mut sorted = out.clone();
        sorted.sort_by(f64::total_cmp);
        assert_eq!(sorted, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(ch.stats.reordered > 0);
        assert_ne!(out, sorted, "0.8 reorder shuffles six frames");
    }
}
