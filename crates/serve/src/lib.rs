//! # mercurial-serve
//!
//! Fleet-as-a-service: the closed loop split into N fleet-shard
//! **worker** processes and one central **scoreboard/watch server**
//! talking a length-delimited framed protocol over TCP loopback.
//!
//! The paper's detection pipeline is intrinsically a service: screeners
//! and production machines emit signals *somewhere else* than the
//! monitors that act on them, and the path between is a real network
//! with real failure modes. This crate makes that path explicit:
//!
//! * [`frame`] — the `u32`-length-prefixed frame codec, the unit of
//!   atomicity and of impairment;
//! * [`proto`] — the JSON message grammar: a reliable lockstep channel
//!   (`Config`/`Cmd`/`Report`) and an impairable telemetry channel
//!   (`Evidence`/`Trace`) sharing one socket;
//! * [`worker`] — a thin shell around `FleetShard`: apply commands,
//!   step, ship evidence/report/trace frames;
//! * [`server`] — the authority: `FleetAggregator` plus live watch-rule
//!   evaluation and a hand-rolled Prometheus status endpoint;
//! * [`impair`] — the deterministic per-link impairment model (loss,
//!   delay, duplication, reorder), every decision a pure function of
//!   `(seed, worker, epoch, draw)`;
//! * [`fidelity`] — scoring of what impairment did to the alert readout
//!   (missed / late / spurious) against the clean run.
//!
//! The load-bearing property, pinned by the parity tests: with clean
//! links the served topology reproduces the in-process
//! `ClosedLoopDriver` run **bit-for-bit** at any worker count — the
//! shard-union determinism contract extended across process boundaries.
//! Degradation under impairment is therefore attributable to the link
//! model alone.
#![warn(missing_docs)]

pub mod fidelity;
pub mod frame;
pub mod impair;
pub mod proto;
pub mod server;
pub mod worker;

pub use fidelity::{alert_fidelity, p95, AlertFidelity};
pub use impair::{ImpairedChannel, LinkStats};
pub use server::{run_served, run_served_impaired, run_server, ServeOptions, ServedOutcome};
pub use worker::{connect_and_serve, run_worker};
