//! The fleet-shard worker: one process owning a contiguous machine range,
//! stepping its shard of the closed loop in lockstep with the server.
//!
//! A worker is a thin shell around [`FleetShard`]: receive the epoch's
//! commands, apply them, step, and ship three frames back — the
//! impairable evidence batch, the reliable report, and the drained trace
//! events (streamed through the standard [`JsonlStreamSink`], whose
//! writer here backs socket frames instead of a file). Determinism needs
//! nothing beyond the scenario JSON in the config frame: every draw the
//! shard makes is a pure function of `(seed, stream, counter)`.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;

use mercurial::shardloop::FleetShard;
use mercurial::{FleetExperiment, Scenario};
use mercurial_prof::Prof;
use mercurial_trace::{JsonlStreamSink, TraceSink};

use crate::proto::{
    proto_err, recv, send, send_sized, CounterEntry, GaugeEntry, Message, PROTO_VERSION,
};

/// Connect to a server and run the shard it assigns until the run ends.
///
/// # Errors
///
/// Propagates socket I/O errors and protocol violations.
pub fn connect_and_serve(addr: &str) -> io::Result<()> {
    let stream = TcpStream::connect(addr)?;
    run_worker(stream)
}

/// Drive one worker over an established connection: handshake, build the
/// assigned shard, then lockstep epochs until `Fin`.
///
/// # Errors
///
/// Propagates socket I/O errors and protocol violations.
pub fn run_worker(stream: TcpStream) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    send(
        &mut writer,
        &Message::Hello {
            proto: PROTO_VERSION,
        },
    )?;
    writer.flush()?;

    let Some(Message::Config {
        scenario,
        worker,
        lo,
        hi,
    }) = recv(&mut reader)?
    else {
        return Err(proto_err("expected Config after Hello"));
    };
    let scenario =
        Scenario::from_json(&scenario).map_err(|e| proto_err(&format!("bad scenario: {e}")))?;
    let experiment = FleetExperiment::build(&scenario);
    let mut shard = FleetShard::new(&scenario, &experiment, lo, hi);
    let mut rec = scenario.recorder();
    // The trace channel: the shard's recorder drains through the standard
    // JSONL sink; its writer is the byte buffer each epoch's Trace frame
    // ships.
    let mut sink = JsonlStreamSink::new(Vec::new());
    // Worker processes have no CLI flag path, so wall-clock profiling is
    // inherited from the environment; the profile ships in the `Bye`
    // frame and is write-only observability either way.
    let prof = Prof::from_env();

    serve_epochs(
        &mut reader,
        &mut writer,
        &mut shard,
        &mut rec,
        &mut sink,
        worker,
        &prof,
    )
}

fn serve_epochs(
    reader: &mut impl Read,
    writer: &mut impl Write,
    shard: &mut FleetShard<'_>,
    rec: &mut mercurial_trace::Recorder,
    sink: &mut JsonlStreamSink<Vec<u8>>,
    worker: u32,
    prof: &Prof,
) -> io::Result<()> {
    loop {
        match recv(reader)? {
            Some(Message::Cmd { cmds }) => {
                let epoch = cmds.epoch;
                shard.apply_commands(&cmds);
                let mut report = shard.step_epoch(rec, prof);
                let evidence = std::mem::take(&mut report.evidence);
                send_sized(
                    writer,
                    &Message::Evidence {
                        worker,
                        epoch,
                        log: evidence,
                    },
                    prof,
                )?;
                send_sized(
                    writer,
                    &Message::Report {
                        report: Box::new(report),
                    },
                    prof,
                )?;
                {
                    let _p = prof.span("trace.drain");
                    sink.drain(rec).expect("Vec sink cannot fail");
                }
                let jsonl = String::from_utf8(std::mem::take(sink.get_mut()))
                    .expect("JSONL sink writes UTF-8");
                send_sized(writer, &Message::Trace { worker, jsonl }, prof)?;
                writer.flush()?;
            }
            Some(Message::Fin) => {
                // Tail: remaining trace events, then the metric readout
                // and the worker's phase profile (snapshot before the
                // final sends — they would only add to `serve.*`).
                sink.drain(rec).expect("Vec sink cannot fail");
                let jsonl = String::from_utf8(std::mem::take(sink.get_mut()))
                    .expect("JSONL sink writes UTF-8");
                send_sized(writer, &Message::Trace { worker, jsonl }, prof)?;
                let (counters, gauges) = metric_entries(rec);
                let profile = prof.snapshot().entries();
                send_sized(
                    writer,
                    &Message::Bye {
                        counters,
                        gauges,
                        profile,
                    },
                    prof,
                )?;
                writer.flush()?;
                return Ok(());
            }
            Some(_) => return Err(proto_err("unexpected message in epoch loop")),
            None => return Err(proto_err("server hung up mid-run")),
        }
    }
}

/// Snapshot the worker recorder's metric set for the `Bye` frame.
/// Histograms are asserted empty: every per-run histogram (epoch
/// aggregates, detection latency) is observed aggregator-side precisely
/// so shard workers never need to ship one.
fn metric_entries(rec: &mercurial_trace::Recorder) -> (Vec<CounterEntry>, Vec<GaugeEntry>) {
    let Some(metrics) = rec.metrics() else {
        return (Vec::new(), Vec::new());
    };
    debug_assert_eq!(
        metrics.histograms().count(),
        0,
        "worker-side histograms are not wire-portable; observe them in the aggregator"
    );
    let counters = metrics
        .counters()
        .map(|(name, value)| CounterEntry {
            name: name.to_string(),
            value,
        })
        .collect();
    let gauges = metrics
        .gauges()
        .map(|(name, value)| GaugeEntry {
            name: name.to_string(),
            value,
        })
        .collect();
    (counters, gauges)
}
