//! Length-delimited framing: `u32` big-endian payload length followed by
//! the payload bytes.
//!
//! The one primitive the whole service rides on. Frames are the unit of
//! atomicity (a reader never sees half a message) and the unit of
//! impairment (the link model drops, delays, and duplicates whole
//! frames). Kept byte-trivial on purpose: four length bytes, no magic, no
//! checksum — TCP already guarantees integrity, and determinism demands
//! nothing on the wire that could vary between runs.

use std::io::{self, Read, Write};

/// Upper bound on a single frame's payload. A paper-scale epoch batch is
/// a few megabytes; anything near this limit is a protocol bug, not data.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Write one frame: length prefix plus payload. Does **not** flush — the
/// caller batches frames per epoch and flushes once.
///
/// # Errors
///
/// Propagates the writer's I/O error; rejects oversized payloads with
/// `InvalidInput`.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("frame of {} bytes exceeds MAX_FRAME_BYTES", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)
}

/// Read one frame's payload. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer closed after a complete frame); a mid-frame EOF is
/// an `UnexpectedEof` error.
///
/// # Errors
///
/// Propagates the reader's I/O error; rejects oversized length prefixes
/// with `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // Hand-rolled first-byte read so boundary EOF is distinguishable from
    // a truncated length prefix.
    let mut got = 0;
    while got < len.len() {
        match r.read(&mut len[got..])? {
            0 if got == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length prefix",
                ))
            }
            n => got += n,
        }
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("incoming frame of {len} bytes exceeds MAX_FRAME_BYTES"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, &[0xAB; 1000]).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![0xAB; 1000]);
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 2); // cut the payload short
        let mut r = buf.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut r = &buf[..2]; // cut the length prefix short
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let buf = u32::MAX.to_be_bytes().to_vec();
        let err = read_frame(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
