//! The scoreboard/watch server: accepts N shard workers, drives the
//! closed loop in lockstep, ingests their telemetry through the
//! impairable link, evaluates alert rules live, and exposes a plain-text
//! Prometheus status endpoint.
//!
//! The server owns everything global — quarantine registry, capacity
//! ledger, scoreboard, deep-check/restore queues, watch engine — via
//! [`FleetAggregator`]; workers own nothing but their machine range. One
//! epoch is one protocol round: broadcast `Cmd`, collect each worker's
//! `Evidence` + `Report` + `Trace` frames in worker-index order, pass the
//! evidence through the [`ImpairedChannel`], ingest. With clean links the
//! outcome is bit-for-bit the in-process [`ClosedLoopDriver`] run — the
//! parity tests pin it — so every divergence measured under impairment is
//! attributable to the link, not the split.
//!
//! [`ClosedLoopDriver`]: mercurial::closedloop::ClosedLoopDriver

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use mercurial::closedloop::ClosedLoopOutcome;
use mercurial::scenario::ImpairConfig;
use mercurial::shardloop::{
    record_ground_truth_onsets, shard_ranges, watch_engine, FleetAggregator, ShardEpochReport,
};
use mercurial::{FleetExperiment, Scenario};
use mercurial_fleet::SignalLog;
use mercurial_prof::Prof;
use mercurial_trace::export::{metrics_to_prometheus, prom_label_escape};
use mercurial_watch::{Baseline, RuleSet};

use crate::impair::{ImpairedChannel, LinkStats};
use crate::proto::{proto_err, recv_sized, send_sized, Message, PROTO_VERSION};
use crate::worker::run_worker;

/// Attachments for a served run.
#[derive(Default)]
pub struct ServeOptions<'a> {
    /// Alert rules; `None` falls back to the scenario's `watch` block.
    pub rules: Option<RuleSet>,
    /// Baseline for regression rules.
    pub baseline: Option<&'a Baseline>,
    /// Bind address for the live Prometheus status endpoint (e.g.
    /// `127.0.0.1:9184`); `None` disables it.
    pub status_addr: Option<String>,
    /// Wall-clock phase profiler for the server side. Write-only
    /// observability: readings surface on the status page and in the
    /// final profile, never in the outcome, so a profiled served run
    /// stays bit-for-bit with an unprofiled one.
    pub prof: Option<&'a Prof>,
}

/// Wire throughput counters for the status page: every frame the server
/// sends or receives across all worker links, with its size (4-byte
/// header + payload). Wall-clock/operator domain — not part of any
/// outcome digest.
#[derive(Debug, Default, Clone, Copy)]
struct WireStats {
    frames_in: u64,
    frames_out: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// Everything a served run produced: the ordinary closed-loop outcome
/// plus what the link did on the way.
pub struct ServedOutcome {
    /// The run outcome, same shape as the in-process driver's.
    pub outcome: ClosedLoopOutcome,
    /// Link statistics across all workers' evidence frames.
    pub link: LinkStats,
    /// Each worker's streamed trace JSONL, in worker order (empty
    /// strings unless the scenario enables tracing).
    pub worker_traces: Vec<String>,
}

/// One connected worker's framed channels.
struct Link {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

/// Run the server over an already-bound listener: accept
/// `scenario.serve.workers` workers, drive the run, return the outcome.
/// Worker indices are assigned in connection order.
///
/// # Errors
///
/// Propagates socket I/O errors and protocol violations.
pub fn run_server(
    listener: &TcpListener,
    scenario: &Scenario,
    opts: &ServeOptions<'_>,
) -> io::Result<ServedOutcome> {
    let workers = scenario.serve.workers.max(1);
    let machines = scenario.fleet.machines;
    let ranges = shard_ranges(machines, workers);

    // Handshake every worker before the first epoch: Hello up, Config
    // (scenario + shard range) down.
    let disabled_prof = Prof::disabled();
    let prof = opts.prof.unwrap_or(&disabled_prof);
    let mut wire = WireStats::default();
    let scenario_json = scenario.to_json();
    let mut links = Vec::with_capacity(workers as usize);
    for (w, &(lo, hi)) in ranges.iter().enumerate() {
        let (stream, _) = listener.accept()?;
        stream.set_nodelay(true)?;
        let mut link = Link {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        match recv_sized(&mut link.reader, prof)? {
            Some((Message::Hello { proto }, n)) if proto == PROTO_VERSION => {
                wire.frames_in += 1;
                wire.bytes_in += n;
            }
            Some((Message::Hello { proto }, _)) => {
                return Err(proto_err(&format!(
                    "worker speaks protocol {proto}, server speaks {PROTO_VERSION}"
                )))
            }
            _ => return Err(proto_err("expected Hello")),
        }
        let n = send_sized(
            &mut link.writer,
            &Message::Config {
                scenario: scenario_json.clone(),
                worker: w as u32,
                lo,
                hi,
            },
            prof,
        )?;
        wire.frames_out += 1;
        wire.bytes_out += n;
        link.writer.flush()?;
        links.push(link);
    }

    serve_run(scenario, &mut links, opts, wire)
}

/// The epoch loop over handshaken links.
fn serve_run(
    scenario: &Scenario,
    links: &mut [Link],
    opts: &ServeOptions<'_>,
    mut wire: WireStats,
) -> io::Result<ServedOutcome> {
    let started = Instant::now();
    let disabled_prof = Prof::disabled();
    let prof = opts.prof.unwrap_or(&disabled_prof);
    let experiment = FleetExperiment::build(scenario);
    let engine = watch_engine(scenario, &opts.rules);
    let mut rec = scenario.recorder();
    record_ground_truth_onsets(&experiment, &mut rec);
    let mut agg = FleetAggregator::new(scenario, &experiment, engine);
    let epochs = agg.total_epochs();
    let epoch_hours = agg.epoch_hours();

    let status = opts
        .status_addr
        .as_deref()
        .map(spawn_status_endpoint)
        .transpose()?;
    let mut channel = ImpairedChannel::new(scenario.serve.impair);
    let mut worker_traces = vec![String::new(); links.len()];

    while !agg.is_done() {
        let cmds = agg.begin_epoch(&mut rec, prof);
        let epoch = cmds.epoch;
        // Broadcast: commands address cores by uid, and applying a
        // non-owned core's command is a no-op, so every worker gets the
        // same frame.
        for link in links.iter_mut() {
            let n = send_sized(&mut link.writer, &Message::Cmd { cmds: cmds.clone() }, prof)?;
            wire.frames_out += 1;
            wire.bytes_out += n;
            link.writer.flush()?;
        }
        // Collect in worker-index order — the deterministic merge order
        // the in-process multi-shard path uses.
        let mut reports: Vec<ShardEpochReport> = Vec::with_capacity(links.len());
        for (w, link) in links.iter_mut().enumerate() {
            let (evidence, report, jsonl) =
                recv_epoch_frames(&mut link.reader, w as u32, epoch, prof, &mut wire)?;
            channel.offer(w as u32, epoch, evidence);
            reports.push(report);
            worker_traces[w].push_str(&jsonl);
        }
        // Every frame the link delivers this epoch rides in the first
        // report's evidence slot: the aggregator ingests evidence as one
        // ordered stream, so only the concatenation order matters — and
        // the channel already emits canonical (delayed/duplicated/
        // reordered) arrival order.
        let mut delivered = SignalLog::new();
        for log in channel.drain(epoch) {
            delivered.append(log);
        }
        reports[0].evidence = delivered;
        agg.ingest_reports(reports, &mut rec, prof);

        if let Some(body) = &status {
            let mut s = body.lock().expect("status lock");
            *s = status_body(
                &rec,
                &channel.stats,
                epoch + 1,
                epochs,
                &wire,
                started,
                prof,
            );
        }
    }

    // Wind down: Fin to every worker, absorb their trace tails, metric
    // readouts (counters merge into the server recorder so the final
    // metric set equals the in-process run's), and phase profiles —
    // worker-index order, the same discipline as every other merge.
    for (w, link) in links.iter_mut().enumerate() {
        let n = send_sized(&mut link.writer, &Message::Fin, prof)?;
        wire.frames_out += 1;
        wire.bytes_out += n;
        link.writer.flush()?;
        loop {
            let Some((msg, n)) = recv_sized(&mut link.reader, prof)? else {
                return Err(proto_err("expected Trace/Bye after Fin"));
            };
            wire.frames_in += 1;
            wire.bytes_in += n;
            match msg {
                Message::Trace { jsonl, .. } => worker_traces[w].push_str(&jsonl),
                Message::Bye {
                    counters,
                    gauges,
                    profile,
                } => {
                    for c in counters {
                        rec.counter_add(intern(c.name), c.value);
                    }
                    for g in gauges {
                        rec.gauge(0.0, intern(g.name), g.value);
                    }
                    let _w = prof.span("serve.workers");
                    prof.absorb_entries(&profile);
                    break;
                }
                _ => return Err(proto_err("expected Trace/Bye after Fin")),
            }
        }
    }

    let finished = agg.finish(&mut rec, &[], opts.baseline, prof);
    if let Some(body) = &status {
        let mut s = body.lock().expect("status lock");
        *s = status_body(&rec, &channel.stats, epochs, epochs, &wire, started, prof);
    }
    Ok(ServedOutcome {
        outcome: ClosedLoopOutcome {
            pipeline: finished.pipeline,
            series: finished.series,
            epochs,
            epoch_hours,
            trace: rec.finish(),
            watch: finished.watch,
        },
        link: channel.stats,
        worker_traces,
    })
}

/// Receive one worker's epoch frames (Evidence, Report, Trace — in that
/// order) and validate their epoch/worker stamps.
fn recv_epoch_frames(
    reader: &mut BufReader<TcpStream>,
    worker: u32,
    epoch: u32,
    prof: &Prof,
    wire: &mut WireStats,
) -> io::Result<(SignalLog, ShardEpochReport, String)> {
    let mut next = |wire: &mut WireStats| -> io::Result<Option<Message>> {
        Ok(recv_sized(reader, prof)?.map(|(msg, n)| {
            wire.frames_in += 1;
            wire.bytes_in += n;
            msg
        }))
    };
    let Some(Message::Evidence {
        worker: w,
        epoch: e,
        log,
    }) = next(wire)?
    else {
        return Err(proto_err("expected Evidence"));
    };
    if w != worker || e != epoch {
        return Err(proto_err(&format!(
            "evidence stamped worker {w} epoch {e}, expected {worker}/{epoch}"
        )));
    }
    let Some(Message::Report { report }) = next(wire)? else {
        return Err(proto_err("expected Report"));
    };
    if report.epoch != epoch {
        return Err(proto_err(&format!(
            "report stamped epoch {}, expected {epoch}",
            report.epoch
        )));
    }
    let Some(Message::Trace { jsonl, .. }) = next(wire)? else {
        return Err(proto_err("expected Trace"));
    };
    Ok((log, *report, jsonl))
}

/// Worker metric names arrive as owned strings but `MetricSet` interns
/// `&'static str`. The names form a small fixed compile-time set, so
/// leaking each distinct arrival is bounded and exact.
fn intern(name: String) -> &'static str {
    Box::leak(name.into_boxed_str())
}

/// The status page: build identity, run progress, runtime wall-clock
/// counters, link statistics, the live phase profile, and the Prometheus
/// rendering of the live metric set. Everything here is operator/
/// wall-clock domain — the page is a read-only window, never an input.
fn status_body(
    rec: &mercurial_trace::Recorder,
    link: &LinkStats,
    done: u32,
    total: u32,
    wire: &WireStats,
    started: Instant,
    prof: &Prof,
) -> String {
    let uptime = started.elapsed().as_secs_f64();
    let frames = wire.frames_in + wire.frames_out;
    let mut out = String::new();
    out.push_str("# mercurial-serve status\n");
    out.push_str(&format!(
        "mercurial_build_info{{version=\"{}\",proto=\"{PROTO_VERSION}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    ));
    out.push_str(&format!("mercurial_serve_uptime_seconds {uptime:.3}\n"));
    out.push_str(&format!("mercurial_serve_epochs_done {done}\n"));
    out.push_str(&format!("mercurial_serve_epochs_total {total}\n"));
    out.push_str(&format!(
        "mercurial_serve_frames_in_total {}\n",
        wire.frames_in
    ));
    out.push_str(&format!(
        "mercurial_serve_frames_out_total {}\n",
        wire.frames_out
    ));
    out.push_str(&format!(
        "mercurial_serve_bytes_in_total {}\n",
        wire.bytes_in
    ));
    out.push_str(&format!(
        "mercurial_serve_bytes_out_total {}\n",
        wire.bytes_out
    ));
    out.push_str(&format!(
        "mercurial_serve_frames_per_second {:.3}\n",
        if uptime > 0.0 {
            frames as f64 / uptime
        } else {
            0.0
        }
    ));
    out.push_str(&format!("mercurial_serve_link_frames {}\n", link.frames));
    out.push_str(&format!("mercurial_serve_link_dropped {}\n", link.dropped));
    out.push_str(&format!("mercurial_serve_link_delayed {}\n", link.delayed));
    out.push_str(&format!(
        "mercurial_serve_link_duplicated {}\n",
        link.duplicated
    ));
    out.push_str(&format!(
        "mercurial_serve_link_reordered {}\n",
        link.reordered
    ));
    out.push_str(&prof_section(prof));
    if let Some(metrics) = rec.metrics() {
        out.push_str(&audit_section(metrics));
        out.push_str(&metrics_to_prometheus(metrics));
    }
    out
}

/// The wall-clock phase section of the status page: one gauge per phase
/// path from the server's live profile (absent entirely when profiling
/// is off). Phase names are compile-time or wire-interned identifiers,
/// but they pass through the label escaper anyway.
fn prof_section(prof: &Prof) -> String {
    let snapshot = prof.snapshot();
    if snapshot.is_empty() {
        return String::new();
    }
    let mut out = String::from("# TYPE mercurial_prof_phase_wall_ms gauge\n");
    for e in snapshot.entries() {
        out.push_str(&format!(
            "mercurial_prof_phase_wall_ms{{phase=\"{}\"}} {:.3}\n",
            prom_label_escape(&e.stack),
            e.wall_ns as f64 / 1e6
        ));
    }
    out
}

/// The decision-audit section of the status page: per-rule fire counts
/// as one labeled Prometheus family. Rule names are operator input (the
/// watch block names them), so they go through the label escaper.
fn audit_section(metrics: &mercurial_trace::MetricSet) -> String {
    let mut out = String::new();
    for (name, v) in metrics.counters() {
        if let Some(rule) = name
            .strip_prefix("audit.rule.")
            .and_then(|s| s.strip_suffix(".fires"))
        {
            if out.is_empty() {
                out.push_str("# TYPE mercurial_audit_rule_fires counter\n");
            }
            out.push_str(&format!(
                "mercurial_audit_rule_fires{{rule=\"{}\"}} {v}\n",
                prom_label_escape(rule)
            ));
        }
    }
    out
}

/// Serve `GET /metrics`-style requests with the current snapshot body.
/// Hand-rolled HTTP/1.0: read the request head, write one plain-text
/// response, close. The thread is detached and dies with the process.
fn spawn_status_endpoint(addr: &str) -> io::Result<Arc<Mutex<String>>> {
    let listener = TcpListener::bind(addr)?;
    let body = Arc::new(Mutex::new(String::from("# mercurial-serve starting\n")));
    let shared = Arc::clone(&body);
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            // Drain the request head; content is irrelevant (every path
            // serves the same snapshot).
            let mut buf = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut buf);
            let snapshot = shared.lock().map(|s| s.clone()).unwrap_or_default();
            let _ = write!(
                stream,
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\n\r\n{}",
                snapshot.len(),
                snapshot
            );
            let _ = stream.flush();
        }
    });
    Ok(body)
}

/// Run a complete served topology in one process: bind an ephemeral
/// loopback listener, spawn `scenario.serve.workers` worker threads that
/// connect to it, and drive the server on the calling thread. This is
/// the harness tests and benches use; the CLI's multi-process demo mode
/// runs the same protocol with workers as child processes.
///
/// # Errors
///
/// Propagates socket I/O errors and protocol violations from either
/// side.
pub fn run_served(scenario: &Scenario, opts: &ServeOptions<'_>) -> io::Result<ServedOutcome> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let workers = scenario.serve.workers.max(1);
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            std::thread::spawn(move || -> io::Result<()> {
                let stream = TcpStream::connect(addr)?;
                run_worker(stream)
            })
        })
        .collect();
    let out = run_server(&listener, scenario, opts)?;
    for h in handles {
        h.join()
            .map_err(|_| io::Error::other("worker thread panicked"))??;
    }
    Ok(out)
}

/// A convenience for impairment sweeps: run the same scenario served,
/// with `impair` overriding the scenario's `serve.impair` block.
///
/// # Errors
///
/// See [`run_served`].
pub fn run_served_impaired(
    scenario: &Scenario,
    impair: ImpairConfig,
    opts: &ServeOptions<'_>,
) -> io::Result<ServedOutcome> {
    let mut s = scenario.clone();
    s.serve.impair = impair;
    run_served(&s, opts)
}
