//! Served-topology parity: with clean links, splitting the closed loop
//! across worker processes and a socket protocol must not move the
//! outcome by a byte — at any worker count, across seeds, traced or not.
//!
//! The in-process [`ClosedLoopDriver`] run is the reference. Everything
//! the scoreboard produces is compared: detections, the ingested signal
//! log, the simulation summary, the per-epoch series, the watch report,
//! and the Prometheus rendering of the final metric set (which pins the
//! `Bye`-frame counter absorption). Divergence under impairment is then
//! attributable to the link model alone — the last test spot-checks that
//! a fully lossy link actually loses evidence.

use mercurial::audit::DecisionLedger;
use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::scenario::ImpairConfig;
use mercurial::Scenario;
use mercurial_serve::{run_served, run_served_impaired, ServeOptions};
use mercurial_trace::export::to_prometheus;

fn scenario(seed: u64, workers: u32, traced: bool) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.sim.engine = SimEngine::Sparse;
    s.trace.enabled = traced;
    s.watch.enabled = traced;
    s.serve.workers = workers;
    s
}

#[test]
fn served_zero_impairment_is_bit_identical_to_in_process() {
    for seed in [7u64, 23] {
        let reference = ClosedLoopDriver::execute(&scenario(seed, 1, true));
        assert!(
            !reference.pipeline.detections.is_empty(),
            "demo fleet must yield detections (seed {seed})"
        );
        let ref_watch = reference.watch.as_ref().expect("watch enabled").render();
        let ref_prom = to_prometheus(&reference.trace);
        for workers in [1u32, 2, 4] {
            let s = scenario(seed, workers, true);
            let served = run_served(&s, &ServeOptions::default()).expect("served run");
            assert_eq!(served.link.dropped, 0, "clean link must not drop");
            assert!(served.link.frames > 0, "evidence must ride the link");
            let out = &served.outcome;
            assert_eq!(
                out.pipeline.detections, reference.pipeline.detections,
                "detections diverge (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                out.pipeline.signals.all(),
                reference.pipeline.signals.all(),
                "signal log diverges (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                out.pipeline.sim_summary, reference.pipeline.sim_summary,
                "sim summary diverges (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                out.series, reference.series,
                "epoch series diverges (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                out.watch.as_ref().expect("watch enabled").render(),
                ref_watch,
                "watch report diverges (seed {seed}, {workers} workers)"
            );
            assert_eq!(
                to_prometheus(&out.trace),
                ref_prom,
                "metric set diverges (seed {seed}, {workers} workers)"
            );
            assert_eq!(out.epochs, reference.epochs);
            assert_eq!(out.epoch_hours, reference.epoch_hours);
        }
    }
}

#[test]
fn served_untraced_run_matches_in_process() {
    let reference = ClosedLoopDriver::execute(&scenario(11, 1, false));
    for workers in [1u32, 2, 4] {
        let s = scenario(11, workers, false);
        let served = run_served(&s, &ServeOptions::default()).expect("served run");
        let out = &served.outcome;
        assert_eq!(out.pipeline.detections, reference.pipeline.detections);
        assert_eq!(out.pipeline.signals.all(), reference.pipeline.signals.all());
        assert_eq!(out.pipeline.sim_summary, reference.pipeline.sim_summary);
        assert_eq!(out.series, reference.series);
        assert!(out.watch.is_none(), "watch off means no report");
        assert!(
            served.worker_traces.iter().all(String::is_empty),
            "tracing off means empty trace channel"
        );
    }
}

#[test]
fn served_workload_layer_is_bit_identical_to_in_process() {
    // E20: per-class deltas ride the Report frames, policy switches ride
    // the Cmd frames, and worker class counters ride the Bye frames —
    // none of which may move the outcome on a clean link. The per-class
    // series columns and the Prometheus rendering (which carries the
    // absorbed class counters) are the sensitive surfaces.
    let workloads = |workers: u32| {
        let mut s = scenario(7, workers, true);
        s.workloads.enabled = true;
        s.workloads.adapt = true;
        s.workloads.escalate_threshold = 1_000;
        s
    };
    let reference = ClosedLoopDriver::execute(&workloads(1));
    assert!(
        !reference.series.class_names().is_empty(),
        "workload layer must be live"
    );
    let ref_watch = reference.watch.as_ref().expect("watch enabled").render();
    let ref_prom = to_prometheus(&reference.trace);
    for workers in [1u32, 2, 4] {
        let served = run_served(&workloads(workers), &ServeOptions::default()).expect("served run");
        let out = &served.outcome;
        assert_eq!(
            out.series, reference.series,
            "per-class series diverges ({workers} workers)"
        );
        assert_eq!(
            out.pipeline.sim_summary, reference.pipeline.sim_summary,
            "sim summary diverges ({workers} workers)"
        );
        assert_eq!(
            out.watch.as_ref().expect("watch enabled").render(),
            ref_watch,
            "watch report diverges ({workers} workers)"
        );
        assert_eq!(
            to_prometheus(&out.trace),
            ref_prom,
            "metric set (incl. class counters) diverges ({workers} workers)"
        );
    }
}

#[test]
fn served_audit_run_is_bit_identical_to_in_process() {
    // E21: the decision ledger is derived from the trace, and every
    // ledger-relevant emission (signal provenance, core transitions,
    // triage verdicts, alerts, escalations, ground truth) happens on the
    // aggregator side — so the ledger a served run yields must be byte
    // identical to the in-process one at any worker count. Worker-side
    // audit counters ride the Bye frames and are pinned via Prometheus.
    let audited = |workers: u32| {
        let mut s = scenario(7, workers, true);
        s.audit.enabled = true;
        s
    };
    let reference = ClosedLoopDriver::execute(&audited(1));
    let ref_ledger = DecisionLedger::from_trace(&reference.trace);
    assert!(!ref_ledger.is_empty(), "audited run must record decisions");
    let ref_prom = to_prometheus(&reference.trace);
    for workers in [1u32, 2, 4] {
        let served = run_served(&audited(workers), &ServeOptions::default()).expect("served run");
        let out = &served.outcome;
        let ledger = DecisionLedger::from_trace(&out.trace);
        assert_eq!(
            ledger.to_jsonl(),
            ref_ledger.to_jsonl(),
            "decision ledger diverges ({workers} workers)"
        );
        assert_eq!(
            out.series, reference.series,
            "epoch series diverges under audit ({workers} workers)"
        );
        assert_eq!(
            to_prometheus(&out.trace),
            ref_prom,
            "metric set (incl. audit counters) diverges ({workers} workers)"
        );
    }
}

#[test]
fn served_runs_are_deterministic_including_streamed_traces() {
    let s = scenario(7, 2, true);
    let a = run_served(&s, &ServeOptions::default()).expect("first run");
    let b = run_served(&s, &ServeOptions::default()).expect("second run");
    assert_eq!(a.link, b.link);
    assert_eq!(a.worker_traces, b.worker_traces);
    assert!(
        a.worker_traces.iter().all(|t| !t.is_empty()),
        "traced workers must stream events"
    );
    assert_eq!(
        a.outcome.pipeline.sim_summary,
        b.outcome.pipeline.sim_summary
    );
}

#[test]
fn fully_lossy_link_starves_the_scoreboard_of_evidence() {
    let s = scenario(7, 2, false);
    let reference = run_served(&s, &ServeOptions::default()).expect("clean run");
    let impair = ImpairConfig {
        loss: 1.0,
        ..ImpairConfig::default()
    };
    let lossy = run_served_impaired(&s, impair, &ServeOptions::default()).expect("lossy run");
    assert_eq!(
        lossy.link.dropped, lossy.link.frames,
        "loss=1.0 must drop every evidence frame"
    );
    // The scoreboard sees fewer signals (the loop is closed, so the
    // simulation drifts too — undetected cores keep corrupting)…
    assert!(
        lossy.outcome.pipeline.signals.all().len() < reference.outcome.pipeline.signals.all().len(),
        "dropped evidence must shrink the ingested signal log"
    );
    // …and a starved scoreboard cannot detect more.
    assert!(
        lossy.outcome.pipeline.detections.len() <= reference.outcome.pipeline.detections.len(),
        "a starved scoreboard cannot detect more"
    );
}
