//! Status-endpoint and profiler plumbing: the runtime metrics page and
//! the wall-clock phase profile are write-only observability, so turning
//! both on (server-side `Prof` plus `MERCURIAL_PROF` in the workers) must
//! leave a served run bit-identical to the unprofiled in-process
//! reference — while the page itself reports real build/uptime/throughput
//! numbers and the final profile carries the absorbed worker phases.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

use mercurial::closedloop::ClosedLoopDriver;
use mercurial::fleet::SimEngine;
use mercurial::Scenario;
use mercurial_prof::Prof;
use mercurial_serve::{run_served, ServeOptions};
use mercurial_trace::export::to_prometheus;

fn scenario(seed: u64, workers: u32) -> Scenario {
    let mut s = Scenario::demo(seed);
    s.closed_loop.feedback = true;
    s.sim.engine = SimEngine::Sparse;
    s.trace.enabled = true;
    s.watch.enabled = true;
    s.serve.workers = workers;
    s
}

/// Reserve a loopback port: bind ephemeral, read the address, release.
/// The status endpoint rebinds it moments later; the window is ours
/// alone in practice because the kernel cycles ephemeral ports.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// One hand-rolled HTTP/1.0 GET against the status endpoint.
fn fetch_status(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect status endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn status_page_reports_runtime_metrics_without_moving_the_outcome() {
    // Worker threads inherit profiling from the environment — flip it on
    // so the `Bye` frames carry real phase profiles. The whole point of
    // this test is that none of this observability is sim-visible.
    std::env::set_var("MERCURIAL_PROF", "1");

    let reference = ClosedLoopDriver::execute(&scenario(7, 1));
    let ref_watch = reference.watch.as_ref().expect("watch enabled").render();
    let ref_prom = to_prometheus(&reference.trace);

    let s = scenario(7, 2);
    let status_addr = free_addr();
    let prof = Prof::enabled();
    let opts = ServeOptions {
        status_addr: Some(status_addr.clone()),
        prof: Some(&prof),
        ..ServeOptions::default()
    };
    let served = run_served(&s, &opts).expect("served run");

    // Parity first: profiled server + profiled workers + live status
    // page, and still not one output byte moves.
    let out = &served.outcome;
    assert_eq!(out.pipeline.detections, reference.pipeline.detections);
    assert_eq!(out.pipeline.signals.all(), reference.pipeline.signals.all());
    assert_eq!(out.pipeline.sim_summary, reference.pipeline.sim_summary);
    assert_eq!(out.series, reference.series);
    assert_eq!(
        out.watch.as_ref().expect("watch enabled").render(),
        ref_watch
    );
    assert_eq!(to_prometheus(&out.trace), ref_prom);

    // The endpoint thread outlives the run and serves the final snapshot.
    let page = fetch_status(&status_addr);
    assert!(page.starts_with("HTTP/1.0 200 OK"), "status endpoint up");
    for key in [
        "mercurial_build_info{version=\"",
        "mercurial_serve_uptime_seconds ",
        "mercurial_serve_frames_in_total ",
        "mercurial_serve_frames_out_total ",
        "mercurial_serve_bytes_in_total ",
        "mercurial_serve_bytes_out_total ",
        "mercurial_serve_frames_per_second ",
        "mercurial_prof_phase_wall_ms{phase=\"",
    ] {
        assert!(page.contains(key), "status page missing {key}:\n{page}");
    }
    // The final snapshot is taken after the Fin round: every frame both
    // directions is accounted, and the run is marked complete.
    let field = |name: &str| -> f64 {
        page.lines()
            .find_map(|l| l.strip_prefix(name))
            .unwrap_or_else(|| panic!("field {name} on page"))
            .trim()
            .parse()
            .expect("numeric field")
    };
    assert_eq!(
        field("mercurial_serve_epochs_done "),
        field("mercurial_serve_epochs_total ")
    );
    assert!(field("mercurial_serve_frames_in_total ") > 0.0);
    assert!(field("mercurial_serve_frames_out_total ") > 0.0);
    assert!(
        field("mercurial_serve_bytes_in_total ") > field("mercurial_serve_frames_in_total ") * 4.0,
        "every frame carries a payload beyond its header"
    );

    // The server's own profile measured the protocol, and the workers'
    // profiles were absorbed under `serve.workers` in worker-index order.
    let profile = prof.finish();
    assert!(profile.calls("loop.begin") > 0, "aggregator phases present");
    assert!(profile.calls("serve.io") > 0, "socket I/O attributed");
    assert!(profile.calls("serve.encode") > 0, "encode attributed");
    assert!(profile.calls("serve.decode") > 0, "decode attributed");
    assert_eq!(
        profile.calls("serve.workers"),
        2,
        "one absorption per worker"
    );
    assert!(
        profile.calls("serve.workers;shard.epoch") > 0,
        "worker shard phases ride the Bye frame"
    );
}
