//! # mercurial-simcpu
//!
//! An instruction-level multicore CPU simulator with per-functional-unit
//! CEE injection — the "cycle-level CPU simulators that allow injection of
//! known CEE behavior" that §9 of *Cores that don't count* calls for.
//!
//! The simulated machine is a small 64-bit load/store architecture chosen
//! to make the paper's phenomena expressible, not to mimic any real ISA:
//!
//! * every instruction executes on one [`FunctionalUnit`]
//!   (see [`unitmap`]), and the mapping is deliberately non-obvious in the
//!   way the paper describes — bulk copies ([`isa::Inst::MemCpy`]) execute
//!   on the **vector pipe**, so a vector-pipe defect corrupts both vector
//!   math and `memcpy`-style code (§5);
//! * a [`exec::SimCore`] owns an optional fault [`Injector`]; healthy cores
//!   run the exact same code paths with zero behavioral difference;
//! * wrong answers can surface as silent corruption, exceptions
//!   ([`trap::Trap`]), or [machine checks](trap::Trap::MachineCheck),
//!   reproducing the §2 symptom mix;
//! * a [`chip::Chip`] gangs several cores over shared memory with
//!   round-robin interleaving, which is enough to express lock-torture
//!   tests against defective atomic units.
//!
//! A tiny assembler ([`asm`]) turns readable text into programs, so the
//! corpus crate and the examples can ship legible test kernels.
//!
//! [`FunctionalUnit`]: mercurial_fault::FunctionalUnit
//! [`Injector`]: mercurial_fault::Injector
#![warn(missing_docs)]

pub mod asm;
pub mod chip;
pub mod crypto;
pub mod disasm;
pub mod exec;
pub mod isa;
pub mod mem;
pub mod trap;
pub mod unitmap;

pub use asm::{assemble, AsmError};
pub use chip::{Chip, ChipConfig};
pub use disasm::{disassemble, render_inst};
pub use exec::{CoreConfig, ExecStats, SimCore, StepOutcome};
pub use isa::{Inst, Program, Reg, VReg};
pub use mem::Memory;
pub use trap::Trap;
