//! A multi-core chip: several [`SimCore`]s over shared [`Memory`].
//!
//! The paper's central observation is that "typically just one core fails,
//! often consistently" on a multi-core part (§2). A [`Chip`] is built from a
//! core count and an optional map of fault profiles — normally zero or one
//! entries — and offers two execution modes:
//!
//! * [`Chip::run_core`]: run one program to completion on one core (how
//!   screeners test cores one at a time);
//! * [`Chip::run_interleaved`]: step all cores round-robin over shared
//!   memory (how lock-torture corpus kernels expose defective atomics).

use crate::exec::{CoreConfig, SimCore, StepOutcome};
use crate::isa::Program;
use crate::mem::Memory;
use crate::trap::Trap;
use mercurial_fault::{CoreFaultProfile, CoreUid, Injector, OperatingPoint};

/// Chip-wide configuration.
#[derive(Debug, Clone)]
pub struct ChipConfig {
    /// Number of cores.
    pub cores: u16,
    /// Shared memory size in bytes.
    pub mem_size: usize,
    /// Machine index used in the cores' [`CoreUid`]s.
    pub machine: u32,
    /// Socket index used in the cores' [`CoreUid`]s.
    pub socket: u8,
    /// Injection seed shared by all cores (streams are decorrelated by
    /// core uid).
    pub seed: u64,
    /// Operating point applied to every core initially.
    pub point: OperatingPoint,
    /// Per-run instruction budget for each core.
    pub fuel: u64,
    /// Probability an injected corruption raises a machine check.
    pub mce_on_fire_prob: f64,
}

impl Default for ChipConfig {
    fn default() -> ChipConfig {
        ChipConfig {
            cores: 4,
            mem_size: 1 << 20,
            machine: 0,
            socket: 0,
            seed: 0,
            point: OperatingPoint::NOMINAL,
            fuel: 10_000_000,
            mce_on_fire_prob: 0.0,
        }
    }
}

/// The final status of one core in an interleaved run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreRunStatus {
    /// The core halted normally.
    Halted,
    /// The core trapped.
    Trapped(Trap),
    /// The core was still running when the step budget expired.
    OutOfSteps,
}

/// A multi-core chip with shared memory.
pub struct Chip {
    cores: Vec<SimCore>,
    mem: Memory,
}

impl Chip {
    /// Builds a chip; `profiles` assigns fault profiles to core indices.
    pub fn new(config: ChipConfig, profiles: Vec<(u16, CoreFaultProfile)>) -> Chip {
        let mut cores = Vec::with_capacity(config.cores as usize);
        for idx in 0..config.cores {
            let uid = CoreUid::new(config.machine, config.socket, idx);
            let injector = profiles
                .iter()
                .find(|(i, _)| *i == idx)
                .map(|(_, p)| Injector::new(config.seed, p.clone()));
            cores.push(SimCore::new(
                CoreConfig {
                    uid,
                    point: config.point,
                    age_hours: 0.0,
                    fuel: config.fuel,
                    mce_on_fire_prob: config.mce_on_fire_prob,
                    seed: config.seed,
                },
                injector,
            ));
        }
        Chip {
            cores,
            mem: Memory::new(config.mem_size),
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Shared memory (e.g. to stage program inputs).
    pub fn mem(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// Immutable view of a core.
    pub fn core(&self, idx: u16) -> &SimCore {
        &self.cores[idx as usize]
    }

    /// Mutable view of a core (e.g. to pass arguments in registers or
    /// change its operating point).
    pub fn core_mut(&mut self, idx: u16) -> &mut SimCore {
        &mut self.cores[idx as usize]
    }

    /// Runs `prog` to completion on core `idx` against shared memory.
    ///
    /// The core is reset first; its output buffer holds the results.
    pub fn run_core(&mut self, idx: u16, prog: &Program) -> Result<(), Trap> {
        let core = &mut self.cores[idx as usize];
        core.reset();
        core.run(prog, &mut self.mem).map(|_| ())
    }

    /// Steps every non-finished core round-robin until all halt/trap or
    /// `max_steps` rounds elapse. Returns per-core statuses.
    ///
    /// Each core runs its own program (commonly the same source assembled
    /// once, parameterized through registers).
    pub fn run_interleaved(&mut self, programs: &[Program], max_steps: u64) -> Vec<CoreRunStatus> {
        assert_eq!(
            programs.len(),
            self.cores.len(),
            "one program per core (clone the Program for SPMD runs)"
        );
        let n = self.cores.len();
        let mut status: Vec<Option<CoreRunStatus>> = vec![None; n];
        for core in &mut self.cores {
            core.reset();
        }
        for _ in 0..max_steps {
            let mut all_done = true;
            for i in 0..n {
                if status[i].is_some() {
                    continue;
                }
                all_done = false;
                match self.cores[i].step(&programs[i], &mut self.mem) {
                    Ok(StepOutcome::Running) => {}
                    Ok(StepOutcome::Halted) => status[i] = Some(CoreRunStatus::Halted),
                    Err(trap) => status[i] = Some(CoreRunStatus::Trapped(trap)),
                }
            }
            if all_done {
                break;
            }
        }
        status
            .into_iter()
            .map(|s| s.unwrap_or(CoreRunStatus::OutOfSteps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use mercurial_fault::{Activation, FunctionalUnit, Lesion};

    #[test]
    fn only_the_mercurial_core_miscomputes() {
        // §1: defects "typically afflict specific cores … rather than the
        // entire chip". Same program, four cores, one defective.
        let profile = CoreFaultProfile::single(
            "bad-mul",
            FunctionalUnit::MulDiv,
            Lesion::XorMask { mask: 0xf00 },
            Activation::always(),
        );
        let mut chip = Chip::new(ChipConfig::default(), vec![(2, profile)]);
        let prog = assemble(
            "li x1, 6
             li x2, 7
             mul x3, x1, x2
             out x3
             halt",
        )
        .unwrap();
        let mut results = Vec::new();
        for idx in 0..4 {
            chip.run_core(idx, &prog).unwrap();
            results.push(chip.core(idx).output()[0]);
        }
        assert_eq!(results[0], 42);
        assert_eq!(results[1], 42);
        assert_eq!(results[2], 42 ^ 0xf00);
        assert_eq!(results[3], 42);
    }

    #[test]
    fn interleaved_counter_increments_atomically() {
        // Four cores each xadd 1000 times; a healthy chip totals 4000.
        let src = "li x1, 128
                   li x2, 1
                   li x3, 1000
                   loop:
                   xadd x4, x1, x2
                   addi x3, x3, -1
                   bnz x3, loop
                   halt";
        let prog = assemble(src).unwrap();
        let mut chip = Chip::new(ChipConfig::default(), vec![]);
        let programs = vec![prog; 4];
        let status = chip.run_interleaved(&programs, 1_000_000);
        assert!(status.iter().all(|s| *s == CoreRunStatus::Halted));
        assert_eq!(chip.mem().read_u64(128).unwrap(), 4000);
    }

    #[test]
    fn spinlock_torture_with_phantom_success_corrupts() {
        // A spinlock guarding a non-atomic read-modify-write. With a
        // defective CAS (phantom success) two cores enter the critical
        // section at once and increments get lost — the paper's
        // "violations of lock semantics leading to application data
        // corruption" (§2).
        let src = "li x1, 128        ; lock word
                   li x5, 256        ; protected counter
                   li x6, 500        ; iterations
                   li x2, 0          ; expected = unlocked
                   li x3, 1          ; new = locked
                   acquire:
                   cas x4, x1, x2, x3
                   bne x4, x2, acquire
                   ld x7, x5, 0      ; critical section: racy increment
                   addi x7, x7, 1
                   st x7, x5, 0
                   st x2, x1, 0      ; release
                   addi x6, x6, -1
                   bnz x6, acquire
                   halt";
        let prog = assemble(src).unwrap();

        // Healthy chip: the total is exact.
        let mut good = Chip::new(ChipConfig::default(), vec![]);
        let status = good.run_interleaved(&vec![prog.clone(); 4], 10_000_000);
        assert!(status.iter().all(|s| *s == CoreRunStatus::Halted));
        assert_eq!(good.mem().read_u64(256).unwrap(), 2000);

        // One core with a lock-violating atomics unit: increments get lost.
        let profile = CoreFaultProfile::single(
            "locks",
            FunctionalUnit::Atomics,
            Lesion::LockViolation {
                mode: mercurial_fault::LockFailureMode::PhantomSuccess,
            },
            Activation::with_prob(0.2),
        );
        let mut bad = Chip::new(
            ChipConfig {
                seed: 7,
                ..ChipConfig::default()
            },
            vec![(1, profile)],
        );
        let status = bad.run_interleaved(&vec![prog; 4], 10_000_000);
        assert!(status
            .iter()
            .all(|s| matches!(s, CoreRunStatus::Halted | CoreRunStatus::Trapped(_))));
        let total = bad.mem().read_u64(256).unwrap();
        assert!(total < 2000, "lost updates expected, got {total}");
    }

    #[test]
    fn run_interleaved_reports_out_of_steps() {
        let prog = assemble("spin: jmp spin").unwrap();
        let mut chip = Chip::new(
            ChipConfig {
                cores: 1,
                ..ChipConfig::default()
            },
            vec![],
        );
        let status = chip.run_interleaved(&[prog], 100);
        assert_eq!(status, vec![CoreRunStatus::OutOfSteps]);
    }

    #[test]
    #[should_panic(expected = "one program per core")]
    fn interleaved_requires_program_per_core() {
        let prog = assemble("halt").unwrap();
        let mut chip = Chip::new(ChipConfig::default(), vec![]);
        let _ = chip.run_interleaved(&[prog], 10);
    }
}
