//! Instruction → functional-unit mapping.
//!
//! §5 of the paper: "often the mapping of instructions to possibly-defective
//! hardware is non-obvious". Two deliberate non-obviousnesses here, copied
//! from production reality:
//!
//! * [`Inst::MemCpy`] executes on [`FunctionalUnit::VectorPipe`] — the
//!   paper found data-copy and vector operations failing together because
//!   they share hardware;
//! * [`Inst::Crc32b`] executes on the scalar ALU even though one might
//!   guess "crypto"; conversely the carry-less-multiply-style AES rounds
//!   are on the crypto unit.
//!
//! Loads and stores touch *two* units: address generation computes the
//! effective address, then the load/store unit moves data. The executor
//! queries both.

use crate::isa::Inst;
use mercurial_fault::FunctionalUnit;

/// The unit an instruction's *data* computation executes on.
pub fn unit_of(inst: &Inst) -> FunctionalUnit {
    match inst {
        Inst::Li(..)
        | Inst::Mov(..)
        | Inst::Add(..)
        | Inst::Addi(..)
        | Inst::Sub(..)
        | Inst::And(..)
        | Inst::Or(..)
        | Inst::Xor(..)
        | Inst::Xori(..)
        | Inst::Shl(..)
        | Inst::Shr(..)
        | Inst::Rotli(..)
        | Inst::CmpLt(..)
        | Inst::CmpEq(..)
        | Inst::Popcnt(..)
        | Inst::Crc32b(..)
        | Inst::Nop => FunctionalUnit::ScalarAlu,

        Inst::Mul(..) | Inst::Mulh(..) | Inst::Div(..) | Inst::Rem(..) => FunctionalUnit::MulDiv,

        Inst::Fadd(..)
        | Inst::Fsub(..)
        | Inst::Fmul(..)
        | Inst::Fdiv(..)
        | Inst::Fma(..)
        | Inst::Fsqrt(..) => FunctionalUnit::Fma,

        Inst::Ld(..) | Inst::St(..) | Inst::Ldb(..) | Inst::Stb(..) => FunctionalUnit::LoadStore,

        Inst::Vadd(..)
        | Inst::Vxor(..)
        | Inst::Vmul(..)
        | Inst::Vins(..)
        | Inst::Vext(..)
        | Inst::Vld(..)
        | Inst::Vst(..)
        | Inst::MemCpy { .. } => FunctionalUnit::VectorPipe,

        Inst::Cas { .. } | Inst::Xadd(..) | Inst::Fence => FunctionalUnit::Atomics,

        Inst::AesEnc(..) | Inst::AesEncLast(..) | Inst::AesDec(..) | Inst::AesDecLast(..) => {
            FunctionalUnit::CryptoUnit
        }

        Inst::Jmp(..) | Inst::Beq(..) | Inst::Bne(..) | Inst::Blt(..) | Inst::Bnz(..) => {
            FunctionalUnit::BranchUnit
        }

        Inst::Out(..) | Inst::Assert(..) | Inst::Halt => FunctionalUnit::ScalarAlu,
    }
}

/// Whether the instruction computes an effective address on
/// [`FunctionalUnit::AddressGen`] before its data operation.
pub fn uses_address_gen(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Ld(..)
            | Inst::St(..)
            | Inst::Ldb(..)
            | Inst::Stb(..)
            | Inst::Vld(..)
            | Inst::Vst(..)
            | Inst::Cas { .. }
            | Inst::Xadd(..)
            | Inst::MemCpy { .. }
    )
}

/// The cycle cost of an instruction (a simple static table; copies add a
/// per-word cost in the executor).
pub fn cycle_cost(inst: &Inst) -> u64 {
    match inst {
        Inst::Mul(..) | Inst::Mulh(..) => 3,
        Inst::Div(..) | Inst::Rem(..) => 20,
        Inst::Fdiv(..) => 14,
        Inst::Fsqrt(..) => 16,
        Inst::Fadd(..) | Inst::Fsub(..) | Inst::Fmul(..) | Inst::Fma(..) => 4,
        Inst::Ld(..) | Inst::Ldb(..) | Inst::Vld(..) => 4,
        Inst::St(..) | Inst::Stb(..) | Inst::Vst(..) => 2,
        Inst::Cas { .. } | Inst::Xadd(..) => 12,
        Inst::Fence => 8,
        Inst::AesEnc(..) | Inst::AesEncLast(..) | Inst::AesDec(..) | Inst::AesDecLast(..) => 4,
        Inst::Vadd(..) | Inst::Vxor(..) | Inst::Vmul(..) => 2,
        Inst::MemCpy { .. } => 4, // plus 1 per 8-byte word, added by the executor
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{Reg, VReg};

    #[test]
    fn memcpy_shares_the_vector_pipe() {
        // The §5 anecdote, encoded: copies and vector math share hardware.
        let copy = Inst::MemCpy {
            dst: Reg::new(1),
            src: Reg::new(2),
            len: Reg::new(3),
        };
        let vmath = Inst::Vadd(VReg::new(0), VReg::new(1), VReg::new(2));
        assert_eq!(unit_of(&copy), FunctionalUnit::VectorPipe);
        assert_eq!(unit_of(&copy), unit_of(&vmath));
    }

    #[test]
    fn crc_is_scalar_not_crypto() {
        let crc = Inst::Crc32b(Reg::new(1), Reg::new(2), Reg::new(3));
        assert_eq!(unit_of(&crc), FunctionalUnit::ScalarAlu);
        let aes = Inst::AesEnc(VReg::new(0), VReg::new(1));
        assert_eq!(unit_of(&aes), FunctionalUnit::CryptoUnit);
    }

    #[test]
    fn memory_ops_use_address_gen() {
        assert!(uses_address_gen(&Inst::Ld(Reg::new(1), Reg::new(2), 0)));
        assert!(uses_address_gen(&Inst::MemCpy {
            dst: Reg::new(1),
            src: Reg::new(2),
            len: Reg::new(3)
        }));
        assert!(!uses_address_gen(&Inst::Add(
            Reg::new(1),
            Reg::new(2),
            Reg::new(3)
        )));
        assert!(!uses_address_gen(&Inst::Jmp(0)));
    }

    #[test]
    fn division_is_expensive() {
        assert!(
            cycle_cost(&Inst::Div(Reg::new(1), Reg::new(2), Reg::new(3)))
                > cycle_cost(&Inst::Add(Reg::new(1), Reg::new(2), Reg::new(3)))
        );
    }
}
