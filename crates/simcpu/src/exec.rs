//! The simulated core: fetch/execute with per-unit fault injection.
//!
//! Every instruction's architecturally correct result is computed first,
//! then routed through the core's [`Injector`] (if the core is mercurial)
//! keyed by the functional unit the instruction uses. Healthy cores take
//! the identical code path with a `None` injector.
//!
//! Loud failures are modeled faithfully (§2): corrupted effective addresses
//! usually land outside mapped memory and segfault; corrupted branch
//! decisions send control flow astray; and a configurable fraction of
//! injected corruptions raise [`Trap::MachineCheck`] instead of silently
//! proceeding.

use crate::crypto;
use crate::isa::{Inst, Program, Reg, VReg};
use crate::mem::Memory;
use crate::trap::Trap;
use crate::unitmap::{cycle_cost, unit_of, uses_address_gen};
use mercurial_fault::{
    CoreUid, CounterRng, FunctionalUnit, Injector, LockFailureMode, OpContext, OperatingPoint,
};

/// Static configuration of a simulated core.
#[derive(Debug, Clone, Copy)]
pub struct CoreConfig {
    /// The core's fleet-unique identity (keys fault streams).
    pub uid: CoreUid,
    /// Operating point the core runs at.
    pub point: OperatingPoint,
    /// Core age in hours of service (drives latent-defect onset).
    pub age_hours: f64,
    /// Instruction budget per [`SimCore::run`] call; exceeding it traps
    /// with [`Trap::FuelExhausted`] (corruptions can manufacture infinite
    /// loops, and we prefer a trap over a hung simulation).
    pub fuel: u64,
    /// Probability that an injected corruption additionally raises a
    /// machine check (§2 lists machine checks among CEE symptoms).
    pub mce_on_fire_prob: f64,
    /// Seed for the machine-check draw stream.
    pub seed: u64,
}

impl Default for CoreConfig {
    fn default() -> CoreConfig {
        CoreConfig {
            uid: CoreUid::new(0, 0, 0),
            point: OperatingPoint::NOMINAL,
            age_hours: 0.0,
            fuel: 10_000_000,
            mce_on_fire_prob: 0.0,
            seed: 0,
        }
    }
}

/// Counters accumulated while executing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles consumed (static cost table plus per-word copy costs).
    pub cycles: u64,
    /// How many operations were corrupted by the injector.
    pub corruptions: u64,
}

/// Outcome of a single [`SimCore::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The core can continue.
    Running,
    /// The program executed [`Inst::Halt`].
    Halted,
}

/// One simulated core.
///
/// # Examples
///
/// ```
/// use mercurial_simcpu::{assemble, CoreConfig, Memory, SimCore};
///
/// let prog = assemble(
///     "li x1, 6
///      li x2, 7
///      mul x3, x1, x2
///      out x3
///      halt",
/// )
/// .unwrap();
/// let mut core = SimCore::new(CoreConfig::default(), None);
/// let mut mem = Memory::new(1024);
/// core.run(&prog, &mut mem).unwrap();
/// assert_eq!(core.output(), &[42]);
/// ```
#[derive(Debug, Clone)]
pub struct SimCore {
    config: CoreConfig,
    regs: [u64; Reg::COUNT],
    vregs: [[u64; VReg::LANES]; VReg::COUNT],
    pc: u32,
    halted: bool,
    injector: Option<Injector>,
    /// Monotonic operation sequence; deliberately *not* reset between runs
    /// so probabilistic lesions see fresh draws on every retry (retrying a
    /// failed computation on the same mercurial core may or may not fail
    /// again, exactly as in production).
    op_seq: u64,
    output: Vec<u64>,
    stats: ExecStats,
}

impl SimCore {
    /// Creates a core; pass `Some(injector)` to make it mercurial.
    pub fn new(config: CoreConfig, injector: Option<Injector>) -> SimCore {
        SimCore {
            config,
            regs: [0; Reg::COUNT],
            vregs: [[0; VReg::LANES]; VReg::COUNT],
            pc: 0,
            halted: false,
            injector,
            op_seq: 0,
            output: Vec::new(),
            stats: ExecStats::default(),
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Changes the operating point (screeners sweep f, V, T).
    pub fn set_point(&mut self, point: OperatingPoint) {
        self.config.point = point;
    }

    /// Changes the core's age (fleet time advances between screenings).
    pub fn set_age_hours(&mut self, age_hours: f64) {
        self.config.age_hours = age_hours;
    }

    /// Whether the core carries a fault profile.
    pub fn is_mercurial(&self) -> bool {
        self.injector.is_some()
    }

    /// The values emitted by `out` instructions since the last reset.
    pub fn output(&self) -> &[u64] {
        &self.output
    }

    /// The current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Execution statistics since the last reset.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Reads a general-purpose register (for tests and harnesses).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a general-purpose register (to pass arguments to programs).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Resets architectural state (registers, pc, output, stats) while
    /// preserving the injector's latch state and operation sequence.
    pub fn reset(&mut self) {
        self.regs = [0; Reg::COUNT];
        self.vregs = [[0; VReg::LANES]; VReg::COUNT];
        self.pc = 0;
        self.halted = false;
        self.output.clear();
        self.stats = ExecStats::default();
    }

    fn ctx(&mut self, unit: FunctionalUnit, operand: u64) -> OpContext {
        let seq = self.op_seq;
        self.op_seq += 1;
        OpContext {
            core: self.config.uid,
            unit,
            point: self.config.point,
            age_hours: self.config.age_hours,
            operand,
            seq,
        }
    }

    /// Routes a correct result through the injector on `unit`.
    ///
    /// Returns the (possibly corrupted) value, or a machine check if the
    /// corruption was loud.
    fn unit_op(&mut self, unit: FunctionalUnit, operand: u64, correct: u64) -> Result<u64, Trap> {
        let ctx = self.ctx(unit, operand);
        let Some(injector) = self.injector.as_mut() else {
            return Ok(correct);
        };
        let out = injector.apply(ctx, correct);
        if out.corrupted() {
            self.stats.corruptions += 1;
            if self.machine_check_fires(ctx.seq) {
                return Err(Trap::MachineCheck);
            }
        }
        Ok(out.value)
    }

    fn machine_check_fires(&self, seq: u64) -> bool {
        self.config.mce_on_fire_prob > 0.0
            && CounterRng::from_parts(self.config.seed, self.config.uid.as_u64(), 0x4d43, 0)
                .uniform_at(seq)
                < self.config.mce_on_fire_prob
    }

    /// Effective-address computation on the address-generation unit.
    fn effective_addr(&mut self, base: u64, offset: i64) -> Result<u64, Trap> {
        let correct = base.wrapping_add(offset as u64);
        self.unit_op(FunctionalUnit::AddressGen, base, correct)
    }

    /// Executes one instruction.
    pub fn step(&mut self, prog: &Program, mem: &mut Memory) -> Result<StepOutcome, Trap> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let pc = self.pc;
        let inst = *prog
            .insts
            .get(pc as usize)
            .ok_or(Trap::PcOutOfRange { pc })?;
        self.stats.instructions += 1;
        self.stats.cycles += cycle_cost(&inst);
        let unit = unit_of(&inst);
        debug_assert!(
            !uses_address_gen(&inst) || unit != FunctionalUnit::BranchUnit,
            "memory instructions never branch"
        );
        let mut next_pc = pc + 1;

        macro_rules! r {
            ($r:expr) => {
                self.regs[$r.index()]
            };
        }

        match inst {
            Inst::Li(rd, imm) => {
                let v = self.unit_op(unit, imm, imm)?;
                r!(rd) = v;
            }
            Inst::Mov(rd, rs) => {
                let a = r!(rs);
                r!(rd) = self.unit_op(unit, a, a)?;
            }
            Inst::Add(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a.wrapping_add(b))?;
            }
            Inst::Addi(rd, ra, imm) => {
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, a.wrapping_add(imm as u64))?;
            }
            Inst::Sub(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a.wrapping_sub(b))?;
            }
            Inst::And(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a & b)?;
            }
            Inst::Or(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a | b)?;
            }
            Inst::Xor(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a ^ b)?;
            }
            Inst::Xori(rd, ra, imm) => {
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, a ^ imm)?;
            }
            Inst::Shl(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a << (b & 63))?;
            }
            Inst::Shr(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a >> (b & 63))?;
            }
            Inst::Rotli(rd, ra, imm) => {
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, a.rotate_left(imm))?;
            }
            Inst::CmpLt(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, (a < b) as u64)?;
            }
            Inst::CmpEq(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, (a == b) as u64)?;
            }
            Inst::Popcnt(rd, ra) => {
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, a.count_ones() as u64)?;
            }
            Inst::Crc32b(rd, ra, rb) => {
                let (crc, byte) = (r!(ra), r!(rb));
                let correct = crc32_step(crc as u32, byte as u8) as u64;
                r!(rd) = self.unit_op(unit, crc, correct)?;
            }
            Inst::Mul(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                r!(rd) = self.unit_op(unit, a, a.wrapping_mul(b))?;
            }
            Inst::Mulh(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                let correct = ((a as u128 * b as u128) >> 64) as u64;
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Div(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                r!(rd) = self.unit_op(unit, a, a / b)?;
            }
            Inst::Rem(rd, ra, rb) => {
                let (a, b) = (r!(ra), r!(rb));
                if b == 0 {
                    return Err(Trap::DivByZero);
                }
                r!(rd) = self.unit_op(unit, a, a % b)?;
            }
            Inst::Fadd(rd, ra, rb) => {
                let correct = (f64::from_bits(r!(ra)) + f64::from_bits(r!(rb))).to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Fsub(rd, ra, rb) => {
                let correct = (f64::from_bits(r!(ra)) - f64::from_bits(r!(rb))).to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Fmul(rd, ra, rb) => {
                let correct = (f64::from_bits(r!(ra)) * f64::from_bits(r!(rb))).to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Fdiv(rd, ra, rb) => {
                let correct = (f64::from_bits(r!(ra)) / f64::from_bits(r!(rb))).to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Fma(rd, ra, rb) => {
                let correct = f64::from_bits(r!(ra))
                    .mul_add(f64::from_bits(r!(rb)), f64::from_bits(r!(rd)))
                    .to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Fsqrt(rd, ra) => {
                let correct = f64::from_bits(r!(ra)).sqrt().to_bits();
                let a = r!(ra);
                r!(rd) = self.unit_op(unit, a, correct)?;
            }
            Inst::Ld(rd, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                let loaded = mem.read_u64(addr)?;
                r!(rd) = self.unit_op(unit, addr, loaded)?;
            }
            Inst::St(rs, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                let v = r!(rs);
                let stored = self.unit_op(unit, addr, v)?;
                mem.write_u64(addr, stored)?;
            }
            Inst::Ldb(rd, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                let loaded = mem.read_u8(addr)? as u64;
                r!(rd) = self.unit_op(unit, addr, loaded)?;
            }
            Inst::Stb(rs, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                let v = r!(rs) & 0xff;
                let stored = self.unit_op(unit, addr, v)?;
                mem.write_u8(addr, stored as u8)?;
            }
            Inst::Vadd(vd, va, vb) => {
                for lane in 0..VReg::LANES {
                    let (a, b) = (self.vregs[va.index()][lane], self.vregs[vb.index()][lane]);
                    self.vregs[vd.index()][lane] = self.unit_op(unit, a, a.wrapping_add(b))?;
                }
            }
            Inst::Vxor(vd, va, vb) => {
                for lane in 0..VReg::LANES {
                    let (a, b) = (self.vregs[va.index()][lane], self.vregs[vb.index()][lane]);
                    self.vregs[vd.index()][lane] = self.unit_op(unit, a, a ^ b)?;
                }
            }
            Inst::Vmul(vd, va, vb) => {
                for lane in 0..VReg::LANES {
                    let (a, b) = (self.vregs[va.index()][lane], self.vregs[vb.index()][lane]);
                    self.vregs[vd.index()][lane] = self.unit_op(unit, a, a.wrapping_mul(b))?;
                }
            }
            Inst::Vins(vd, rs, lane) => {
                let v = r!(rs);
                self.vregs[vd.index()][lane as usize % VReg::LANES] = self.unit_op(unit, v, v)?;
            }
            Inst::Vext(rd, va, lane) => {
                let v = self.vregs[va.index()][lane as usize % VReg::LANES];
                r!(rd) = self.unit_op(unit, v, v)?;
            }
            Inst::Vld(vd, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                for lane in 0..VReg::LANES {
                    let loaded = mem.read_u64(addr + 8 * lane as u64)?;
                    self.vregs[vd.index()][lane] = self.unit_op(unit, addr, loaded)?;
                }
            }
            Inst::Vst(vs, ra, imm) => {
                let addr = self.effective_addr(r!(ra), imm)?;
                for lane in 0..VReg::LANES {
                    let v = self.vregs[vs.index()][lane];
                    let stored = self.unit_op(unit, addr, v)?;
                    mem.write_u64(addr + 8 * lane as u64, stored)?;
                }
            }
            Inst::MemCpy { dst, src, len } => {
                let d = self.effective_addr(r!(dst), 0)?;
                let s = self.effective_addr(r!(src), 0)?;
                let n = r!(len);
                self.exec_memcpy(mem, d, s, n)?;
            }
            Inst::Cas {
                rd,
                addr,
                expected,
                new,
            } => {
                let a = self.effective_addr(r!(addr), 0)?;
                let old = mem.read_u64(a)?;
                let (exp, newv) = (r!(expected), r!(new));
                let ctx = self.ctx(FunctionalUnit::Atomics, old);
                let violation = self.injector.as_mut().and_then(|inj| inj.lock_failure(ctx));
                if let Some(mode) = violation {
                    self.stats.corruptions += 1;
                    if self.machine_check_fires(ctx.seq) {
                        return Err(Trap::MachineCheck);
                    }
                    match mode {
                        LockFailureMode::PhantomSuccess => {
                            // Reports success without performing the store.
                            r!(rd) = exp;
                        }
                        LockFailureMode::PhantomFailure => {
                            // Performs the store but reports failure.
                            if old == exp {
                                mem.write_u64(a, newv)?;
                            }
                            r!(rd) = exp.wrapping_add(1);
                        }
                        LockFailureMode::TornStore => {
                            if old == exp {
                                let torn =
                                    (old & 0xffff_ffff_0000_0000) | (newv & 0x0000_0000_ffff_ffff);
                                mem.write_u64(a, torn)?;
                            }
                            r!(rd) = old;
                        }
                    }
                } else {
                    if old == exp {
                        mem.write_u64(a, newv)?;
                    }
                    // Non-lock lesions on the atomics unit can still corrupt
                    // the observed value.
                    r!(rd) = self.unit_op(FunctionalUnit::Atomics, old, old)?;
                }
            }
            Inst::Xadd(rd, addr, rb) => {
                let a = self.effective_addr(r!(addr), 0)?;
                let old = mem.read_u64(a)?;
                let add = r!(rb);
                let stored = self.unit_op(unit, old, old.wrapping_add(add))?;
                mem.write_u64(a, stored)?;
                r!(rd) = old;
            }
            Inst::Fence => {
                let _ = self.unit_op(unit, 0, 0)?;
            }
            Inst::AesEnc(vd, vk) => self.aes_round(vd, vk, AesDir::Enc)?,
            Inst::AesEncLast(vd, vk) => self.aes_round(vd, vk, AesDir::EncLast)?,
            Inst::AesDec(vd, vk) => self.aes_round(vd, vk, AesDir::Dec)?,
            Inst::AesDecLast(vd, vk) => self.aes_round(vd, vk, AesDir::DecLast)?,
            Inst::Jmp(target) => {
                next_pc = self.unit_op(unit, target as u64, target as u64)? as u32;
            }
            Inst::Beq(ra, rb, target) => {
                let taken = (r!(ra) == r!(rb)) as u64;
                let decided = self.unit_op(unit, r!(ra), taken)?;
                if decided & 1 == 1 {
                    next_pc = target;
                }
            }
            Inst::Bne(ra, rb, target) => {
                let taken = (r!(ra) != r!(rb)) as u64;
                let decided = self.unit_op(unit, r!(ra), taken)?;
                if decided & 1 == 1 {
                    next_pc = target;
                }
            }
            Inst::Blt(ra, rb, target) => {
                let taken = (r!(ra) < r!(rb)) as u64;
                let decided = self.unit_op(unit, r!(ra), taken)?;
                if decided & 1 == 1 {
                    next_pc = target;
                }
            }
            Inst::Bnz(ra, target) => {
                let taken = (r!(ra) != 0) as u64;
                let decided = self.unit_op(unit, r!(ra), taken)?;
                if decided & 1 == 1 {
                    next_pc = target;
                }
            }
            Inst::Out(ra) => {
                // Observation channel: not injectable by design, so tests
                // can trust what they read back.
                let v = r!(ra);
                self.output.push(v);
            }
            Inst::Assert(ra) => {
                if r!(ra) == 0 {
                    return Err(Trap::AssertFailed { pc });
                }
            }
            Inst::Halt => {
                self.halted = true;
                return Ok(StepOutcome::Halted);
            }
            Inst::Nop => {}
        }

        self.pc = next_pc;
        Ok(StepOutcome::Running)
    }

    fn exec_memcpy(&mut self, mem: &mut Memory, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        // Word-granular copy through the vector pipe, with the stride-aware
        // copy lesions applied per word and the unit's other lesions applied
        // through the ordinary injection path.
        let words = len / 8;
        self.stats.cycles += words;
        for w in 0..words {
            let v = mem.read_u64(src + 8 * w)?;
            let ctx = self.ctx(FunctionalUnit::VectorPipe, v);
            let mut out = v;
            let mut fired = false;
            if let Some(inj) = self.injector.as_mut() {
                if let Some(mask) = inj.copy_corruption(ctx, w) {
                    out ^= mask;
                    fired = true;
                } else {
                    let o = inj.apply_excluding_copy(ctx, v);
                    fired = o.corrupted();
                    out = o.value;
                }
            }
            if fired {
                self.stats.corruptions += 1;
                if self.machine_check_fires(ctx.seq) {
                    return Err(Trap::MachineCheck);
                }
            }
            mem.write_u64(dst + 8 * w, out)?;
        }
        // Tail bytes move through a byte path that is too narrow to excite
        // the vector pipe's defects.
        for b in (words * 8)..len {
            let v = mem.read_u8(src + b)?;
            mem.write_u8(dst + b, v)?;
        }
        Ok(())
    }

    fn aes_round(&mut self, vd: VReg, vk: VReg, dir: AesDir) -> Result<(), Trap> {
        let state = ((self.vregs[vd.index()][1] as u128) << 64) | self.vregs[vd.index()][0] as u128;
        let key = ((self.vregs[vk.index()][1] as u128) << 64) | self.vregs[vk.index()][0] as u128;
        let correct = match dir {
            AesDir::Enc => crypto::enc_round(state, key),
            AesDir::EncLast => crypto::enc_last_round(state, key),
            AesDir::Dec => crypto::dec_round(state, key),
            AesDir::DecLast => crypto::dec_last_round(state, key),
        };
        let ctx = self.ctx(FunctionalUnit::CryptoUnit, state as u64);
        let mut result = correct;
        if let Some(inj) = self.injector.as_mut() {
            // The self-inverting mechanism (§2): the *same* mask perturbs
            // the round output in the encrypt direction and the round input
            // in the decrypt direction, so enc∘dec on this core cancels.
            if let Some(mask) = inj.crypto_round_mask(ctx) {
                result = match dir {
                    AesDir::Enc | AesDir::EncLast => correct ^ mask,
                    AesDir::Dec => crypto::dec_round(state ^ mask, key),
                    AesDir::DecLast => crypto::dec_last_round(state ^ mask, key),
                };
                self.stats.corruptions += 1;
                if self.machine_check_fires(ctx.seq) {
                    return Err(Trap::MachineCheck);
                }
            }
        }
        self.vregs[vd.index()][0] = result as u64;
        self.vregs[vd.index()][1] = (result >> 64) as u64;
        Ok(())
    }

    /// Runs until `halt`, a trap, or fuel exhaustion.
    pub fn run(&mut self, prog: &Program, mem: &mut Memory) -> Result<ExecStats, Trap> {
        let budget = self.config.fuel;
        let start = self.stats.instructions;
        loop {
            match self.step(prog, mem)? {
                StepOutcome::Halted => return Ok(self.stats),
                StepOutcome::Running => {}
            }
            if self.stats.instructions - start >= budget {
                return Err(Trap::FuelExhausted);
            }
        }
    }
}

enum AesDir {
    Enc,
    EncLast,
    Dec,
    DecLast,
}

/// One byte of a CRC-32 (IEEE, reflected, polynomial 0xEDB88320) update.
pub fn crc32_step(crc: u32, byte: u8) -> u32 {
    let mut c = (crc ^ byte as u32) & 0xff;
    for _ in 0..8 {
        c = if c & 1 != 0 {
            (c >> 1) ^ 0xedb8_8320
        } else {
            c >> 1
        };
    }
    (crc >> 8) ^ c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use mercurial_fault::{Activation, CoreFaultProfile, Lesion};

    fn healthy() -> SimCore {
        SimCore::new(CoreConfig::default(), None)
    }

    fn mercurial(profile: CoreFaultProfile) -> SimCore {
        SimCore::new(CoreConfig::default(), Some(Injector::new(42, profile)))
    }

    fn run_src(core: &mut SimCore, src: &str) -> Result<Vec<u64>, Trap> {
        let prog = assemble(src).expect("test program assembles");
        let mut mem = Memory::new(1 << 16);
        core.run(&prog, &mut mem)?;
        Ok(core.output().to_vec())
    }

    #[test]
    fn arithmetic_basics() {
        let out = run_src(
            &mut healthy(),
            "li x1, 100
             li x2, 42
             add x3, x1, x2
             sub x4, x1, x2
             mul x5, x1, x2
             div x6, x1, x2
             rem x7, x1, x2
             out x3
             out x4
             out x5
             out x6
             out x7
             halt",
        )
        .unwrap();
        assert_eq!(out, vec![142, 58, 4200, 2, 16]);
    }

    #[test]
    fn loop_sums_one_to_ten() {
        let out = run_src(
            &mut healthy(),
            "li x1, 10
             li x2, 0
             loop:
             add x2, x2, x1
             addi x1, x1, -1
             bnz x1, loop
             out x2
             halt",
        )
        .unwrap();
        assert_eq!(out, vec![55]);
    }

    #[test]
    fn memory_roundtrip_and_bytes() {
        let out = run_src(
            &mut healthy(),
            "li x1, 256
             li x2, 12345
             st x2, x1, 0
             ld x3, x1, 0
             li x4, 200
             stb x4, x1, 9
             ldb x5, x1, 9
             out x3
             out x5
             halt",
        )
        .unwrap();
        assert_eq!(out, vec![12345, 200]);
    }

    #[test]
    fn div_by_zero_traps() {
        let err = run_src(
            &mut healthy(),
            "li x1, 5
             li x2, 0
             div x3, x1, x2
             halt",
        )
        .unwrap_err();
        assert_eq!(err, Trap::DivByZero);
    }

    #[test]
    fn segfault_on_wild_store() {
        let err = run_src(
            &mut healthy(),
            "li x1, 999999999
             li x2, 1
             st x2, x1, 0
             halt",
        )
        .unwrap_err();
        assert!(matches!(err, Trap::Segfault { .. }));
    }

    #[test]
    fn assert_traps_on_zero() {
        let err = run_src(
            &mut healthy(),
            "li x1, 0
             assert x1
             halt",
        )
        .unwrap_err();
        assert!(matches!(err, Trap::AssertFailed { .. }));
    }

    #[test]
    fn fuel_exhaustion_catches_infinite_loops() {
        let mut core = SimCore::new(
            CoreConfig {
                fuel: 1000,
                ..CoreConfig::default()
            },
            None,
        );
        let err = run_src(&mut core, "spin: jmp spin").unwrap_err();
        assert_eq!(err, Trap::FuelExhausted);
    }

    #[test]
    fn float_fma() {
        let mut core = healthy();
        core.set_reg(Reg::new(1), 3.0f64.to_bits());
        core.set_reg(Reg::new(2), 4.0f64.to_bits());
        core.set_reg(Reg::new(3), 0.5f64.to_bits());
        let prog = assemble(
            "fma x3, x1, x2
             out x3
             halt",
        )
        .unwrap();
        let mut mem = Memory::new(64);
        core.run(&prog, &mut mem).unwrap();
        assert_eq!(f64::from_bits(core.output()[0]), 12.5);
    }

    #[test]
    fn vector_lanes_and_copy() {
        let out = run_src(
            &mut healthy(),
            "li x1, 11
             li x2, 22
             vins v0, x1, 0
             vins v0, x2, 3
             vadd v1, v0, v0
             vext x3, v1, 0
             vext x4, v1, 3
             out x3
             out x4
             halt",
        )
        .unwrap();
        assert_eq!(out, vec![22, 44]);
    }

    #[test]
    fn memcpy_copies_including_tail() {
        let mut core = healthy();
        let prog = assemble(
            "memcpy x1, x2, x3
             halt",
        )
        .unwrap();
        let mut mem = Memory::new(4096);
        let payload: Vec<u8> = (0..27u8).collect();
        mem.write_bytes(100, &payload).unwrap();
        core.set_reg(Reg::new(1), 1000);
        core.set_reg(Reg::new(2), 100);
        core.set_reg(Reg::new(3), 27);
        core.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_bytes(1000, 27).unwrap(), payload);
    }

    #[test]
    fn cas_succeeds_and_fails_correctly() {
        let mut core = healthy();
        let prog = assemble(
            "li x1, 512
             li x2, 0
             li x3, 7
             cas x4, x1, x2, x3
             ld x5, x1, 0
             cas x6, x1, x2, x3
             out x4
             out x5
             out x6
             halt",
        )
        .unwrap();
        let mut mem = Memory::new(4096);
        core.run(&prog, &mut mem).unwrap();
        // First CAS: observed 0 (success, stored 7). Second: observed 7.
        assert_eq!(core.output(), &[0, 7, 7]);
    }

    #[test]
    fn crc32_step_matches_known_value() {
        // CRC-32 of "123456789" must be 0xCBF43926.
        let mut crc = 0xffff_ffffu32;
        for &b in b"123456789" {
            crc = crc32_step(crc, b);
        }
        assert_eq!(crc ^ 0xffff_ffff, 0xcbf4_3926);
    }

    #[test]
    fn aes_instruction_sequence_matches_reference() {
        // Encrypt the FIPS-197 Appendix B block using simulated AES rounds.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let keys = crypto::expand_key_128(key);
        let mut core = healthy();
        let mut mem = Memory::new(1 << 12);
        // Place state (xored with k0) in v0 via memory, round key in v1.
        let state0 = u128::from_le_bytes(pt) ^ keys[0];
        mem.write_u64(0, state0 as u64).unwrap();
        mem.write_u64(8, (state0 >> 64) as u64).unwrap();
        let mut src = String::from("li x1, 0\nvld v0, x1, 0\n");
        for (i, &k) in keys[1..11].iter().enumerate() {
            mem.write_u64(32 + 32 * i as u64, k as u64).unwrap();
            mem.write_u64(40 + 32 * i as u64, (k >> 64) as u64).unwrap();
            src.push_str(&format!("li x2, {}\nvld v1, x2, 0\n", 32 + 32 * i));
            if i < 9 {
                src.push_str("aesenc v0, v1\n");
            } else {
                src.push_str("aesenclast v0, v1\n");
            }
        }
        src.push_str("vext x3, v0, 0\nvext x4, v0, 1\nout x3\nout x4\nhalt\n");
        let prog = assemble(&src).unwrap();
        core.run(&prog, &mut mem).unwrap();
        let got = (core.output()[1] as u128) << 64 | core.output()[0] as u128;
        let expect = u128::from_le_bytes(crypto::aes128_encrypt_block(key, pt));
        assert_eq!(got, expect);
    }

    #[test]
    fn injected_alu_lesion_corrupts_math_only() {
        let profile = CoreFaultProfile::single(
            "alu-flip",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 0 },
            Activation::always(),
        );
        let mut core = mercurial(profile);
        let prog = assemble(
            "li x1, 10
             li x2, 20
             mul x3, x1, x2
             out x3
             halt",
        )
        .unwrap();
        let mut mem = Memory::new(64);
        core.run(&prog, &mut mem).unwrap();
        // li goes through the (defective) scalar ALU, so inputs are already
        // corrupted; the multiply (clean MulDiv unit) then amplifies them.
        assert_ne!(core.output()[0], 200);
        assert!(core.stats().corruptions > 0);
    }

    #[test]
    fn injected_muldiv_lesion_spares_the_alu() {
        let profile = CoreFaultProfile::single(
            "mul-xor",
            FunctionalUnit::MulDiv,
            Lesion::XorMask { mask: 0xff00 },
            Activation::always(),
        );
        let mut core = mercurial(profile);
        let out = run_src(
            &mut core,
            "li x1, 10
             li x2, 20
             add x3, x1, x2
             mul x4, x1, x2
             out x3
             out x4
             halt",
        )
        .unwrap();
        assert_eq!(out[0], 30); // ALU untouched
        assert_eq!(out[1], 200 ^ 0xff00); // multiplier corrupted
    }

    #[test]
    fn vector_lesion_corrupts_memcpy_too() {
        // The §5 shared-hardware coupling, end to end: a vector-pipe lesion
        // corrupts a bulk copy.
        let profile = CoreFaultProfile::single(
            "vec",
            FunctionalUnit::VectorPipe,
            Lesion::FlipBit { bit: 7 },
            Activation::always(),
        );
        let mut core = mercurial(profile);
        let prog = assemble("memcpy x1, x2, x3\nhalt").unwrap();
        let mut mem = Memory::new(4096);
        mem.write_u64(64, 0).unwrap();
        core.set_reg(Reg::new(1), 512);
        core.set_reg(Reg::new(2), 64);
        core.set_reg(Reg::new(3), 8);
        core.run(&prog, &mut mem).unwrap();
        assert_eq!(mem.read_u64(512).unwrap(), 1 << 7);
    }

    #[test]
    fn machine_check_raised_when_configured() {
        let profile = CoreFaultProfile::single(
            "loud",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 0 },
            Activation::always(),
        );
        let mut core = SimCore::new(
            CoreConfig {
                mce_on_fire_prob: 1.0,
                ..CoreConfig::default()
            },
            Some(Injector::new(1, profile)),
        );
        let err = run_src(&mut core, "li x1, 1\nhalt").unwrap_err();
        assert_eq!(err, Trap::MachineCheck);
    }

    #[test]
    fn healthy_core_stats_count_no_corruptions() {
        let mut core = healthy();
        run_src(&mut core, "li x1, 5\nout x1\nhalt").unwrap();
        assert_eq!(core.stats().corruptions, 0);
        assert_eq!(core.stats().instructions, 3);
        assert!(core.stats().cycles >= 3);
    }

    #[test]
    fn reset_preserves_op_seq_for_fresh_draws() {
        let profile = CoreFaultProfile::single(
            "half",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 0 },
            Activation::with_prob(0.5),
        );
        let mut core = mercurial(profile);
        let mut outputs = Vec::new();
        for _ in 0..64 {
            core.reset();
            let out = run_src(&mut core, "li x1, 100\nout x1\nhalt").unwrap();
            outputs.push(out[0]);
        }
        // Across retries the defect sometimes fires and sometimes not —
        // retry-based masking sees a changing answer, as in production.
        assert!(outputs.contains(&100));
        assert!(outputs.contains(&101));
    }
}
