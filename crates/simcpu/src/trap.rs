//! Traps: the architecturally *loud* failure modes.
//!
//! The paper's §2 symptom list includes exceptions, segmentation faults and
//! machine checks alongside silent wrong answers; a defective core "appears
//! to exhibit both wrong results and exceptions". Traps are how the
//! simulator surfaces the loud half.

use mercurial_fault::SymptomClass;
use serde::{Deserialize, Serialize};

/// An execution trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trap {
    /// Out-of-bounds or wildly misaligned memory access.
    Segfault {
        /// The offending address.
        addr: u64,
    },
    /// Integer division by zero.
    DivByZero,
    /// Program counter ran off the end of the program.
    PcOutOfRange {
        /// The bad program counter.
        pc: u32,
    },
    /// An `assert` instruction observed zero.
    AssertFailed {
        /// The program counter of the assertion.
        pc: u32,
    },
    /// A hardware machine-check event (the simulator raises these when an
    /// injected corruption is loud enough for the hardware to notice).
    MachineCheck,
    /// Execution exceeded the configured instruction budget (used to catch
    /// corruption-induced infinite loops rather than hanging the host).
    FuelExhausted,
}

impl Trap {
    /// The §2 symptom class this trap corresponds to when it was caused by
    /// a CEE.
    pub fn symptom_class(&self) -> SymptomClass {
        match self {
            Trap::MachineCheck => SymptomClass::MachineCheck,
            _ => SymptomClass::WrongDetectedImmediately,
        }
    }

    /// A short stable label.
    pub fn name(&self) -> &'static str {
        match self {
            Trap::Segfault { .. } => "segfault",
            Trap::DivByZero => "div-by-zero",
            Trap::PcOutOfRange { .. } => "pc-out-of-range",
            Trap::AssertFailed { .. } => "assert-failed",
            Trap::MachineCheck => "machine-check",
            Trap::FuelExhausted => "fuel-exhausted",
        }
    }
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::Segfault { addr } => write!(f, "segfault at {addr:#x}"),
            Trap::PcOutOfRange { pc } => write!(f, "pc out of range: {pc}"),
            Trap::AssertFailed { pc } => write!(f, "assertion failed at pc {pc}"),
            other => f.write_str(other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn machine_check_classifies_as_machine_check() {
        assert_eq!(
            Trap::MachineCheck.symptom_class(),
            SymptomClass::MachineCheck
        );
    }

    #[test]
    fn other_traps_are_immediate_detections() {
        assert_eq!(
            Trap::Segfault { addr: 0xbad }.symptom_class(),
            SymptomClass::WrongDetectedImmediately
        );
        assert_eq!(
            Trap::DivByZero.symptom_class(),
            SymptomClass::WrongDetectedImmediately
        );
    }

    #[test]
    fn display_includes_address() {
        assert_eq!(
            Trap::Segfault { addr: 0x1000 }.to_string(),
            "segfault at 0x1000"
        );
    }
}
