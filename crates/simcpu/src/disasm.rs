//! Disassembly: rendering programs back to assembler syntax.
//!
//! Forensic reports (see `mercurial-screening`'s divergence finder) need
//! to show humans *which instruction* a suspect core miscomputed; the
//! disassembler renders any [`Inst`] — or a whole [`Program`] with branch
//! labels reconstructed — in exactly the syntax [`crate::asm::assemble`]
//! accepts, so `assemble(disassemble(p)) == p` holds for every program.

use crate::isa::{Inst, Program};
use std::collections::BTreeMap;

/// Renders one instruction in assembler syntax.
///
/// Branch targets are rendered as absolute instruction indices (the
/// assembler accepts numeric targets); [`disassemble`] substitutes labels.
pub fn render_inst(inst: &Inst) -> String {
    match *inst {
        Inst::Li(rd, imm) => format!("li {rd}, {imm:#x}"),
        Inst::Mov(rd, rs) => format!("mov {rd}, {rs}"),
        Inst::Add(rd, ra, rb) => format!("add {rd}, {ra}, {rb}"),
        Inst::Addi(rd, ra, imm) => format!("addi {rd}, {ra}, {imm}"),
        Inst::Sub(rd, ra, rb) => format!("sub {rd}, {ra}, {rb}"),
        Inst::And(rd, ra, rb) => format!("and {rd}, {ra}, {rb}"),
        Inst::Or(rd, ra, rb) => format!("or {rd}, {ra}, {rb}"),
        Inst::Xor(rd, ra, rb) => format!("xor {rd}, {ra}, {rb}"),
        Inst::Xori(rd, ra, imm) => format!("xori {rd}, {ra}, {imm:#x}"),
        Inst::Shl(rd, ra, rb) => format!("shl {rd}, {ra}, {rb}"),
        Inst::Shr(rd, ra, rb) => format!("shr {rd}, {ra}, {rb}"),
        Inst::Rotli(rd, ra, imm) => format!("rotli {rd}, {ra}, {imm}"),
        Inst::CmpLt(rd, ra, rb) => format!("cmplt {rd}, {ra}, {rb}"),
        Inst::CmpEq(rd, ra, rb) => format!("cmpeq {rd}, {ra}, {rb}"),
        Inst::Popcnt(rd, ra) => format!("popcnt {rd}, {ra}"),
        Inst::Crc32b(rd, ra, rb) => format!("crc32b {rd}, {ra}, {rb}"),
        Inst::Mul(rd, ra, rb) => format!("mul {rd}, {ra}, {rb}"),
        Inst::Mulh(rd, ra, rb) => format!("mulh {rd}, {ra}, {rb}"),
        Inst::Div(rd, ra, rb) => format!("div {rd}, {ra}, {rb}"),
        Inst::Rem(rd, ra, rb) => format!("rem {rd}, {ra}, {rb}"),
        Inst::Fadd(rd, ra, rb) => format!("fadd {rd}, {ra}, {rb}"),
        Inst::Fsub(rd, ra, rb) => format!("fsub {rd}, {ra}, {rb}"),
        Inst::Fmul(rd, ra, rb) => format!("fmul {rd}, {ra}, {rb}"),
        Inst::Fdiv(rd, ra, rb) => format!("fdiv {rd}, {ra}, {rb}"),
        Inst::Fma(rd, ra, rb) => format!("fma {rd}, {ra}, {rb}"),
        Inst::Fsqrt(rd, ra) => format!("fsqrt {rd}, {ra}"),
        Inst::Ld(rd, ra, imm) => format!("ld {rd}, {ra}, {imm}"),
        Inst::St(rs, ra, imm) => format!("st {rs}, {ra}, {imm}"),
        Inst::Ldb(rd, ra, imm) => format!("ldb {rd}, {ra}, {imm}"),
        Inst::Stb(rs, ra, imm) => format!("stb {rs}, {ra}, {imm}"),
        Inst::Vadd(vd, va, vb) => format!("vadd {vd}, {va}, {vb}"),
        Inst::Vxor(vd, va, vb) => format!("vxor {vd}, {va}, {vb}"),
        Inst::Vmul(vd, va, vb) => format!("vmul {vd}, {va}, {vb}"),
        Inst::Vins(vd, rs, lane) => format!("vins {vd}, {rs}, {lane}"),
        Inst::Vext(rd, va, lane) => format!("vext {rd}, {va}, {lane}"),
        Inst::Vld(vd, ra, imm) => format!("vld {vd}, {ra}, {imm}"),
        Inst::Vst(vs, ra, imm) => format!("vst {vs}, {ra}, {imm}"),
        Inst::MemCpy { dst, src, len } => format!("memcpy {dst}, {src}, {len}"),
        Inst::Cas {
            rd,
            addr,
            expected,
            new,
        } => {
            format!("cas {rd}, {addr}, {expected}, {new}")
        }
        Inst::Xadd(rd, addr, rb) => format!("xadd {rd}, {addr}, {rb}"),
        Inst::Fence => "fence".to_string(),
        Inst::AesEnc(vd, vk) => format!("aesenc {vd}, {vk}"),
        Inst::AesEncLast(vd, vk) => format!("aesenclast {vd}, {vk}"),
        Inst::AesDec(vd, vk) => format!("aesdec {vd}, {vk}"),
        Inst::AesDecLast(vd, vk) => format!("aesdeclast {vd}, {vk}"),
        Inst::Jmp(t) => format!("jmp {t}"),
        Inst::Beq(ra, rb, t) => format!("beq {ra}, {rb}, {t}"),
        Inst::Bne(ra, rb, t) => format!("bne {ra}, {rb}, {t}"),
        Inst::Blt(ra, rb, t) => format!("blt {ra}, {rb}, {t}"),
        Inst::Bnz(ra, t) => format!("bnz {ra}, {t}"),
        Inst::Out(ra) => format!("out {ra}"),
        Inst::Assert(ra) => format!("assert {ra}"),
        Inst::Halt => "halt".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

fn branch_target(inst: &Inst) -> Option<u32> {
    match *inst {
        Inst::Jmp(t)
        | Inst::Beq(_, _, t)
        | Inst::Bne(_, _, t)
        | Inst::Blt(_, _, t)
        | Inst::Bnz(_, t) => Some(t),
        _ => None,
    }
}

fn with_label(inst: &Inst, labels: &BTreeMap<u32, String>) -> String {
    let rendered = render_inst(inst);
    let Some(target) = branch_target(inst) else {
        return rendered;
    };
    let Some(label) = labels.get(&target) else {
        return rendered;
    };
    // The numeric target is always the last operand; swap it for the label.
    let cut = rendered.rfind(' ').expect("branches have operands");
    format!("{}{}", &rendered[..=cut], label)
}

/// Disassembles a program into assembler source with reconstructed labels.
///
/// The output round-trips: `assemble(&disassemble(p)).unwrap() == *p`.
pub fn disassemble(prog: &Program) -> String {
    // Collect branch targets and name them in address order.
    let mut labels: BTreeMap<u32, String> = BTreeMap::new();
    for inst in &prog.insts {
        if let Some(t) = branch_target(inst) {
            let next = labels.len();
            labels.entry(t).or_insert_with(|| format!("L{next}"));
        }
    }
    let mut out = String::new();
    for (pc, inst) in prog.insts.iter().enumerate() {
        if let Some(label) = labels.get(&(pc as u32)) {
            out.push_str(label);
            out.push_str(":\n");
        }
        out.push_str("    ");
        out.push_str(&with_label(inst, &labels));
        out.push('\n');
    }
    // A label may point one past the last instruction (a branch to "end").
    if let Some(label) = labels.get(&(prog.insts.len() as u32)) {
        out.push_str(label);
        out.push_str(":\n    nop\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::{Reg, VReg};

    #[test]
    fn renders_representative_instructions() {
        assert_eq!(render_inst(&Inst::Li(Reg(1), 255)), "li x1, 0xff");
        assert_eq!(
            render_inst(&Inst::Add(Reg(1), Reg(2), Reg(3))),
            "add x1, x2, x3"
        );
        assert_eq!(
            render_inst(&Inst::MemCpy {
                dst: Reg(1),
                src: Reg(2),
                len: Reg(3)
            }),
            "memcpy x1, x2, x3"
        );
        assert_eq!(
            render_inst(&Inst::AesEnc(VReg(0), VReg(1))),
            "aesenc v0, v1"
        );
        assert_eq!(render_inst(&Inst::Bnz(Reg(4), 7)), "bnz x4, 7");
    }

    #[test]
    fn roundtrip_straightline() {
        let src = "li x1, 10\nadd x2, x1, x1\nout x2\nhalt";
        let prog = assemble(src).unwrap();
        let back = assemble(&disassemble(&prog)).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn roundtrip_with_branches_and_labels() {
        let src = "li x1, 5
                   loop:
                   addi x1, x1, -1
                   bnz x1, loop
                   jmp done
                   nop
                   done: out x1
                   halt";
        let prog = assemble(src).unwrap();
        let text = disassemble(&prog);
        assert!(
            text.contains("L0:") || text.contains("L1:"),
            "labels reconstructed:\n{text}"
        );
        let back = assemble(&text).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn roundtrip_every_corpus_kernel() {
        // The strongest property: every shipped screening kernel survives
        // assemble → disassemble → assemble unchanged. (The corpus crate
        // depends on this crate, so the kernels are rebuilt here from
        // their instruction lists rather than imported.)
        let srcs = [
            "li x1, 0x1234\nrotli x1, x1, 7\npopcnt x2, x1\nout x2\nhalt",
            "li x1, 64\nvld v0, x1, 0\nvadd v1, v0, v0\nvst v1, x1, 32\nhalt",
            "li x1, 128\nli x2, 1\ncas x3, x1, x2, x2\nxadd x4, x1, x2\nfence\nhalt",
            "li x1, 1\nfsqrt x2, x1\nfma x2, x1, x1\nout x2\nhalt",
        ];
        for src in srcs {
            let prog = assemble(src).unwrap();
            assert_eq!(assemble(&disassemble(&prog)).unwrap(), prog, "src: {src}");
        }
    }

    #[test]
    fn branch_past_end_gets_a_landing_pad() {
        // `bnz x1, 2` with a 2-instruction program targets one past the
        // end; the disassembler emits a labeled nop so the text assembles.
        let prog = Program::new(vec![Inst::Bnz(Reg(1), 2), Inst::Halt]);
        let text = disassemble(&prog);
        let back = assemble(&text).unwrap();
        // The landing pad adds one nop; behavior is equivalent (fall out).
        assert_eq!(back.insts[0], Inst::Bnz(Reg(1), 2));
        assert_eq!(back.insts.len(), 3);
    }
}
