//! Flat, bounds-checked simulated memory.

use crate::trap::Trap;

/// Byte-addressable memory shared by the cores of a [`crate::chip::Chip`].
///
/// All accesses are bounds-checked; violations surface as
/// [`Trap::Segfault`], which is one of the "loud" CEE symptoms: a corrupted
/// address usually lands far outside the mapped region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates zeroed memory of `size` bytes.
    pub fn new(size: usize) -> Memory {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the memory has zero size.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn check(&self, addr: u64, width: u64) -> Result<usize, Trap> {
        let end = addr.checked_add(width).ok_or(Trap::Segfault { addr })?;
        if end > self.bytes.len() as u64 {
            return Err(Trap::Segfault { addr });
        }
        Ok(addr as usize)
    }

    /// Reads a little-endian u64.
    pub fn read_u64(&self, addr: u64) -> Result<u64, Trap> {
        let i = self.check(addr, 8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.bytes[i..i + 8]);
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, value: u64) -> Result<(), Trap> {
        let i = self.check(addr, 8)?;
        self.bytes[i..i + 8].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> Result<u8, Trap> {
        let i = self.check(addr, 1)?;
        Ok(self.bytes[i])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, value: u8) -> Result<(), Trap> {
        let i = self.check(addr, 1)?;
        self.bytes[i] = value;
        Ok(())
    }

    /// Copies a byte slice into memory at `addr`.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), Trap> {
        let i = self.check(addr, data.len() as u64)?;
        self.bytes[i..i + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let i = self.check(addr, len as u64)?;
        Ok(self.bytes[i..i + len].to_vec())
    }

    /// Fills `[addr, addr+len)` with a byte value.
    pub fn fill(&mut self, addr: u64, len: u64, value: u8) -> Result<(), Trap> {
        let i = self.check(addr, len)?;
        self.bytes[i..i + len as usize].fill(value);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let mut m = Memory::new(64);
        m.write_u64(8, 0x0123_4567_89ab_cdef).unwrap();
        assert_eq!(m.read_u64(8).unwrap(), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(16);
        m.write_u64(0, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0x08);
        assert_eq!(m.read_u8(7).unwrap(), 0x01);
    }

    #[test]
    fn out_of_bounds_is_segfault() {
        let m = Memory::new(16);
        assert_eq!(m.read_u64(9), Err(Trap::Segfault { addr: 9 }));
        assert_eq!(m.read_u64(u64::MAX), Err(Trap::Segfault { addr: u64::MAX }));
    }

    #[test]
    fn overflowing_address_is_segfault() {
        let mut m = Memory::new(16);
        assert!(m.write_u64(u64::MAX - 3, 1).is_err());
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new(32);
        m.write_bytes(4, b"hello world").unwrap();
        assert_eq!(m.read_bytes(4, 11).unwrap(), b"hello world");
    }

    #[test]
    fn fill_works() {
        let mut m = Memory::new(16);
        m.fill(4, 8, 0xaa).unwrap();
        assert_eq!(m.read_u8(3).unwrap(), 0);
        assert_eq!(m.read_u8(4).unwrap(), 0xaa);
        assert_eq!(m.read_u8(11).unwrap(), 0xaa);
        assert_eq!(m.read_u8(12).unwrap(), 0);
    }
}
