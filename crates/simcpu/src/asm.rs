//! A small two-pass assembler for the simulated ISA.
//!
//! Syntax, one instruction per line:
//!
//! ```text
//! ; comments run to end of line (# works too)
//!     li   x1, 10          ; immediates: decimal, hex (0x..), negative
//! loop:                    ; labels end with ':' and may share a line
//!     addi x1, x1, -1
//!     bnz  x1, loop        ; branch targets are labels (or absolute ints)
//!     halt
//! ```
//!
//! Registers are `x0`–`x15` (scalar) and `v0`–`v7` (vector). Operand order
//! matches the [`crate::isa::Inst`] documentation: destination first.

use crate::isa::{Inst, Program, Reg, VReg};
use std::collections::HashMap;

/// An assembly error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Strips comments and splits a line into `(labels, mnemonic+operands)`.
fn clean(line: &str) -> &str {
    let line = line.split(';').next().unwrap_or("");
    line.split('#').next().unwrap_or("").trim()
}

struct Operands<'a> {
    parts: Vec<&'a str>,
    line: usize,
    mnemonic: &'a str,
}

impl<'a> Operands<'a> {
    fn expect_len(&self, n: usize) -> Result<(), AsmError> {
        if self.parts.len() != n {
            return Err(err(
                self.line,
                format!(
                    "{} expects {} operands, got {}",
                    self.mnemonic,
                    n,
                    self.parts.len()
                ),
            ));
        }
        Ok(())
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        let s = self.parts[i];
        let idx: u8 = s
            .strip_prefix('x')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| err(self.line, format!("expected scalar register, got `{s}`")))?;
        if idx as usize >= Reg::COUNT {
            return Err(err(self.line, format!("register `{s}` out of range")));
        }
        Ok(Reg(idx))
    }

    fn vreg(&self, i: usize) -> Result<VReg, AsmError> {
        let s = self.parts[i];
        let idx: u8 = s
            .strip_prefix('v')
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| err(self.line, format!("expected vector register, got `{s}`")))?;
        if idx as usize >= VReg::COUNT {
            return Err(err(self.line, format!("register `{s}` out of range")));
        }
        Ok(VReg(idx))
    }

    fn imm_u64(&self, i: usize) -> Result<u64, AsmError> {
        parse_int(self.parts[i])
            .ok_or_else(|| err(self.line, format!("bad immediate `{}`", self.parts[i])))
    }

    fn imm_i64(&self, i: usize) -> Result<i64, AsmError> {
        let s = self.parts[i];
        if let Some(rest) = s.strip_prefix('-') {
            let v =
                parse_int(rest).ok_or_else(|| err(self.line, format!("bad immediate `{s}`")))?;
            i64::try_from(v)
                .map(|v| -v)
                .map_err(|_| err(self.line, format!("immediate `{s}` out of range")))
        } else {
            self.imm_u64(i).map(|v| v as i64)
        }
    }

    fn imm_u8(&self, i: usize) -> Result<u8, AsmError> {
        let v = self.imm_u64(i)?;
        u8::try_from(v).map_err(|_| err(self.line, format!("immediate `{v}` too large")))
    }

    fn imm_u32(&self, i: usize) -> Result<u32, AsmError> {
        let v = self.imm_u64(i)?;
        u32::try_from(v).map_err(|_| err(self.line, format!("immediate `{v}` too large")))
    }

    fn target(&self, i: usize, labels: &HashMap<String, u32>) -> Result<u32, AsmError> {
        let s = self.parts[i];
        if let Some(&t) = labels.get(s) {
            return Ok(t);
        }
        parse_int(s)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| err(self.line, format!("unknown label or bad target `{s}`")))
    }
}

fn parse_int(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

/// Assembles source text into a validated [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics, bad registers, malformed immediates, duplicate or
/// unknown labels, and out-of-range branch targets.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    // Pass 1: label addresses.
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut pc = 0u32;
    for (lineno, raw) in src.lines().enumerate() {
        let mut rest = clean(raw);
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                // Not a label prefix (e.g. a stray colon mid-line); the
                // instruction parser below will complain properly.
                break;
            }
            if labels.insert(label.to_string(), pc).is_some() {
                return Err(err(lineno + 1, format!("duplicate label `{label}`")));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            pc += 1;
        }
    }

    // Pass 2: instructions.
    let mut insts = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let line = lineno + 1;
        let mut rest = clean(raw);
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }
        let (mnemonic, operand_str) = match rest.find(char::is_whitespace) {
            Some(i) => rest.split_at(i),
            None => (rest, ""),
        };
        let mnemonic = mnemonic.to_ascii_lowercase();
        let parts: Vec<&str> = operand_str
            .split(',')
            .map(str::trim)
            .filter(|p| !p.is_empty())
            .collect();
        let ops = Operands {
            parts,
            line,
            mnemonic: &mnemonic,
        };

        let inst = match mnemonic.as_str() {
            "li" => {
                ops.expect_len(2)?;
                // Allow negative immediates in li via two's complement.
                let v = if ops.parts[1].starts_with('-') {
                    ops.imm_i64(1)? as u64
                } else {
                    ops.imm_u64(1)?
                };
                Inst::Li(ops.reg(0)?, v)
            }
            "mov" => {
                ops.expect_len(2)?;
                Inst::Mov(ops.reg(0)?, ops.reg(1)?)
            }
            "add" => {
                ops.expect_len(3)?;
                Inst::Add(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "addi" => {
                ops.expect_len(3)?;
                Inst::Addi(ops.reg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "sub" => {
                ops.expect_len(3)?;
                Inst::Sub(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "and" => {
                ops.expect_len(3)?;
                Inst::And(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "or" => {
                ops.expect_len(3)?;
                Inst::Or(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "xor" => {
                ops.expect_len(3)?;
                Inst::Xor(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "xori" => {
                ops.expect_len(3)?;
                Inst::Xori(ops.reg(0)?, ops.reg(1)?, ops.imm_u64(2)?)
            }
            "shl" => {
                ops.expect_len(3)?;
                Inst::Shl(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "shr" => {
                ops.expect_len(3)?;
                Inst::Shr(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "rotli" => {
                ops.expect_len(3)?;
                Inst::Rotli(ops.reg(0)?, ops.reg(1)?, ops.imm_u32(2)?)
            }
            "cmplt" => {
                ops.expect_len(3)?;
                Inst::CmpLt(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "cmpeq" => {
                ops.expect_len(3)?;
                Inst::CmpEq(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "popcnt" => {
                ops.expect_len(2)?;
                Inst::Popcnt(ops.reg(0)?, ops.reg(1)?)
            }
            "crc32b" => {
                ops.expect_len(3)?;
                Inst::Crc32b(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "mul" => {
                ops.expect_len(3)?;
                Inst::Mul(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "mulh" => {
                ops.expect_len(3)?;
                Inst::Mulh(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "div" => {
                ops.expect_len(3)?;
                Inst::Div(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "rem" => {
                ops.expect_len(3)?;
                Inst::Rem(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fadd" => {
                ops.expect_len(3)?;
                Inst::Fadd(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fsub" => {
                ops.expect_len(3)?;
                Inst::Fsub(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fmul" => {
                ops.expect_len(3)?;
                Inst::Fmul(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fdiv" => {
                ops.expect_len(3)?;
                Inst::Fdiv(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fma" => {
                ops.expect_len(3)?;
                Inst::Fma(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fsqrt" => {
                ops.expect_len(2)?;
                Inst::Fsqrt(ops.reg(0)?, ops.reg(1)?)
            }
            "ld" => {
                ops.expect_len(3)?;
                Inst::Ld(ops.reg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "st" => {
                ops.expect_len(3)?;
                Inst::St(ops.reg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "ldb" => {
                ops.expect_len(3)?;
                Inst::Ldb(ops.reg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "stb" => {
                ops.expect_len(3)?;
                Inst::Stb(ops.reg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "vadd" => {
                ops.expect_len(3)?;
                Inst::Vadd(ops.vreg(0)?, ops.vreg(1)?, ops.vreg(2)?)
            }
            "vxor" => {
                ops.expect_len(3)?;
                Inst::Vxor(ops.vreg(0)?, ops.vreg(1)?, ops.vreg(2)?)
            }
            "vmul" => {
                ops.expect_len(3)?;
                Inst::Vmul(ops.vreg(0)?, ops.vreg(1)?, ops.vreg(2)?)
            }
            "vins" => {
                ops.expect_len(3)?;
                Inst::Vins(ops.vreg(0)?, ops.reg(1)?, ops.imm_u8(2)?)
            }
            "vext" => {
                ops.expect_len(3)?;
                Inst::Vext(ops.reg(0)?, ops.vreg(1)?, ops.imm_u8(2)?)
            }
            "vld" => {
                ops.expect_len(3)?;
                Inst::Vld(ops.vreg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "vst" => {
                ops.expect_len(3)?;
                Inst::Vst(ops.vreg(0)?, ops.reg(1)?, ops.imm_i64(2)?)
            }
            "memcpy" => {
                ops.expect_len(3)?;
                Inst::MemCpy {
                    dst: ops.reg(0)?,
                    src: ops.reg(1)?,
                    len: ops.reg(2)?,
                }
            }
            "cas" => {
                ops.expect_len(4)?;
                Inst::Cas {
                    rd: ops.reg(0)?,
                    addr: ops.reg(1)?,
                    expected: ops.reg(2)?,
                    new: ops.reg(3)?,
                }
            }
            "xadd" => {
                ops.expect_len(3)?;
                Inst::Xadd(ops.reg(0)?, ops.reg(1)?, ops.reg(2)?)
            }
            "fence" => {
                ops.expect_len(0)?;
                Inst::Fence
            }
            "aesenc" => {
                ops.expect_len(2)?;
                Inst::AesEnc(ops.vreg(0)?, ops.vreg(1)?)
            }
            "aesenclast" => {
                ops.expect_len(2)?;
                Inst::AesEncLast(ops.vreg(0)?, ops.vreg(1)?)
            }
            "aesdec" => {
                ops.expect_len(2)?;
                Inst::AesDec(ops.vreg(0)?, ops.vreg(1)?)
            }
            "aesdeclast" => {
                ops.expect_len(2)?;
                Inst::AesDecLast(ops.vreg(0)?, ops.vreg(1)?)
            }
            "jmp" => {
                ops.expect_len(1)?;
                Inst::Jmp(ops.target(0, &labels)?)
            }
            "beq" => {
                ops.expect_len(3)?;
                Inst::Beq(ops.reg(0)?, ops.reg(1)?, ops.target(2, &labels)?)
            }
            "bne" => {
                ops.expect_len(3)?;
                Inst::Bne(ops.reg(0)?, ops.reg(1)?, ops.target(2, &labels)?)
            }
            "blt" => {
                ops.expect_len(3)?;
                Inst::Blt(ops.reg(0)?, ops.reg(1)?, ops.target(2, &labels)?)
            }
            "bnz" => {
                ops.expect_len(2)?;
                Inst::Bnz(ops.reg(0)?, ops.target(1, &labels)?)
            }
            "out" => {
                ops.expect_len(1)?;
                Inst::Out(ops.reg(0)?)
            }
            "assert" => {
                ops.expect_len(1)?;
                Inst::Assert(ops.reg(0)?)
            }
            "halt" => {
                ops.expect_len(0)?;
                Inst::Halt
            }
            "nop" => {
                ops.expect_len(0)?;
                Inst::Nop
            }
            other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
        };
        insts.push(inst);
    }

    let prog = Program::new(insts);
    prog.validate().map_err(|m| err(0, m))?;
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "li x1, 0x10
             addi x1, x1, -1
             out x1
             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.insts[0], Inst::Li(Reg(1), 16));
        assert_eq!(p.insts[1], Inst::Addi(Reg(1), Reg(1), -1));
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let p = assemble(
            "start:
             li x1, 2
             loop: addi x1, x1, -1
             bnz x1, loop
             jmp end
             nop
             end: halt",
        )
        .unwrap();
        assert_eq!(p.insts[2], Inst::Bnz(Reg(1), 1));
        assert_eq!(p.insts[3], Inst::Jmp(5));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "; leading comment
             li x1, 1  ; trailing
             # hash comment

             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("a: nop\na: halt").unwrap_err();
        assert!(e.message.contains("duplicate label"));
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_label_rejected() {
        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("unknown label"));
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble("frobnicate x1, x2").unwrap_err();
        assert!(e.message.contains("unknown mnemonic"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn wrong_arity_rejected() {
        let e = assemble("add x1, x2").unwrap_err();
        assert!(e.message.contains("expects 3 operands"));
    }

    #[test]
    fn bad_register_rejected() {
        assert!(assemble("li x16, 0").is_err());
        assert!(assemble("vadd v8, v0, v1").is_err());
        assert!(assemble("add x1, v2, x3").is_err());
    }

    #[test]
    fn hex_and_underscore_immediates() {
        let p = assemble("li x1, 0xff_ff\nli x2, 1_000_000\nhalt").unwrap();
        assert_eq!(p.insts[0], Inst::Li(Reg(1), 0xffff));
        assert_eq!(p.insts[1], Inst::Li(Reg(2), 1_000_000));
    }

    #[test]
    fn negative_li_wraps() {
        let p = assemble("li x1, -1\nhalt").unwrap();
        assert_eq!(p.insts[0], Inst::Li(Reg(1), u64::MAX));
    }

    #[test]
    fn numeric_branch_targets_allowed() {
        let p = assemble("jmp 1\nhalt").unwrap();
        assert_eq!(p.insts[0], Inst::Jmp(1));
    }

    #[test]
    fn error_display_includes_line() {
        let e = assemble("nop\nbogus").unwrap_err();
        assert_eq!(e.to_string(), "line 2: unknown mnemonic `bogus`");
    }
}
