//! The simulated instruction set.
//!
//! A 64-bit load/store machine with sixteen general-purpose registers,
//! eight 256-bit vector registers (four 64-bit lanes), flat byte-addressable
//! memory, and instruction families chosen to exercise every functional
//! unit a mercurial core can break: scalar ALU, multiply/divide, vector,
//! floating point (f64 carried in GPRs), loads/stores, atomics, crypto
//! rounds, branches, and a bulk-copy instruction that — like the production
//! hardware in the paper's §5 anecdote — shares the vector pipe.

use serde::{Deserialize, Serialize};

/// A general-purpose register, `x0`–`x15`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Reg(pub u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 16;

    /// Creates a register, checking range.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 16`.
    pub fn new(idx: u8) -> Reg {
        assert!((idx as usize) < Reg::COUNT, "register x{idx} out of range");
        Reg(idx)
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A vector register, `v0`–`v7`, holding four 64-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VReg(pub u8);

impl VReg {
    /// Number of vector registers.
    pub const COUNT: usize = 8;
    /// Lanes per vector register.
    pub const LANES: usize = 4;

    /// Creates a vector register, checking range.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 8`.
    pub fn new(idx: u8) -> VReg {
        assert!((idx as usize) < VReg::COUNT, "register v{idx} out of range");
        VReg(idx)
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for VReg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One instruction.
///
/// Field order is destination first, sources after, immediates last —
/// matching the assembler's operand order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    // --- Scalar ALU (FunctionalUnit::ScalarAlu) ---
    /// `rd = imm` (load immediate).
    Li(Reg, u64),
    /// `rd = rs` (register move).
    Mov(Reg, Reg),
    /// `rd = ra + rb` (wrapping).
    Add(Reg, Reg, Reg),
    /// `rd = ra + imm` (wrapping).
    Addi(Reg, Reg, i64),
    /// `rd = ra - rb` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `rd = ra & rb`.
    And(Reg, Reg, Reg),
    /// `rd = ra | rb`.
    Or(Reg, Reg, Reg),
    /// `rd = ra ^ rb`.
    Xor(Reg, Reg, Reg),
    /// `rd = ra ^ imm`.
    Xori(Reg, Reg, u64),
    /// `rd = ra << (rb & 63)`.
    Shl(Reg, Reg, Reg),
    /// `rd = ra >> (rb & 63)` (logical).
    Shr(Reg, Reg, Reg),
    /// `rd = rotate_left(ra, imm)`.
    Rotli(Reg, Reg, u32),
    /// `rd = (ra < rb) as u64` (unsigned).
    CmpLt(Reg, Reg, Reg),
    /// `rd = (ra == rb) as u64`.
    CmpEq(Reg, Reg, Reg),
    /// `rd = popcount(ra)`.
    Popcnt(Reg, Reg),
    /// One byte-wise CRC-32 step: `rd = crc32_update(ra, low byte of rb)`.
    Crc32b(Reg, Reg, Reg),

    // --- Multiply / divide (FunctionalUnit::MulDiv) ---
    /// `rd = ra * rb` (wrapping, low 64 bits).
    Mul(Reg, Reg, Reg),
    /// `rd = high 64 bits of ra * rb` (unsigned widening).
    Mulh(Reg, Reg, Reg),
    /// `rd = ra / rb` (unsigned); traps on divide-by-zero.
    Div(Reg, Reg, Reg),
    /// `rd = ra % rb` (unsigned); traps on divide-by-zero.
    Rem(Reg, Reg, Reg),

    // --- Floating point, f64 bits carried in GPRs (FunctionalUnit::Fma) ---
    /// `rd = ra +f rb`.
    Fadd(Reg, Reg, Reg),
    /// `rd = ra -f rb`.
    Fsub(Reg, Reg, Reg),
    /// `rd = ra *f rb`.
    Fmul(Reg, Reg, Reg),
    /// `rd = ra /f rb`.
    Fdiv(Reg, Reg, Reg),
    /// `rd = fma(ra, rb, rd)` — fused multiply-add accumulating into `rd`.
    Fma(Reg, Reg, Reg),
    /// `rd = sqrt(ra)`.
    Fsqrt(Reg, Reg),

    // --- Memory (FunctionalUnit::LoadStore + AddressGen) ---
    /// `rd = mem64[ra + imm]`.
    Ld(Reg, Reg, i64),
    /// `mem64[ra + imm] = rs` — note operand order `(rs, ra, imm)`.
    St(Reg, Reg, i64),
    /// `rd = mem8[ra + imm]` (zero-extended).
    Ldb(Reg, Reg, i64),
    /// `mem8[ra + imm] = low byte of rs`.
    Stb(Reg, Reg, i64),

    // --- Vector (FunctionalUnit::VectorPipe) ---
    /// `vd = va + vb` per lane (wrapping).
    Vadd(VReg, VReg, VReg),
    /// `vd = va ^ vb` per lane.
    Vxor(VReg, VReg, VReg),
    /// `vd = va * vb` per lane (wrapping).
    Vmul(VReg, VReg, VReg),
    /// `vd.lanes[imm] = rs` (lane insert).
    Vins(VReg, Reg, u8),
    /// `rd = va.lanes[imm]` (lane extract).
    Vext(Reg, VReg, u8),
    /// `vd = mem256[ra + imm]` (four consecutive u64s).
    Vld(VReg, Reg, i64),
    /// `mem256[ra + imm] = vs`.
    Vst(VReg, Reg, i64),
    /// Bulk copy: `len = x(len)` bytes from `mem[x(src)]` to `mem[x(dst)]`.
    ///
    /// Executes on the **vector pipe** (§5: copy and vector operations share
    /// hardware logic).
    MemCpy {
        /// Register holding the destination address.
        dst: Reg,
        /// Register holding the source address.
        src: Reg,
        /// Register holding the byte length.
        len: Reg,
    },

    // --- Atomics (FunctionalUnit::Atomics) ---
    /// Compare-and-swap on `mem64[ra]`: if current == `expected`'s value,
    /// store `new`'s value. `rd` receives the value observed before the
    /// operation (equal to expected on success).
    Cas {
        /// Destination for the observed value.
        rd: Reg,
        /// Address register.
        addr: Reg,
        /// Expected-value register.
        expected: Reg,
        /// New-value register.
        new: Reg,
    },
    /// Atomic fetch-and-add on `mem64[ra]`; `rd` receives the old value.
    Xadd(Reg, Reg, Reg),
    /// Memory fence (ordering no-op in this simulator, but it occupies the
    /// atomics unit and is therefore injectable).
    Fence,

    // --- Crypto (FunctionalUnit::CryptoUnit) ---
    /// One AES encryption round on the 128-bit state in lanes 0–1 of `vd`,
    /// with the round key in lanes 0–1 of `vk`:
    /// `state = MixColumns(ShiftRows(SubBytes(state))) ^ key`.
    AesEnc(VReg, VReg),
    /// Final AES encryption round (no MixColumns).
    AesEncLast(VReg, VReg),
    /// One AES *equivalent inverse cipher* decryption round:
    /// `state = InvMixColumns(InvShiftRows(InvSubBytes(state)) ^ key-ish)`;
    /// see [`crate::crypto`] for the exact transform pairing.
    AesDec(VReg, VReg),
    /// Final AES decryption round (no InvMixColumns).
    AesDecLast(VReg, VReg),

    // --- Control (FunctionalUnit::BranchUnit) ---
    /// Jump to absolute instruction index.
    Jmp(u32),
    /// Branch to `target` if `ra == rb`.
    Beq(Reg, Reg, u32),
    /// Branch to `target` if `ra != rb`.
    Bne(Reg, Reg, u32),
    /// Branch to `target` if `ra < rb` (unsigned).
    Blt(Reg, Reg, u32),
    /// Branch to `target` if `ra != 0`.
    Bnz(Reg, u32),

    // --- Environment ---
    /// Append `ra`'s value to the core's output buffer.
    Out(Reg),
    /// Trap with [`crate::trap::Trap::AssertFailed`] if `ra == 0`.
    Assert(Reg),
    /// Stop execution successfully.
    Halt,
    /// No operation (scalar ALU).
    Nop,
}

/// An executable program: a flat instruction sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Program {
    /// The instructions; the program entry point is index 0.
    pub insts: Vec<Inst>,
}

impl Program {
    /// Creates a program from instructions.
    pub fn new(insts: Vec<Inst>) -> Program {
        Program { insts }
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Validates static properties: branch targets in range.
    ///
    /// Register encodings are enforced by construction ([`Reg::new`] /
    /// [`VReg::new`] panic on bad indices), so only control-flow targets
    /// need checking.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.insts.len() as u32;
        for (pc, inst) in self.insts.iter().enumerate() {
            let target = match *inst {
                Inst::Jmp(t)
                | Inst::Beq(_, _, t)
                | Inst::Bne(_, _, t)
                | Inst::Blt(_, _, t)
                | Inst::Bnz(_, t) => Some(t),
                _ => None,
            };
            if let Some(t) = target {
                if t >= n {
                    return Err(format!("instruction {pc}: branch target {t} out of range"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_construction_and_bounds() {
        assert_eq!(Reg::new(15).index(), 15);
        assert_eq!(Reg::new(0).to_string(), "x0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn vreg_out_of_range_panics() {
        let _ = VReg::new(8);
    }

    #[test]
    fn program_validate_accepts_good_branches() {
        let p = Program::new(vec![
            Inst::Li(Reg::new(1), 3),
            Inst::Bnz(Reg::new(1), 0),
            Inst::Halt,
        ]);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn program_validate_rejects_out_of_range_target() {
        let p = Program::new(vec![Inst::Jmp(5), Inst::Halt]);
        let err = p.validate().unwrap_err();
        assert!(err.contains("out of range"));
    }

    #[test]
    fn program_len() {
        let p = Program::new(vec![Inst::Nop, Inst::Halt]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(Program::default().is_empty());
    }
}
