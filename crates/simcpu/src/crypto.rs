//! AES round primitives for the simulated crypto unit.
//!
//! The crypto unit executes one AES round per instruction, the way real
//! AES-NI hardware does. This is the unit afflicted in the paper's most
//! striking case study — the *self-inverting* AES miscomputation (§2) —
//! which the fault model expresses as an XOR mask applied identically to
//! the encrypt- and decrypt-direction round outputs.
//!
//! Everything is implemented from first principles: the S-box is computed
//! from the GF(2^8) inverse and the affine transform of FIPS-197 rather
//! than transcribed, and the round functions operate on a 128-bit state
//! where byte `i` of the AES block is bits `8*i..8*i+8` (little-endian
//! byte order, matching how [`crate::isa::Inst::Vld`] assembles lanes from
//! memory).

use std::sync::OnceLock;

/// Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
pub fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// Multiplicative inverse in GF(2^8); 0 maps to 0 (as FIPS-197 specifies).
fn gf_inv(a: u8) -> u8 {
    if a == 0 {
        return 0;
    }
    // a^254 = a^-1 in GF(2^8): square-and-multiply over the exponent 254.
    let mut result = 1u8;
    let mut base = a;
    let mut e = 254u32;
    while e != 0 {
        if e & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        e >>= 1;
    }
    result
}

fn affine(x: u8) -> u8 {
    // FIPS-197 §5.1.1: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i.
    let mut out = 0u8;
    for i in 0..8 {
        let bit = ((x >> i)
            ^ (x >> ((i + 4) % 8))
            ^ (x >> ((i + 5) % 8))
            ^ (x >> ((i + 6) % 8))
            ^ (x >> ((i + 7) % 8))
            ^ (0x63 >> i))
            & 1;
        out |= bit << i;
    }
    out
}

fn tables() -> &'static ([u8; 256], [u8; 256]) {
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut sbox = [0u8; 256];
        let mut inv = [0u8; 256];
        for (i, slot) in sbox.iter_mut().enumerate() {
            *slot = affine(gf_inv(i as u8));
        }
        for (i, &s) in sbox.iter().enumerate() {
            inv[s as usize] = i as u8;
        }
        (sbox, inv)
    })
}

/// The AES S-box.
pub fn sbox(x: u8) -> u8 {
    tables().0[x as usize]
}

/// The inverse AES S-box.
pub fn inv_sbox(x: u8) -> u8 {
    tables().1[x as usize]
}

fn to_bytes(x: u128) -> [u8; 16] {
    x.to_le_bytes()
}

fn from_bytes(b: [u8; 16]) -> u128 {
    u128::from_le_bytes(b)
}

fn sub_bytes(b: &mut [u8; 16]) {
    for v in b.iter_mut() {
        *v = sbox(*v);
    }
}

fn inv_sub_bytes(b: &mut [u8; 16]) {
    for v in b.iter_mut() {
        *v = inv_sbox(*v);
    }
}

/// ShiftRows: row `r` of the state (bytes `r, r+4, r+8, r+12`) rotates left
/// by `r`.
fn shift_rows(b: &mut [u8; 16]) {
    let src = *b;
    for r in 0..4 {
        for c in 0..4 {
            b[r + 4 * c] = src[r + 4 * ((c + r) % 4)];
        }
    }
}

fn inv_shift_rows(b: &mut [u8; 16]) {
    let src = *b;
    for r in 0..4 {
        for c in 0..4 {
            b[r + 4 * ((c + r) % 4)] = src[r + 4 * c];
        }
    }
}

fn mix_columns(b: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
        b[4 * c] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
        b[4 * c + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
        b[4 * c + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
        b[4 * c + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
    }
}

fn inv_mix_columns(b: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [b[4 * c], b[4 * c + 1], b[4 * c + 2], b[4 * c + 3]];
        b[4 * c] = gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
        b[4 * c + 1] =
            gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
        b[4 * c + 2] =
            gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
        b[4 * c + 3] =
            gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
    }
}

/// One middle encryption round:
/// `MixColumns(ShiftRows(SubBytes(state))) ^ key`.
pub fn enc_round(state: u128, key: u128) -> u128 {
    let mut b = to_bytes(state);
    sub_bytes(&mut b);
    shift_rows(&mut b);
    mix_columns(&mut b);
    from_bytes(b) ^ key
}

/// The final encryption round (no MixColumns).
pub fn enc_last_round(state: u128, key: u128) -> u128 {
    let mut b = to_bytes(state);
    sub_bytes(&mut b);
    shift_rows(&mut b);
    from_bytes(b) ^ key
}

/// Inverse of [`enc_round`] with the same round key:
/// `InvSubBytes(InvShiftRows(InvMixColumns(state ^ key)))`.
pub fn dec_round(state: u128, key: u128) -> u128 {
    let mut b = to_bytes(state ^ key);
    inv_mix_columns(&mut b);
    inv_shift_rows(&mut b);
    inv_sub_bytes(&mut b);
    from_bytes(b)
}

/// Inverse of [`enc_last_round`] with the same round key.
pub fn dec_last_round(state: u128, key: u128) -> u128 {
    let mut b = to_bytes(state ^ key);
    inv_shift_rows(&mut b);
    inv_sub_bytes(&mut b);
    from_bytes(b)
}

/// AES-128 key expansion: 11 round keys from a 16-byte key (FIPS-197 §5.2).
pub fn expand_key_128(key: [u8; 16]) -> [u128; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    let mut rcon = 1u8;
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for v in t.iter_mut() {
                *v = sbox(*v);
            }
            t[0] ^= rcon;
            rcon = gf_mul(rcon, 2);
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ t[j];
        }
    }
    let mut keys = [0u128; 11];
    for (r, slot) in keys.iter_mut().enumerate() {
        let mut b = [0u8; 16];
        for c in 0..4 {
            b[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
        *slot = from_bytes(b);
    }
    keys
}

/// Full AES-128 block encryption built from the round primitives.
///
/// This is the *reference* the simulated crypto unit is tested against;
/// the software-AES library that applications use lives in
/// `mercurial-corpus` and is implemented independently.
pub fn aes128_encrypt_block(key: [u8; 16], block: [u8; 16]) -> [u8; 16] {
    let keys = expand_key_128(key);
    let mut state = from_bytes(block) ^ keys[0];
    for &k in &keys[1..10] {
        state = enc_round(state, k);
    }
    state = enc_last_round(state, keys[10]);
    to_bytes(state)
}

/// Full AES-128 block decryption built from the round primitives.
pub fn aes128_decrypt_block(key: [u8; 16], block: [u8; 16]) -> [u8; 16] {
    let keys = expand_key_128(key);
    let mut state = from_bytes(block);
    state = dec_last_round(state, keys[10]);
    for &k in keys[1..10].iter().rev() {
        state = dec_round(state, k);
    }
    to_bytes(state ^ keys[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_values() {
        // FIPS-197 Figure 7 spot checks.
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x53), 0xed);
        assert_eq!(sbox(0xff), 0x16);
        assert_eq!(inv_sbox(0x63), 0x00);
        assert_eq!(inv_sbox(0xed), 0x53);
    }

    #[test]
    fn sbox_is_a_bijection() {
        let mut seen = [false; 256];
        for i in 0..=255u8 {
            let s = sbox(i) as usize;
            assert!(!seen[s]);
            seen[s] = true;
            assert_eq!(inv_sbox(sbox(i)), i);
        }
    }

    #[test]
    fn gf_mul_known_values() {
        // FIPS-197 §4.2: {57} · {83} = {c1}.
        assert_eq!(gf_mul(0x57, 0x83), 0xc1);
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xab), 0xab);
        assert_eq!(gf_mul(0, 0xab), 0);
    }

    #[test]
    fn mix_columns_inverts() {
        let mut b: [u8; 16] = core::array::from_fn(|i| (i * 17 + 3) as u8);
        let orig = b;
        mix_columns(&mut b);
        assert_ne!(b, orig);
        inv_mix_columns(&mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn shift_rows_inverts() {
        let mut b: [u8; 16] = core::array::from_fn(|i| i as u8);
        let orig = b;
        shift_rows(&mut b);
        inv_shift_rows(&mut b);
        assert_eq!(b, orig);
    }

    #[test]
    fn shift_rows_row0_fixed() {
        let mut b: [u8; 16] = core::array::from_fn(|i| i as u8);
        shift_rows(&mut b);
        // Row 0 (bytes 0, 4, 8, 12) does not move.
        assert_eq!([b[0], b[4], b[8], b[12]], [0, 4, 8, 12]);
        // Row 1 rotates left by one column.
        assert_eq!([b[1], b[5], b[9], b[13]], [5, 9, 13, 1]);
    }

    #[test]
    fn rounds_invert_each_other() {
        let state = 0x0f1e_2d3c_4b5a_6978_8796_a5b4_c3d2_e1f0u128;
        let key = 0xdead_beef_cafe_f00d_0123_4567_89ab_cdefu128;
        assert_eq!(dec_round(enc_round(state, key), key), state);
        assert_eq!(dec_last_round(enc_last_round(state, key), key), state);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        // FIPS-197 Appendix B: the canonical AES-128 example.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        assert_eq!(aes128_encrypt_block(key, pt), expect);
        assert_eq!(aes128_decrypt_block(key, expect), pt);
    }

    #[test]
    fn fips197_appendix_c1_vector() {
        // FIPS-197 Appendix C.1: key 000102…0f, plaintext 00112233…ff.
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        assert_eq!(aes128_encrypt_block(key, pt), expect);
        assert_eq!(aes128_decrypt_block(key, expect), pt);
    }

    #[test]
    fn key_expansion_first_word_matches_fips() {
        // FIPS-197 Appendix A.1: w[4] = a0fafe17 for the 2b7e… key.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let keys = expand_key_128(key);
        let k1 = keys[1].to_le_bytes();
        assert_eq!(&k1[0..4], &[0xa0, 0xfa, 0xfe, 0x17]);
    }

    #[test]
    fn round_xor_lesion_is_self_inverting_through_rounds() {
        // The §2 case-study mechanism: XOR the same mask into the encrypt
        // round output and the decrypt round *input adjustment* and the two
        // passes cancel on the same core.
        let mask = 0x0000_0400_0000_0000_0000_0000_0002_0000u128;
        let state = 0x1111_2222_3333_4444_5555_6666_7777_8888u128;
        let key = 0x0101_0202_0303_0404_0505_0606_0707_0808u128;
        let corrupted_ct = enc_round(state, key) ^ mask;
        // Same-core decryption applies the same mask before inverting.
        let recovered = dec_round(corrupted_ct ^ mask, key);
        assert_eq!(recovered, state);
        // Elsewhere (no mask), decryption yields gibberish.
        assert_ne!(dec_round(corrupted_ct, key), state);
    }
}
