//! Property-based tests on the simulator: healthy-core architectural
//! correctness against native Rust semantics, and assembler totality.

use mercurial_simcpu::{assemble, CoreConfig, Memory, Reg, SimCore};
use proptest::prelude::*;

fn run_binop(op: &str, a: u64, b: u64) -> Result<u64, mercurial_simcpu::Trap> {
    let src = format!(
        "ld x1, x0, 256
         ld x2, x0, 264
         {op} x3, x1, x2
         out x3
         halt"
    );
    let prog = assemble(&src).expect("binop program assembles");
    let mut core = SimCore::new(CoreConfig::default(), None);
    core.set_reg(Reg(0), 0);
    let mut mem = Memory::new(1024);
    mem.write_u64(256, a).unwrap();
    mem.write_u64(264, b).unwrap();
    core.run(&prog, &mut mem)?;
    Ok(core.output()[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Healthy-core integer ops match Rust's wrapping semantics exactly.
    #[test]
    fn healthy_alu_matches_native(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(run_binop("add", a, b).unwrap(), a.wrapping_add(b));
        prop_assert_eq!(run_binop("sub", a, b).unwrap(), a.wrapping_sub(b));
        prop_assert_eq!(run_binop("xor", a, b).unwrap(), a ^ b);
        prop_assert_eq!(run_binop("and", a, b).unwrap(), a & b);
        prop_assert_eq!(run_binop("or", a, b).unwrap(), a | b);
        prop_assert_eq!(run_binop("mul", a, b).unwrap(), a.wrapping_mul(b));
        prop_assert_eq!(
            run_binop("mulh", a, b).unwrap(),
            ((a as u128 * b as u128) >> 64) as u64
        );
        prop_assert_eq!(run_binop("shl", a, b).unwrap(), a << (b & 63));
        prop_assert_eq!(run_binop("shr", a, b).unwrap(), a >> (b & 63));
        prop_assert_eq!(run_binop("cmplt", a, b).unwrap(), (a < b) as u64);
        prop_assert_eq!(run_binop("cmpeq", a, b).unwrap(), (a == b) as u64);
    }

    /// Division matches native or traps on zero — never anything else.
    #[test]
    fn division_semantics(a in any::<u64>(), b in any::<u64>()) {
        match run_binop("div", a, b) {
            Ok(q) => {
                prop_assert!(b != 0);
                prop_assert_eq!(q, a / b);
            }
            Err(t) => {
                prop_assert_eq!(b, 0);
                prop_assert_eq!(t, mercurial_simcpu::Trap::DivByZero);
            }
        }
        if b != 0 {
            prop_assert_eq!(run_binop("rem", a, b).unwrap(), a % b);
        }
    }

    /// Float ops match native IEEE-754 bit-for-bit on a healthy core.
    #[test]
    fn healthy_float_matches_native(a in any::<f64>(), b in any::<f64>()) {
        let run = |op: &str| run_binop(op, a.to_bits(), b.to_bits()).unwrap();
        prop_assert_eq!(run("fadd"), (a + b).to_bits());
        prop_assert_eq!(run("fsub"), (a - b).to_bits());
        prop_assert_eq!(run("fmul"), (a * b).to_bits());
        prop_assert_eq!(run("fdiv"), (a / b).to_bits());
    }

    /// memcpy moves arbitrary payloads of arbitrary length faithfully.
    #[test]
    fn memcpy_faithful(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let prog = assemble("memcpy x1, x2, x3\nhalt").unwrap();
        let mut core = SimCore::new(CoreConfig::default(), None);
        let mut mem = Memory::new(8192);
        mem.write_bytes(1024, &payload).unwrap();
        core.set_reg(Reg(1), 4096);
        core.set_reg(Reg(2), 1024);
        core.set_reg(Reg(3), payload.len() as u64);
        core.run(&prog, &mut mem).unwrap();
        prop_assert_eq!(mem.read_bytes(4096, payload.len()).unwrap(), payload);
    }

    /// The assembler never panics on arbitrary input text.
    #[test]
    fn assembler_is_total(src in "[ -~\n]{0,400}") {
        let _ = assemble(&src);
    }

    /// AES round functions invert for arbitrary states and keys.
    #[test]
    fn aes_rounds_invert(state in any::<u128>(), key in any::<u128>()) {
        use mercurial_simcpu::crypto;
        prop_assert_eq!(crypto::dec_round(crypto::enc_round(state, key), key), state);
        prop_assert_eq!(
            crypto::dec_last_round(crypto::enc_last_round(state, key), key),
            state
        );
    }

    /// Full AES-128 encrypt/decrypt inverts for arbitrary keys and blocks.
    #[test]
    fn aes128_inverts(key in proptest::array::uniform16(any::<u8>()),
                      block in proptest::array::uniform16(any::<u8>())) {
        use mercurial_simcpu::crypto;
        let ct = crypto::aes128_encrypt_block(key, block);
        prop_assert_eq!(crypto::aes128_decrypt_block(key, ct), block);
    }
}
