//! Property-based tests on the corpus libraries.

use mercurial_corpus::aes::{Aes, KeySize};
use mercurial_corpus::hash::SipHash24;
use mercurial_corpus::matmul::{freivalds_check, matmul_blocked, matmul_naive, Matrix};
use mercurial_corpus::memops;
use mercurial_corpus::sort::{is_sorted, sort, SortAlgo};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sorting algorithm agrees with the standard library.
    #[test]
    fn sorts_agree_with_std(mut data in proptest::collection::vec(any::<u64>(), 0..512)) {
        let mut expect = data.clone();
        expect.sort_unstable();
        for algo in SortAlgo::ALL {
            let mut v = data.clone();
            sort(algo, &mut v);
            prop_assert_eq!(&v, &expect, "{} diverged", algo.name());
            prop_assert!(is_sorted(&v));
        }
        data.clear(); // silence unused-mut lint paths
    }

    /// AES-CTR is an involution for any nonce and payload.
    #[test]
    fn ctr_involution(
        key in proptest::array::uniform16(any::<u8>()),
        nonce in any::<u64>(),
        mut data in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let aes = Aes::new(KeySize::Aes128, &key).unwrap();
        let orig = data.clone();
        aes.ctr_xor(nonce, &mut data);
        aes.ctr_xor(nonce, &mut data);
        prop_assert_eq!(data, orig);
    }

    /// SipHash is deterministic and key-sensitive.
    #[test]
    fn siphash_key_sensitivity(
        k0 in any::<u64>(),
        k1 in any::<u64>(),
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let h = SipHash24::new(k0, k1);
        prop_assert_eq!(h.hash(&data), h.hash(&data));
        let h2 = SipHash24::new(k0 ^ 1, k1);
        // Not a proof of PRF-ness, but a single-bit key change should
        // essentially always change the tag.
        prop_assert_ne!(h.hash(&data), h2.hash(&data));
    }

    /// Blocked GEMM agrees with naive GEMM for arbitrary shapes.
    #[test]
    fn blocked_gemm_agrees(m in 1usize..12, k in 1usize..12, n in 1usize..12,
                           seed in any::<u64>(), block in 1usize..8) {
        let a = Matrix::random(m, k, seed);
        let b = Matrix::random(k, n, seed.wrapping_add(1));
        let naive = matmul_naive(&a, &b);
        let blocked = matmul_blocked(&a, &b, block);
        prop_assert!(naive.max_abs_diff(&blocked) < 1e-10);
        prop_assert!(freivalds_check(&a, &b, &naive, 6, seed));
    }

    /// The pattern test never false-positives on an honest copy.
    #[test]
    fn pattern_test_honest_copy(len in 1usize..512) {
        let failures = memops::pattern_test(len, |d, s| d.copy_from_slice(s));
        prop_assert!(failures.is_empty());
    }

    /// Verified copy reports the exact first corrupted index.
    #[test]
    fn copy_verified_reports_first_divergence(
        src in proptest::collection::vec(any::<u8>(), 1..256),
        idx_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let idx = (idx_seed % src.len() as u64) as usize;
        let mut dst = vec![0u8; src.len()];
        let result = memops::copy_verified(&mut dst, &src);
        prop_assert_eq!(result, Ok(()));
        // Now corrupt and re-verify by hand.
        dst[idx] ^= flip;
        let first_bad = dst.iter().zip(&src).position(|(d, s)| d != s);
        prop_assert_eq!(first_bad, Some(idx));
    }
}
