//! Specially-written screening kernels for the simulated CPU.
//!
//! Each [`SimKernel`] is an assembly program with golden outputs captured
//! from a healthy core at construction time. A screener runs the program on
//! a suspect core and compares: any mismatch, trap, or machine check is a
//! CEE signal attributable to that core.
//!
//! The corpus deliberately covers every functional unit (the paper: "we
//! lack a systematic method of developing these tests" — a simulator is
//! allowed to be systematic), and includes the AES roundtrip kernel whose
//! *self-check passes on a self-inverting defective core* while its
//! ciphertext is wrong — the exact trap discussed in §2.

use mercurial_fault::FunctionalUnit;
use mercurial_simcpu::{assemble, CoreConfig, Memory, Program, SimCore, Trap};

/// Outcome of screening one core with one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScreenOutcome {
    /// Output matched the golden values.
    Pass,
    /// The program completed but produced a wrong value.
    Mismatch {
        /// Index into the output vector.
        index: usize,
        /// Golden value.
        expected: u64,
        /// Observed value.
        got: u64,
    },
    /// The program trapped (exception, segfault, machine check, …).
    Trapped(Trap),
    /// The program halted with the wrong number of outputs (a corrupted
    /// branch skipped or repeated `out` instructions).
    WrongOutputCount {
        /// Golden output count.
        expected: usize,
        /// Observed count.
        got: usize,
    },
}

impl ScreenOutcome {
    /// Whether this outcome indicts the core.
    pub fn failed(&self) -> bool {
        !matches!(self, ScreenOutcome::Pass)
    }
}

/// One screening kernel: program, memory image, golden outputs.
#[derive(Debug, Clone)]
pub struct SimKernel {
    /// Kernel name (stable identifier).
    pub name: &'static str,
    /// The functional units this kernel exercises (its *coverage*).
    pub units: Vec<FunctionalUnit>,
    /// The assembled program.
    pub program: Program,
    /// Memory regions staged before each run: `(addr, bytes)`.
    pub init_mem: Vec<(u64, Vec<u8>)>,
    /// Golden outputs from a healthy core.
    pub expected: Vec<u64>,
    /// Instructions a healthy core retires running this kernel (the cost
    /// a screening budget is charged).
    pub healthy_ops: u64,
    /// Memory size the kernel needs.
    pub mem_size: usize,
}

impl SimKernel {
    /// Builds a kernel from source and captures golden outputs on a
    /// healthy core.
    ///
    /// # Panics
    ///
    /// Panics if the source does not assemble or a healthy run traps —
    /// corpus kernels are compiled in, so this is a build-time defect.
    fn new(
        name: &'static str,
        units: Vec<FunctionalUnit>,
        src: &str,
        init_mem: Vec<(u64, Vec<u8>)>,
        mem_size: usize,
    ) -> SimKernel {
        let program = assemble(src)
            .unwrap_or_else(|e| panic!("corpus kernel `{name}` failed to assemble: {e}"));
        let mut core = SimCore::new(CoreConfig::default(), None);
        let mut mem = Memory::new(mem_size);
        for (addr, bytes) in &init_mem {
            mem.write_bytes(*addr, bytes)
                .expect("init image fits in memory");
        }
        core.run(&program, &mut mem)
            .unwrap_or_else(|t| panic!("corpus kernel `{name}` trapped on a healthy core: {t}"));
        let expected = core.output().to_vec();
        assert!(!expected.is_empty(), "kernel `{name}` must emit output");
        SimKernel {
            name,
            units,
            program,
            init_mem,
            expected,
            healthy_ops: core.stats().instructions,
            mem_size,
        }
    }

    /// Builds a kernel from an already-constructed [`Program`], capturing
    /// golden outputs on a healthy core.
    ///
    /// This is the fallible entry point external content generators (the
    /// fuzz distiller) use: unlike the compiled-in corpus, a generated
    /// program that traps or emits no output is a data error, not a build
    /// defect, so it returns `Err` instead of panicking.
    pub fn from_program(
        name: &'static str,
        units: Vec<FunctionalUnit>,
        program: Program,
        init_mem: Vec<(u64, Vec<u8>)>,
        mem_size: usize,
    ) -> Result<SimKernel, String> {
        program.validate()?;
        let mut core = SimCore::new(CoreConfig::default(), None);
        let mut mem = Memory::new(mem_size);
        for (addr, bytes) in &init_mem {
            mem.write_bytes(*addr, bytes)
                .map_err(|t| format!("kernel `{name}`: init image does not fit: {t}"))?;
        }
        core.run(&program, &mut mem)
            .map_err(|t| format!("kernel `{name}` trapped on a healthy core: {t}"))?;
        let expected = core.output().to_vec();
        if expected.is_empty() {
            return Err(format!("kernel `{name}` emitted no output"));
        }
        Ok(SimKernel {
            name,
            units,
            program,
            init_mem,
            expected,
            healthy_ops: core.stats().instructions,
            mem_size,
        })
    }

    /// Runs the kernel on `core` and compares against the golden outputs.
    pub fn screen_core(&self, core: &mut SimCore) -> ScreenOutcome {
        let mut mem = Memory::new(self.mem_size);
        for (addr, bytes) in &self.init_mem {
            mem.write_bytes(*addr, bytes)
                .expect("init image fits in memory");
        }
        core.reset();
        if let Err(trap) = core.run(&self.program, &mut mem) {
            return ScreenOutcome::Trapped(trap);
        }
        let out = core.output();
        if out.len() != self.expected.len() {
            return ScreenOutcome::WrongOutputCount {
                expected: self.expected.len(),
                got: out.len(),
            };
        }
        for (i, (&e, &g)) in self.expected.iter().zip(out).enumerate() {
            if e != g {
                return ScreenOutcome::Mismatch {
                    index: i,
                    expected: e,
                    got: g,
                };
            }
        }
        ScreenOutcome::Pass
    }

    /// Whether this kernel exercises the given unit.
    pub fn covers(&self, unit: FunctionalUnit) -> bool {
        self.units.contains(&unit)
    }
}

fn alu_mix() -> SimKernel {
    SimKernel::new(
        "alu-mix",
        vec![FunctionalUnit::ScalarAlu, FunctionalUnit::BranchUnit],
        "li x1, 0x1234
         li x2, 1
         li x3, 300
         loop:
         add x1, x1, x2
         xor x1, x1, x2
         rotli x1, x1, 7
         popcnt x4, x1
         add x1, x1, x4
         addi x2, x2, 1
         blt x2, x3, loop
         out x1
         halt",
        vec![],
        4096,
    )
}

fn muldiv_chain() -> SimKernel {
    SimKernel::new(
        "muldiv-chain",
        vec![FunctionalUnit::MulDiv],
        "li x1, 6364136223846793005
         li x2, 1442695040888963407
         li x3, 0x9e3779b9
         li x4, 150
         loop:
         mul x2, x2, x1
         mulh x5, x2, x3
         add x2, x2, x5
         li x6, 1000003
         rem x7, x2, x6
         div x8, x2, x6
         xor x2, x2, x7
         add x2, x2, x8
         addi x4, x4, -1
         bnz x4, loop
         out x2
         out x7
         halt",
        vec![],
        4096,
    )
}

fn vector_lanes() -> SimKernel {
    SimKernel::new(
        "vector-lanes",
        vec![FunctionalUnit::VectorPipe],
        "li x1, 0x0102030405060708
         li x2, 0x1122334455667788
         vins v0, x1, 0
         vins v0, x2, 1
         vins v0, x1, 2
         vins v0, x2, 3
         li x3, 0xa5a5a5a5a5a5a5a5
         vins v1, x3, 0
         vins v1, x3, 1
         vins v1, x3, 2
         vins v1, x3, 3
         li x4, 100
         loop:
         vadd v2, v0, v1
         vxor v0, v2, v1
         vmul v1, v1, v2
         addi x4, x4, -1
         bnz x4, loop
         vext x5, v0, 0
         vext x6, v0, 1
         vext x7, v1, 2
         vext x8, v2, 3
         out x5
         out x6
         out x7
         out x8
         halt",
        vec![],
        4096,
    )
}

fn memcpy_walk() -> SimKernel {
    // Stage a 512-byte pattern buffer; copy it; xor-fold the copy.
    let src: Vec<u8> = (0..512u32)
        .map(|i| (i.wrapping_mul(0x9d) >> 3) as u8)
        .collect();
    SimKernel::new(
        "memcpy-walk",
        vec![
            FunctionalUnit::VectorPipe,
            FunctionalUnit::LoadStore,
            FunctionalUnit::AddressGen,
        ],
        "li x1, 4096       ; dst
         li x2, 1024       ; src
         li x3, 512        ; len
         memcpy x1, x2, x3
         li x4, 0          ; acc
         li x5, 0          ; offset
         li x6, 512
         loop:
         add x7, x1, x5
         ld x8, x7, 0
         xor x4, x4, x8
         rotli x4, x4, 9
         addi x5, x5, 8
         blt x5, x6, loop
         out x4
         halt",
        vec![(1024, src)],
        8192,
    )
}

fn float_fma() -> SimKernel {
    SimKernel::new(
        "float-fma",
        vec![FunctionalUnit::Fma],
        &format!(
            "li x1, {a}
             li x2, {b}
             li x3, {x0}
             li x4, 200
             loop:
             fma x3, x3, x1       ; x3 = x3*x3 + a ... wait: fma rd,ra,rb = ra*rb + rd
             fmul x5, x3, x2
             fadd x3, x3, x5
             fsqrt x6, x3
             fdiv x3, x3, x6      ; x3 = sqrt(x3)
             addi x4, x4, -1
             bnz x4, loop
             out x3
             out x6
             halt",
            a = 1.0009765625f64.to_bits(),
            b = 0.25f64.to_bits(),
            x0 = 1.5f64.to_bits(),
        ),
        vec![],
        4096,
    )
}

fn loadstore_walk() -> SimKernel {
    SimKernel::new(
        "loadstore-walk",
        vec![FunctionalUnit::LoadStore, FunctionalUnit::AddressGen],
        "li x1, 2048       ; base
         li x2, 0          ; i
         li x3, 64
         fill:
         mul x4, x2, x2
         add x4, x4, x2
         shl x5, x2, x6    ; x6 = 0 → identity shift
         add x7, x1, x5
         li x8, 8
         mul x5, x2, x8
         add x7, x1, x5
         st x4, x7, 0
         stb x4, x7, 7     ; overwrite top byte too
         addi x2, x2, 1
         blt x2, x3, fill
         li x2, 0
         li x9, 0
         sum:
         li x8, 8
         mul x5, x2, x8
         add x7, x1, x5
         ld x4, x7, 0
         ldb x10, x7, 7
         add x9, x9, x4
         add x9, x9, x10
         addi x2, x2, 1
         blt x2, x3, sum
         out x9
         halt",
        vec![],
        8192,
    )
}

fn atomics_hammer() -> SimKernel {
    SimKernel::new(
        "atomics-hammer",
        vec![FunctionalUnit::Atomics, FunctionalUnit::AddressGen],
        "li x1, 512        ; cell
         li x2, 0
         st x2, x1, 0
         li x3, 120        ; iterations
         li x4, 3
         loop:
         xadd x5, x1, x4   ; cell += 3, x5 = old
         ld x6, x1, 0
         cas x7, x1, x6, x5 ; swap back to old
         fence
         addi x3, x3, -1
         bnz x3, loop
         ld x8, x1, 0
         out x8
         out x5
         out x7
         halt",
        vec![],
        4096,
    )
}

fn aes_roundtrip() -> SimKernel {
    // Stage: plaintext^k0 at 0, round keys k1..k10 at 64 + 16i (encrypt),
    // and for decryption the same keys are reused in reverse.
    let key: [u8; 16] = *b"screening-key-01";
    let pt: [u8; 16] = *b"corpus plaintext";
    let keys = mercurial_simcpu::crypto::expand_key_128(key);
    let mut init = Vec::new();
    let state0 = u128::from_le_bytes(pt) ^ keys[0];
    init.push((0u64, state0.to_le_bytes().to_vec()));
    for (i, &k) in keys[1..11].iter().enumerate() {
        init.push((64 + 16 * i as u64, k.to_le_bytes().to_vec()));
    }
    init.push((256, keys[0].to_le_bytes().to_vec()));
    let mut src = String::from("li x1, 0\nvld v0, x1, 0\n");
    // Encrypt: 9 middle rounds + last.
    for i in 0..10 {
        src.push_str(&format!("li x2, {}\nvld v1, x2, 0\n", 64 + 16 * i));
        src.push_str(if i < 9 {
            "aesenc v0, v1\n"
        } else {
            "aesenclast v0, v1\n"
        });
    }
    src.push_str("vext x3, v0, 0\nvext x4, v0, 1\nout x3\nout x4\n");
    // Decrypt back on the same core.
    src.push_str(&format!(
        "li x2, {}\nvld v1, x2, 0\naesdeclast v0, v1\n",
        64 + 16 * 9
    ));
    for i in (0..9).rev() {
        src.push_str(&format!(
            "li x2, {}\nvld v1, x2, 0\naesdec v0, v1\n",
            64 + 16 * i
        ));
    }
    src.push_str("li x2, 256\nvld v1, x2, 0\nvxor v0, v0, v1\n");
    src.push_str("vext x5, v0, 0\nvext x6, v0, 1\nout x5\nout x6\nhalt\n");
    SimKernel::new(
        "aes-roundtrip",
        vec![FunctionalUnit::CryptoUnit, FunctionalUnit::VectorPipe],
        &src,
        init,
        4096,
    )
}

fn branch_maze() -> SimKernel {
    SimKernel::new(
        "branch-maze",
        vec![FunctionalUnit::BranchUnit, FunctionalUnit::ScalarAlu],
        "li x1, 27         ; collatz seed
         li x2, 0          ; steps
         li x3, 1
         li x4, 2
         li x5, 3
         loop:
         beq x1, x3, done
         rem x6, x1, x4
         bnz x6, odd
         div x1, x1, x4
         jmp next
         odd:
         mul x1, x1, x5
         addi x1, x1, 1
         next:
         addi x2, x2, 1
         jmp loop
         done:
         out x2
         halt",
        vec![],
        4096,
    )
}

fn crc_stream() -> SimKernel {
    let data: Vec<u8> = (0..256u32).map(|i| (i * 7 + 13) as u8).collect();
    SimKernel::new(
        "crc-stream",
        vec![FunctionalUnit::ScalarAlu, FunctionalUnit::LoadStore],
        "li x1, 1024       ; buf
         li x2, 0          ; i
         li x3, 256        ; len
         li x4, 0xffffffff ; crc
         loop:
         add x5, x1, x2
         ldb x6, x5, 0
         crc32b x4, x4, x6
         addi x2, x2, 1
         blt x2, x3, loop
         li x7, 0xffffffff
         xor x4, x4, x7
         out x4
         halt",
        vec![(1024, data)],
        4096,
    )
}

/// Builds the full simulated screening corpus.
///
/// Between them the kernels cover every [`FunctionalUnit`]; see the
/// `corpus_covers_every_unit` test.
pub fn sim_corpus() -> Vec<SimKernel> {
    vec![
        alu_mix(),
        muldiv_chain(),
        vector_lanes(),
        memcpy_walk(),
        float_fma(),
        loadstore_walk(),
        atomics_hammer(),
        aes_roundtrip(),
        branch_maze(),
        crc_stream(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::{library, Activation, CoreFaultProfile, Injector, Lesion};

    fn healthy_core() -> SimCore {
        SimCore::new(CoreConfig::default(), None)
    }

    fn mercurial_core(profile: CoreFaultProfile, seed: u64) -> SimCore {
        SimCore::new(CoreConfig::default(), Some(Injector::new(seed, profile)))
    }

    #[test]
    fn all_kernels_pass_on_healthy_cores() {
        let mut core = healthy_core();
        for k in sim_corpus() {
            assert_eq!(
                k.screen_core(&mut core),
                ScreenOutcome::Pass,
                "kernel {}",
                k.name
            );
        }
    }

    #[test]
    fn corpus_covers_every_unit() {
        let corpus = sim_corpus();
        for unit in FunctionalUnit::ALL {
            assert!(
                corpus.iter().any(|k| k.covers(unit)),
                "no kernel covers {unit}"
            );
        }
    }

    #[test]
    fn kernels_are_deterministic_across_runs() {
        let mut core = healthy_core();
        for k in sim_corpus() {
            assert_eq!(k.screen_core(&mut core), ScreenOutcome::Pass);
            assert_eq!(k.screen_core(&mut core), ScreenOutcome::Pass);
        }
    }

    #[test]
    fn unit_lesion_caught_by_covering_kernel() {
        // A hot MulDiv lesion must be caught by the muldiv kernel and must
        // not trip kernels that avoid the multiplier entirely.
        let profile = CoreFaultProfile::single(
            "mul",
            FunctionalUnit::MulDiv,
            Lesion::XorMask { mask: 0x10 },
            Activation::always(),
        );
        let corpus = sim_corpus();
        let muldiv = corpus.iter().find(|k| k.name == "muldiv-chain").unwrap();
        let alu = corpus.iter().find(|k| k.name == "alu-mix").unwrap();
        let mut core = mercurial_core(profile, 5);
        assert!(muldiv.screen_core(&mut core).failed());
        assert_eq!(alu.screen_core(&mut core), ScreenOutcome::Pass);
    }

    #[test]
    fn vector_lesion_caught_by_both_vector_and_memcpy_kernels() {
        // The §5 coupling: one vector-pipe defect, two very different
        // kernels (explicit vector math and a bulk copy) both catch it.
        let profile = library::vector_copy_coupled(1.0);
        let corpus = sim_corpus();
        let vec_k = corpus.iter().find(|k| k.name == "vector-lanes").unwrap();
        let cpy_k = corpus.iter().find(|k| k.name == "memcpy-walk").unwrap();
        let mut core = mercurial_core(profile, 6);
        assert!(vec_k.screen_core(&mut core).failed());
        assert!(cpy_k.screen_core(&mut core).failed());
    }

    #[test]
    fn self_inverting_aes_fools_roundtrip_but_not_golden_output() {
        // The paper's sharpest case study: encrypt-then-decrypt on the
        // defective core is the identity (outputs 2 and 3, the recovered
        // plaintext, are CORRECT), but the ciphertext itself (outputs 0
        // and 1) is wrong. A screener that only checked the roundtrip
        // would pass this core; golden-output comparison catches it.
        let profile = library::self_inverting_aes();
        let corpus = sim_corpus();
        let aes = corpus.iter().find(|k| k.name == "aes-roundtrip").unwrap();
        let mut core = mercurial_core(profile, 7);

        let outcome = aes.screen_core(&mut core);
        match outcome {
            ScreenOutcome::Mismatch { index, .. } => {
                assert!(
                    index < 2,
                    "ciphertext lanes must be the mismatch, got {index}"
                )
            }
            other => panic!("expected ciphertext mismatch, got {other:?}"),
        }
        // And the roundtrip portion really did cancel: run manually and
        // check outputs 2..4 equal the golden plaintext lanes.
        let mut mem = Memory::new(aes.mem_size);
        for (addr, bytes) in &aes.init_mem {
            mem.write_bytes(*addr, bytes).unwrap();
        }
        core.reset();
        core.run(&aes.program, &mut mem).unwrap();
        assert_eq!(core.output()[2], aes.expected[2]);
        assert_eq!(core.output()[3], aes.expected[3]);
        assert_ne!(core.output()[0], aes.expected[0]);
    }

    #[test]
    fn addressgen_lesion_usually_traps() {
        let profile = library::addressgen_crasher(1.0);
        let corpus = sim_corpus();
        let walk = corpus.iter().find(|k| k.name == "loadstore-walk").unwrap();
        let mut core = mercurial_core(profile, 8);
        match walk.screen_core(&mut core) {
            ScreenOutcome::Trapped(_) => {}
            other => panic!("a hot address-gen defect should trap, got {other:?}"),
        }
    }

    #[test]
    fn healthy_ops_are_positive_and_plausible() {
        for k in sim_corpus() {
            assert!(k.healthy_ops > 50, "kernel {} is trivially short", k.name);
            assert!(k.healthy_ops < 1_000_000, "kernel {} is too slow", k.name);
        }
    }

    #[test]
    fn low_rate_lesion_escapes_short_screens_sometimes() {
        // §4's measurement problem: a 1e-4 defect needs many ops to catch.
        let profile = CoreFaultProfile::single(
            "rare",
            FunctionalUnit::ScalarAlu,
            Lesion::FlipBit { bit: 3 },
            Activation::with_prob(1e-4),
        );
        let corpus = sim_corpus();
        let alu = corpus.iter().find(|k| k.name == "alu-mix").unwrap();
        let mut core = mercurial_core(profile, 9);
        let fails = (0..20)
            .filter(|_| alu.screen_core(&mut core).failed())
            .count();
        assert!(
            fails < 20,
            "a 1e-4 lesion should escape at least one short screen"
        );
    }
}
