//! Sorting algorithms under one harness ("real-code snippets" in the
//! corpus list; also the substrate for the SDC-resilient sorting of Guan
//! et al. [11] reproduced in `mercurial-mitigation`).

/// Which algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgo {
    /// Hoare-partition quicksort with median-of-three pivots.
    Quick,
    /// Bottom-up merge sort (stable).
    Merge,
    /// Binary-heap sort.
    Heap,
}

impl SortAlgo {
    /// All algorithms.
    pub const ALL: [SortAlgo; 3] = [SortAlgo::Quick, SortAlgo::Merge, SortAlgo::Heap];

    /// A short stable name.
    pub fn name(self) -> &'static str {
        match self {
            SortAlgo::Quick => "quick",
            SortAlgo::Merge => "merge",
            SortAlgo::Heap => "heap",
        }
    }
}

/// Sorts `data` in place with the chosen algorithm.
pub fn sort(algo: SortAlgo, data: &mut [u64]) {
    match algo {
        SortAlgo::Quick => quicksort(data),
        SortAlgo::Merge => mergesort(data),
        SortAlgo::Heap => heapsort(data),
    }
}

fn quicksort(data: &mut [u64]) {
    if data.len() <= 16 {
        insertion(data);
        return;
    }
    let pivot = median_of_three(data);
    // Hoare partition.
    let (mut i, mut j) = (0usize, data.len() - 1);
    loop {
        while data[i] < pivot {
            i += 1;
        }
        while data[j] > pivot {
            j -= 1;
        }
        if i >= j {
            break;
        }
        data.swap(i, j);
        i += 1;
        j = j.saturating_sub(1);
        if j == 0 {
            break;
        }
    }
    let split = j + 1;
    let (lo, hi) = data.split_at_mut(split);
    quicksort(lo);
    quicksort(hi);
}

fn median_of_three(data: &[u64]) -> u64 {
    let (a, b, c) = (data[0], data[data.len() / 2], data[data.len() - 1]);
    a.max(b).min(a.min(b).max(c))
}

fn insertion(data: &mut [u64]) {
    for i in 1..data.len() {
        let mut j = i;
        while j > 0 && data[j - 1] > data[j] {
            data.swap(j - 1, j);
            j -= 1;
        }
    }
}

fn mergesort(data: &mut [u64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    // Always merge data -> buf, then copy back: one extra copy per level,
    // but the run bookkeeping stays obvious.
    let mut buf = data.to_vec();
    let mut width = 1usize;
    while width < n {
        for start in (0..n).step_by(2 * width) {
            let mid = (start + width).min(n);
            let end = (start + 2 * width).min(n);
            merge_into(&data[start..mid], &data[mid..end], &mut buf[start..end]);
        }
        data.copy_from_slice(&buf);
        width *= 2;
    }
}

fn merge_into(a: &[u64], b: &[u64], out: &mut [u64]) {
    let (mut i, mut j) = (0, 0);
    for slot in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *slot = a[i];
            i += 1;
        } else {
            *slot = b[j];
            j += 1;
        }
    }
}

fn heapsort(data: &mut [u64]) {
    let n = data.len();
    for i in (0..n / 2).rev() {
        sift_down(data, i, n);
    }
    for end in (1..n).rev() {
        data.swap(0, end);
        sift_down(data, 0, end);
    }
}

fn sift_down(data: &mut [u64], mut root: usize, end: usize) {
    loop {
        let left = 2 * root + 1;
        if left >= end {
            return;
        }
        let mut child = left;
        if left + 1 < end && data[left + 1] > data[left] {
            child = left + 1;
        }
        if data[root] >= data[child] {
            return;
        }
        data.swap(root, child);
        root = child;
    }
}

/// Whether `data` is non-decreasing.
pub fn is_sorted(data: &[u64]) -> bool {
    data.windows(2).all(|w| w[0] <= w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mercurial_fault::CounterRng;

    fn random_vec(n: usize, seed: u64) -> Vec<u64> {
        let rng = CounterRng::new(seed);
        (0..n as u64).map(|i| rng.at(i) % 10_000).collect()
    }

    #[test]
    fn all_algorithms_sort_correctly() {
        for algo in SortAlgo::ALL {
            for n in [0usize, 1, 2, 15, 16, 17, 100, 1000] {
                let mut v = random_vec(n, 42 + n as u64);
                let mut expect = v.clone();
                expect.sort_unstable();
                sort(algo, &mut v);
                assert_eq!(v, expect, "{} failed at n={n}", algo.name());
            }
        }
    }

    #[test]
    fn handles_duplicates_and_sorted_inputs() {
        for algo in SortAlgo::ALL {
            let mut dup = vec![5u64; 100];
            sort(algo, &mut dup);
            assert!(is_sorted(&dup));

            let mut asc: Vec<u64> = (0..100).collect();
            sort(algo, &mut asc);
            assert!(is_sorted(&asc));

            let mut desc: Vec<u64> = (0..100).rev().collect();
            sort(algo, &mut desc);
            assert!(is_sorted(&desc));
        }
    }

    #[test]
    fn extreme_values() {
        for algo in SortAlgo::ALL {
            let mut v = vec![u64::MAX, 0, u64::MAX / 2, 1, u64::MAX - 1];
            sort(algo, &mut v);
            assert_eq!(v, vec![0, 1, u64::MAX / 2, u64::MAX - 1, u64::MAX]);
        }
    }

    #[test]
    fn is_sorted_detects_disorder() {
        assert!(is_sorted(&[]));
        assert!(is_sorted(&[1]));
        assert!(is_sorted(&[1, 1, 2]));
        assert!(!is_sorted(&[2, 1]));
    }
}
