//! Floating-point stress kernels ("math" in the corpus list): compensated
//! summation, polynomial evaluation, FMA chains with analytically known
//! results.
//!
//! FP units are among the "discrete accelerators" §5 worries about; these
//! kernels produce values that are bit-exactly reproducible on a correct
//! core, so any deviation is a CEE signal rather than roundoff ambiguity.

/// Kahan (compensated) summation.
pub fn kahan_sum(values: &[f64]) -> f64 {
    let mut sum = 0.0;
    let mut c = 0.0;
    for &v in values {
        let y = v - c;
        let t = sum + y;
        c = (t - sum) - y;
        sum = t;
    }
    sum
}

/// Naive left-to-right summation (the error foil for Kahan).
pub fn naive_sum(values: &[f64]) -> f64 {
    values.iter().sum()
}

/// Horner evaluation of a polynomial with coefficients `coeffs`
/// (highest degree first) at `x`, using FMA steps.
pub fn horner_fma(coeffs: &[f64], x: f64) -> f64 {
    let mut acc = 0.0f64;
    for &c in coeffs {
        acc = acc.mul_add(x, c);
    }
    acc
}

/// A long dependent FMA chain with a closed-form result:
/// starting from `s = 0`, applies `s = s * 1 + 1` (as FMA) `n` times,
/// so the correct answer is exactly `n` for `n < 2^53`.
pub fn fma_chain_exact(n: u64) -> f64 {
    let mut s = 0.0f64;
    for _ in 0..n {
        s = s.mul_add(1.0, 1.0);
    }
    s
}

/// Computes the dot product of two slices with FMA accumulation.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot_fma(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut acc = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        acc = x.mul_add(y, acc);
    }
    acc
}

/// A deterministic FP "signature": runs a mixed add/mul/div/sqrt workload
/// seeded by `seed` and returns the final bit pattern. Bit-exact on every
/// IEEE-754-correct core, so a signature mismatch between cores is a CEE.
pub fn fp_signature(seed: u64, iters: u32) -> u64 {
    let mixed = mercurial_fault::rng::mix64(seed.wrapping_add(1));
    let mut x = (mixed >> 11) as f64 / (1u64 << 53) as f64 + 1.0;
    // Fold every intermediate into the signature: the iteration itself may
    // converge to a fixed point, but the accumulated bit history cannot.
    let mut acc = mixed;
    for i in 0..iters {
        x = x.mul_add(1.000000059604645, -0.25);
        x = (x * x + 1.0).sqrt();
        if i % 7 == 3 {
            x = 3.0 / x;
        }
        // Keep x in a safe band to avoid inf/underflow drift.
        if x > 8.0 {
            x *= 0.125;
        }
        acc = acc.rotate_left(7) ^ x.to_bits();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_beats_naive_on_hard_sums() {
        // 1 + 1e-16 added 10^6 times: naive loses the small term.
        let mut values = vec![1.0];
        values.extend(std::iter::repeat_n(1e-16, 1_000_000));
        let kahan = kahan_sum(&values);
        let naive = naive_sum(&values);
        let exact = 1.0 + 1e-16 * 1_000_000.0;
        assert!((kahan - exact).abs() < 1e-12);
        assert!((naive - exact).abs() > (kahan - exact).abs());
    }

    #[test]
    fn horner_matches_direct_evaluation() {
        // p(x) = 2x^3 - 6x^2 + 2x - 1 at x = 3 → 54 - 54 + 6 - 1 = 5.
        assert_eq!(horner_fma(&[2.0, -6.0, 2.0, -1.0], 3.0), 5.0);
    }

    #[test]
    fn fma_chain_is_exact() {
        assert_eq!(fma_chain_exact(0), 0.0);
        assert_eq!(fma_chain_exact(1), 1.0);
        assert_eq!(fma_chain_exact(100_000), 100_000.0);
    }

    #[test]
    fn dot_fma_known_value() {
        assert_eq!(dot_fma(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn fp_signature_is_deterministic_and_seed_sensitive() {
        assert_eq!(fp_signature(42, 1000), fp_signature(42, 1000));
        assert_ne!(fp_signature(42, 1000), fp_signature(43, 1000));
        assert_ne!(fp_signature(42, 1000), fp_signature(42, 1001));
    }

    #[test]
    fn fp_signature_varies_across_seeds() {
        let mut sigs: Vec<u64> = (0..50).map(|seed| fp_signature(seed, 1_000)).collect();
        sigs.sort_unstable();
        sigs.dedup();
        assert_eq!(sigs.len(), 50, "signature collisions across seeds");
    }
}
