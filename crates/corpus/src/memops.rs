//! Copying kernels with verification ("copying" in the corpus list).
//!
//! The paper's motivating incident was triggered by a library change that
//! made "heavier use of otherwise rarely-used instructions" in exactly this
//! category. These functions provide plain and checksummed copies plus a
//! pattern-test bank of the kind burn-in memory/copy tests use.

use crate::crc::crc32;

/// Copies `src` into `dst`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn copy(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    dst.copy_from_slice(src);
}

/// Copies `src` into `dst` and returns the CRC-32 of what was *written*,
/// re-read from the destination.
///
/// Callers compare against the CRC of the source to detect a corrupting
/// copy path end to end (the §6 "many of our applications already checked
/// for SDCs" pattern).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn copy_checksummed(dst: &mut [u8], src: &[u8]) -> u32 {
    copy(dst, src);
    crc32(dst)
}

/// A copy that self-verifies and reports disagreement.
///
/// Returns `Err((first_bad_index, expected, got))` on the first mismatch.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn copy_verified(dst: &mut [u8], src: &[u8]) -> Result<(), (usize, u8, u8)> {
    copy(dst, src);
    for (i, (&d, &s)) in dst.iter().zip(src).enumerate() {
        if d != s {
            return Err((i, s, d));
        }
    }
    Ok(())
}

/// The classic memory-test data patterns.
pub const TEST_PATTERNS: [u8; 6] = [0x00, 0xff, 0xaa, 0x55, 0x5a, 0xa5];

/// Fills a buffer with a walking-ones pattern starting at `phase`.
pub fn fill_walking_ones(buf: &mut [u8], phase: u32) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = 1u8 << ((i as u32 + phase) % 8);
    }
}

/// Runs a pattern bank through a caller-provided copy function, returning
/// the patterns (by value) that failed verification.
///
/// The copy function receives `(dst, src)`; screeners pass a closure that
/// routes the copy through a simulated core.
pub fn pattern_test<F>(len: usize, mut copy_fn: F) -> Vec<u8>
where
    F: FnMut(&mut [u8], &[u8]),
{
    let mut failures = Vec::new();
    for &pat in &TEST_PATTERNS {
        let src = vec![pat; len];
        let mut dst = vec![!pat; len];
        copy_fn(&mut dst, &src);
        if dst != src {
            failures.push(pat);
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_checksummed_matches_source_crc() {
        let src: Vec<u8> = (0..100).collect();
        let mut dst = vec![0u8; 100];
        let crc = copy_checksummed(&mut dst, &src);
        assert_eq!(crc, crc32(&src));
        assert_eq!(dst, src);
    }

    #[test]
    fn copy_verified_passes_on_faithful_copy() {
        let src = b"faithful".to_vec();
        let mut dst = vec![0; src.len()];
        assert_eq!(copy_verified(&mut dst, &src), Ok(()));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = [0u8; 3];
        copy(&mut dst, b"four");
    }

    #[test]
    fn walking_ones_cycles() {
        let mut buf = [0u8; 16];
        fill_walking_ones(&mut buf, 0);
        assert_eq!(buf[0], 1);
        assert_eq!(buf[7], 0x80);
        assert_eq!(buf[8], 1);
        fill_walking_ones(&mut buf, 3);
        assert_eq!(buf[0], 8);
    }

    #[test]
    fn pattern_test_passes_for_honest_copy() {
        let failures = pattern_test(256, |d, s| d.copy_from_slice(s));
        assert!(failures.is_empty());
    }

    #[test]
    fn pattern_test_catches_stuck_bit_copy() {
        // A copy path with bit 3 stuck high fails the patterns that have
        // bit 3 clear — the "repeated bit-flips at a particular position"
        // signature from §2.
        let failures = pattern_test(64, |d, s| {
            for (dd, &ss) in d.iter_mut().zip(s) {
                *dd = ss | 0b1000;
            }
        });
        assert!(failures.contains(&0x00));
        assert!(failures.contains(&0x55));
        assert!(!failures.contains(&0xff));
    }
}
