//! CRC-32 (IEEE 802.3) and CRC-32C (Castagnoli), three ways.
//!
//! The corpus keeps three independent implementations of each polynomial —
//! bitwise, byte-table, and slicing-by-8 — because cross-checking
//! *diverse implementations of the same function* is one of the cheapest
//! CEE detectors: a defective unit rarely corrupts two differently-shaped
//! computations identically. The screening crate exploits this.

/// The reflected IEEE 802.3 polynomial.
pub const POLY_CRC32: u32 = 0xedb8_8320;
/// The reflected Castagnoli polynomial (used by iSCSI, ext4, etc.).
pub const POLY_CRC32C: u32 = 0x82f6_3b78;

/// Bitwise CRC over `data` with the given reflected polynomial.
pub fn crc_bitwise(poly: u32, data: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ poly
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

fn make_table(poly: u32) -> [u32; 256] {
    let mut table = [0u32; 256];
    for (i, slot) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { (c >> 1) ^ poly } else { c >> 1 };
        }
        *slot = c;
    }
    table
}

/// A table-driven CRC engine for one polynomial.
#[derive(Debug, Clone)]
pub struct CrcTable {
    /// Slicing tables: `t[0]` is the classic byte table.
    t: Box<[[u32; 256]; 8]>,
    poly: u32,
}

impl CrcTable {
    /// Builds tables for a reflected polynomial.
    pub fn new(poly: u32) -> CrcTable {
        let t0 = make_table(poly);
        let mut t = Box::new([[0u32; 256]; 8]);
        t[0] = t0;
        for k in 1..8 {
            for i in 0..256 {
                let prev = t[k - 1][i];
                t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            }
        }
        CrcTable { t, poly }
    }

    /// The polynomial this engine was built for.
    pub fn poly(&self) -> u32 {
        self.poly
    }

    /// Byte-at-a-time table CRC.
    pub fn crc_table(&self, data: &[u8]) -> u32 {
        let mut crc = 0xffff_ffffu32;
        for &b in data {
            crc = (crc >> 8) ^ self.t[0][((crc ^ b as u32) & 0xff) as usize];
        }
        !crc
    }

    /// Slicing-by-8 CRC: processes eight bytes per step.
    pub fn crc_slice8(&self, data: &[u8]) -> u32 {
        let mut crc = 0xffff_ffffu32;
        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = self.t[7][(lo & 0xff) as usize]
                ^ self.t[6][((lo >> 8) & 0xff) as usize]
                ^ self.t[5][((lo >> 16) & 0xff) as usize]
                ^ self.t[4][(lo >> 24) as usize]
                ^ self.t[3][(hi & 0xff) as usize]
                ^ self.t[2][((hi >> 8) & 0xff) as usize]
                ^ self.t[1][((hi >> 16) & 0xff) as usize]
                ^ self.t[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ self.t[0][((crc ^ b as u32) & 0xff) as usize];
        }
        !crc
    }
}

/// Convenience: CRC-32 (IEEE) of `data`, bitwise implementation.
pub fn crc32(data: &[u8]) -> u32 {
    crc_bitwise(POLY_CRC32, data)
}

/// Convenience: CRC-32C (Castagnoli) of `data`, bitwise implementation.
pub fn crc32c(data: &[u8]) -> u32 {
    crc_bitwise(POLY_CRC32C, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHECK: &[u8] = b"123456789";

    #[test]
    fn crc32_check_value() {
        // The canonical "check" value from the CRC catalogues.
        assert_eq!(crc32(CHECK), 0xcbf4_3926);
    }

    #[test]
    fn crc32c_check_value() {
        assert_eq!(crc32c(CHECK), 0xe306_9283);
    }

    #[test]
    fn three_implementations_agree() {
        let table = CrcTable::new(POLY_CRC32);
        let tablec = CrcTable::new(POLY_CRC32C);
        for n in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..n).map(|i| (i * 31 + 7) as u8).collect();
            let bw = crc_bitwise(POLY_CRC32, &data);
            assert_eq!(table.crc_table(&data), bw, "table mismatch at n={n}");
            assert_eq!(table.crc_slice8(&data), bw, "slice8 mismatch at n={n}");
            let bwc = crc_bitwise(POLY_CRC32C, &data);
            assert_eq!(tablec.crc_table(&data), bwc);
            assert_eq!(tablec.crc_slice8(&data), bwc);
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(&[]), 0);
        let table = CrcTable::new(POLY_CRC32);
        assert_eq!(table.crc_slice8(&[]), 0);
    }

    #[test]
    fn single_bit_sensitivity() {
        // A CRC must catch any single-bit flip — that's its job as a CEE
        // detector for copies.
        let data: Vec<u8> = (0..64).collect();
        let base = crc32(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base);
            }
        }
    }

    #[test]
    fn crc_matches_simcpu_instruction() {
        // The simulated `crc32b` instruction and the corpus library agree.
        let data = b"mercurial cores";
        let mut crc = 0xffff_ffffu32;
        for &b in data {
            crc = mercurial_simcpu::exec::crc32_step(crc, b);
        }
        assert_eq!(!crc, crc32(data));
    }
}
