//! Locking torture kernels ("locking" in the corpus list).
//!
//! §2's first concrete CEE example is "violations of lock semantics leading
//! to application data corruption and crashes". This module provides
//! from-scratch spin and ticket locks, a torture harness that checks the
//! lock actually provided mutual exclusion, and a *faulty* CAS shim that
//! reproduces the phantom-success defect natively so mitigation code can be
//! tested against it without the simulator.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A test-and-set spinlock.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub fn new() -> SpinLock {
        SpinLock {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning.
    pub fn lock(&self) {
        while self
            .locked
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // Yield rather than burn: on a single-CPU host a pure spin
            // wastes a whole scheduler quantum per contended acquisition.
            std::thread::yield_now();
        }
    }

    /// Releases the lock.
    ///
    /// Callers must hold the lock; this is not enforced (it is a corpus
    /// kernel, not a production mutex).
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

/// A fair ticket lock.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicU64,
    serving: AtomicU64,
}

impl TicketLock {
    /// Creates an unlocked lock.
    pub fn new() -> TicketLock {
        TicketLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
        }
    }

    /// Acquires the lock, spinning on the caller's ticket.
    pub fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        while self.serving.load(Ordering::Acquire) != ticket {
            std::thread::yield_now();
        }
    }

    /// Releases the lock.
    pub fn unlock(&self) {
        self.serving.fetch_add(1, Ordering::Release);
    }
}

/// Result of one torture run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TortureReport {
    /// Expected final counter value (threads × iterations).
    pub expected: u64,
    /// Observed final counter value.
    pub observed: u64,
    /// How many times two threads were caught inside the critical section
    /// simultaneously.
    pub exclusion_violations: u64,
}

impl TortureReport {
    /// Whether the lock behaved.
    pub fn passed(&self) -> bool {
        self.expected == self.observed && self.exclusion_violations == 0
    }
}

/// Runs a mutual-exclusion torture test over a caller-provided lock.
///
/// `lock_ops` receives `(acquire, release)` closures via a trait object so
/// both lock types (and faulty shims) share one harness. The critical
/// section does a deliberately racy read-modify-write; only true mutual
/// exclusion keeps the counter exact.
pub fn torture<L>(lock: Arc<L>, threads: usize, iters: u64) -> TortureReport
where
    L: LockLike + Send + Sync + 'static,
{
    let counter = Arc::new(RacyCounter::default());
    let inside = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for _ in 0..threads {
        let lock = Arc::clone(&lock);
        let counter = Arc::clone(&counter);
        let inside = Arc::clone(&inside);
        let violations = Arc::clone(&violations);
        handles.push(std::thread::spawn(move || {
            for _ in 0..iters {
                lock.acquire();
                if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                    violations.fetch_add(1, Ordering::Relaxed);
                }
                counter.racy_increment();
                inside.fetch_sub(1, Ordering::SeqCst);
                lock.release();
            }
        }));
    }
    for h in handles {
        h.join().expect("torture thread panicked");
    }
    TortureReport {
        expected: threads as u64 * iters,
        observed: counter.load(),
        exclusion_violations: violations.load(Ordering::Relaxed),
    }
}

/// The lock interface the torture harness drives.
pub trait LockLike {
    /// Acquires the lock.
    fn acquire(&self);
    /// Releases the lock.
    fn release(&self);
}

impl LockLike for SpinLock {
    fn acquire(&self) {
        self.lock();
    }
    fn release(&self) {
        self.unlock();
    }
}

impl LockLike for TicketLock {
    fn acquire(&self) {
        self.lock();
    }
    fn release(&self) {
        self.unlock();
    }
}

impl LockLike for parking_lot::Mutex<()> {
    fn acquire(&self) {
        std::mem::forget(self.lock());
    }
    fn release(&self) {
        // SAFETY-free counterpart: parking_lot supports unlocking from the
        // same thread that forgot the guard.
        // `force_unlock` requires the mutex to be locked, which `acquire`
        // guarantees in this harness.
        unsafe { self.force_unlock() }
    }
}

/// A counter whose increment is deliberately *not* atomic: load, spin a
/// little, store. Exposes lost updates the instant mutual exclusion fails.
#[derive(Debug, Default)]
pub struct RacyCounter {
    value: AtomicU64,
}

impl RacyCounter {
    fn racy_increment(&self) {
        let v = self.value.load(Ordering::Relaxed);
        // Yield inside the window so that a mutual-exclusion violation is
        // observable even on a single-CPU host: if another thread is
        // (wrongly) inside the critical section, it gets scheduled here and
        // one of the increments is lost. Under a correct lock no other
        // thread can be inside, so the yield is harmless.
        std::thread::yield_now();
        self.value.store(v + 1, Ordering::Relaxed);
    }

    fn load(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A spinlock built on a *defective* CAS: with period `lie_period`, an
/// acquisition attempt reports success without actually taking the lock —
/// the phantom-success lesion, natively.
#[derive(Debug)]
pub struct FaultySpinLock {
    locked: AtomicBool,
    attempts: AtomicU64,
    lie_period: u64,
}

impl FaultySpinLock {
    /// Creates a lock that lies on every `lie_period`-th acquisition.
    ///
    /// # Panics
    ///
    /// Panics if `lie_period == 0`.
    pub fn new(lie_period: u64) -> FaultySpinLock {
        assert!(lie_period > 0, "lie_period must be positive");
        FaultySpinLock {
            locked: AtomicBool::new(false),
            attempts: AtomicU64::new(0),
            lie_period,
        }
    }
}

impl LockLike for FaultySpinLock {
    fn acquire(&self) {
        loop {
            let n = self.attempts.fetch_add(1, Ordering::Relaxed);
            if n % self.lie_period == self.lie_period - 1 {
                // Phantom success: the caller proceeds, the lock is not
                // actually taken on its behalf.
                return;
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            std::thread::yield_now();
        }
    }

    fn release(&self) {
        self.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const THREADS: usize = 3;
    const ITERS: u64 = 3_000;

    #[test]
    fn spinlock_provides_exclusion() {
        let report = torture(Arc::new(SpinLock::new()), THREADS, ITERS);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn ticketlock_provides_exclusion() {
        let report = torture(Arc::new(TicketLock::new()), THREADS, ITERS);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn parking_lot_mutex_provides_exclusion() {
        let report = torture(Arc::new(parking_lot::Mutex::new(())), THREADS, ITERS);
        assert!(report.passed(), "{report:?}");
    }

    #[test]
    fn faulty_cas_loses_updates_or_violates_exclusion() {
        // The §2 lock-semantics CEE, natively: a lying CAS lets two threads
        // into the critical section and the racy counter drops increments.
        let report = torture(Arc::new(FaultySpinLock::new(50)), THREADS, ITERS);
        assert!(
            !report.passed(),
            "a lock that lies every 50th acquire must corrupt: {report:?}"
        );
    }

    #[test]
    fn single_thread_is_always_safe() {
        // Even the faulty lock is harmless without concurrency — CEEs need
        // the right workload to manifest (§2: "highly dependent on
        // workload").
        let report = torture(Arc::new(FaultySpinLock::new(3)), 1, 5_000);
        assert_eq!(report.observed, report.expected);
    }
}
