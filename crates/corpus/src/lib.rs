//! # mercurial-corpus
//!
//! The test-case corpus. §2 of *Cores that don't count*: "We have a modest
//! corpus of code serving as test cases, selected based on intuition we
//! developed from experience with production incidents … This corpus
//! includes real-code snippets, interesting libraries (e.g., compression,
//! hash, math, cryptography, copying, locking, fork, system calls), and
//! specially-written tests."
//!
//! This crate provides exactly those categories, twice over:
//!
//! * **Native libraries**, implemented from scratch in Rust and verified
//!   against published test vectors: [`aes`] (AES-128/192/256), [`crc`]
//!   (CRC-32/CRC-32C, three implementations), [`hash`] (FNV-1a,
//!   SipHash-2-4, a Murmur3-style finalizer), [`lz`] (an LZ77-class codec),
//!   [`huffman`] (canonical Huffman), [`matmul`] (blocked GEMM plus
//!   Freivalds' checker), [`sort`] (three sorts under one harness),
//!   [`memops`] (checksummed copies), [`float`] (compensated summation /
//!   FMA stress) and [`locks`] (native-thread lock torture). These are the
//!   "interesting libraries" whose self-checking variants live in
//!   `mercurial-mitigation`, and they are what the Criterion benches
//!   measure.
//! * **Simulated screening kernels** ([`simprogs`]): specially-written
//!   assembly programs for `mercurial-simcpu`, one or more per functional
//!   unit, each with golden outputs captured from a healthy core. These are
//!   what screeners execute against suspect cores.
#![warn(missing_docs)]

pub mod aes;
pub mod crc;
pub mod float;
pub mod hash;
pub mod huffman;
pub mod locks;
pub mod lz;
pub mod matmul;
pub mod memops;
pub mod simprogs;
pub mod sort;

pub use simprogs::{sim_corpus, ScreenOutcome, SimKernel};
