//! Hash functions: FNV-1a, SipHash-2-4, and a Murmur3-style finalizer.
//!
//! The paper's corpus lists "hash" among the interesting libraries; hashes
//! make good CEE test kernels because they compound every intermediate
//! miscomputation into the final digest (maximal error amplification) and
//! their correct outputs are cheap to precompute.

/// FNV-1a, 64-bit.
pub fn fnv1a64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The Murmur3 64-bit finalizer (fmix64) — a tiny, high-avalanche mixer.
pub fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

/// A Murmur3-style 64-bit hash over a byte stream (not the canonical
/// MurmurHash3 — a same-shaped construction used as a second, independent
/// digest for cross-checking).
pub fn murmur_like64(data: &[u8], seed: u64) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(0xc6a4_a793_5bd1_e995);
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let mut k = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
        k = fmix64(k);
        h ^= k;
        h = h.rotate_left(27).wrapping_mul(5).wrapping_add(0x52dc_e729);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    if !chunks.remainder().is_empty() {
        h ^= fmix64(tail);
    }
    fmix64(h)
}

/// SipHash-2-4 (Aumasson–Bernstein), the full reference construction.
#[derive(Debug, Clone, Copy)]
pub struct SipHash24 {
    k0: u64,
    k1: u64,
}

impl SipHash24 {
    /// Creates a keyed hasher.
    pub fn new(k0: u64, k1: u64) -> SipHash24 {
        SipHash24 { k0, k1 }
    }

    /// Hashes a message to a 64-bit tag.
    pub fn hash(&self, data: &[u8]) -> u64 {
        let mut v0 = 0x736f_6d65_7073_6575u64 ^ self.k0;
        let mut v1 = 0x646f_7261_6e64_6f6du64 ^ self.k1;
        let mut v2 = 0x6c79_6765_6e65_7261u64 ^ self.k0;
        let mut v3 = 0x7465_6462_7974_6573u64 ^ self.k1;

        fn sipround(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
            *v0 = v0.wrapping_add(*v1);
            *v1 = v1.rotate_left(13);
            *v1 ^= *v0;
            *v0 = v0.rotate_left(32);
            *v2 = v2.wrapping_add(*v3);
            *v3 = v3.rotate_left(16);
            *v3 ^= *v2;
            *v0 = v0.wrapping_add(*v3);
            *v3 = v3.rotate_left(21);
            *v3 ^= *v0;
            *v2 = v2.wrapping_add(*v1);
            *v1 = v1.rotate_left(17);
            *v1 ^= *v2;
            *v2 = v2.rotate_left(32);
        }

        let mut chunks = data.chunks_exact(8);
        for c in &mut chunks {
            let m = u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes"));
            v3 ^= m;
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
            v0 ^= m;
        }
        let rem = chunks.remainder();
        let mut last = (data.len() as u64 & 0xff) << 56;
        for (i, &b) in rem.iter().enumerate() {
            last |= (b as u64) << (8 * i);
        }
        v3 ^= last;
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        v0 ^= last;
        v2 ^= 0xff;
        for _ in 0..4 {
            sipround(&mut v0, &mut v1, &mut v2, &mut v3);
        }
        v0 ^ v1 ^ v2 ^ v3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_values() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn siphash_reference_vector() {
        // The reference vector from the SipHash paper: key 0x0706…00,
        // message 00 01 02 … 0e (15 bytes) → 0xa129ca6149be45e5.
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        let msg: Vec<u8> = (0..15).collect();
        assert_eq!(SipHash24::new(k0, k1).hash(&msg), 0xa129_ca61_49be_45e5);
    }

    #[test]
    fn siphash_empty_message_vector() {
        let k0 = u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]);
        let k1 = u64::from_le_bytes([8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(SipHash24::new(k0, k1).hash(b""), 0x726f_db47_dd0e_0e31);
    }

    #[test]
    fn fmix64_avalanche() {
        let x = 0x0123_4567_89ab_cdefu64;
        let flipped = (fmix64(x) ^ fmix64(x ^ (1 << 40))).count_ones();
        assert!((16..=48).contains(&flipped));
    }

    #[test]
    fn murmur_like_is_length_and_seed_sensitive() {
        assert_ne!(murmur_like64(b"abc", 0), murmur_like64(b"abcd", 0));
        assert_ne!(murmur_like64(b"abc", 0), murmur_like64(b"abc", 1));
        assert_eq!(murmur_like64(b"abc", 7), murmur_like64(b"abc", 7));
    }

    #[test]
    fn hashes_amplify_single_bit_errors() {
        // The corpus property that makes hashes good CEE detectors.
        let data: Vec<u8> = (0..123).collect();
        let f = fnv1a64(&data);
        let s = SipHash24::new(1, 2).hash(&data);
        for i in 0..data.len() {
            let mut d = data.clone();
            d[i] ^= 0x10;
            assert_ne!(fnv1a64(&d), f);
            assert_ne!(SipHash24::new(1, 2).hash(&d), s);
        }
    }
}
