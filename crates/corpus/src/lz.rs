//! An LZ77-class compressor/decompressor ("compression" in the paper's
//! corpus list).
//!
//! Compression is a classic CEE victim: one corrupted match offset or
//! length silently garbles everything downstream of it. The codec's
//! roundtrip property (`decompress(compress(x)) == x`) is the self-check
//! that `mercurial-mitigation` wraps.
//!
//! ## Format
//!
//! A token stream:
//!
//! * `0x00..=0x7f`: literal run — the control byte value plus one literal
//!   bytes follow;
//! * `0x80..=0xff`: match — length is `(control & 0x7f) + MIN_MATCH`,
//!   followed by a little-endian 16-bit backward offset (1-based).

use std::collections::HashMap;

/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 4;
/// Maximum encodable match length.
pub const MAX_MATCH: usize = MIN_MATCH + 0x7f;
/// Maximum backward offset.
pub const MAX_OFFSET: usize = u16::MAX as usize;
/// Maximum literal-run length.
pub const MAX_LITERALS: usize = 0x80;

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LzError {
    /// The stream ended in the middle of a token.
    Truncated,
    /// A match referenced data before the start of the output.
    BadOffset {
        /// The offending offset.
        offset: usize,
        /// Output length at the time.
        produced: usize,
    },
}

impl std::fmt::Display for LzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzError::Truncated => f.write_str("compressed stream truncated"),
            LzError::BadOffset { offset, produced } => {
                write!(
                    f,
                    "match offset {offset} exceeds produced output {produced}"
                )
            }
        }
    }
}

impl std::error::Error for LzError {}

fn key4(data: &[u8], i: usize) -> u32 {
    u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]])
}

/// Compresses `data`.
///
/// Greedy parsing with a last-occurrence table over 4-byte prefixes; not
/// the best ratio in the world, but deterministic, allocation-light, and
/// honest work for a screening kernel.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    let mut table: HashMap<u32, usize> = HashMap::new();
    let mut i = 0;
    let mut lit_start = 0;

    fn flush_literals(out: &mut Vec<u8>, data: &[u8], from: usize, to: usize) {
        let mut start = from;
        while start < to {
            let n = (to - start).min(MAX_LITERALS);
            out.push((n - 1) as u8);
            out.extend_from_slice(&data[start..start + n]);
            start += n;
        }
    }

    while i + MIN_MATCH <= data.len() {
        let k = key4(data, i);
        let candidate = table.insert(k, i);
        if let Some(j) = candidate {
            let offset = i - j;
            if offset <= MAX_OFFSET && data[j..j + MIN_MATCH] == data[i..i + MIN_MATCH] {
                let mut len = MIN_MATCH;
                while len < MAX_MATCH && i + len < data.len() && data[j + len] == data[i + len] {
                    len += 1;
                }
                flush_literals(&mut out, data, lit_start, i);
                out.push(0x80 | (len - MIN_MATCH) as u8);
                out.extend_from_slice(&(offset as u16).to_le_bytes());
                i += len;
                lit_start = i;
                continue;
            }
        }
        i += 1;
    }
    flush_literals(&mut out, data, lit_start, data.len());
    out
}

/// Decompresses a stream produced by [`compress`].
///
/// # Errors
///
/// Returns [`LzError`] for truncated streams and out-of-range match
/// offsets. (Anything else decodes to *some* output — which is exactly why
/// compressed data needs end-to-end checksums in a CEE world.)
pub fn decompress(stream: &[u8]) -> Result<Vec<u8>, LzError> {
    let mut out = Vec::with_capacity(stream.len() * 2);
    let mut i = 0;
    while i < stream.len() {
        let control = stream[i];
        i += 1;
        if control < 0x80 {
            let n = control as usize + 1;
            if i + n > stream.len() {
                return Err(LzError::Truncated);
            }
            out.extend_from_slice(&stream[i..i + n]);
            i += n;
        } else {
            let len = (control & 0x7f) as usize + MIN_MATCH;
            if i + 2 > stream.len() {
                return Err(LzError::Truncated);
            }
            let offset = u16::from_le_bytes([stream[i], stream[i + 1]]) as usize;
            i += 2;
            if offset == 0 || offset > out.len() {
                return Err(LzError::BadOffset {
                    offset,
                    produced: out.len(),
                });
            }
            // Byte-by-byte to support overlapping matches (RLE-style).
            let start = out.len() - offset;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        assert_eq!(decompress(&c).expect("decompresses"), data);
    }

    #[test]
    fn roundtrip_empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn roundtrip_repetitive() {
        let data = b"abcabcabcabcabcabcabcabcabcabc".to_vec();
        let c = compress(&data);
        assert!(c.len() < data.len(), "repetitive data must shrink");
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn roundtrip_long_runs() {
        roundtrip(&vec![0u8; 10_000]);
        let mut mixed = Vec::new();
        for i in 0..5_000u32 {
            mixed.push((i % 251) as u8);
        }
        mixed.extend(std::iter::repeat_n(7u8, 5_000));
        roundtrip(&mixed);
    }

    #[test]
    fn roundtrip_incompressible() {
        // Pseudorandom data: must still roundtrip, may expand slightly.
        let data: Vec<u8> = (0..4096u64)
            .map(|i| (mercurial_fault::rng::mix64(i) & 0xff) as u8)
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match_rle() {
        // "aaaa..." compresses to a literal + self-overlapping match.
        let data = vec![b'a'; 300];
        let c = compress(&data);
        assert!(c.len() < 30);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncated_stream_detected() {
        let c = compress(b"hello hello hello hello");
        for cut in 1..c.len() {
            // Any prefix either errors or decodes to something shorter —
            // never panics.
            let _ = decompress(&c[..cut]);
        }
        assert_eq!(decompress(&[0x05]), Err(LzError::Truncated));
    }

    #[test]
    fn bad_offset_detected() {
        // A match token before any output exists.
        let stream = [0x80, 0x01, 0x00];
        assert_eq!(
            decompress(&stream),
            Err(LzError::BadOffset {
                offset: 1,
                produced: 0
            })
        );
        // Zero offset is invalid.
        let stream = [0x00, b'x', 0x80, 0x00, 0x00];
        assert_eq!(
            decompress(&stream),
            Err(LzError::BadOffset {
                offset: 0,
                produced: 1
            })
        );
    }

    #[test]
    fn corrupted_stream_usually_changes_output() {
        // The blast-radius property: flip one bit in the compressed stream
        // and the decoded output (if it decodes) differs.
        let data = b"the quick brown fox jumps over the lazy dog \
                     the quick brown fox jumps over the lazy dog";
        let c = compress(data);
        let mut divergent = 0;
        for i in 0..c.len() {
            let mut bad = c.clone();
            bad[i] ^= 0x40;
            match decompress(&bad) {
                Ok(out) if out == data => {}
                _ => divergent += 1,
            }
        }
        assert!(divergent > c.len() / 2);
    }
}
