//! Software AES-128/192/256, implemented from FIPS-197.
//!
//! This is the corpus's "cryptography" library — deliberately independent
//! of the round primitives inside `mercurial-simcpu`, so the two
//! implementations cross-check each other. §7 of the paper singles out
//! encryption as a function "where one CEE could have a large blast
//! radius" (a corrupted key or block can render data permanently
//! inaccessible); the self-checking wrapper in `mercurial-mitigation`
//! builds on this module.
//!
//! The implementation favors clarity over speed: byte-oriented state, the
//! S-box computed from the field inverse and affine map rather than
//! transcribed, and no lookup-table trickery.

use std::sync::OnceLock;

/// AES key sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in bytes.
    pub fn key_len(self) -> usize {
        match self {
            KeySize::Aes128 => 16,
            KeySize::Aes192 => 24,
            KeySize::Aes256 => 32,
        }
    }

    /// Number of rounds.
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }

    fn nk(self) -> usize {
        self.key_len() / 4
    }
}

fn xtime(a: u8) -> u8 {
    (a << 1) ^ if a & 0x80 != 0 { 0x1b } else { 0 }
}

fn gmul(a: u8, b: u8) -> u8 {
    let mut acc = 0;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    acc
}

fn sboxes() -> &'static ([u8; 256], [u8; 256]) {
    static T: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    T.get_or_init(|| {
        // Build the S-box as affine(inverse(x)); the inverse by brute
        // force pairing (the field is tiny).
        let mut inv = [0u8; 256];
        for a in 1..=255u8 {
            for b in 1..=255u8 {
                if gmul(a, b) == 1 {
                    inv[a as usize] = b;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        for i in 0..256 {
            let x = inv[i];
            let mut y = 0u8;
            for bit in 0..8 {
                let v = ((x >> bit)
                    ^ (x >> ((bit + 4) % 8))
                    ^ (x >> ((bit + 5) % 8))
                    ^ (x >> ((bit + 6) % 8))
                    ^ (x >> ((bit + 7) % 8))
                    ^ (0x63 >> bit))
                    & 1;
                y |= v << bit;
            }
            sbox[i] = y;
        }
        let mut isbox = [0u8; 256];
        for (i, &s) in sbox.iter().enumerate() {
            isbox[s as usize] = i as u8;
        }
        (sbox, isbox)
    })
}

/// An expanded AES key ready for block operations.
///
/// # Examples
///
/// ```
/// use mercurial_corpus::aes::{Aes, KeySize};
///
/// let key = [0u8; 16];
/// let aes = Aes::new(KeySize::Aes128, &key).unwrap();
/// let block = *b"attack at dawn!!";
/// let ct = aes.encrypt_block(block);
/// assert_eq!(aes.decrypt_block(ct), block);
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u8; 16]>,
    size: KeySize,
}

/// Errors from AES construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AesError {
    /// Key length does not match the requested key size.
    BadKeyLength {
        /// Expected byte length.
        expected: usize,
        /// Provided byte length.
        got: usize,
    },
}

impl std::fmt::Display for AesError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AesError::BadKeyLength { expected, got } => {
                write!(f, "bad key length: expected {expected} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for AesError {}

impl Aes {
    /// Expands a key.
    ///
    /// # Errors
    ///
    /// Returns [`AesError::BadKeyLength`] if `key` is not exactly
    /// [`KeySize::key_len`] bytes.
    pub fn new(size: KeySize, key: &[u8]) -> Result<Aes, AesError> {
        if key.len() != size.key_len() {
            return Err(AesError::BadKeyLength {
                expected: size.key_len(),
                got: key.len(),
            });
        }
        let nk = size.nk();
        let nr = size.rounds();
        let sbox = &sboxes().0;
        let mut w = vec![[0u8; 4]; 4 * (nr + 1)];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        let mut rcon = 1u8;
        for i in nk..4 * (nr + 1) {
            let mut t = w[i - 1];
            if i % nk == 0 {
                t.rotate_left(1);
                for v in t.iter_mut() {
                    *v = sbox[*v as usize];
                }
                t[0] ^= rcon;
                rcon = xtime(rcon);
            } else if nk > 6 && i % nk == 4 {
                for v in t.iter_mut() {
                    *v = sbox[*v as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - nk][j] ^ t[j];
            }
        }
        let round_keys = (0..=nr)
            .map(|r| {
                let mut k = [0u8; 16];
                for c in 0..4 {
                    k[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
                }
                k
            })
            .collect();
        Ok(Aes { round_keys, size })
    }

    /// The key size this instance was built with.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    fn add_round_key(state: &mut [u8; 16], key: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(key) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        let sbox = &sboxes().0;
        for s in state.iter_mut() {
            *s = sbox[*s as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        let isbox = &sboxes().1;
        for s in state.iter_mut() {
            *s = isbox[*s as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        let src = *state;
        for r in 0..4 {
            for c in 0..4 {
                state[r + 4 * c] = src[r + 4 * ((c + r) % 4)];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let src = *state;
        for r in 0..4 {
            for c in 0..4 {
                state[r + 4 * ((c + r) % 4)] = src[r + 4 * c];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
            state[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[4 * c],
                state[4 * c + 1],
                state[4 * c + 2],
                state[4 * c + 3],
            ];
            state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
            state[4 * c + 1] =
                gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
            state[4 * c + 2] =
                gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
            state[4 * c + 3] =
                gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let nr = self.size.rounds();
        let mut state = block;
        Aes::add_round_key(&mut state, &self.round_keys[0]);
        for r in 1..nr {
            Aes::sub_bytes(&mut state);
            Aes::shift_rows(&mut state);
            Aes::mix_columns(&mut state);
            Aes::add_round_key(&mut state, &self.round_keys[r]);
        }
        Aes::sub_bytes(&mut state);
        Aes::shift_rows(&mut state);
        Aes::add_round_key(&mut state, &self.round_keys[nr]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let nr = self.size.rounds();
        let mut state = block;
        Aes::add_round_key(&mut state, &self.round_keys[nr]);
        Aes::inv_shift_rows(&mut state);
        Aes::inv_sub_bytes(&mut state);
        for r in (1..nr).rev() {
            Aes::add_round_key(&mut state, &self.round_keys[r]);
            Aes::inv_mix_columns(&mut state);
            Aes::inv_shift_rows(&mut state);
            Aes::inv_sub_bytes(&mut state);
        }
        Aes::add_round_key(&mut state, &self.round_keys[0]);
        state
    }

    /// Encrypts or decrypts a byte stream in CTR mode (symmetric).
    ///
    /// `nonce` fills the upper 8 bytes of the counter block; the lower 8
    /// are a big-endian block counter.
    pub fn ctr_xor(&self, nonce: u64, data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let mut ctr_block = [0u8; 16];
            ctr_block[..8].copy_from_slice(&nonce.to_be_bytes());
            ctr_block[8..].copy_from_slice(&(i as u64).to_be_bytes());
            let pad = self.encrypt_block(ctr_block);
            for (b, p) in chunk.iter_mut().zip(pad.iter()) {
                *b ^= p;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips197_c1_aes128() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let aes = Aes::new(KeySize::Aes128, &key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_c2_aes192() {
        let key: [u8; 24] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let aes = Aes::new(KeySize::Aes192, &key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(
            ct,
            [
                0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf, 0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
                0x71, 0x91
            ]
        );
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn fips197_c3_aes256() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i * 0x11) as u8);
        let aes = Aes::new(KeySize::Aes256, &key).unwrap();
        let ct = aes.encrypt_block(pt);
        assert_eq!(
            ct,
            [
                0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                0x60, 0x89
            ]
        );
        assert_eq!(aes.decrypt_block(ct), pt);
    }

    #[test]
    fn bad_key_length_rejected() {
        assert_eq!(
            Aes::new(KeySize::Aes128, &[0u8; 17]).unwrap_err(),
            AesError::BadKeyLength {
                expected: 16,
                got: 17
            }
        );
    }

    #[test]
    fn ctr_mode_roundtrips_odd_lengths() {
        let aes = Aes::new(KeySize::Aes128, &[7u8; 16]).unwrap();
        let mut data: Vec<u8> = (0..100u8).collect();
        let orig = data.clone();
        aes.ctr_xor(0xdead_beef, &mut data);
        assert_ne!(data, orig);
        aes.ctr_xor(0xdead_beef, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn ctr_nonce_separates_streams() {
        let aes = Aes::new(KeySize::Aes128, &[7u8; 16]).unwrap();
        let mut a = vec![0u8; 32];
        let mut b = vec![0u8; 32];
        aes.ctr_xor(1, &mut a);
        aes.ctr_xor(2, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn agrees_with_simcpu_reference() {
        // Two independent implementations must agree on random blocks —
        // this is itself an example of CEE-style cross-checking.
        use mercurial_fault::CounterRng;
        use rand::RngCore;
        let mut rng = CounterRng::new(1234);
        for _ in 0..20 {
            let mut key = [0u8; 16];
            let mut block = [0u8; 16];
            rng.fill_bytes(&mut key);
            rng.fill_bytes(&mut block);
            let ours = Aes::new(KeySize::Aes128, &key)
                .unwrap()
                .encrypt_block(block);
            let theirs = mercurial_simcpu::crypto::aes128_encrypt_block(key, block);
            assert_eq!(ours, theirs);
        }
    }
}
