//! Canonical Huffman coding (the entropy half of "compression" in the
//! paper's corpus list).
//!
//! Encoded format: `[256-entry code-length table][original length:u64 LE]
//! [bitstream]`. Code lengths are canonical, so the table alone rebuilds
//! the codebook; a single corrupted length byte desynchronizes the whole
//! stream — a fine CEE amplifier.

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HuffError {
    /// Stream shorter than its header.
    Truncated,
    /// The code-length table does not describe a valid prefix code.
    BadTable,
    /// The bitstream ended before the declared symbol count was produced.
    BadStream,
}

impl std::fmt::Display for HuffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HuffError::Truncated => "huffman stream truncated",
            HuffError::BadTable => "invalid huffman code-length table",
            HuffError::BadStream => "huffman bitstream exhausted early",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HuffError {}

const MAX_BITS: usize = 15;

/// Computes code lengths via a simple package-merge-free heap Huffman,
/// then limits depth by clamping (adequate for 256 symbols).
fn code_lengths(freqs: &[u64; 256]) -> [u8; 256] {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize, // tie-breaker for determinism
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u8),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Node) -> std::cmp::Ordering {
            // Reverse for a min-heap via BinaryHeap.
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Node) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    let mut next_id = 256usize;
    for (sym, &w) in freqs.iter().enumerate() {
        if w > 0 {
            heap.push(Node {
                weight: w,
                id: sym,
                kind: NodeKind::Leaf(sym as u8),
            });
        }
    }
    let mut lengths = [0u8; 256];
    match heap.len() {
        0 => return lengths,
        1 => {
            if let Some(Node {
                kind: NodeKind::Leaf(s),
                ..
            }) = heap.pop()
            {
                lengths[s as usize] = 1;
            }
            return lengths;
        }
        _ => {}
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
        next_id += 1;
    }
    let root = heap.pop().expect("exactly one node remains");
    fn walk(node: &Node, depth: u8, lengths: &mut [u8; 256]) {
        match &node.kind {
            NodeKind::Leaf(s) => lengths[*s as usize] = depth.clamp(1, MAX_BITS as u8),
            NodeKind::Internal(a, b) => {
                walk(a, depth + 1, lengths);
                walk(b, depth + 1, lengths);
            }
        }
    }
    walk(&root, 0, &mut lengths);
    // Depth clamping can break the Kraft inequality for pathological
    // inputs; repair by lengthening the shallowest codes until it holds.
    loop {
        let kraft: u64 = lengths
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u64 << (MAX_BITS - l as usize))
            .sum();
        if kraft <= 1 << MAX_BITS {
            break;
        }
        // Find the deepest code shallower than MAX_BITS and push it down.
        let idx = (0..256)
            .filter(|&i| lengths[i] > 0 && (lengths[i] as usize) < MAX_BITS)
            .max_by_key(|&i| lengths[i])
            .expect("kraft violation implies a lengthenable code");
        lengths[idx] += 1;
    }
    lengths
}

/// Builds canonical codes from lengths: `(code, length)` per symbol.
fn canonical_codes(lengths: &[u8; 256]) -> Result<[(u16, u8); 256], HuffError> {
    let mut bl_count = [0u16; MAX_BITS + 1];
    for &l in lengths.iter() {
        if l as usize > MAX_BITS {
            return Err(HuffError::BadTable);
        }
        bl_count[l as usize] += 1;
    }
    bl_count[0] = 0;
    let mut next_code = [0u16; MAX_BITS + 2];
    let mut code = 0u32;
    for bits in 1..=MAX_BITS {
        code = (code + bl_count[bits - 1] as u32) << 1;
        if code > (1 << bits) {
            return Err(HuffError::BadTable);
        }
        next_code[bits] = code as u16;
    }
    let mut codes = [(0u16, 0u8); 256];
    for sym in 0..256 {
        let len = lengths[sym];
        if len > 0 {
            codes[sym] = (next_code[len as usize], len);
            next_code[len as usize] += 1;
        }
    }
    Ok(codes)
}

/// Compresses `data`.
pub fn encode(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; 256];
    for &b in data {
        freqs[b as usize] += 1;
    }
    let lengths = code_lengths(&freqs);
    let codes = canonical_codes(&lengths).expect("lengths from code_lengths are valid");
    let mut out = Vec::with_capacity(256 + 8 + data.len() / 2);
    out.extend_from_slice(&lengths);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    let mut acc = 0u64;
    let mut nbits = 0u32;
    for &b in data {
        let (code, len) = codes[b as usize];
        // Emit the code MSB-first: the decoder rebuilds it one bit at a
        // time with `code = (code << 1) | bit`.
        for j in (0..len).rev() {
            let bit = (code >> j) & 1;
            acc |= (bit as u64) << nbits;
            nbits += 1;
            if nbits == 8 {
                out.push((acc & 0xff) as u8);
                acc >>= 8;
                nbits = 0;
            }
        }
    }
    if nbits > 0 {
        out.push((acc & 0xff) as u8);
    }
    out
}

/// Decompresses a stream produced by [`encode`].
///
/// # Errors
///
/// Returns [`HuffError`] on truncation, invalid tables, or early
/// bitstream exhaustion.
pub fn decode(stream: &[u8]) -> Result<Vec<u8>, HuffError> {
    if stream.len() < 264 {
        return Err(HuffError::Truncated);
    }
    let mut lengths = [0u8; 256];
    lengths.copy_from_slice(&stream[..256]);
    let n = u64::from_le_bytes(stream[256..264].try_into().expect("8 bytes")) as usize;
    let codes = canonical_codes(&lengths)?;
    // Build a decode map from (len, code) to symbol.
    let mut map = std::collections::HashMap::new();
    for (sym, &(code, len)) in codes.iter().enumerate() {
        if len > 0 {
            map.insert((len, code), sym as u8);
        }
    }
    if n > 0 && map.is_empty() {
        return Err(HuffError::BadTable);
    }
    let mut out = Vec::with_capacity(n);
    let bits = &stream[264..];
    let mut bitpos = 0usize;
    let total_bits = bits.len() * 8;
    while out.len() < n {
        let mut code = 0u16;
        let mut len = 0u8;
        loop {
            if bitpos >= total_bits {
                return Err(HuffError::BadStream);
            }
            let bit = (bits[bitpos / 8] >> (bitpos % 8)) & 1;
            bitpos += 1;
            code = (code << 1) | bit as u16;
            len += 1;
            if len as usize > MAX_BITS {
                return Err(HuffError::BadStream);
            }
            if let Some(&sym) = map.get(&(len, code)) {
                out.push(sym);
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let e = encode(data);
        assert_eq!(decode(&e).expect("decodes"), data);
    }

    #[test]
    fn roundtrip_empty_single_uniform() {
        roundtrip(b"");
        roundtrip(b"z");
        roundtrip(&vec![7u8; 1000]);
    }

    #[test]
    fn roundtrip_text_and_binary() {
        roundtrip(b"it was the best of times, it was the worst of times");
        let bin: Vec<u8> = (0u16..2048).map(|i| (i % 256) as u8).collect();
        roundtrip(&bin);
    }

    #[test]
    fn skewed_data_compresses() {
        let mut data = vec![b'a'; 10_000];
        data.extend_from_slice(b"bcd");
        let e = encode(&data);
        assert!(e.len() < data.len() / 2, "encoded {} bytes", e.len());
        roundtrip(&data);
    }

    #[test]
    fn truncated_header_detected() {
        assert_eq!(decode(&[0u8; 100]), Err(HuffError::Truncated));
    }

    #[test]
    fn exhausted_bitstream_detected() {
        let e = encode(b"hello world hello world");
        // Chop off the payload bits but keep the header.
        let cut = &e[..265.min(e.len())];
        assert!(matches!(
            decode(cut),
            Err(HuffError::BadStream) | Err(HuffError::Truncated)
        ));
    }

    #[test]
    fn corrupt_length_table_detected_or_diverges() {
        let data = b"mississippi mississippi mississippi";
        let e = encode(data);
        let mut corrupted_detected = 0;
        let mut diverged = 0;
        for i in 0..256 {
            let mut bad = e.clone();
            bad[i] = bad[i].wrapping_add(3);
            match decode(&bad) {
                Err(_) => corrupted_detected += 1,
                Ok(out) if out != data => diverged += 1,
                Ok(_) => {}
            }
        }
        assert!(corrupted_detected + diverged > 200);
    }

    #[test]
    fn pseudorandom_roundtrip() {
        let data: Vec<u8> = (0..10_000u64)
            .map(|i| (mercurial_fault::rng::mix64(i) >> 16) as u8)
            .collect();
        roundtrip(&data);
    }
}
