//! Dense f64 matrix multiplication ("math" in the corpus list) plus
//! Freivalds' probabilistic checker.
//!
//! GEMM is the workhorse of the SDC-resilience literature the paper cites
//! (Wu et al. [27]); the ABFT-checksummed factorizations in
//! `mercurial-mitigation` build on this module, and Freivalds' checker is
//! the canonical Blum–Kannan-style "program checker" (§7, ref [2]): it
//! verifies an n×n product in O(n²) instead of recomputing in O(n³).

use mercurial_fault::CounterRng;

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// A deterministic pseudorandom matrix with entries in `[-1, 1)`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut rng = CounterRng::new(seed);
        let data = (0..rows * cols)
            .map(|_| rng.next_uniform() * 2.0 - 1.0)
            .collect();
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data (used by fault-injection tests to corrupt entries).
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Maximum absolute difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Naive triple-loop GEMM: `C = A * B`.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn matmul_naive(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    let mut c = Matrix::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for k in 0..a.cols {
            let aik = a[(i, k)];
            for j in 0..b.cols {
                c[(i, j)] += aik * b[(k, j)];
            }
        }
    }
    c
}

/// Cache-blocked GEMM: `C = A * B` with `block`-sized tiles.
///
/// # Panics
///
/// Panics if inner dimensions disagree or `block == 0`.
pub fn matmul_blocked(a: &Matrix, b: &Matrix, block: usize) -> Matrix {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert!(block > 0, "block size must be positive");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut c = Matrix::zeros(m, n);
    for ii in (0..m).step_by(block) {
        for kk in (0..k).step_by(block) {
            for jj in (0..n).step_by(block) {
                for i in ii..(ii + block).min(m) {
                    for kx in kk..(kk + block).min(k) {
                        let aik = a[(i, kx)];
                        for j in jj..(jj + block).min(n) {
                            c[(i, j)] += aik * b[(kx, j)];
                        }
                    }
                }
            }
        }
    }
    c
}

/// Freivalds' check: is `C == A * B`, probably?
///
/// Each round draws a random ±1 vector `r` and tests
/// `A*(B*r) == C*r` in O(n²); a wrong product escapes one round with
/// probability at most 1/2, so `rounds` rounds give error ≤ 2⁻ʳᵒᵘⁿᵈˢ.
pub fn freivalds_check(a: &Matrix, b: &Matrix, c: &Matrix, rounds: u32, seed: u64) -> bool {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    assert_eq!((a.rows, b.cols), (c.rows, c.cols), "output shape mismatch");
    let mut rng = CounterRng::new(seed);
    let n = b.cols;
    // Tolerance scales with problem size to absorb FP reassociation noise.
    let tol = 1e-9 * (a.cols as f64).max(1.0);
    for _ in 0..rounds {
        let r: Vec<f64> = (0..n)
            .map(|_| if rng.next_bool(0.5) { 1.0 } else { -1.0 })
            .collect();
        // br = B * r
        let mut br = vec![0.0; b.rows];
        for i in 0..b.rows {
            let mut acc = 0.0;
            for j in 0..n {
                acc += b[(i, j)] * r[j];
            }
            br[i] = acc;
        }
        // abr = A * br; cr = C * r — compare.
        for i in 0..a.rows {
            let mut abr = 0.0;
            for j in 0..a.cols {
                abr += a[(i, j)] * br[j];
            }
            let mut cr = 0.0;
            for j in 0..n {
                cr += c[(i, j)] * r[j];
            }
            if (abr - cr).abs() > tol * (1.0 + abr.abs().max(cr.abs())) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::random(8, 8, 1);
        let c = matmul_naive(&a, &Matrix::identity(8));
        assert!(a.max_abs_diff(&c) < 1e-15);
    }

    #[test]
    fn known_small_product() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul_naive(&a, &b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn blocked_agrees_with_naive() {
        let a = Matrix::random(17, 23, 2);
        let b = Matrix::random(23, 11, 3);
        let naive = matmul_naive(&a, &b);
        for block in [1, 4, 8, 64] {
            let blocked = matmul_blocked(&a, &b, block);
            assert!(
                naive.max_abs_diff(&blocked) < 1e-12,
                "block={block} diverged"
            );
        }
    }

    #[test]
    fn freivalds_accepts_correct_products() {
        let a = Matrix::random(20, 30, 4);
        let b = Matrix::random(30, 25, 5);
        let c = matmul_naive(&a, &b);
        assert!(freivalds_check(&a, &b, &c, 10, 99));
    }

    #[test]
    fn freivalds_rejects_corrupted_products() {
        let a = Matrix::random(20, 20, 6);
        let b = Matrix::random(20, 20, 7);
        let mut c = matmul_naive(&a, &b);
        c[(7, 13)] += 0.5; // a single silent corruption
        assert!(!freivalds_check(&a, &b, &c, 10, 99));
    }

    #[test]
    fn freivalds_catches_tiny_relative_errors_in_many_rounds() {
        let a = Matrix::random(16, 16, 8);
        let b = Matrix::random(16, 16, 9);
        let mut c = matmul_naive(&a, &b);
        c[(0, 0)] *= 1.0 + 1e-3;
        assert!(!freivalds_check(&a, &b, &c, 20, 1));
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = matmul_naive(&a, &b);
    }
}
