//! [`SelfProfile`]: the frozen output of a [`crate::Prof`] run, and its
//! render surfaces — the aligned phase table, flamegraph.pl-compatible
//! folded stacks, and the flat per-phase walk the serve status page and
//! `BenchMeta` envelope consume.

use serde::{Deserialize, Serialize};

/// One phase in a frozen profile. Index 0 is the virtual root whose
/// `wall_ns` is zero (the run total lives in
/// [`SelfProfile::total_wall_ns`]).
#[derive(Debug, Clone, Default)]
pub struct PhaseNode {
    pub name: String,
    pub parent: usize,
    pub children: Vec<usize>,
    pub wall_ns: u64,
    pub calls: u64,
}

/// A wire- and file-friendly phase line: full `;`-joined stack path,
/// total wall and call count for that path. This is what serve workers
/// ship in `Bye` and what `BenchMeta` embeds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileEntry {
    pub stack: String,
    pub wall_ns: u64,
    pub calls: u64,
}

/// A point-in-time (or final) phase tree with run-wide samples.
#[derive(Debug, Clone, Default)]
pub struct SelfProfile {
    /// Tree in discovery order; empty when the profiler was disabled.
    pub phases: Vec<PhaseNode>,
    /// Wall clock from profiler creation to this snapshot.
    pub total_wall_ns: u64,
    /// `VmHWM` sample at snapshot time, where the platform exposes it.
    pub peak_rss_bytes: Option<u64>,
}

impl SelfProfile {
    /// True when nothing was recorded (disabled profiler, or no spans).
    pub fn is_empty(&self) -> bool {
        self.phases.len() <= 1
    }

    fn resolve(&self, path: &str) -> Option<usize> {
        let mut ix = 0usize;
        for frame in path.split(';').filter(|s| !s.is_empty()) {
            ix = *self
                .phases
                .get(ix)?
                .children
                .iter()
                .find(|&&c| self.phases[c].name == frame)?;
        }
        if ix == 0 {
            None
        } else {
            Some(ix)
        }
    }

    /// Total wall of the phase at a `;`-joined path, 0 if absent.
    pub fn wall_ns(&self, path: &str) -> u64 {
        self.resolve(path).map_or(0, |ix| self.phases[ix].wall_ns)
    }

    /// Call count of the phase at a `;`-joined path, 0 if absent.
    pub fn calls(&self, path: &str) -> u64 {
        self.resolve(path).map_or(0, |ix| self.phases[ix].calls)
    }

    /// Wall time attributed to a phase itself, i.e. total minus
    /// children (clamped at zero: child walls can exceed the parent's
    /// when shards measured concurrent workers).
    fn self_ns(&self, ix: usize) -> u64 {
        let children: u64 = self.phases[ix]
            .children
            .iter()
            .map(|&c| self.phases[c].wall_ns)
            .sum();
        self.phases[ix].wall_ns.saturating_sub(children)
    }

    /// Depth-first walk in discovery order, yielding
    /// `(depth, node index)` for every phase below the root.
    fn walk(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::with_capacity(self.phases.len().saturating_sub(1));
        let mut stack: Vec<(usize, usize)> = self
            .phases
            .first()
            .map(|root| root.children.iter().rev().map(|&c| (1, c)).collect())
            .unwrap_or_default();
        while let Some((depth, ix)) = stack.pop() {
            out.push((depth, ix));
            for &c in self.phases[ix].children.iter().rev() {
                stack.push((depth + 1, c));
            }
        }
        out
    }

    /// Flat per-phase lines (full stack path, total wall, calls) in
    /// depth-first discovery order — the exchange format for the wire,
    /// the status page, and the bench envelope.
    pub fn entries(&self) -> Vec<ProfileEntry> {
        let mut path: Vec<&str> = Vec::new();
        self.walk()
            .into_iter()
            .map(|(depth, ix)| {
                path.truncate(depth - 1);
                path.push(&self.phases[ix].name);
                ProfileEntry {
                    stack: path.join(";"),
                    wall_ns: self.phases[ix].wall_ns,
                    calls: self.phases[ix].calls,
                }
            })
            .collect()
    }

    /// Folded-stack lines with a caller-chosen value function over each
    /// phase's *self* nanoseconds; lines whose value maps to 0 are
    /// dropped (flamegraph.pl treats absent and zero alike).
    pub fn folded_stacks_with(&self, value: impl Fn(u64) -> u64) -> Vec<String> {
        let mut path: Vec<&str> = Vec::new();
        let mut out = Vec::new();
        for (depth, ix) in self.walk() {
            path.truncate(depth - 1);
            path.push(&self.phases[ix].name);
            let v = value(self.self_ns(ix));
            if v > 0 {
                out.push(format!("{} {}", path.join(";"), v));
            }
        }
        out
    }

    /// `flamegraph.pl`-compatible folded stacks, one line per phase with
    /// its self time in microseconds.
    pub fn folded_stacks(&self) -> Vec<String> {
        self.folded_stacks_with(|ns| ns / 1_000)
    }

    /// Human-readable phase table: tree-indented names with calls, wall
    /// ms, and share of the parent's wall, preceded by the run totals.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "total wall {:.1} ms",
            self.total_wall_ns as f64 / 1e6
        ));
        if let Some(rss) = self.peak_rss_bytes {
            out.push_str(&format!(
                "   peak rss {:.1} MiB",
                rss as f64 / (1 << 20) as f64
            ));
        }
        out.push('\n');
        if self.is_empty() {
            out.push_str("(no phases recorded — profiler disabled?)\n");
            return out;
        }
        let rows: Vec<(String, String, String, String)> = self
            .walk()
            .into_iter()
            .map(|(depth, ix)| {
                let n = &self.phases[ix];
                let parent_wall = if n.parent == 0 {
                    self.total_wall_ns
                } else {
                    self.phases[n.parent].wall_ns
                };
                let pct = if parent_wall == 0 {
                    100.0
                } else {
                    100.0 * n.wall_ns as f64 / parent_wall as f64
                };
                (
                    format!("{}{}", "  ".repeat(depth - 1), n.name),
                    n.calls.to_string(),
                    format!("{:.2}", n.wall_ns as f64 / 1e6),
                    format!("{pct:.1}"),
                )
            })
            .collect();
        let name_w = rows
            .iter()
            .map(|r| r.0.len())
            .chain(["phase".len()])
            .max()
            .unwrap_or(5);
        out.push_str(&format!(
            "{:<name_w$}  {:>9}  {:>12}  {:>8}\n",
            "phase", "calls", "wall ms", "% parent"
        ));
        for (name, calls, ms, pct) in rows {
            out.push_str(&format!(
                "{name:<name_w$}  {calls:>9}  {ms:>12}  {pct:>8}\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::Prof;

    fn sample() -> crate::SelfProfile {
        let p = Prof::enabled();
        {
            let _e = p.span("epoch");
            {
                let _s = p.span("sim");
                std::hint::black_box((0..2_000).sum::<u64>());
            }
            let _w = p.span("watch");
        }
        {
            let _e = p.span("epoch");
            let _s = p.span("sim");
        }
        p.finish()
    }

    #[test]
    fn entries_are_depth_first_with_full_paths() {
        let prof = sample();
        let stacks: Vec<String> = prof.entries().into_iter().map(|e| e.stack).collect();
        assert_eq!(stacks, ["epoch", "epoch;sim", "epoch;watch"]);
        assert_eq!(prof.entries()[0].calls, 2);
    }

    #[test]
    fn self_time_folds_to_children_free_remainder() {
        let prof = sample();
        let folded = prof.folded_stacks_with(|ns| ns);
        let sim = folded
            .iter()
            .find(|l| l.starts_with("epoch;sim "))
            .expect("sim line");
        let v: u64 = sim.rsplit(' ').next().unwrap().parse().unwrap();
        assert_eq!(v, prof.wall_ns("epoch;sim"), "leaf self == leaf total");
        for line in &folded {
            let (stack, value) = line.rsplit_once(' ').expect("stack<space>value");
            assert!(
                !stack.contains(' '),
                "folded stacks must not contain spaces"
            );
            assert!(value.parse::<u64>().is_ok());
        }
    }

    #[test]
    fn table_lists_every_phase_once() {
        let prof = sample();
        let table = prof.render_table();
        assert!(table.starts_with("total wall"));
        assert_eq!(table.matches("epoch").count(), 1);
        assert_eq!(table.matches("sim").count(), 1);
        assert!(table.contains("% parent"));
    }

    #[test]
    fn empty_profile_renders_and_resolves_benignly() {
        let prof = Prof::disabled().finish();
        assert!(prof.is_empty());
        assert_eq!(prof.wall_ns("anything"), 0);
        assert!(prof.folded_stacks().is_empty());
        assert!(prof.render_table().contains("no phases"));
    }
}
