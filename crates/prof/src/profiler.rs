//! The [`Prof`] handle: a hierarchical wall-clock phase profiler.
//!
//! Design mirrors `mercurial-trace`'s recorder discipline, transposed to
//! the wall-clock domain:
//!
//! * **Option-gated** — a disabled handle is a `None` and every method is
//!   one branch with no allocation and no `Instant::now()` call;
//! * **sharded** — parallel producers record into [`Prof::shard`] handles
//!   the owner merges back with [`Prof::absorb`] in worker-index order,
//!   so the *shape* of the phase tree is deterministic for any worker
//!   count (the wall-clock values are not, and never feed anything
//!   sim-visible);
//! * **write-only** — readings flow out (tables, flamegraphs, status
//!   gauges, bench envelopes) and never back into simulation state, which
//!   is what keeps prof-on runs bit-for-bit identical to prof-off.
//!
//! Timers are scoped RAII guards: [`Prof::span`] opens a phase and the
//! returned [`PhaseGuard`] closes it on drop, so early returns and `?`
//! cannot leave a phase dangling.

use std::cell::RefCell;
use std::time::Instant;

use crate::report::{PhaseNode, ProfileEntry, SelfProfile};

/// One phase in the live tree. `children` preserves first-seen order,
/// which is what makes the merged tree shape deterministic when shards
/// are absorbed in a fixed order.
#[derive(Debug, Clone)]
struct Node {
    name: &'static str,
    parent: usize,
    children: Vec<usize>,
    wall_ns: u64,
    calls: u64,
}

#[derive(Debug)]
struct Inner {
    /// `nodes[0]` is the virtual root; phases hang off it.
    nodes: Vec<Node>,
    /// Open frames: `(node index, entry instant)`. The root is never on
    /// the stack — its wall is the profiler's lifetime.
    stack: Vec<(usize, Instant)>,
    started: Instant,
}

impl Inner {
    fn new() -> Inner {
        Inner {
            nodes: vec![Node {
                name: "",
                parent: 0,
                children: Vec::new(),
                wall_ns: 0,
                calls: 0,
            }],
            stack: Vec::new(),
            started: Instant::now(),
        }
    }

    fn current(&self) -> usize {
        self.stack.last().map_or(0, |&(ix, _)| ix)
    }

    /// Child of `parent` named `name`, created at the end of the child
    /// list if absent.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&ix) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return ix;
        }
        let ix = self.nodes.len();
        self.nodes.push(Node {
            name,
            parent,
            children: Vec::new(),
            wall_ns: 0,
            calls: 0,
        });
        self.nodes[parent].children.push(ix);
        ix
    }

    fn enter(&mut self, name: &'static str) {
        let ix = self.child(self.current(), name);
        self.nodes[ix].calls += 1;
        self.stack.push((ix, Instant::now()));
    }

    fn exit(&mut self) {
        if let Some((ix, t0)) = self.stack.pop() {
            self.nodes[ix].wall_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Merge `other`'s tree under this tree's node `at`, child subtrees
    /// in `other`'s child order (find-or-create keeps shapes aligned).
    fn merge_subtree(&mut self, at: usize, other: &Inner, other_ix: usize) {
        for &c in other.nodes[other_ix].children.clone().iter() {
            let mine = self.child(at, other.nodes[c].name);
            self.nodes[mine].wall_ns += other.nodes[c].wall_ns;
            self.nodes[mine].calls += other.nodes[c].calls;
            self.merge_subtree(mine, other, c);
        }
    }

    fn snapshot(&self) -> SelfProfile {
        SelfProfile {
            phases: self
                .nodes
                .iter()
                .map(|n| PhaseNode {
                    name: n.name.to_string(),
                    parent: n.parent,
                    children: n.children.clone(),
                    wall_ns: n.wall_ns,
                    calls: n.calls,
                })
                .collect(),
            total_wall_ns: self.started.elapsed().as_nanos() as u64,
            peak_rss_bytes: peak_rss_bytes(),
        }
    }
}

/// The profiler handle instrumented code records through. Cheap to pass
/// by shared reference (interior mutability); `None` when disabled.
#[derive(Debug, Default)]
pub struct Prof {
    inner: Option<Box<RefCell<Inner>>>,
}

impl Prof {
    /// A profiler that measures nothing at the cost of one branch per
    /// call site.
    pub fn disabled() -> Prof {
        Prof { inner: None }
    }

    /// A live profiler; the wall clock for the total row starts now.
    pub fn enabled() -> Prof {
        Prof {
            inner: Some(Box::new(RefCell::new(Inner::new()))),
        }
    }

    /// Enabled iff the `MERCURIAL_PROF` environment variable is set to a
    /// non-empty, non-`0` value — the knob headless pieces (serve worker
    /// processes) inherit, since wall-clock profiling is operator domain,
    /// not scenario domain.
    pub fn from_env() -> Prof {
        match std::env::var("MERCURIAL_PROF") {
            Ok(v) if !v.is_empty() && v != "0" => Prof::enabled(),
            _ => Prof::disabled(),
        }
    }

    /// Build with an explicit switch (handy where the flag was already
    /// resolved, e.g. from a CLI argument).
    pub fn with_enabled(on: bool) -> Prof {
        if on {
            Prof::enabled()
        } else {
            Prof::disabled()
        }
    }

    /// Whether this handle keeps anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Open the phase `name` under the current phase; the returned guard
    /// closes it on drop. Disabled handles hand back an inert guard
    /// without touching the clock.
    #[must_use = "dropping the guard immediately records a zero-length phase"]
    pub fn span(&self, name: &'static str) -> PhaseGuard<'_> {
        if let Some(cell) = &self.inner {
            cell.borrow_mut().enter(name);
        }
        PhaseGuard {
            prof: self.inner.as_deref(),
        }
    }

    /// Run `f` inside the phase `name` — the closure-shaped twin of
    /// [`Prof::span`] for call sites where a guard binding would be
    /// awkward.
    pub fn scope<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let _guard = self.span(name);
        f()
    }

    /// An empty profiler with the same enabled-ness, for a parallel
    /// worker to fill. Shards of a disabled profiler are disabled, so
    /// parallel code paths pay nothing when profiling is off.
    pub fn shard(&self) -> Prof {
        Prof::with_enabled(self.is_enabled())
    }

    /// Merge a worker shard's phases under the current phase. Subtrees
    /// land find-or-create in the shard's child order, so absorbing
    /// shards in deterministic (worker-index) order yields a
    /// deterministic tree *shape* — the wall-clock values remain
    /// measurements and differ run to run.
    pub fn absorb(&self, shard: &Prof) {
        let (Some(cell), Some(other)) = (&self.inner, &shard.inner) else {
            return;
        };
        let other = other.borrow();
        let mut inner = cell.borrow_mut();
        let at = inner.current();
        inner.merge_subtree(at, &other, 0);
    }

    /// Merge wire-shipped profile entries (e.g. a serve worker's `Bye`
    /// payload) under the current phase. Stack paths split on `;`; names
    /// are interned once per distinct phase (the vocabulary is a small
    /// fixed set).
    pub fn absorb_entries(&self, entries: &[ProfileEntry]) {
        let Some(cell) = &self.inner else {
            return;
        };
        let mut inner = cell.borrow_mut();
        let at = inner.current();
        for e in entries {
            let mut ix = at;
            for frame in e.stack.split(';').filter(|s| !s.is_empty()) {
                ix = inner.child(ix, intern(frame));
            }
            if ix != at {
                inner.nodes[ix].wall_ns += e.wall_ns;
                inner.nodes[ix].calls += e.calls;
            }
        }
    }

    /// A point-in-time copy of the finished phases (open spans excluded
    /// from their phases' walls until they close). Empty when disabled.
    pub fn snapshot(&self) -> SelfProfile {
        match &self.inner {
            Some(cell) => cell.borrow().snapshot(),
            None => SelfProfile::default(),
        }
    }

    /// Consume the profiler and return the final profile.
    pub fn finish(self) -> SelfProfile {
        self.snapshot()
    }
}

/// RAII guard returned by [`Prof::span`]; closes the phase on drop.
pub struct PhaseGuard<'a> {
    prof: Option<&'a RefCell<Inner>>,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if let Some(cell) = self.prof {
            cell.borrow_mut().exit();
        }
    }
}

/// Leak-once interner for dynamic phase names arriving over the wire.
/// Deduplicates so repeated runs in one process never grow the leak past
/// one entry per distinct name.
fn intern(name: &str) -> &'static str {
    use std::sync::Mutex;
    static POOL: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    let mut pool = POOL.lock().expect("phase-name pool poisoned");
    if let Some(hit) = pool.iter().find(|&&p| p == name) {
        return hit;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    pool.push(leaked);
    leaked
}

/// Peak resident set size of this process in bytes (Linux `VmHWM`),
/// `None` where the kernel interface is absent. A sample, not a metric:
/// it rides the profile report only.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_a_single_word_and_inert() {
        // Option<Box<_>> has the null niche: the disabled handle is one
        // pointer, and every method is one branch.
        assert_eq!(
            std::mem::size_of::<Prof>(),
            std::mem::size_of::<usize>(),
            "disabled handle must stay pointer-sized"
        );
        let p = Prof::disabled();
        {
            let _g = p.span("phase");
            let _h = p.span("nested");
        }
        assert!(!p.is_enabled());
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_count() {
        let p = Prof::enabled();
        for _ in 0..3 {
            let _e = p.span("epoch");
            let _s = p.span("sim");
        }
        {
            let _e = p.span("epoch");
            let _x = p.span("screen");
        }
        let prof = p.finish();
        assert_eq!(prof.calls("epoch"), 4);
        assert_eq!(prof.calls("epoch;sim"), 3);
        assert_eq!(prof.calls("epoch;screen"), 1);
        assert_eq!(prof.calls("missing"), 0);
    }

    #[test]
    fn nested_wall_never_exceeds_parent() {
        let p = Prof::enabled();
        {
            let _outer = p.span("outer");
            for _ in 0..10 {
                let _inner = p.span("inner");
                std::hint::black_box((0..512).sum::<u64>());
            }
        }
        let prof = p.finish();
        assert!(prof.wall_ns("outer") >= prof.wall_ns("outer;inner"));
        assert!(prof.total_wall_ns >= prof.wall_ns("outer"));
    }

    #[test]
    fn shard_absorb_tree_shape_is_deterministic() {
        // Two shards record overlapping phase sets in different orders;
        // absorbing them in a fixed order must always yield the same
        // child order (shape), whatever the clock said.
        let shape_of = || {
            let p = Prof::enabled();
            let a = p.shard();
            a.scope("sim", || a.scope("rng", || ()));
            a.scope("screen", || ());
            let b = p.shard();
            b.scope("screen", || ());
            b.scope("sim", || b.scope("merge", || ()));
            let _w = p.span("workers");
            p.absorb(&a);
            p.absorb(&b);
            drop(_w);
            let prof = p.finish();
            prof.folded_stacks_with(|_| 1)
        };
        let first = shape_of();
        assert_eq!(
            first.join("\n"),
            "workers 1\nworkers;sim 1\nworkers;sim;rng 1\nworkers;sim;merge 1\nworkers;screen 1"
        );
        for _ in 0..4 {
            assert_eq!(shape_of(), first, "merged tree shape must not wobble");
        }
    }

    #[test]
    fn absorb_between_disabled_handles_is_a_noop() {
        let off = Prof::disabled();
        let on = Prof::enabled();
        on.scope("x", || ());
        off.absorb(&on);
        assert!(off.snapshot().is_empty());
        on.absorb(&off.shard());
        assert_eq!(on.finish().calls("x"), 1);
    }

    #[test]
    fn absorb_entries_rebuilds_wire_profiles() {
        let p = Prof::enabled();
        {
            let _w = p.span("worker.0");
            p.absorb_entries(&[
                ProfileEntry {
                    stack: "fleet.step".into(),
                    wall_ns: 5_000,
                    calls: 2,
                },
                ProfileEntry {
                    stack: "fleet.step;rng".into(),
                    wall_ns: 1_000,
                    calls: 4,
                },
            ]);
        }
        let prof = p.finish();
        assert_eq!(prof.wall_ns("worker.0;fleet.step"), 5_000);
        assert_eq!(prof.calls("worker.0;fleet.step;rng"), 4);
    }

    #[test]
    fn rss_sample_reads_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(peak_rss_bytes().unwrap_or(0) > 0);
        }
    }
}
