//! [`BenchMeta`]: the shared envelope every `BENCH_*.json` embeds, so
//! perf numbers from different PRs, hosts, and experiments are
//! machine-comparable. One schema string, one capture path, one
//! validator — bench binaries only differ in their body fields.

use serde::{Deserialize, Serialize};

use crate::report::SelfProfile;

/// Schema identifier; bump the `/vN` suffix on breaking shape changes.
pub const BENCH_META_SCHEMA: &str = "mercurial-bench-meta/v1";

/// Where a measurement ran: enough to judge whether two numbers are
/// comparable, not enough to identify a person.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostInfo {
    pub os: String,
    pub arch: String,
    pub cpus: u64,
    pub hostname: String,
}

/// One phase line of the wall-clock breakdown carried in the envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetaPhase {
    pub stack: String,
    pub wall_ms: f64,
    pub calls: u64,
}

/// The envelope itself. Every field is provenance: *what* ran (schema,
/// experiment), *on which code* (git commit), *where* (host), *when*
/// (timestamp), *how hard* (reps), and *where the time went* (phases).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMeta {
    pub schema: String,
    pub experiment: String,
    pub git_commit: String,
    pub host: HostInfo,
    pub timestamp: String,
    pub reps: u64,
    pub phases: Vec<MetaPhase>,
}

impl BenchMeta {
    /// Capture the envelope for `experiment` on this host, folding the
    /// measured profile into per-phase wall lines.
    pub fn capture(experiment: &str, reps: u64, profile: &SelfProfile) -> BenchMeta {
        BenchMeta {
            schema: BENCH_META_SCHEMA.to_string(),
            experiment: experiment.to_string(),
            git_commit: git_commit().unwrap_or_else(|| "unknown".to_string()),
            host: HostInfo {
                os: std::env::consts::OS.to_string(),
                arch: std::env::consts::ARCH.to_string(),
                cpus: std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
                hostname: hostname().unwrap_or_else(|| "unknown".to_string()),
            },
            timestamp: iso8601_utc_now(),
            reps,
            phases: profile
                .entries()
                .into_iter()
                .map(|e| MetaPhase {
                    stack: e.stack,
                    wall_ms: e.wall_ns as f64 / 1e6,
                    calls: e.calls,
                })
                .collect(),
        }
    }

    /// Wrap bench body fields in the envelope. `body` is the inner
    /// `"key": value` lines of the result object (no braces), as the
    /// bench writers already format them.
    pub fn envelope(&self, body: &str) -> String {
        let meta = serde_json::to_string_pretty(self).expect("meta serializes");
        let meta_indented = meta.replace('\n', "\n  ");
        let body = body.trim().trim_end_matches(',');
        format!("{{\n  \"meta\": {meta_indented},\n  {body}\n}}\n")
    }

    /// Parse a `BENCH_*.json` file and validate its envelope: the file
    /// must be a JSON object with a `meta` field that deserializes under
    /// the current schema string.
    pub fn from_bench_json(text: &str) -> Result<BenchMeta, String> {
        let value: serde::Value =
            serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
        let obj = value
            .as_object()
            .ok_or_else(|| "top level is not an object".to_string())?;
        let (_, meta) = obj
            .iter()
            .find(|(k, _)| k == "meta")
            .ok_or_else(|| "missing \"meta\" envelope".to_string())?;
        let meta = BenchMeta::from_value(meta).map_err(|e| format!("bad meta shape: {}", e.0))?;
        if meta.schema != BENCH_META_SCHEMA {
            return Err(format!(
                "schema mismatch: {} (expected {BENCH_META_SCHEMA})",
                meta.schema
            ));
        }
        Ok(meta)
    }
}

/// Current commit, read straight from `.git` (no subprocess): follow
/// `HEAD`'s symref into its loose ref file, falling back to
/// `packed-refs`, walking up from the working directory to find the
/// repository root.
fn git_commit() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    let git = loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            break candidate;
        }
        if !dir.pop() {
            return None;
        }
    };
    let head = std::fs::read_to_string(git.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(refname) = head.strip_prefix("ref: ") else {
        return Some(head.to_string()); // detached HEAD: bare sha
    };
    if let Ok(sha) = std::fs::read_to_string(git.join(refname)) {
        return Some(sha.trim().to_string());
    }
    let packed = std::fs::read_to_string(git.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with('^'))
        .find_map(|l| {
            let (sha, name) = l.split_once(' ')?;
            (name == refname).then(|| sha.to_string())
        })
}

fn hostname() -> Option<String> {
    std::fs::read_to_string("/proc/sys/kernel/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .filter(|s| !s.is_empty())
}

/// `YYYY-MM-DDTHH:MM:SSZ` from the system clock, via the standard
/// days-to-civil conversion — no date dependency for one timestamp.
fn iso8601_utc_now() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (hh, mm, ss) = (rem / 3_600, (rem / 60) % 60, rem % 60);
    // Howard Hinnant's civil_from_days, shifted to the 0000-03-01 era.
    let z = days as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prof;

    #[test]
    fn envelope_round_trips_through_the_validator() {
        let p = Prof::enabled();
        p.scope("run", || p.scope("sim", || ()));
        let meta = BenchMeta::capture("e99_test", 3, &p.finish());
        let json = meta.envelope("\"corruptions\": 42,\n  \"wall_ms\": 1.5");
        let parsed = BenchMeta::from_bench_json(&json).expect("validator accepts own output");
        assert_eq!(parsed, meta);
        assert_eq!(parsed.experiment, "e99_test");
        assert_eq!(parsed.phases[0].stack, "run");
        assert_eq!(parsed.phases[1].stack, "run;sim");
        // The body fields survive as ordinary JSON alongside the meta.
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let obj = v.as_object().unwrap();
        assert!(obj.iter().any(|(k, _)| k == "corruptions"));
    }

    #[test]
    fn validator_rejects_missing_or_foreign_envelopes() {
        assert!(BenchMeta::from_bench_json("{\"corruptions\": 1}")
            .unwrap_err()
            .contains("missing"));
        assert!(BenchMeta::from_bench_json("[1,2]")
            .unwrap_err()
            .contains("object"));
        let p = Prof::disabled();
        let mut meta = BenchMeta::capture("x", 1, &p.finish());
        meta.schema = "mercurial-bench-meta/v0".to_string();
        let json = meta.envelope("\"a\": 1");
        assert!(BenchMeta::from_bench_json(&json)
            .unwrap_err()
            .contains("schema"));
    }

    #[test]
    fn capture_stamps_commit_host_and_time() {
        let meta = BenchMeta::capture("e0", 1, &Prof::disabled().finish());
        // Inside this repo the commit must resolve to a 40-hex sha.
        assert_eq!(meta.git_commit.len(), 40, "commit: {}", meta.git_commit);
        assert!(meta.git_commit.chars().all(|c| c.is_ascii_hexdigit()));
        assert!(meta.timestamp.ends_with('Z') && meta.timestamp.len() == 20);
        assert!(meta.host.cpus > 0);
        assert!(meta.phases.is_empty(), "disabled profile carries no phases");
    }

    #[test]
    fn civil_date_conversion_matches_known_epochs() {
        // Spot-check the hand-rolled conversion against known instants
        // by reusing it through a fixed seconds value.
        let fmt = |secs: u64| {
            let (days, rem) = (secs / 86_400, secs % 86_400);
            let (hh, mm, ss) = (rem / 3_600, (rem / 60) % 60, rem % 60);
            let z = days as i64 + 719_468;
            let era = z.div_euclid(146_097);
            let doe = z.rem_euclid(146_097);
            let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
            let y = yoe + era * 400;
            let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
            let mp = (5 * doy + 2) / 153;
            let d = doy - (153 * mp + 2) / 5 + 1;
            let m = if mp < 10 { mp + 3 } else { mp - 9 };
            let y = if m <= 2 { y + 1 } else { y };
            format!("{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:02}Z")
        };
        assert_eq!(fmt(0), "1970-01-01T00:00:00Z");
        assert_eq!(fmt(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(fmt(1_754_611_200), "2025-08-08T00:00:00Z");
    }
}
