//! Startup micro-calibration: measure what a thread fan-out actually
//! costs on *this* host, so cost gates compare against a measured number
//! instead of a constant carried over from whichever machine ran the
//! original bench.

use crate::Prof;

/// Wall-clock cost of one scoped spawn+join on this host, in
/// microseconds — the minimum over `samples` measurements, since the
/// floor is the number a "is the batch worth a fan-out?" gate should
/// compare against (any scheduling noise only inflates it).
///
/// Measured through [`Prof`] itself, so the calibration exercises the
/// same timer path the profiler reports with. Always at least 1 µs to
/// keep downstream multipliers meaningful.
pub fn measured_spawn_cost_us(samples: usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..samples.max(1) {
        let p = Prof::enabled();
        {
            let _g = p.span("spawn");
            std::thread::scope(|s| {
                s.spawn(|| std::hint::black_box(0u64));
            });
        }
        best = best.min(p.finish().wall_ns("spawn") / 1_000);
    }
    best.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_cost_is_positive_and_sane() {
        let us = measured_spawn_cost_us(5);
        assert!(us >= 1);
        // A spawn+join that takes over a second means the measurement is
        // broken, not the host slow.
        assert!(us < 1_000_000, "spawn cost measured at {us} µs");
    }
}
