//! # mercurial-prof — wall-clock self-observability
//!
//! Everything else in this workspace observes **simulation time**: the
//! trace recorder stamps sim-hours, the scoreboard counts epochs, the
//! audit ledger replays decisions. This crate observes the *runtime
//! itself* — where the wall clock and memory actually go — and exports
//! it through three surfaces:
//!
//! 1. [`SelfProfile`]: a hierarchical phase tree (wall ms, call counts,
//!    % of parent, peak-RSS sample) rendered as a table or as
//!    `flamegraph.pl`-compatible folded stacks;
//! 2. per-phase gauges for the serve status page;
//! 3. [`BenchMeta`]: the shared envelope every `BENCH_*.json` embeds so
//!    perf numbers are comparable across PRs, hosts, and experiments.
//!
//! The one inviolable rule, inherited from the determinism contract:
//! wall-clock readings are **write-only**. Nothing measured here may
//! feed sim-visible state, so a prof-on run is bit-for-bit identical to
//! a prof-off run (`crates/core/tests/prof_parity.rs` pins this against
//! the E20 digests).

mod calibrate;
mod meta;
mod profiler;
mod report;

pub use calibrate::measured_spawn_cost_us;
pub use meta::{BenchMeta, HostInfo, MetaPhase, BENCH_META_SCHEMA};
pub use profiler::{peak_rss_bytes, PhaseGuard, Prof};
pub use report::{PhaseNode, ProfileEntry, SelfProfile};
